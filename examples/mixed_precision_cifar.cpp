// Mixed-precision exploration: trains CSQ at several target budgets on the
// synthetic CIFAR stand-in and prints the accuracy/size Pareto frontier
// plus each discovered layer-wise scheme — the workflow a practitioner
// would use to pick an operating point for deployment.
//
//   $ ./examples/mixed_precision_cifar [target_bits...]
//
// Defaults to targets 2 3 4.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/csq_trainer.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "quant/act_quant.h"
#include "util/logging.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace csq;
  set_log_level(LogLevel::warn);

  std::vector<double> targets;
  for (int i = 1; i < argc; ++i) targets.push_back(std::atof(argv[i]));
  if (targets.empty()) targets = {2.0, 3.0, 4.0};

  const SyntheticDataset data = make_synthetic(SyntheticConfig::cifar_like());
  std::cout << "exploring targets:";
  for (const double target : targets) std::cout << ' ' << target;
  std::cout << " bits (ResNet-20, A=3, " << data.train.size()
            << " train samples)\n\n";

  TextTable frontier("accuracy-size frontier");
  frontier.set_header({"target", "avg bits", "Comp(x)", "Acc(%)"});

  for (const double target : targets) {
    std::vector<CsqWeightSource*> sources;
    Rng rng(7);
    ModelConfig model_config;
    model_config.num_classes = data.train.num_classes();
    model_config.base_width = 8;
    Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                                fixed_act_quant_factory(3), rng);

    CsqTrainConfig config;
    config.train.epochs = 20;
    config.train.batch_size = 50;
    config.train.learning_rate = 0.1f;
    config.target_bits = target;
    const CsqTrainResult result =
        train_csq(model, sources, data.train, data.test, config);

    frontier.add_row({format_float(target, 1),
                      format_float(result.average_bits, 2),
                      format_float(result.compression, 2),
                      format_float(result.test_accuracy, 2)});

    std::cout << "scheme @ target " << target << ":";
    for (const LayerPrecision& layer : result.layer_bits) {
      std::cout << ' ' << layer.name << '=' << layer.bits;
    }
    std::cout << "\n\n";
  }
  frontier.print(std::cout);
  return 0;
}
