// Head-to-head ablation (the paper's Table IV story): the same ResNet-20
// trained three ways at the same weight precision —
//   1. STE-Uniform QAT (latent weights, straight-through rounding),
//   2. CSQ-Uniform (bit-level continuous sparsification, fixed precision),
//   3. CSQ-MP (bi-level: bit values + learned bit selection under a budget)
// — demonstrating why the gradient path matters at aggressive precisions.
//
//   $ ./examples/ablation_ste_vs_csq [bits]   (default 1)
#include <cstdlib>
#include <iostream>

#include "core/csq_trainer.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/trainer.h"
#include "quant/act_quant.h"
#include "quant/ste_uniform_weight.h"
#include "util/logging.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace csq;
  set_log_level(LogLevel::warn);
  const int bits = argc > 1 ? std::atoi(argv[1]) : 1;

  const SyntheticDataset data = make_synthetic(SyntheticConfig::cifar_like());
  std::cout << "ablation at W=" << bits << " bits, A=3 (ResNet-20)\n";

  TextTable table("STE vs continuous sparsification");
  table.set_header({"method", "gradient path", "avg bits", "Acc(%)"});

  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;

  TrainConfig train_config;
  train_config.epochs = 20;
  train_config.batch_size = 50;
  train_config.learning_rate = 0.1f;

  {  // 1. STE-Uniform
    Rng rng(7);
    Model model = make_resnet20(model_config, ste_uniform_weight_factory(bits),
                                fixed_act_quant_factory(3), rng);
    const FitResult result = fit(model, data.train, data.test, train_config);
    table.add_row({"STE-Uniform [27]", "straight-through estimate",
                   std::to_string(bits), format_float(result.test_accuracy, 2)});
    std::cout << "  STE-Uniform done\n";
  }
  {  // 2. CSQ-Uniform
    std::vector<CsqWeightSource*> sources;
    CsqWeightOptions options;
    options.fixed_precision = bits;
    Rng rng(7);
    Model model = make_resnet20(model_config, csq_weight_factory(&sources,
                                                                 options),
                                fixed_act_quant_factory(3), rng);
    CsqTrainConfig config;
    config.train = train_config;
    const CsqTrainResult result =
        train_csq(model, sources, data.train, data.test, config);
    table.add_row({"CSQ-Uniform", "analytic (annealed gates)",
                   std::to_string(bits), format_float(result.test_accuracy, 2)});
    std::cout << "  CSQ-Uniform done\n";
  }
  {  // 3. CSQ-MP
    std::vector<CsqWeightSource*> sources;
    Rng rng(7);
    Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                                fixed_act_quant_factory(3), rng);
    CsqTrainConfig config;
    config.train = train_config;
    config.target_bits = bits;
    const CsqTrainResult result =
        train_csq(model, sources, data.train, data.test, config);
    table.add_row({"CSQ-MP", "analytic + learned bit masks",
                   format_float(result.average_bits, 2),
                   format_float(result.test_accuracy, 2)});
    std::cout << "  CSQ-MP done\n";
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout
      << "\nExpected shape (paper Table IV): STE trails CSQ-Uniform at the "
         "precision cliff\n(W=1 on this substrate). CSQ-MP spends an *average* "
         "budget non-uniformly, which\nhelps at W>=2 but can drive individual "
         "layers below 1 bit when the target is 1.\n";
  return 0;
}
