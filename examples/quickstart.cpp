// Quickstart: train a mixed-precision ResNet-20 with CSQ on the synthetic
// CIFAR-like dataset, targeting an average of 3 bits per weight.
//
//   $ ./examples/quickstart
//
// Walks the full pipeline: dataset -> model with CSQ weight sources ->
// bi-level training with the budget regularizer -> finalization -> exact
// quantized accuracy + per-layer scheme.
#include <iostream>

#include "core/csq_trainer.h"
#include "core/csq_weight.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace csq;

  // 1. Data: a synthetic stand-in for CIFAR-10 (see DESIGN.md).
  const SyntheticConfig data_config = SyntheticConfig::cifar_like();
  const SyntheticDataset data = make_synthetic(data_config);
  std::cout << "dataset: " << data.train.size() << " train / "
            << data.test.size() << " test, " << data.train.num_classes()
            << " classes\n";

  // 2. Model: ResNet-20 whose conv/fc weights are CSQ bi-level sources.
  std::vector<CsqWeightSource*> sources;
  Rng rng(7);
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              /*act_factory=*/nullptr, rng);
  std::cout << "model: resnet20, " << model.quant_layers().size()
            << " quantizable layers, " << model.total_weight_count()
            << " weights\n";

  // 3. Train with Algorithm 1 (joint bi-level phase, then finalize).
  CsqTrainConfig config;
  config.train.epochs = 20;
  config.train.batch_size = 50;
  config.train.learning_rate = 0.1f;
  config.train.weight_decay = 5e-4f;
  config.train.verbose = true;
  config.lambda = 0.01;
  config.target_bits = 3.0;

  Timer timer;
  const CsqTrainResult result =
      train_csq(model, sources, data.train, data.test, config);

  // 4. Report.
  std::cout << "\n--- results (" << result.test_accuracy << "% top-1, "
            << timer.seconds() << " s) ---\n";
  std::cout << "average precision: " << result.average_bits << " bits (target "
            << config.target_bits << ")\n";
  std::cout << "compression vs FP32: " << result.compression << "x\n";
  std::cout << "soft-model accuracy before finalization: "
            << result.soft_test_accuracy << "%\n";
  std::cout << "\nper-layer scheme:\n";
  for (const LayerPrecision& layer : result.layer_bits) {
    std::cout << "  " << layer.name << ": " << layer.bits << " bits ("
              << layer.weight_count << " weights)\n";
  }
  return 0;
}
