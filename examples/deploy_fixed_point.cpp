// Deployment path: train a CSQ model, finalize it to exact fixed-point
// form, export + serialize the integer weight codes, then lower the WHOLE
// network into the integer inference runtime (runtime/compiled_graph.h) and
// run it end to end — int8 weight codes, uint8 activation codes, int32
// accumulation, BatchNorm folded into the requantization and ReLU fused
// into its clamp. Prints the bit-exactness of the lowered weights and the
// top-1 accuracy delta between the float eval path and the int8 graph.
//
//   $ ./examples/deploy_fixed_point
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/csq_trainer.h"
#include "core/export.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/trainer.h"
#include "runtime/compiled_graph.h"
#include "tensor/ops.h"
#include "util/logging.h"

int main() {
  using namespace csq;
  set_log_level(LogLevel::warn);

  // Small, fast training: the point of this example is the deployment flow.
  SyntheticConfig data_config = SyntheticConfig::cifar_like();
  data_config.train_samples = 600;
  data_config.test_samples = 300;
  const SyntheticDataset data = make_synthetic(data_config);

  std::vector<CsqWeightSource*> sources;
  Rng rng(7);
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);

  CsqTrainConfig config;
  config.train.epochs = 18;
  config.train.batch_size = 50;
  config.target_bits = 3.0;
  const CsqTrainResult result =
      train_csq(model, sources, data.train, data.test, config);
  std::cout << "trained: " << result.test_accuracy << "% @ "
            << result.average_bits << " avg bits\n\n";

  // 1. Every finalized layer must be bit-exact against its integer codes —
  //    through the generic WeightSource accessor, no concrete casts.
  std::int64_t total_storage_bits = 0;
  float worst_roundtrip = 0.0f;
  for (const QuantLayer& layer : model.quant_layers()) {
    const QuantizedLayerExport exported =
        export_layer(layer.name, *layer.source);
    worst_roundtrip =
        std::max(worst_roundtrip, export_roundtrip_error(*layer.source));
    total_storage_bits += exported.storage_bits();
  }
  std::cout << "export roundtrip max error: " << worst_roundtrip
            << (worst_roundtrip == 0.0f ? " (bit-exact)" : " (NOT exact!)")
            << '\n';
  std::cout << "total quantized storage: " << total_storage_bits / 8 / 1024.0
            << " KiB vs FP32 "
            << model.total_weight_count() * 4 / 1024.0 << " KiB\n\n";

  // 2. Ship the model: serialize all integer codes + scales to a container
  //    file and read it back (the artifact a runtime would load).
  const std::string model_path = "csq_model.bin";
  const std::vector<QuantizedLayerExport> exported = export_model(model);
  if (save_quantized_model(model_path, exported)) {
    const auto loaded = load_quantized_model(model_path);
    std::cout << "serialized " << loaded.size() << " layers to " << model_path
              << " (" << model_storage_bits(loaded) / 8 / 1024.0
              << " KiB payload), reloaded OK\n\n";
    std::remove(model_path.c_str());
  }

  // 3. Lower the WHOLE network into the integer compiled graph, calibrate
  //    the activation edges on training batches, and serve.
  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);

  // Calibration: per-edge activation ranges from a float walk of the
  // lowered ops over a slice of the training set.
  {
    std::vector<int> indices;
    for (int i = 0; i < 200; ++i) indices.push_back(i);
    graph.calibrate(data.train.gather(indices).images);
  }

  // Lowered weights must reconstruct the finalized float weights bit for
  // bit from the packed int8 planes.
  float worst_lowered = 0.0f;
  for (const QuantLayer& layer : model.quant_layers()) {
    const Tensor lowered = graph.dequantized_weights(layer.name);
    const Tensor& reference = layer.source->weight(/*training=*/false);
    for (std::int64_t i = 0; i < reference.numel(); ++i) {
      worst_lowered =
          std::max(worst_lowered, std::fabs(lowered[i] - reference[i]));
    }
  }
  std::cout << "lowered weight reconstruction max error: " << worst_lowered
            << (worst_lowered == 0.0f ? " (bit-exact)" : " (NOT exact!)")
            << '\n';

  std::cout << "compiled graph: " << graph.layers().size()
            << " integer layers, "
            << graph.weight_storage_bits() / 8 / 1024.0 << " KiB codes\n";
  for (const auto& layer : graph.layers()) {
    std::cout << "  " << layer.name << ": " << layer.bits << "b x "
              << layer.weight_count << (layer.split ? " (split planes)" : "")
              << " -> " << layer.kernel << " kernel\n";
  }

  // 4. End-to-end accuracy: float eval path vs the int8 graph.
  const float float_accuracy = evaluate_accuracy(model, data.test);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test);
  std::cout << "\nfloat eval path: " << float_accuracy << "%\n"
            << "int8 graph:      " << int8_accuracy << "%\n"
            << "accuracy delta:  " << float_accuracy - int8_accuracy
            << " points (int8 graph: 8-bit activation codes, int32 "
               "accumulation, BN folded, ReLU fused)\n";
  return 0;
}
