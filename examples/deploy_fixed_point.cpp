// Deployment path: train a CSQ model, finalize it to exact fixed-point
// form, export integer weight codes, verify the export is bit-exact with
// the float materialization, and run the final classifier layer with pure
// integer arithmetic — the fixed-point benefit the paper's introduction
// motivates ("enables the use of fixed-point arithmetic units").
//
//   $ ./examples/deploy_fixed_point
#include <cstdio>
#include <iostream>

#include "core/csq_trainer.h"
#include "core/export.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "tensor/ops.h"
#include "util/logging.h"

int main() {
  using namespace csq;
  set_log_level(LogLevel::warn);

  // Small, fast training: the point of this example is the export flow.
  SyntheticConfig data_config = SyntheticConfig::cifar_like();
  data_config.train_samples = 600;
  data_config.test_samples = 300;
  const SyntheticDataset data = make_synthetic(data_config);

  std::vector<CsqWeightSource*> sources;
  Rng rng(7);
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);

  CsqTrainConfig config;
  config.train.epochs = 18;
  config.train.batch_size = 50;
  config.target_bits = 3.0;
  const CsqTrainResult result =
      train_csq(model, sources, data.train, data.test, config);
  std::cout << "trained: " << result.test_accuracy << "% @ "
            << result.average_bits << " avg bits\n\n";

  // 1. Every finalized layer must be bit-exact against its integer codes.
  std::int64_t total_storage_bits = 0;
  float worst_roundtrip = 0.0f;
  for (const QuantLayer& layer : model.quant_layers()) {
    auto* source = dynamic_cast<CsqWeightSource*>(layer.source);
    const QuantizedLayerExport exported = export_layer(layer.name, *source);
    worst_roundtrip =
        std::max(worst_roundtrip, export_roundtrip_error(*source));
    total_storage_bits += exported.storage_bits();
  }
  std::cout << "export roundtrip max error: " << worst_roundtrip
            << (worst_roundtrip == 0.0f ? " (bit-exact)" : " (NOT exact!)")
            << '\n';
  std::cout << "total quantized storage: " << total_storage_bits / 8 / 1024.0
            << " KiB vs FP32 "
            << model.total_weight_count() * 4 / 1024.0 << " KiB\n\n";

  // 2. Ship the model: serialize all integer codes + scales to a container
  //    file and read it back (the artifact a runtime would load).
  const std::string model_path = "csq_model.bin";
  const std::vector<QuantizedLayerExport> exported = export_model(model);
  if (save_quantized_model(model_path, exported)) {
    const auto loaded = load_quantized_model(model_path);
    std::cout << "serialized " << loaded.size() << " layers to " << model_path
              << " (" << model_storage_bits(loaded) / 8 / 1024.0
              << " KiB payload), reloaded OK\n\n";
    std::remove(model_path.c_str());
  }

  // 3. Integer-arithmetic execution of the final classifier layer.
  auto* fc_source = dynamic_cast<CsqWeightSource*>(
      model.quant_layers().back().source);
  const QuantizedLayerExport fc = export_layer("fc", *fc_source);

  Rng feature_rng(99);
  Tensor features({4, fc.shape[1]});
  for (std::int64_t i = 0; i < features.numel(); ++i) {
    features[i] = feature_rng.uniform(0.0f, 2.0f);
  }
  const Tensor integer_logits = integer_linear_forward(fc, features, 8, 2.0f);
  const Tensor reference_logits =
      reference_linear_forward(fc, features, 8, 2.0f);
  std::cout << "integer vs reference classifier logits: max diff = "
            << max_abs_diff(integer_logits, reference_logits) << '\n';
  std::cout << "integer path uses int32 accumulation of " << fc.bits
            << "-bit weight codes x 8-bit activation codes.\n";
  return 0;
}
