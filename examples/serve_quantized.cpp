// Serving path: Model -> lower() -> persisted artifact ->
// serve::BatchingServer.
//
// Builds a finalized CSQ ResNet-20, lowers and calibrates it, persists the
// compiled graph to a v3 "CSQM" artifact (runtime/graph_artifact.h) and
// then DESTROYS the float model — everything from here on is the serving
// process: artifact-loaded int8 replicas behind a request-batching server,
// driven by concurrent producer threads. Prints the artifact size, the
// bit-identity of loaded-vs-direct forwards, per-request correctness under
// concurrency and the throughput/batching statistics.
//
//   $ ./examples/serve_quantized
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/csq_weight.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "serve/batching_server.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

int main() {
  using namespace csq;
  set_log_level(LogLevel::warn);

  const std::int64_t side = 16;
  const std::string artifact_path = "resnet20_int8.csqm";

  // ---- build + lower + persist (the "training process") ------------------
  Tensor probe;        // one batch kept around to verify bit-identity
  Tensor direct_logits;
  {
    Rng rng(7);
    std::vector<CsqWeightSource*> sources;
    ModelConfig model_config;
    model_config.base_width = 16;
    CsqWeightOptions weight_options;
    weight_options.fixed_precision = 3;  // the paper's deployment regime
    Model model = make_resnet20(
        model_config, csq_weight_factory(&sources, weight_options), nullptr,
        rng);
    for (CsqWeightSource* source : sources) source->finalize();

    runtime::LowerOptions options;
    options.in_height = side;
    options.in_width = side;
    runtime::CompiledGraph graph = runtime::lower(model, options);

    Rng data_rng(21);
    Tensor calib = Tensor::uninitialized({16, 3, side, side});
    for (std::int64_t i = 0; i < calib.numel(); ++i) {
      calib[i] = data_rng.uniform(-1.0f, 1.0f);
    }
    graph.calibrate(calib);

    probe = Tensor::uninitialized({4, 3, side, side});
    for (std::int64_t i = 0; i < probe.numel(); ++i) {
      probe[i] = data_rng.uniform(-1.0f, 1.0f);
    }
    direct_logits = graph.forward(probe);

    if (!runtime::save_graph(artifact_path, graph)) {
      std::cerr << "could not write " << artifact_path << "\n";
      return 1;
    }
    std::ifstream artifact(artifact_path,
                           std::ios::binary | std::ios::ate);
    std::cout << "saved " << artifact_path << " ("
              << artifact.tellg() / 1024.0 << " KiB, float weights would be "
              << model.total_weight_count() * 4 / 1024.0 << " KiB)\n";
  }  // <- model and original graph destroyed: serving starts cold

  // ---- serve from the artifact (the "serving process") -------------------
  runtime::CompiledGraph loaded = runtime::load_graph(artifact_path);
  const Tensor loaded_logits = loaded.forward(probe);
  bool identical = loaded_logits.same_shape(direct_logits);
  for (std::int64_t i = 0; identical && i < loaded_logits.numel(); ++i) {
    identical = loaded_logits[i] == direct_logits[i];
  }
  std::cout << "loaded graph forward vs direct lowering: "
            << (identical ? "bit-identical" : "MISMATCH!") << "\n\n";

  serve::ServerOptions server_options;
  server_options.max_batch = 16;
  server_options.max_latency_us = 300;
  serve::BatchingServer server(server_options);
  server.add_model_from_artifact("resnet20", artifact_path, /*replicas=*/2);
  server.start();

  const auto shape = server.model_shape("resnet20");
  const std::int64_t sample_numel = shape.channels * shape.height * shape.width;

  // Distinct samples with precomputed single-sample reference logits.
  constexpr int kSamples = 8;
  Rng sample_rng(33);
  Tensor samples = Tensor::uninitialized(
      {kSamples, shape.channels, shape.height, shape.width});
  for (std::int64_t i = 0; i < samples.numel(); ++i) {
    samples[i] = sample_rng.uniform(-1.0f, 1.0f);
  }
  std::vector<Tensor> expected;
  for (int s = 0; s < kSamples; ++s) {
    Tensor one =
        Tensor::uninitialized({1, shape.channels, shape.height, shape.width});
    std::memcpy(one.data(), samples.data() + s * sample_numel,
                static_cast<std::size_t>(sample_numel) * sizeof(float));
    expected.push_back(loaded.forward(one));
  }

  constexpr int kProducers = 4;
  constexpr int kRequestsEach = 200;
  std::atomic<std::uint64_t> mismatches{0};
  const serve::ModelHandle handle = server.handle("resnet20");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<float> logits(
          static_cast<std::size_t>(shape.out_features));
      for (int i = 0; i < kRequestsEach; ++i) {
        const int s = (p * 13 + i) % kSamples;
        server.infer(handle, samples.data() + s * sample_numel,
                     logits.data());
        if (std::memcmp(logits.data(),
                        expected[static_cast<std::size_t>(s)].data(),
                        logits.size() * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto stats = server.stats("resnet20");
  std::cout << "served " << stats.requests << " requests from " << kProducers
            << " producers in " << seconds << " s ("
            << static_cast<double>(stats.requests) / seconds << " req/s)\n";
  std::cout << "batches: " << stats.batches << " (mean batch "
            << static_cast<double>(stats.requests) /
                   static_cast<double>(stats.batches)
            << ", max " << stats.max_batch_observed << ", full flushes "
            << stats.full_flushes << ", timer flushes " << stats.timer_flushes
            << ")\n";
  std::cout << "per-request bit-identity vs single-sample forwards: "
            << (mismatches.load() == 0 ? "all identical" : "MISMATCHES!")
            << "\n\n";

  // ---- failure semantics --------------------------------------------------
  // The typed request path: try_infer never throws — deadlines, overload
  // shedding, shard failure and shutdown come back as ServeStatus values
  // (see the README "Failure semantics" section). A generous deadline on a
  // healthy server completes normally...
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));
  const serve::ServeStatus deadline_status = server.try_infer(
      handle, samples.data(), logits.data(), /*deadline_us=*/100'000);
  std::cout << "try_infer with a 100 ms deadline: "
            << serve::serve_status_name(deadline_status) << "\n";

  // ... and after stop() the same handle degrades to a typed rejection
  // instead of blocking (a handle outliving the server itself would too).
  server.stop();
  const serve::ServeStatus late_status =
      server.try_infer(handle, samples.data(), logits.data());
  std::cout << "try_infer after stop(): "
            << serve::serve_status_name(late_status) << "\n";
  const auto final_stats = server.stats("resnet20");
  std::cout << "failure counters: rejected " << final_stats.rejected
            << ", timed out " << final_stats.timed_out << ", shed "
            << final_stats.shed << ", quarantines "
            << final_stats.quarantines << ", restores "
            << final_stats.restores << "\n";

  std::remove(artifact_path.c_str());
  return mismatches.load() == 0 && identical &&
                 deadline_status == serve::ServeStatus::kOk &&
                 late_status == serve::ServeStatus::kShuttingDown
             ? 0
             : 1;
}
