// Serving path: Model -> lower() -> persisted artifact ->
// serve::BatchingServer.
//
// Builds a finalized CSQ ResNet-20, lowers and calibrates it, persists the
// compiled graph to a v3 "CSQM" artifact (runtime/graph_artifact.h) and
// then DESTROYS the float model — everything from here on is the serving
// process: artifact-loaded int8 replicas behind a request-batching server,
// driven by concurrent producer threads. Prints the artifact size, the
// bit-identity of loaded-vs-direct forwards, per-request correctness under
// concurrency and the throughput/batching statistics.
//
// The second half re-serves the artifact CROSS-PROCESS: the parent
// memory-maps the artifact (load_graph_mmap — N processes share one page
// cache), exposes it over the loopback transport (serve/transport.h) and
// forks two client processes (`--client <port> <fixture>`) that each drive
// it over TCP, checking every response bit-for-bit against the in-process
// forwards the parent wrote into the fixture file.
//
//   $ ./examples/serve_quantized            # parent: server + forked clients
//   $ ./examples/serve_quantized --client <port> <fixture>   # internal
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/csq_weight.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "serve/batching_server.h"
#include "serve/transport.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

// Fixture the parent hands each client process: the request samples plus
// the parent's own in-process forwards as the bit-identity oracle.
//   u32 n_samples | u32 sample_numel | u32 out_features
//   f32 samples[n * sample_numel] | f32 expected[n * out_features]
bool write_client_fixture(const std::string& path, const csq::Tensor& samples,
                          const std::vector<csq::Tensor>& expected,
                          std::int64_t sample_numel,
                          std::int64_t out_features) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::uint32_t header[3] = {
      static_cast<std::uint32_t>(expected.size()),
      static_cast<std::uint32_t>(sample_numel),
      static_cast<std::uint32_t>(out_features)};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(samples.data()),
            static_cast<std::streamsize>(samples.numel() * sizeof(float)));
  for (const csq::Tensor& logits : expected) {
    out.write(reinterpret_cast<const char*>(logits.data()),
              static_cast<std::streamsize>(logits.numel() * sizeof(float)));
  }
  return out.good();
}

// Client-process mode: drive the parent's loopback transport and verify
// every response against the fixture oracle. Exit 0 = all bit-identical.
int run_client(std::uint16_t port, const std::string& fixture_path) {
  std::ifstream in(fixture_path, std::ios::binary);
  if (!in) return 2;
  std::uint32_t header[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  const std::uint32_t n = header[0], sample_numel = header[1],
                      out_features = header[2];
  std::vector<float> samples(static_cast<std::size_t>(n) * sample_numel);
  std::vector<float> expected(static_cast<std::size_t>(n) * out_features);
  in.read(reinterpret_cast<char*>(samples.data()),
          static_cast<std::streamsize>(samples.size() * sizeof(float)));
  in.read(reinterpret_cast<char*>(expected.data()),
          static_cast<std::streamsize>(expected.size() * sizeof(float)));
  if (!in.good()) return 2;

  csq::serve::TransportClient client(port);
  if (!client.connected()) return 3;
  std::vector<float> logits;
  for (std::uint32_t round = 0; round < 4; ++round) {
    for (std::uint32_t s = 0; s < n; ++s) {
      const csq::serve::WireStatus status =
          client.infer("resnet20", samples.data() + s * sample_numel,
                       sample_numel, logits);
      if (status != csq::serve::WireStatus::kOk) return 4;
      if (logits.size() != out_features ||
          std::memcmp(logits.data(), expected.data() + s * out_features,
                      out_features * sizeof(float)) != 0) {
        return 5;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csq;
  set_log_level(LogLevel::warn);

  if (argc == 4 && std::strcmp(argv[1], "--client") == 0) {
    return run_client(static_cast<std::uint16_t>(std::atoi(argv[2])),
                      argv[3]);
  }

  const std::int64_t side = 16;
  const std::string artifact_path = "resnet20_int8.csqm";

  // ---- build + lower + persist (the "training process") ------------------
  Tensor probe;        // one batch kept around to verify bit-identity
  Tensor direct_logits;
  {
    Rng rng(7);
    std::vector<CsqWeightSource*> sources;
    ModelConfig model_config;
    model_config.base_width = 16;
    CsqWeightOptions weight_options;
    weight_options.fixed_precision = 3;  // the paper's deployment regime
    Model model = make_resnet20(
        model_config, csq_weight_factory(&sources, weight_options), nullptr,
        rng);
    for (CsqWeightSource* source : sources) source->finalize();

    runtime::LowerOptions options;
    options.in_height = side;
    options.in_width = side;
    runtime::CompiledGraph graph = runtime::lower(model, options);

    Rng data_rng(21);
    Tensor calib = Tensor::uninitialized({16, 3, side, side});
    for (std::int64_t i = 0; i < calib.numel(); ++i) {
      calib[i] = data_rng.uniform(-1.0f, 1.0f);
    }
    graph.calibrate(calib);

    probe = Tensor::uninitialized({4, 3, side, side});
    for (std::int64_t i = 0; i < probe.numel(); ++i) {
      probe[i] = data_rng.uniform(-1.0f, 1.0f);
    }
    direct_logits = graph.forward(probe);

    if (!runtime::save_graph(artifact_path, graph)) {
      std::cerr << "could not write " << artifact_path << "\n";
      return 1;
    }
    std::ifstream artifact(artifact_path,
                           std::ios::binary | std::ios::ate);
    std::cout << "saved " << artifact_path << " ("
              << artifact.tellg() / 1024.0 << " KiB, float weights would be "
              << model.total_weight_count() * 4 / 1024.0 << " KiB)\n";
  }  // <- model and original graph destroyed: serving starts cold

  // ---- serve from the artifact (the "serving process") -------------------
  runtime::CompiledGraph loaded = runtime::load_graph(artifact_path);
  const Tensor loaded_logits = loaded.forward(probe);
  bool identical = loaded_logits.same_shape(direct_logits);
  for (std::int64_t i = 0; identical && i < loaded_logits.numel(); ++i) {
    identical = loaded_logits[i] == direct_logits[i];
  }
  std::cout << "loaded graph forward vs direct lowering: "
            << (identical ? "bit-identical" : "MISMATCH!") << "\n\n";

  serve::ServerOptions server_options;
  server_options.max_batch = 16;
  server_options.max_latency_us = 300;
  serve::BatchingServer server(server_options);
  server.add_model_from_artifact("resnet20", artifact_path, /*replicas=*/2);
  server.start();

  const auto shape = server.model_shape("resnet20");
  const std::int64_t sample_numel = shape.channels * shape.height * shape.width;

  // Distinct samples with precomputed single-sample reference logits.
  constexpr int kSamples = 8;
  Rng sample_rng(33);
  Tensor samples = Tensor::uninitialized(
      {kSamples, shape.channels, shape.height, shape.width});
  for (std::int64_t i = 0; i < samples.numel(); ++i) {
    samples[i] = sample_rng.uniform(-1.0f, 1.0f);
  }
  std::vector<Tensor> expected;
  for (int s = 0; s < kSamples; ++s) {
    Tensor one =
        Tensor::uninitialized({1, shape.channels, shape.height, shape.width});
    std::memcpy(one.data(), samples.data() + s * sample_numel,
                static_cast<std::size_t>(sample_numel) * sizeof(float));
    expected.push_back(loaded.forward(one));
  }

  constexpr int kProducers = 4;
  constexpr int kRequestsEach = 200;
  std::atomic<std::uint64_t> mismatches{0};
  const serve::ModelHandle handle = server.handle("resnet20");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<float> logits(
          static_cast<std::size_t>(shape.out_features));
      for (int i = 0; i < kRequestsEach; ++i) {
        const int s = (p * 13 + i) % kSamples;
        server.infer(handle, samples.data() + s * sample_numel,
                     logits.data());
        if (std::memcmp(logits.data(),
                        expected[static_cast<std::size_t>(s)].data(),
                        logits.size() * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto stats = server.stats("resnet20");
  std::cout << "served " << stats.requests << " requests from " << kProducers
            << " producers in " << seconds << " s ("
            << static_cast<double>(stats.requests) / seconds << " req/s)\n";
  std::cout << "batches: " << stats.batches << " (mean batch "
            << static_cast<double>(stats.requests) /
                   static_cast<double>(stats.batches)
            << ", max " << stats.max_batch_observed << ", full flushes "
            << stats.full_flushes << ", timer flushes " << stats.timer_flushes
            << ")\n";
  std::cout << "per-request bit-identity vs single-sample forwards: "
            << (mismatches.load() == 0 ? "all identical" : "MISMATCHES!")
            << "\n\n";

  // ---- failure semantics --------------------------------------------------
  // The typed request path: try_infer never throws — deadlines, overload
  // shedding, shard failure and shutdown come back as ServeStatus values
  // (see the README "Failure semantics" section). A generous deadline on a
  // healthy server completes normally...
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));
  const serve::ServeStatus deadline_status = server.try_infer(
      handle, samples.data(), logits.data(), /*deadline_us=*/100'000);
  std::cout << "try_infer with a 100 ms deadline: "
            << serve::serve_status_name(deadline_status) << "\n";

  // ... and after stop() the same handle degrades to a typed rejection
  // instead of blocking (a handle outliving the server itself would too).
  server.stop();
  const serve::ServeStatus late_status =
      server.try_infer(handle, samples.data(), logits.data());
  std::cout << "try_infer after stop(): "
            << serve::serve_status_name(late_status) << "\n";
  const auto final_stats = server.stats("resnet20");
  std::cout << "failure counters: rejected " << final_stats.rejected
            << ", timed out " << final_stats.timed_out << ", shed "
            << final_stats.shed << ", quarantines "
            << final_stats.quarantines << ", restores "
            << final_stats.restores << "\n";

  // ---- cross-process serving ---------------------------------------------
  // Re-serve the SAME artifact over the loopback transport, with replicas
  // that memory-map the weight section instead of copying it (two replicas
  // share one mapping here; separate processes mapping the same file share
  // one page cache). Two forked client processes each drive the server
  // over TCP and verify every response bit-for-bit against the parent's
  // in-process forwards (shipped to them in a fixture file).
  serve::BatchingServer wire_server;
  {
    std::vector<runtime::CompiledGraph> wire_replicas;
    wire_replicas.push_back(
        runtime::load_graph_mmap(artifact_path, /*pooled=*/false));
    wire_replicas.push_back(runtime::replicate(wire_replicas.front()));
    wire_server.add_model("resnet20", std::move(wire_replicas));
  }
  wire_server.start();
  serve::ServeTransport transport(wire_server);
  transport.start();

  const std::string fixture_path = "serve_client_fixture.bin";
  bool clients_ok =
      write_client_fixture(fixture_path, samples, expected, sample_numel,
                           shape.out_features);
  int client_failures = 0;
  if (clients_ok) {
    const std::string port_arg = std::to_string(transport.port());
    std::vector<pid_t> children;
    for (int c = 0; c < 2; ++c) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::execl("/proc/self/exe", "serve_quantized", "--client",
                port_arg.c_str(), fixture_path.c_str(),
                static_cast<char*>(nullptr));
        ::_exit(127);  // exec failed
      }
      if (pid > 0) children.push_back(pid);
    }
    clients_ok = children.size() == 2;
    for (const pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++client_failures;
    }
  }
  clients_ok = clients_ok && client_failures == 0;
  const auto wire_stats = transport.stats();
  std::cout << "\ncross-process: 2 forked clients drove "
            << wire_stats.responses
            << " requests over loopback against mmap-loaded replicas: "
            << (clients_ok ? "all bit-identical" : "FAILURES!") << "\n";
  transport.stop();
  wire_server.stop();
  std::remove(fixture_path.c_str());

  std::remove(artifact_path.c_str());
  return mismatches.load() == 0 && identical && clients_ok &&
                 deadline_status == serve::ServeStatus::kOk &&
                 late_status == serve::ServeStatus::kShuttingDown
             ? 0
             : 1;
}
