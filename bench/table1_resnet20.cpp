// Reproduces Table I of the paper: quantization results of ResNet-20 on
// (synthetic) CIFAR-10 across activation precisions 32 / 3 / 2.
//
// Shape expectations (see EXPERIMENTS.md): CSQ rows Pareto-match or beat
// the uniform-QAT baselines at equal-or-higher compression; BSQ sits
// between uniform QAT and CSQ; compression ratios track 32 / target bits.
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Table I: ResNet-20 on synthetic CIFAR-10", scale);
  const SyntheticDataset data = make_cifar(scale);

  RunConfig config;
  config.arch = Arch::resnet20;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_resnet20;
  config.num_classes = data.train.num_classes();

  TextTable table = make_paper_table("Table I (paper: Table I)");
  const auto emit = [&](const std::string& a_bits, Row row, double paper) {
    row.paper_accuracy = paper;
    add_row(table, a_bits, row);
    std::cout << "  done: A" << a_bits << " " << row.method << " ("
              << format_float(row.seconds, 1) << "s)\n";
  };

  // ---- A-Bits = 32 (full-precision activations) -----------------------
  config.act_bits = 0;
  emit("32", run_fp(config, data), 92.62);
  emit("32", run_lqnets(config, data, 3), 92.00);
  emit("32", run_bsq(config, data), 91.87);
  emit("32", run_csq(config, data, {.target_bits = 1.0}), 91.70);
  emit("32", run_csq(config, data, {.target_bits = 2.0}), 92.68);

  // ---- A-Bits = 3 ------------------------------------------------------
  table.add_rule();
  config.act_bits = 3;
  emit("3", run_lqnets(config, data, 3), 91.60);
  emit("3", run_pact(config, data, 3), 91.10);
  emit("3", run_dorefa(config, data, 3), 89.90);
  emit("3", run_bsq(config, data), 92.16);
  emit("3", run_csq(config, data, {.target_bits = 2.0}), 92.14);
  emit("3", run_csq(config, data, {.target_bits = 3.0}), 92.42);

  // ---- A-Bits = 2 ------------------------------------------------------
  table.add_rule();
  config.act_bits = 2;
  emit("2", run_lqnets(config, data, 2), 90.20);
  emit("2", run_pact(config, data, 2), 89.70);
  emit("2", run_dorefa(config, data, 2), 88.20);
  emit("2", run_bsq(config, data), 90.19);
  emit("2", run_csq(config, data, {.target_bits = 1.0}), 90.08);
  emit("2", run_csq(config, data, {.target_bits = 2.0}), 90.33);

  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
