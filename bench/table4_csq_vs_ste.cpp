// Reproduces Table IV of the paper (ablation): STE-based QAT vs bit-level
// continuous sparsification, at fixed uniform precision and with the full
// bi-level mixed-precision scheme. ResNet-20, 3-bit activations.
//
// Note on shape: on the synthetic substrate the capacity cliff sits at
// 1-2 bits rather than the paper's 2-4 (the task is easier relative to the
// model), so the W=1 column is included — the ordering
// STE-Uniform << CSQ-Uniform <= CSQ-MP at the cliff is the reproduced claim.
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Table IV: CSQ vs STE-based QAT (ResNet-20, A=3)", scale);
  const SyntheticDataset data = make_cifar(scale);

  RunConfig config;
  config.arch = Arch::resnet20;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_resnet20;
  config.num_classes = data.train.num_classes();
  config.act_bits = 3;

  TextTable table("Table IV (paper: Table IV)");
  table.set_header({"W-Bits", "QAT method", "Acc(%)", "paper Acc(%)",
                    "avg bits", "time(s)"});

  // Paper accuracies for W = 4 / 3 / 2 (W = 1 is substrate-specific).
  struct PaperRef {
    double ste, uniform, mp;
  };
  const std::vector<std::pair<int, PaperRef>> cases = {
      {4, {88.89, 91.93, 92.68}},
      {3, {87.68, 91.74, 92.62}},
      {2, {84.35, 91.67, 92.34}},
      {1, {-1.0, -1.0, -1.0}},
  };

  for (const auto& [bits, paper] : cases) {
    if (bits != 4) table.add_rule();
    const auto paper_cell = [](double value) {
      return value > 0 ? format_float(value, 2) : std::string("-");
    };

    Row ste = run_ste_uniform(config, data, bits);
    table.add_row({std::to_string(bits), "STE-Uniform [27]",
                   format_float(ste.accuracy, 2), paper_cell(paper.ste),
                   std::to_string(bits), format_float(ste.seconds, 1)});
    std::cout << "  done: W" << bits << " STE\n";

    CsqRunOptions uniform;
    uniform.fixed_precision = bits;
    Row csq_u = run_csq(config, data, uniform);
    table.add_row({std::to_string(bits), "CSQ-Uniform",
                   format_float(csq_u.accuracy, 2), paper_cell(paper.uniform),
                   std::to_string(bits), format_float(csq_u.seconds, 1)});
    std::cout << "  done: W" << bits << " CSQ-Uniform\n";

    CsqRunOptions mixed;
    mixed.target_bits = bits;
    CsqTrainResult mixed_result;
    Row csq_mp = run_csq(config, data, mixed, &mixed_result);
    table.add_row({std::to_string(bits), "CSQ-MP",
                   format_float(csq_mp.accuracy, 2), paper_cell(paper.mp),
                   format_float(mixed_result.average_bits, 2),
                   format_float(csq_mp.seconds, 1)});
    std::cout << "  done: W" << bits << " CSQ-MP\n";
  }

  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
