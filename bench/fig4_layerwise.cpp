// Reproduces Figure 4 of the paper: final per-layer precision of the CSQ
// quantization schemes under different target bits (ResNet-20, A=3).
//
// Shape: layer profiles are broadly consistent across targets (layers keep
// their relative ranking); the paper additionally observes a rising trend
// toward the output layers, with fc among the highest-precision layers.
#include <iomanip>
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Figure 4: layer-wise precision under different targets",
               scale);
  const SyntheticDataset data = make_cifar(scale);

  RunConfig config;
  config.arch = Arch::resnet20;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_resnet20;
  config.num_classes = data.train.num_classes();
  config.act_bits = 3;

  const std::vector<int> targets = {5, 4, 3, 2};
  std::vector<CsqTrainResult> results;
  for (const int target : targets) {
    CsqRunOptions options;
    options.target_bits = target;
    CsqTrainResult result;
    const Row row = run_csq(config, data, options, &result);
    results.push_back(std::move(result));
    std::cout << "  done: target " << target << " ("
              << format_float(row.seconds, 1) << "s)\n";
  }

  TextTable table("Figure 4: per-layer precision (bits)");
  std::vector<std::string> header = {"layer"};
  for (const int target : targets) {
    header.push_back("T" + std::to_string(target));
  }
  header.push_back("weights");
  table.set_header(header);

  const std::size_t layer_count = results[0].layer_bits.size();
  for (std::size_t l = 0; l < layer_count; ++l) {
    std::vector<std::string> cells = {results[0].layer_bits[l].name};
    for (const CsqTrainResult& result : results) {
      cells.push_back(std::to_string(result.layer_bits[l].bits));
    }
    cells.push_back(std::to_string(results[0].layer_bits[l].weight_count));
    table.add_row(std::move(cells));
  }
  std::cout << '\n';
  table.print(std::cout);

  // Shape check: cross-target consistency of the per-layer ranking
  // (Spearman-style sign agreement between adjacent targets).
  std::cout << "\nshape check:\n";
  for (std::size_t t = 1; t < targets.size(); ++t) {
    int agree = 0, total = 0;
    for (std::size_t a = 0; a < layer_count; ++a) {
      for (std::size_t b = a + 1; b < layer_count; ++b) {
        const int prev = results[t - 1].layer_bits[a].bits -
                         results[t - 1].layer_bits[b].bits;
        const int curr =
            results[t].layer_bits[a].bits - results[t].layer_bits[b].bits;
        if (prev == 0 || curr == 0) continue;
        ++total;
        if ((prev > 0) == (curr > 0)) ++agree;
      }
    }
    std::cout << "  ranking agreement T" << targets[t - 1] << " vs T"
              << targets[t] << ": "
              << (total > 0 ? format_float(100.0 * agree / total, 1) : "n/a")
              << "% of ordered layer pairs\n";
  }
  return 0;
}
