// google-benchmark microbenchmarks for the hot kernels that bound training
// throughput: GEMM (all three transpose forms), im2col convolution, the
// temperature-sigmoid gate, and the CSQ bi-level materialize/backward pair.
#include <benchmark/benchmark.h>

#include "core/csq_weight.h"
#include "core/gate.h"
#include "nn/conv2d.h"
#include "nn/weight_source.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace csq {
namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng) {
  Tensor tensor(std::move(shape));
  fill_uniform(tensor, -1.0f, 1.0f, rng);
  return tensor;
}

void BM_GemmNN(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(Trans::no, Trans::yes, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_GemmParallel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_parallel(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n, b.data(),
                  n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmParallel)->Arg(256)->Arg(512);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  Conv2dConfig config;
  config.in_channels = channels;
  config.out_channels = channels;
  Conv2d conv("conv", config, dense_weight_factory(), rng);
  Tensor input = random_tensor({16, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor out = conv.forward(input, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 2 * channels * channels *
                          9 * 16 * 16);
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(5);
  ConvGeometry geom;
  geom.channels = state.range(0);
  geom.height = 16;
  geom.width = 16;
  geom.kernel_h = geom.kernel_w = 3;
  geom.stride = 1;
  geom.pad = 1;
  Tensor image = random_tensor({geom.channels, 16, 16}, rng);
  Tensor col({geom.col_rows(), geom.col_cols()});
  for (auto _ : state) {
    im2col(geom, image.data(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(32);

void BM_GateEval(benchmark::State& state) {
  Rng rng(6);
  Tensor logits = random_tensor({state.range(0)}, rng);
  Tensor out(logits.shape());
  for (auto _ : state) {
    const float* in = logits.data();
    float* dst = out.data();
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      dst[i] = gate(in[i], 37.0f);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * logits.numel());
}
BENCHMARK(BM_GateEval)->Arg(4096)->Arg(65536);

void BM_CsqMaterialize(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  Rng rng(7);
  CsqWeightOptions options;
  CsqWeightSource source("layer", {side, side}, side, options, rng);
  source.set_beta(13.0f);
  for (auto _ : state) {
    const Tensor& w = source.weight(/*training=*/false);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * side * side * 8);
}
BENCHMARK(BM_CsqMaterialize)->Arg(32)->Arg(96);

void BM_CsqMaterializeAndBackward(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  Rng rng(8);
  CsqWeightOptions options;
  CsqWeightSource source("layer", {side, side}, side, options, rng);
  source.set_beta(13.0f);
  Tensor grad = random_tensor({side, side}, rng);
  for (auto _ : state) {
    source.weight(/*training=*/true);
    source.backward(grad);
  }
  state.SetItemsProcessed(state.iterations() * side * side * 8);
}
BENCHMARK(BM_CsqMaterializeAndBackward)->Arg(32)->Arg(96);

}  // namespace
}  // namespace csq

BENCHMARK_MAIN();
