// google-benchmark microbenchmarks for the hot kernels that bound training
// throughput: GEMM (all three transpose forms), im2col convolution, the
// temperature-sigmoid gate, and the CSQ bi-level materialize/backward pair.
//
// In addition to the registered benchmarks, every run emits four
// cross-PR tracking reports:
//   BENCH_materialize.json — serial vs pooled weight materialization for
//     all five WeightSource families on a ResNet-20-sized layer;
//   BENCH_gemm.json        — GFLOP/s of the blocked/packed GEMM against the
//     seed's naive triple-loop reference (serial and pooled) over
//     conv-shaped problems, with a pooled bit-identity check;
//   BENCH_step.json        — full train-step latency (forward + backward +
//     SGD) of a ResNet-20 BasicBlock under dense and CSQ weights;
//   BENCH_infer.json       — serving latency of a finalized ResNet-20:
//     float eval-path forward vs the int8 compiled graph
//     (runtime/compiled_graph.h), per batch size;
//   BENCH_serve.json       — the batching server (serve/batching_server.h)
//     under closed-loop producer threads: throughput and p50/p99 request
//     latency vs offered load (producer count) and max_batch.
//   BENCH_train_scaling.json — deterministic data-parallel training
//     (opt/data_parallel.h): mean step latency and speedup at 1/2/4/8
//     workers on a fixed shard grid, with a bit-identity re-check.
// Every report opens with a "machine" context block (hardware threads, pool
// threads, CSQ_THREADS, portable build) so numbers are never compared
// across hosts by accident.
// `--smoke` runs every report in a 1-iteration mode and exits — the ctest
// entry uses it so CI catches bench bitrot.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/csq_weight.h"
#include "core/gate.h"
#include "data/dataset.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/models.h"
#include "nn/parameter_arena.h"
#include "nn/weight_source.h"
#include "opt/data_parallel.h"
#include "opt/sgd.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "runtime/packed_weights.h"
#include "serve/autoscaler.h"
#include "serve/batching_server.h"
#include "serve/transport.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ste_uniform_weight.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/init.h"
#include "tensor/quant_kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace csq {
namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng) {
  Tensor tensor(std::move(shape));
  fill_uniform(tensor, -1.0f, 1.0f, rng);
  return tensor;
}

// Machine-context block stamped into every BENCH_*.json so numbers are never
// compared across hosts (or across tuned vs portable builds) by accident:
// the container this repo is usually benched in has a single hardware
// thread, which caps every parallel speedup at 1x.
std::string machine_context_json() {
  std::ostringstream os;
  os << "\"machine\": {\"hardware_threads\": "
     << std::thread::hardware_concurrency()
     << ", \"pool_threads\": " << global_pool().num_threads()
     << ", \"csq_threads_env\": ";
  if (const char* env = std::getenv("CSQ_THREADS")) {
    os << '"' << env << '"';
  } else {
    os << "null";
  }
  os << ", \"portable_build\": "
#ifdef CSQ_PORTABLE_BUILD
     << "true"
#else
     << "false"
#endif
     << "}";
  return os.str();
}

void BM_GemmNN(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(Trans::no, Trans::yes, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_GemmParallel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_parallel(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n, b.data(),
                  n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmParallel)->Arg(256)->Arg(512);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  Conv2dConfig config;
  config.in_channels = channels;
  config.out_channels = channels;
  Conv2d conv("conv", config, dense_weight_factory(), rng);
  Tensor input = random_tensor({16, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor out = conv.forward(input, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 2 * channels * channels *
                          9 * 16 * 16);
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(5);
  ConvGeometry geom;
  geom.channels = state.range(0);
  geom.height = 16;
  geom.width = 16;
  geom.kernel_h = geom.kernel_w = 3;
  geom.stride = 1;
  geom.pad = 1;
  Tensor image = random_tensor({geom.channels, 16, 16}, rng);
  Tensor col({geom.col_rows(), geom.col_cols()});
  for (auto _ : state) {
    im2col(geom, image.data(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(32);

void BM_GateEval(benchmark::State& state) {
  Rng rng(6);
  Tensor logits = random_tensor({state.range(0)}, rng);
  Tensor out(logits.shape());
  for (auto _ : state) {
    const float* in = logits.data();
    float* dst = out.data();
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      dst[i] = gate(in[i], 37.0f);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * logits.numel());
}
BENCHMARK(BM_GateEval)->Arg(4096)->Arg(65536);

void BM_CsqMaterialize(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  Rng rng(7);
  CsqWeightOptions options;
  CsqWeightSource source("layer", {side, side}, side, options, rng);
  source.set_beta(13.0f);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  for (auto _ : state) {
    // Defeat the eval dirty-flag: this benchmark measures the rebuild.
    params.front()->mark_updated();
    const Tensor& w = source.weight(/*training=*/false);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * side * side * 8);
}
BENCHMARK(BM_CsqMaterialize)->Arg(32)->Arg(96);

void BM_CsqMaterializeAndBackward(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  Rng rng(8);
  CsqWeightOptions options;
  CsqWeightSource source("layer", {side, side}, side, options, rng);
  source.set_beta(13.0f);
  Tensor grad = random_tensor({side, side}, rng);
  for (auto _ : state) {
    source.weight(/*training=*/true);
    source.backward(grad);
  }
  state.SetItemsProcessed(state.iterations() * side * side * 8);
}
BENCHMARK(BM_CsqMaterializeAndBackward)->Arg(32)->Arg(96);

// ------------------------------------------ weight materialization bench --

struct MaterializeFamily {
  const char* name;
  std::function<WeightSourcePtr(Rng&)> make;
};

// A ResNet-20-sized conv layer: 64x64x3x3 = 36864 weights.
const std::vector<std::int64_t>& bench_shape() {
  static const std::vector<std::int64_t> shape = {64, 64, 3, 3};
  return shape;
}
constexpr std::int64_t kBenchFanIn = 64 * 3 * 3;

std::vector<MaterializeFamily> materialize_families() {
  std::vector<MaterializeFamily> families;
  families.push_back({"csq", [](Rng& rng) {
                        CsqWeightOptions options;
                        auto src = std::make_unique<CsqWeightSource>(
                            "layer", bench_shape(), kBenchFanIn, options, rng);
                        src->set_beta(13.0f);
                        return WeightSourcePtr(std::move(src));
                      }});
  families.push_back({"bsq", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<BsqWeightSource>(
                                "layer", bench_shape(), kBenchFanIn, rng));
                      }});
  families.push_back({"ste_uniform", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<SteUniformWeightSource>(
                                "layer", bench_shape(), kBenchFanIn,
                                /*bits=*/4, rng));
                      }});
  families.push_back({"dorefa", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<DorefaWeightSource>(
                                "layer", bench_shape(), kBenchFanIn,
                                /*bits=*/2, rng));
                      }});
  families.push_back({"lqnets", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<LqNetsWeightSource>(
                                "layer", bench_shape(), kBenchFanIn,
                                /*bits=*/2, rng));
                      }});
  return families;
}

// Wall-clock ns per element of an eval-mode materialization, measured until
// at least `min_ms` of accumulated runtime. Each iteration marks a
// parameter updated so the eval dirty-flag cannot short-circuit the rebuild
// being measured.
double time_materialize_ns_per_element(WeightSource& source,
                                       double min_ms = 120.0) {
  const std::int64_t elements = source.weight_count();
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  for (int i = 0; i < 3; ++i) {  // warmup
    if (!params.empty()) params.front()->mark_updated();
    source.weight(/*training=*/false);
  }
  using clock = std::chrono::steady_clock;
  double elapsed_ns = 0.0;
  std::int64_t iterations = 0;
  while (elapsed_ns < min_ms * 1e6 && iterations < 2000) {
    if (!params.empty()) params.front()->mark_updated();
    const auto start = clock::now();
    const Tensor& w = source.weight(/*training=*/false);
    const auto stop = clock::now();
    benchmark::DoNotOptimize(w.data());
    elapsed_ns += std::chrono::duration<double, std::nano>(stop - start).count();
    ++iterations;
  }
  return elapsed_ns / static_cast<double>(iterations * elements);
}

void write_materialize_report(const std::string& path, double min_ms = 120.0) {
  const KernelExec prior = default_kernel_exec();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "materialization report\n";
    return;
  }
  const std::int64_t elements = 64 * 64 * 3 * 3;
  out << "{\n  " << machine_context_json()
      << ",\n  \"layer\": \"64x64x3x3\",\n  \"elements\": " << elements
      << ",\n  \"threads\": " << global_pool().num_threads()
      << ",\n  \"results\": [\n";
  bool first = true;
  for (const MaterializeFamily& family : materialize_families()) {
    Rng rng(42);
    WeightSourcePtr source = family.make(rng);
    set_default_kernel_exec(KernelExec::serial);
    const double serial_ns = time_materialize_ns_per_element(*source, min_ms);
    set_default_kernel_exec(KernelExec::pooled);
    const double pooled_ns = time_materialize_ns_per_element(*source, min_ms);
    if (!first) out << ",\n";
    first = false;
    out << "    {\"family\": \"" << family.name
        << "\", \"serial_ns_per_element\": " << serial_ns
        << ", \"pooled_ns_per_element\": " << pooled_ns
        << ", \"speedup\": " << serial_ns / pooled_ns << "}";
    std::cout << "materialize " << family.name << ": serial " << serial_ns
              << " ns/elem, pooled " << pooled_ns << " ns/elem (x"
              << serial_ns / pooled_ns << ")\n";
  }
  out << "\n  ]\n}\n";
  set_default_kernel_exec(prior);
  std::cout << "wrote " << path << "\n";
}

// --------------------------------------------------------- GEMM report --

// The seed's unblocked i-k-j / dot-product kernels, kept verbatim as the
// performance reference the blocked kernel is measured against.
void naive_gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, std::int64_t lda,
                const float* b, std::int64_t ldb, float beta, float* c,
                std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (alpha == 0.0f || k == 0) return;
  if (trans_a == Trans::no && trans_b == Trans::no) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* a_row = a + i * lda;
      float* c_row = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float a_ip = alpha * a_row[p];
        if (a_ip == 0.0f) continue;
        const float* b_row = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
      }
    }
  } else if (trans_a == Trans::no && trans_b == Trans::yes) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* a_row = a + i * lda;
      float* c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* b_row = b + j * ldb;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] += alpha * acc;
      }
    }
  } else {
    for (std::int64_t p = 0; p < k; ++p) {
      const float* a_row = a + p * lda;
      const float* b_row = b + p * ldb;
      for (std::int64_t i = 0; i < m; ++i) {
        const float a_pi = alpha * a_row[i];
        if (a_pi == 0.0f) continue;
        float* c_row = c + i * ldc;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
      }
    }
  }
}

using GemmFn = std::function<void(std::int64_t, std::int64_t, std::int64_t,
                                  const float*, const float*, float*)>;

// Mean GFLOP/s of fn over at least min_ms of accumulated runtime.
double time_gemm_gflops(const GemmFn& fn, std::int64_t m, std::int64_t n,
                        std::int64_t k, const float* a, const float* b,
                        float* c, double min_ms) {
  using clock = std::chrono::steady_clock;
  fn(m, n, k, a, b, c);  // warmup
  double elapsed_ns = 0.0;
  std::int64_t iterations = 0;
  while (elapsed_ns < min_ms * 1e6 && iterations < 2000) {
    const auto start = clock::now();
    fn(m, n, k, a, b, c);
    const auto stop = clock::now();
    benchmark::DoNotOptimize(c);
    elapsed_ns +=
        std::chrono::duration<double, std::nano>(stop - start).count();
    ++iterations;
  }
  const double flops =
      2.0 * static_cast<double>(m) * static_cast<double>(n) *
      static_cast<double>(k) * static_cast<double>(iterations);
  return flops / elapsed_ns;  // flops per ns == GFLOP/s
}

struct GemmProblem {
  const char* name;
  Trans trans_a, trans_b;
  std::int64_t m, n, k;
};

void write_gemm_report(const std::string& path, double min_ms) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "GEMM report\n";
    return;
  }
  // The acceptance cube plus conv-shaped problems: a 64ch 3x3 conv over
  // 32x32 (forward NN, weight-grad NT, input-grad TN) and a stage-2-sized
  // 128ch conv over 16x16.
  const GemmProblem problems[] = {
      {"cube256_nn", Trans::no, Trans::no, 256, 256, 256},
      {"conv64x32x32_fwd_nn", Trans::no, Trans::no, 64, 1024, 576},
      {"conv64x32x32_wgrad_nt", Trans::no, Trans::yes, 64, 576, 1024},
      {"conv64x32x32_igrad_tn", Trans::yes, Trans::no, 576, 1024, 64},
      {"conv128x16x16_fwd_nn", Trans::no, Trans::no, 128, 256, 1152},
  };
  out << "{\n  " << machine_context_json()
      << ",\n  \"threads\": " << global_pool().num_threads()
      << ",\n  \"problems\": [\n";
  bool first = true;
  for (const GemmProblem& p : problems) {
    Rng rng(7);
    const std::int64_t a_rows = p.trans_a == Trans::no ? p.m : p.k;
    const std::int64_t a_cols = p.trans_a == Trans::no ? p.k : p.m;
    const std::int64_t b_rows = p.trans_b == Trans::no ? p.k : p.n;
    const std::int64_t b_cols = p.trans_b == Trans::no ? p.n : p.k;
    Tensor a = random_tensor({a_rows, a_cols}, rng);
    Tensor b = random_tensor({b_rows, b_cols}, rng);
    Tensor c({p.m, p.n});

    const double naive = time_gemm_gflops(
        [&](std::int64_t m, std::int64_t n, std::int64_t k, const float* pa,
            const float* pb, float* pc) {
          naive_gemm(p.trans_a, p.trans_b, m, n, k, 1.0f, pa, a_cols, pb,
                     b_cols, 0.0f, pc, n);
        },
        p.m, p.n, p.k, a.data(), b.data(), c.data(), min_ms);
    const double blocked = time_gemm_gflops(
        [&](std::int64_t m, std::int64_t n, std::int64_t k, const float* pa,
            const float* pb, float* pc) {
          gemm(p.trans_a, p.trans_b, m, n, k, 1.0f, pa, a_cols, pb, b_cols,
               0.0f, pc, n);
        },
        p.m, p.n, p.k, a.data(), b.data(), c.data(), min_ms);
    const double pooled = time_gemm_gflops(
        [&](std::int64_t m, std::int64_t n, std::int64_t k, const float* pa,
            const float* pb, float* pc) {
          gemm_parallel(p.trans_a, p.trans_b, m, n, k, 1.0f, pa, a_cols, pb,
                        b_cols, 0.0f, pc, n);
        },
        p.m, p.n, p.k, a.data(), b.data(), c.data(), min_ms);

    // Determinism contract check: pooled output must be bit-identical to
    // serial.
    Tensor serial_c({p.m, p.n});
    Tensor pooled_c({p.m, p.n});
    gemm(p.trans_a, p.trans_b, p.m, p.n, p.k, 1.0f, a.data(), a_cols,
         b.data(), b_cols, 0.0f, serial_c.data(), p.n);
    gemm_parallel(p.trans_a, p.trans_b, p.m, p.n, p.k, 1.0f, a.data(), a_cols,
                  b.data(), b_cols, 0.0f, pooled_c.data(), p.n);
    bool bit_identical = true;
    for (std::int64_t i = 0; i < serial_c.numel(); ++i) {
      if (serial_c[i] != pooled_c[i]) {
        bit_identical = false;
        break;
      }
    }

    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"" << p.name << "\", \"m\": " << p.m
        << ", \"n\": " << p.n << ", \"k\": " << p.k
        << ", \"naive_gflops\": " << naive
        << ", \"blocked_gflops\": " << blocked
        << ", \"blocked_pooled_gflops\": " << pooled
        << ", \"speedup_vs_naive\": " << blocked / naive
        << ", \"pooled_bit_identical\": "
        << (bit_identical ? "true" : "false") << "}";
    std::cout << "gemm " << p.name << ": naive " << naive << " GFLOP/s, "
              << "blocked " << blocked << " GFLOP/s (x" << blocked / naive
              << "), pooled " << pooled << " GFLOP/s, bit_identical="
              << bit_identical << "\n";
  }

  // Wide-N rows: the head-matmul family (few output rows, ~1000 columns)
  // where the classic MC row split degenerates to serial. split_ways forces
  // 1/2/4/8-way column-panel grids regardless of the machine's thread
  // count, so the rows are comparable across hosts (speedups are ~1x on a
  // single-hardware-thread runner — the grid still runs, the workers just
  // drain it sequentially).
  out << "\n  ],\n  \"wide_n\": [\n";
  const std::int64_t wide_k = 512, wide_n = 1000;
  bool first_wide = true;
  for (const std::int64_t m : {std::int64_t{1}, std::int64_t{8}}) {
    Rng rng(11);
    Tensor a = random_tensor({m, wide_k}, rng);
    Tensor b = random_tensor({wide_k, wide_n}, rng);
    Tensor c({m, wide_n});

    const double serial = time_gemm_gflops(
        [&](std::int64_t pm, std::int64_t pn, std::int64_t pk,
            const float* pa, const float* pb, float* pc) {
          gemm(Trans::no, Trans::no, pm, pn, pk, 1.0f, pa, wide_k, pb,
               wide_n, 0.0f, pc, pn);
        },
        m, wide_n, wide_k, a.data(), b.data(), c.data(), min_ms);

    Tensor serial_c({m, wide_n});
    gemm(Trans::no, Trans::no, m, wide_n, wide_k, 1.0f, a.data(), wide_k,
         b.data(), wide_n, 0.0f, serial_c.data(), wide_n);

    if (!first_wide) out << ",\n";
    first_wide = false;
    out << "    {\"name\": \"head_m" << m << "\", \"m\": " << m
        << ", \"n\": " << wide_n << ", \"k\": " << wide_k
        << ", \"split\": \""
        << (gemm_choose_split(m, wide_n, 4) == GemmSplit::kCols ? "cols"
                                                                : "other")
        << "\", \"serial_gflops\": " << serial << ", \"ways\": [";
    std::cout << "gemm wide_n m" << m << ": serial " << serial
              << " GFLOP/s";
    bool first_ways = true;
    for (const int ways : {1, 2, 4, 8}) {
      const double split_gflops = time_gemm_gflops(
          [&](std::int64_t pm, std::int64_t pn, std::int64_t pk,
              const float* pa, const float* pb, float* pc) {
            gemm_parallel(Trans::no, Trans::no, pm, pn, pk, 1.0f, pa,
                          wide_k, pb, wide_n, 0.0f, pc, pn,
                          /*scratch=*/nullptr, GemmSplit::kAuto, ways);
          },
          m, wide_n, wide_k, a.data(), b.data(), c.data(), min_ms);
      Tensor split_c({m, wide_n});
      gemm_parallel(Trans::no, Trans::no, m, wide_n, wide_k, 1.0f, a.data(),
                    wide_k, b.data(), wide_n, 0.0f, split_c.data(), wide_n,
                    /*scratch=*/nullptr, GemmSplit::kAuto, ways);
      bool bit_identical = true;
      for (std::int64_t i = 0; i < serial_c.numel(); ++i) {
        if (serial_c[i] != split_c[i]) {
          bit_identical = false;
          break;
        }
      }
      if (!first_ways) out << ", ";
      first_ways = false;
      out << "{\"ways\": " << ways << ", \"tasks\": "
          << gemm_split_task_count(GemmSplit::kAuto, m, wide_n, ways)
          << ", \"gflops\": " << split_gflops
          << ", \"speedup_vs_serial\": " << split_gflops / serial
          << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
          << "}";
      std::cout << ", w" << ways << " " << split_gflops << " (x"
                << split_gflops / serial << ")";
    }
    out << "]}";
    std::cout << "\n";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

// --------------------------------------------------------- step report --

// Full train-step latency (forward + backward + SGD) on one ResNet-20
// BasicBlock (16 channels, 16x16 activations, batch 8) under dense and CSQ
// weights — the end-to-end shape of the QAT hot path.
void write_step_report(const std::string& path, int steps) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "step report\n";
    return;
  }
  const std::int64_t batch = 8, channels = 16, side = 16;
  out << "{\n  " << machine_context_json()
      << ",\n  \"block\": \"resnet20-basic-" << channels << "ch\""
      << ",\n  \"batch\": " << batch << ",\n  \"image\": \"" << side << "x"
      << side << "\",\n  \"threads\": " << global_pool().num_threads()
      << ",\n  \"variants\": [\n";

  struct Variant {
    const char* name;
    std::function<WeightSourceFactory()> factory;
  };
  std::vector<CsqWeightSource*> registry;
  const Variant variants[] = {
      {"dense", [] { return dense_weight_factory(); }},
      {"csq", [&registry] { return csq_weight_factory(&registry); }},
  };

  bool first = true;
  for (const Variant& variant : variants) {
    Rng rng(21);
    BlockConfig config;
    config.in_channels = channels;
    config.out_channels = channels;
    BasicBlock block("block", config, variant.factory(), nullptr, rng);
    for (CsqWeightSource* source : registry) source->set_beta(8.0f);

    Tensor input = random_tensor({batch, channels, side, side}, rng);
    Tensor grad_output = random_tensor({batch, channels, side, side}, rng);
    std::vector<Parameter*> params;
    block.collect_parameters(params);
    SgdConfig sgd_config;
    sgd_config.learning_rate = 1e-4f;
    Sgd sgd(params, sgd_config);

    const auto run_step = [&] {
      for (Parameter* param : params) param->zero_grad();
      Tensor output = block.forward(input, /*training=*/true);
      Tensor grad_in = block.backward(grad_output);
      sgd.step();
      benchmark::DoNotOptimize(grad_in.data());
    };
    for (int i = 0; i < 2; ++i) run_step();  // warmup

    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    for (int i = 0; i < steps; ++i) run_step();
    const auto stop = clock::now();
    const double total_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    const double step_ms = total_ms / static_cast<double>(steps);

    if (!first) out << ",\n";
    first = false;
    out << "    {\"weights\": \"" << variant.name
        << "\", \"mean_step_ms\": " << step_ms << ", \"steps\": " << steps
        << "}";
    std::cout << "train step (" << variant.name << "): " << step_ms
              << " ms\n";
    registry.clear();
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

// -------------------------------------------------------- infer report --

// Serving latency of a finalized ResNet-20 (width 16, 16x16 synthetic
// input): the float eval path (model.forward, eval mode, weights cached by
// the dirty flag) against the int8 compiled graph, per batch size. The
// acceptance bar from the runtime PR: int8 at or below float for batch >=
// 16 on the serving path.
void write_infer_report(const std::string& path, int iterations) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "infer report\n";
    return;
  }
  const std::int64_t channels = 3, side = 16;
  Rng rng(33);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 16;
  // The paper's deployment regime: ~3-bit weight codes (an untrained
  // free-mask model finalizes to full-span 8-bit codes, which forces the
  // runtime's two-plane split on every layer — not the serving shape CSQ
  // targets).
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = 3;
  Model model = make_resnet20(
      model_config, csq_weight_factory(&registry, weight_options), nullptr,
      rng);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = channels;
  options.in_height = side;
  options.in_width = side;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  {
    Rng calib_rng(34);
    Tensor calib = random_tensor({8, channels, side, side}, calib_rng);
    graph.calibrate(calib);
  }

  // Per-replica activation/scratch memory at the largest benched batch:
  // the liveness-colored plan (the default) against the one-slot-per-edge
  // baseline policy, so serving-memory regressions show up in the bench
  // trajectory alongside latency.
  const std::int64_t max_batch = 32;
  graph.prepare(max_batch);
  std::int64_t baseline_workspace = 0;
  {
    runtime::LowerOptions baseline_options = graph.options();
    baseline_options.plan_buffers = false;
    runtime::CompiledGraph baseline =
        runtime::build_graph(graph.program(), baseline_options);
    baseline.restore_edge_scales(graph.edge_scales());
    baseline.prepare(max_batch);
    baseline_workspace = baseline.workspace_bytes();
  }
  std::cout << "workspace (batch " << max_batch
            << "): planned " << graph.workspace_bytes() << " B vs per-edge "
            << baseline_workspace << " B\n";

  out << "{\n  " << machine_context_json()
      << ",\n  \"model\": \"resnet20-w16-csq3b\",\n  \"image\": \"" << side << "x"
      << side << "\",\n  \"threads\": " << global_pool().num_threads()
      << ",\n  \"workspace_batch\": " << max_batch
      << ",\n  \"workspace_bytes\": " << graph.workspace_bytes()
      << ",\n  \"workspace_bytes_per_edge_baseline\": " << baseline_workspace
      << ",\n  \"batches\": [\n";
  bool first = true;
  for (const std::int64_t batch : {1, 4, 16, 32}) {
    Rng data_rng(35);
    Tensor input = random_tensor({batch, channels, side, side}, data_rng);
    graph.prepare(batch);

    using clock = std::chrono::steady_clock;
    const auto time_ms = [&](const std::function<void()>& fn) {
      fn();  // warmup
      const auto start = clock::now();
      for (int i = 0; i < iterations; ++i) fn();
      const auto stop = clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count() /
             static_cast<double>(iterations);
    };

    const double float_ms = time_ms([&] {
      Tensor logits = model.forward(input, /*training=*/false);
      benchmark::DoNotOptimize(logits.data());
    });
    const double int8_ms = time_ms([&] {
      Tensor logits = graph.forward(input);
      benchmark::DoNotOptimize(logits.data());
    });

    if (!first) out << ",\n";
    first = false;
    out << "    {\"batch\": " << batch << ", \"float_eval_ms\": " << float_ms
        << ", \"int8_graph_ms\": " << int8_ms
        << ", \"speedup\": " << float_ms / int8_ms << "}";
    std::cout << "infer batch " << batch << ": float " << float_ms
              << " ms, int8 " << int8_ms << " ms (x" << float_ms / int8_ms
              << ")\n";
  }
  out << "\n  ],\n";

  using clock = std::chrono::steady_clock;
  const auto time_ms = [&](int reps, const std::function<void()>& fn) {
    fn();  // warmup
    const auto start = clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const auto stop = clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count() /
           static_cast<double>(reps);
  };

  // Per-layer kernel breakdown: each lowered GEMM timed standalone on its
  // serving shape (per-sample im2col columns), selected kernel against the
  // forced s8u8 reference — where the per-layer precision becomes latency.
  out << "  \"layer_kernels\": [\n";
  first = true;
  {
    const runtime::GraphProgram& program = graph.program();
    std::int64_t h = side, w = side;
    Rng gemm_rng(36);
    for (const runtime::ProgramInstr& instr : program.instrs) {
      if (instr.kind != runtime::ProgramInstr::Kind::kConv &&
          instr.kind != runtime::ProgramInstr::Kind::kLinear) {
        continue;
      }
      const QuantizedLayerExport& layer =
          program.layers[static_cast<std::size_t>(instr.layer)];
      const std::int64_t rows = layer.shape[0];
      std::int64_t cols = 1;
      for (std::size_t d = 1; d < layer.shape.size(); ++d) {
        cols *= layer.shape[d];
      }
      std::int64_t n = 1;
      if (instr.kind == runtime::ProgramInstr::Kind::kConv) {
        h = (h + 2 * instr.pad - instr.kernel) / instr.stride + 1;
        w = (w + 2 * instr.pad - instr.kernel) / instr.stride + 1;
        n = h * w;
      }
      const auto kind = static_cast<runtime::WeightKernel>(instr.kernel_kind);
      runtime::PackedIntWeights selected(layer.codes, layer.step(),
                                         layer.bits, rows, cols, kind);
      runtime::PackedIntWeights reference(layer.codes, layer.step(),
                                          layer.bits, rows, cols,
                                          runtime::WeightKernel::kS8U8);
      std::vector<std::uint8_t> b(static_cast<std::size_t>(cols * n));
      for (auto& v : b) {
        v = static_cast<std::uint8_t>(gemm_rng.uniform(0.0f, 255.0f));
      }
      std::vector<std::int32_t> c(static_cast<std::size_t>(rows * n));
      const int reps = std::max(iterations, 8);
      const double selected_ms = time_ms(reps, [&] {
        selected.gemm(Trans::no, n, b.data(), n, c.data(), n,
                      /*pooled=*/true);
        benchmark::DoNotOptimize(c.data());
      });
      const double reference_ms = time_ms(reps, [&] {
        reference.gemm(Trans::no, n, b.data(), n, c.data(), n,
                       /*pooled=*/true);
        benchmark::DoNotOptimize(c.data());
      });
      if (!first) out << ",\n";
      first = false;
      out << "    {\"layer\": \"" << layer.name << "\", \"bits\": "
          << layer.bits << ", \"kernel\": \"" << selected.kernel_name()
          << "\", \"gemm_m\": " << rows << ", \"gemm_n\": " << n
          << ", \"gemm_k\": " << cols << ", \"kernel_ms\": " << selected_ms
          << ", \"s8u8_ms\": " << reference_ms
          << ", \"speedup\": " << reference_ms / selected_ms << "}";
    }
  }
  out << "\n  ],\n";

  // Speedup-vs-precision curve: the SAME net lowered at fixed weight
  // precisions, whole-net auto-selected kernels against the
  // force_reference_kernel baseline (bit-identical logits, latency only).
  out << "  \"precision_curve\": [\n";
  first = true;
  const std::int64_t curve_batch = 16;
  for (const int bits : {1, 2, 3, 4, 8}) {
    Rng curve_rng(33);
    std::vector<CsqWeightSource*> curve_registry;
    CsqWeightOptions curve_weights;
    curve_weights.fixed_precision = bits;
    Model curve_model = make_resnet20(
        model_config, csq_weight_factory(&curve_registry, curve_weights),
        nullptr, curve_rng);
    for (CsqWeightSource* source : curve_registry) source->finalize();
    runtime::CompiledGraph auto_graph = runtime::lower(curve_model, options);
    {
      Rng calib_rng(34);
      Tensor calib = random_tensor({8, channels, side, side}, calib_rng);
      auto_graph.calibrate(calib);
    }
    runtime::LowerOptions forced_options = options;
    forced_options.force_reference_kernel = true;
    runtime::CompiledGraph forced_graph =
        runtime::build_graph(auto_graph.program(), forced_options);
    forced_graph.restore_edge_scales(auto_graph.edge_scales());
    auto_graph.prepare(curve_batch);
    forced_graph.prepare(curve_batch);

    Rng data_rng(35);
    Tensor input =
        random_tensor({curve_batch, channels, side, side}, data_rng);
    const double auto_ms = time_ms(iterations, [&] {
      Tensor logits = auto_graph.forward(input);
      benchmark::DoNotOptimize(logits.data());
    });
    const double forced_ms = time_ms(iterations, [&] {
      Tensor logits = forced_graph.forward(input);
      benchmark::DoNotOptimize(logits.data());
    });

    // Kernel histogram of the auto-selected lowering.
    std::map<std::string, int> kernel_counts;
    for (const auto& layer : auto_graph.layers()) {
      ++kernel_counts[layer.kernel];
    }
    if (!first) out << ",\n";
    first = false;
    out << "    {\"weight_bits\": " << bits << ", \"batch\": " << curve_batch
        << ", \"kernels\": {";
    bool first_kernel = true;
    for (const auto& entry : kernel_counts) {
      if (!first_kernel) out << ", ";
      first_kernel = false;
      out << "\"" << entry.first << "\": " << entry.second;
    }
    out << "}, \"auto_ms\": " << auto_ms << ", \"s8u8_forced_ms\": "
        << forced_ms << ", \"speedup\": " << forced_ms / auto_ms << "}";
    std::cout << "precision curve " << bits << "b: auto " << auto_ms
              << " ms vs s8u8 " << forced_ms << " ms (x"
              << forced_ms / auto_ms << ")\n";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

// -------------------------------------------------------- serve report --

// The batching server under closed-loop load: `producers` threads each
// issue `requests_per_producer` single-sample requests as fast as their
// previous one completes. Reports throughput plus p50/p99 per-request
// latency for each (producers, max_batch) point — the flush-policy
// trade-off the serving layer exists to navigate.
void write_serve_report(const std::string& path, int requests_per_producer) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "serve report\n";
    return;
  }
  const std::int64_t side = 16;
  Rng rng(55);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 16;
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = 3;
  Model model = make_resnet20(
      model_config, csq_weight_factory(&registry, weight_options), nullptr,
      rng);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions lower_options;
  lower_options.in_height = side;
  lower_options.in_width = side;
  runtime::CompiledGraph graph = runtime::lower(model, lower_options);
  {
    Rng calib_rng(56);
    Tensor calib = random_tensor({8, 3, side, side}, calib_rng);
    graph.calibrate(calib);
  }

  constexpr int kSamples = 4;
  Rng data_rng(57);
  Tensor samples = random_tensor({kSamples, 3, side, side}, data_rng);
  const std::int64_t sample_numel = 3 * side * side;

  out << "{\n  " << machine_context_json()
      << ",\n  \"model\": \"resnet20-w16-csq3b\",\n  \"image\": \"" << side
      << "x" << side << "\",\n  \"threads\": " << global_pool().num_threads()
      << ",\n  \"replicas\": 2,\n  \"configs\": [\n";
  bool first = true;
  for (const int producers : {1, 4}) {
    for (const std::int64_t max_batch : {std::int64_t{1}, std::int64_t{8},
                                         std::int64_t{32}}) {
      serve::ServerOptions server_options;
      server_options.max_batch = max_batch;
      server_options.max_latency_us = 200;
      serve::BatchingServer server(server_options);
      std::vector<runtime::CompiledGraph> replicas;
      replicas.push_back(runtime::replicate(graph));
      replicas.push_back(runtime::replicate(graph));
      server.add_model("m", std::move(replicas));
      server.start();
      const serve::ModelHandle handle = server.handle("m");

      const int total = producers * requests_per_producer;
      std::vector<double> latencies_us(static_cast<std::size_t>(total), 0.0);
      using clock = std::chrono::steady_clock;
      const auto start = clock::now();
      std::vector<std::thread> threads;
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          std::vector<float> logits(10);
          for (int i = 0; i < requests_per_producer; ++i) {
            const int s = (p + i) % kSamples;
            const auto issued = clock::now();
            server.infer(handle, samples.data() + s * sample_numel,
                         logits.data());
            latencies_us[static_cast<std::size_t>(
                p * requests_per_producer + i)] =
                std::chrono::duration<double, std::micro>(clock::now() -
                                                          issued)
                    .count();
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double seconds =
          std::chrono::duration<double>(clock::now() - start).count();
      server.stop();

      std::sort(latencies_us.begin(), latencies_us.end());
      const auto percentile = [&](double q) {
        const auto index = static_cast<std::size_t>(
            q * static_cast<double>(latencies_us.size() - 1));
        return latencies_us[index];
      };
      const double throughput = static_cast<double>(total) / seconds;
      const auto stats = server.stats("m");
      const double mean_batch =
          static_cast<double>(stats.requests) /
          static_cast<double>(std::max<std::uint64_t>(stats.batches, 1));

      if (!first) out << ",\n";
      first = false;
      out << "    {\"producers\": " << producers
          << ", \"max_batch\": " << max_batch
          << ", \"requests\": " << total
          << ", \"throughput_rps\": " << throughput
          << ", \"p50_us\": " << percentile(0.50)
          << ", \"p99_us\": " << percentile(0.99)
          << ", \"mean_batch\": " << mean_batch
          << ", \"full_flushes\": " << stats.full_flushes
          << ", \"timer_flushes\": " << stats.timer_flushes << "}";
      std::cout << "serve p" << producers << " mb" << max_batch << ": "
                << throughput << " req/s, p50 " << percentile(0.50)
                << " us, p99 " << percentile(0.99) << " us, mean batch "
                << mean_batch << "\n";
    }
  }
  out << "\n  ],\n";

  // Batch-1 intra-op row: a single replica serving a single closed-loop
  // producer at max_batch=1 — the latency-floor configuration where batching
  // cannot help and the only parallelism available is INSIDE the forward.
  // borrow_idle_cores=off runs each forward serially; =on grants the sole
  // flusher the pool, fanning out the wide-N column-split GEMMs. Outputs
  // are verified bit-identical against single-sample oracles either way.
  {
    Tensor oracle[kSamples];
    for (int s = 0; s < kSamples; ++s) {
      Tensor one({1, 3, side, side});
      std::memcpy(one.data(), samples.data() + s * sample_numel,
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
      oracle[s] = graph.forward(one);
    }
    const int batch1_requests = std::max(requests_per_producer * 4, 24);

    out << "  \"batch1_intra_op\": {\"replicas\": 1, \"max_batch\": 1"
        << ", \"requests\": " << batch1_requests << ", \"rows\": [\n";
    bool first_b1 = true;
    for (const bool borrow : {false, true}) {
      serve::ServerOptions server_options;
      server_options.max_batch = 1;
      server_options.max_latency_us = 200;
      server_options.borrow_idle_cores = borrow;
      serve::BatchingServer server(server_options);
      std::vector<runtime::CompiledGraph> replicas;
      replicas.push_back(runtime::replicate(graph));
      replicas.front().set_pooled(false);  // intra-op only via the grant
      server.add_model("m", std::move(replicas));
      server.start();
      const serve::ModelHandle handle = server.handle("m");

      bool bit_identical = true;
      std::vector<double> latencies_us(
          static_cast<std::size_t>(batch1_requests), 0.0);
      std::vector<float> logits(10);
      using clock = std::chrono::steady_clock;
      for (int i = 0; i < batch1_requests; ++i) {
        const int s = i % kSamples;
        const auto issued = clock::now();
        server.infer(handle, samples.data() + s * sample_numel,
                     logits.data());
        latencies_us[static_cast<std::size_t>(i)] =
            std::chrono::duration<double, std::micro>(clock::now() - issued)
                .count();
        if (std::memcmp(logits.data(), oracle[s].data(),
                        logits.size() * sizeof(float)) != 0) {
          bit_identical = false;
        }
      }
      const auto stats = server.stats("m");
      server.stop();

      std::sort(latencies_us.begin(), latencies_us.end());
      const auto percentile = [&](double q) {
        const auto index = static_cast<std::size_t>(
            q * static_cast<double>(latencies_us.size() - 1));
        return latencies_us[index];
      };
      if (!first_b1) out << ",\n";
      first_b1 = false;
      out << "    {\"borrow_idle_cores\": " << (borrow ? "true" : "false")
          << ", \"p50_us\": " << percentile(0.50)
          << ", \"p99_us\": " << percentile(0.99)
          << ", \"borrowed_flushes\": " << stats.borrowed_flushes
          << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
          << "}";
      std::cout << "serve batch1 borrow=" << (borrow ? "on" : "off")
                << ": p50 " << percentile(0.50) << " us, p99 "
                << percentile(0.99) << " us, borrowed "
                << stats.borrowed_flushes << ", bit_identical="
                << bit_identical << "\n";
    }
    out << "\n  ]},\n";
  }

  // Overload row: 2x as many closed-loop producers as the request ring has
  // slots (fewer can never overflow it), a per-request deadline, admission
  // control on (shed_overload: full ring fast-rejects with kOverloaded)
  // versus off (producers block on backpressure until the deadline
  // expires). Goodput counts served-within-deadline requests only; p99 is
  // over those.
  const int overload_producers = 16;
  // Enough requests per producer that the tight ring actually saturates —
  // even in --smoke mode, where the closed-loop configs above run short.
  const int overload_requests = std::max(requests_per_producer, 40);
  const std::int64_t overload_deadline_us = 50'000;
  struct OverloadRow {
    double seconds = 0.0;
    std::uint64_t ok = 0;
    std::vector<double> ok_latencies_us;
    serve::BatchingServer::ShardStats stats;
  };
  const auto run_overload = [&](bool shed) {
    serve::ServerOptions server_options;
    server_options.max_batch = 8;
    server_options.queue_capacity = 8;
    server_options.max_latency_us = 200;
    server_options.shed_overload = shed;
    serve::BatchingServer server(server_options);
    std::vector<runtime::CompiledGraph> replicas;
    replicas.push_back(runtime::replicate(graph));
    replicas.push_back(runtime::replicate(graph));
    server.add_model("m", std::move(replicas));
    server.start();
    const serve::ModelHandle handle = server.handle("m");

    OverloadRow row;
    std::mutex merge_mutex;
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    std::vector<std::thread> threads;
    for (int p = 0; p < overload_producers; ++p) {
      threads.emplace_back([&, p] {
        std::vector<float> logits(10);
        std::vector<double> mine;
        std::uint64_t served = 0;
        for (int i = 0; i < overload_requests; ++i) {
          const int s = (p + i) % kSamples;
          const auto issued = clock::now();
          const serve::ServeStatus status = server.try_infer(
              handle, samples.data() + s * sample_numel, logits.data(),
              overload_deadline_us);
          if (status != serve::ServeStatus::kOk) continue;
          ++served;
          mine.push_back(std::chrono::duration<double, std::micro>(
                             clock::now() - issued)
                             .count());
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        row.ok += served;
        row.ok_latencies_us.insert(row.ok_latencies_us.end(), mine.begin(),
                                   mine.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
    row.seconds = std::chrono::duration<double>(clock::now() - start).count();
    row.stats = server.stats("m");
    server.stop();
    std::sort(row.ok_latencies_us.begin(), row.ok_latencies_us.end());
    return row;
  };

  out << "  \"overload\": {\"producers\": " << overload_producers
      << ", \"queue_capacity\": 8, \"deadline_us\": " << overload_deadline_us
      << ", \"rows\": [\n";
  bool first_row = true;
  for (const bool shed : {false, true}) {
    const OverloadRow row = run_overload(shed);
    const auto ok_percentile = [&](double q) {
      if (row.ok_latencies_us.empty()) return 0.0;
      const auto index = static_cast<std::size_t>(
          q * static_cast<double>(row.ok_latencies_us.size() - 1));
      return row.ok_latencies_us[index];
    };
    const double goodput = static_cast<double>(row.ok) / row.seconds;
    if (!first_row) out << ",\n";
    first_row = false;
    out << "    {\"shed_overload\": " << (shed ? "true" : "false")
        << ", \"goodput_rps\": " << goodput
        << ", \"p99_ok_us\": " << ok_percentile(0.99)
        << ", \"ok\": " << row.ok << ", \"shed\": " << row.stats.shed
        << ", \"timed_out\": " << row.stats.timed_out << "}";
    std::cout << "serve overload shed=" << (shed ? "on" : "off") << ": "
              << goodput << " good req/s, p99(ok) " << ok_percentile(0.99)
              << " us, shed " << row.stats.shed << ", timed out "
              << row.stats.timed_out << "\n";
  }
  out << "\n  ]},\n";

  // Transport row: the same closed loop, but over the loopback wire
  // (serve/transport.h) — each client thread owns a TransportClient
  // connection, so the row prices frame encode + TCP round trip + dispatch
  // on top of the in-process numbers above.
  {
    serve::ServerOptions server_options;
    server_options.max_batch = 8;
    server_options.max_latency_us = 200;
    serve::BatchingServer server(server_options);
    std::vector<runtime::CompiledGraph> replicas;
    replicas.push_back(runtime::replicate(graph));
    replicas.push_back(runtime::replicate(graph));
    server.add_model("m", std::move(replicas));
    server.start();
    serve::ServeTransport transport(server);
    transport.start();

    const int clients = 4;
    const int total = clients * requests_per_producer;
    std::vector<double> latencies_us(static_cast<std::size_t>(total), 0.0);
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::TransportClient client(transport.port());
        std::vector<float> logits;
        for (int i = 0; i < requests_per_producer; ++i) {
          const int s = (c + i) % kSamples;
          const auto issued = clock::now();
          client.infer("m", samples.data() + s * sample_numel,
                       static_cast<std::size_t>(sample_numel), logits);
          latencies_us[static_cast<std::size_t>(
              c * requests_per_producer + i)] =
              std::chrono::duration<double, std::micro>(clock::now() -
                                                        issued)
                  .count();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    const auto stats = transport.stats();
    transport.stop();
    server.stop();

    std::sort(latencies_us.begin(), latencies_us.end());
    const auto percentile = [&](double q) {
      const auto index = static_cast<std::size_t>(
          q * static_cast<double>(latencies_us.size() - 1));
      return latencies_us[index];
    };
    const double throughput = static_cast<double>(total) / seconds;
    out << "  \"transport\": {\"clients\": " << clients
        << ", \"requests\": " << total
        << ", \"throughput_rps\": " << throughput
        << ", \"p50_us\": " << percentile(0.50)
        << ", \"p99_us\": " << percentile(0.99)
        << ", \"responses\": " << stats.responses
        << ", \"transport_errors\": " << stats.transport_errors << "},\n";
    std::cout << "serve transport c" << clients << ": " << throughput
              << " req/s over loopback, p50 " << percentile(0.50)
              << " us, p99 " << percentile(0.99) << " us\n";
  }

  // Autoscale row: replicas follow offered load at runtime — a shard
  // starts at 1 replica, a queue-driven policy (serve/autoscaler.h) scales
  // it up under a producer flood and back down once the flood stops.
  {
    serve::ServerOptions server_options;
    server_options.max_batch = 1;  // one forward per request: easy backlog
    server_options.max_replicas = 3;
    serve::BatchingServer server(server_options);
    std::vector<runtime::CompiledGraph> replicas;
    replicas.push_back(runtime::replicate(graph));
    server.add_model("m", std::move(replicas));
    server.start();

    serve::AutoscalerOptions policy;
    policy.interval_us = 2'000;
    policy.max_replicas = 3;
    policy.up_queue_depth = 2;
    policy.up_ticks = 2;
    policy.down_idle_ticks = 5;
    policy.cooldown_ticks = 1;
    serve::ReplicaAutoscaler autoscaler(server, "m", policy);
    autoscaler.start();

    const auto poll_replicas = [&](int want, bool at_least) {
      for (int i = 0; i < 600; ++i) {
        const int active = server.stats("m").replicas_active;
        if (at_least ? active >= want : active <= want) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return false;
    };

    const serve::ModelHandle handle = server.handle("m");
    std::atomic<bool> load{true};
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    std::vector<std::thread> producers;
    for (int p = 0; p < 6; ++p) {
      producers.emplace_back([&] {
        std::vector<float> logits(10);
        while (load.load()) {
          server.try_infer(handle, samples.data(), logits.data());
        }
      });
    }
    const bool scaled_up = poll_replicas(2, /*at_least=*/true);
    const double up_ms =
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count();
    const int peak = server.stats("m").replicas_active;
    load.store(false);
    for (std::thread& producer : producers) producer.join();
    const bool scaled_down = poll_replicas(1, /*at_least=*/false);
    const auto stats = server.stats("m");
    autoscaler.stop();
    server.stop();

    out << "  \"autoscale\": {\"min_replicas\": 1, \"max_replicas\": 3"
        << ", \"scaled_up\": " << (scaled_up ? "true" : "false")
        << ", \"time_to_scale_up_ms\": " << up_ms
        << ", \"peak_replicas\": " << peak
        << ", \"scaled_back_down\": " << (scaled_down ? "true" : "false")
        << ", \"scale_ups\": " << stats.scale_ups
        << ", \"scale_downs\": " << stats.scale_downs << "},\n";
    std::cout << "serve autoscale: 1 -> " << peak << " replicas in " << up_ms
              << " ms under load, back to " << stats.replicas_active
              << " when idle (" << stats.scale_ups << " ups, "
              << stats.scale_downs << " downs)\n";
  }

  // Mmap row: unique (private-dirty) memory added by loading one more
  // replica from the SAME artifact — copy loading re-packs weights into
  // anonymous heap pages, mmap loading borrows the file's page cache
  // (read-only file pages are never dirty), which is what lets N serving
  // processes share one copy of the weights.
  {
    const auto private_dirty_kb = [] {
      std::ifstream in("/proc/self/smaps_rollup");
      std::string line;
      while (std::getline(in, line)) {
        if (line.rfind("Private_Dirty:", 0) == 0) {
          return std::strtol(line.c_str() + 14, nullptr, 10);
        }
      }
      return -1L;
    };
    const std::string artifact_path = "BENCH_serve_mmap.csqm";
    if (runtime::save_graph(artifact_path, graph)) {
      const long before_mmap = private_dirty_kb();
      runtime::CompiledGraph mapped =
          runtime::load_graph_mmap(artifact_path, /*pooled=*/false);
      const long after_mmap = private_dirty_kb();
      runtime::CompiledGraph copied =
          runtime::load_graph(artifact_path, /*pooled=*/false);
      const long after_copy = private_dirty_kb();
      const long mmap_kb = after_mmap - before_mmap;
      const long copy_kb = after_copy - after_mmap;
      // Both serve the same bits (spot-check, and keeps the loads live
      // across the measurements above).
      Tensor probe = random_tensor({1, 3, side, side}, data_rng);
      const Tensor a = mapped.forward(probe);
      const Tensor b = copied.forward(probe);
      bool identical = true;
      for (std::int64_t i = 0; i < a.numel(); ++i) {
        identical = identical && a[i] == b[i];
      }
      out << "  \"mmap\": {\"copy_load_private_dirty_kb\": " << copy_kb
          << ", \"mmap_load_private_dirty_kb\": " << mmap_kb
          << ", \"unique_rss_ratio\": "
          << (copy_kb > 0 ? static_cast<double>(mmap_kb) /
                                static_cast<double>(copy_kb)
                          : 0.0)
          << ", \"bit_identical\": " << (identical ? "true" : "false")
          << "}\n}\n";
      std::cout << "serve mmap: +" << mmap_kb
                << " KiB private-dirty per mmap replica vs +" << copy_kb
                << " KiB per copy replica ("
                << (identical ? "bit-identical" : "MISMATCH") << ")\n";
      std::remove(artifact_path.c_str());
    } else {
      out << "  \"mmap\": {\"error\": \"save_graph failed\"}\n}\n";
    }
  }
  std::cout << "wrote " << path << "\n";
}

// ------------------------------------------------- train-scaling report --

// Data-parallel training throughput: mean optimizer-step latency of a CSQ
// ResNet (depth 8, width 16) over a fixed 64-row batch at 1/2/4/8 workers.
// The shard grid is fixed (8 shards) regardless of worker count, so every
// row is running the SAME arithmetic — the report also re-checks the
// determinism contract by comparing final parameter bytes against the
// 1-worker run. Speedups are bounded by the machine context above: on a
// single-hardware-thread container every row lands near 1x.
void write_train_scaling_report(const std::string& path, int steps) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "train-scaling report\n";
    return;
  }
  const std::int64_t batch_rows = 64, side = 16;
  Rng data_rng(71);
  Batch batch;
  batch.images = random_tensor({batch_rows, 3, side, side}, data_rng);
  batch.labels.resize(static_cast<std::size_t>(batch_rows));
  for (auto& label : batch.labels) {
    label = static_cast<int>(data_rng.uniform(0.0f, 9.999f));
  }

  const auto build_model = [] {
    Rng rng(72);
    ModelConfig config;
    config.base_width = 16;
    std::vector<CsqWeightSource*> registry;
    Model model = make_resnet_cifar(8, config, csq_weight_factory(&registry),
                                    nullptr, rng);
    for (CsqWeightSource* source : registry) source->set_beta(8.0f);
    return model;
  };

  out << "{\n  " << machine_context_json()
      << ",\n  \"model\": \"resnet8-w16-csq\",\n  \"batch\": " << batch_rows
      << ",\n  \"image\": \"" << side << "x" << side
      << "\",\n  \"shards\": " << kDefaultTrainShards
      << ",\n  \"steps\": " << steps << ",\n  \"workers\": [\n";

  std::vector<float> reference_values;
  double reference_ms = 0.0;
  bool first = true;
  for (const int workers : {1, 2, 4, 8}) {
    Model model = build_model();
    DataParallelConfig dp_config;
    dp_config.workers = workers;
    DataParallelTrainer trainer(model, build_model, dp_config);
    SgdConfig sgd_config;
    sgd_config.learning_rate = 0.05f;
    sgd_config.momentum = 0.9f;
    Sgd optimizer(model.arena(), sgd_config);

    for (int i = 0; i < 2; ++i) trainer.train_step(batch, optimizer);

    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    for (int i = 0; i < steps; ++i) trainer.train_step(batch, optimizer);
    const auto stop = clock::now();
    const double step_ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(steps);

    const ParameterArena& arena = model.arena();
    bool bit_identical = true;
    if (workers == 1) {
      reference_values.assign(arena.values(), arena.values() + arena.size());
      reference_ms = step_ms;
    } else {
      bit_identical =
          std::memcmp(reference_values.data(), arena.values(),
                      reference_values.size() * sizeof(float)) == 0;
    }

    if (!first) out << ",\n";
    first = false;
    out << "    {\"workers\": " << workers
        << ", \"mean_step_ms\": " << step_ms
        << ", \"speedup\": " << reference_ms / step_ms
        << ", \"bit_identical_to_serial\": "
        << (bit_identical ? "true" : "false") << "}";
    std::cout << "train scaling x" << workers << ": " << step_ms
              << " ms/step (x" << reference_ms / step_ms
              << "), bit_identical=" << bit_identical << "\n";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

void register_materialize_benchmarks() {
  for (const MaterializeFamily& family : materialize_families()) {
    for (const bool pooled : {false, true}) {
      const std::string name = std::string("BM_WeightMaterialize/") +
                               family.name + (pooled ? "/pooled" : "/serial");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [make = family.make, pooled](benchmark::State& state) {
            Rng rng(42);
            WeightSourcePtr source = make(rng);
            std::vector<Parameter*> params;
            source->collect_parameters(params);
            const KernelExec prior = default_kernel_exec();
            set_default_kernel_exec(pooled ? KernelExec::pooled
                                           : KernelExec::serial);
            for (auto _ : state) {
              // Defeat the eval dirty-flag: measure the rebuild, not the
              // cache hit.
              params.front()->mark_updated();
              const Tensor& w = source->weight(/*training=*/false);
              benchmark::DoNotOptimize(w.data());
            }
            set_default_kernel_exec(prior);
            state.SetItemsProcessed(state.iterations() *
                                    source->weight_count());
          });
    }
  }
}

}  // namespace
}  // namespace csq

int main(int argc, char** argv) {
  bool list_only = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--benchmark_list_tests", 0) == 0) list_only = true;
    if (arg == "--smoke") {
      smoke = true;
      // Hide the flag from the benchmark-library parser.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  if (smoke) {
    // 1-iteration CI mode: exercise every report writer (bitrot guard)
    // without the statistical runtime, then exit.
    csq::write_gemm_report("BENCH_gemm.json", /*min_ms=*/1.0);
    csq::write_step_report("BENCH_step.json", /*steps=*/1);
    csq::write_materialize_report("BENCH_materialize.json", /*min_ms=*/1.0);
    csq::write_infer_report("BENCH_infer.json", /*iterations=*/1);
    csq::write_serve_report("BENCH_serve.json", /*requests_per_producer=*/4);
    csq::write_train_scaling_report("BENCH_train_scaling.json", /*steps=*/1);
    return 0;
  }
  csq::register_materialize_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The cross-PR tracking reports run after flag parsing so pure listing
  // invocations stay instant; CSQ_SKIP_BENCH_REPORTS=1 (or the older
  // CSQ_SKIP_MATERIALIZE_REPORT=1) opts out.
  const bool skip_reports =
      std::getenv("CSQ_SKIP_BENCH_REPORTS") != nullptr ||
      std::getenv("CSQ_SKIP_MATERIALIZE_REPORT") != nullptr;
  if (!list_only && !skip_reports) {
    csq::write_gemm_report("BENCH_gemm.json", /*min_ms=*/150.0);
    csq::write_step_report("BENCH_step.json", /*steps=*/40);
    csq::write_materialize_report("BENCH_materialize.json");
    csq::write_infer_report("BENCH_infer.json", /*iterations=*/40);
    csq::write_serve_report("BENCH_serve.json",
                            /*requests_per_producer=*/150);
    csq::write_train_scaling_report("BENCH_train_scaling.json", /*steps=*/20);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
