// google-benchmark microbenchmarks for the hot kernels that bound training
// throughput: GEMM (all three transpose forms), im2col convolution, the
// temperature-sigmoid gate, and the CSQ bi-level materialize/backward pair.
//
// In addition to the registered benchmarks, every run emits
// BENCH_materialize.json: serial vs pooled weight materialization for all
// five WeightSource families on a ResNet-20-sized layer, so later PRs can
// track the hot-path trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/csq_weight.h"
#include "core/gate.h"
#include "nn/conv2d.h"
#include "nn/weight_source.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ste_uniform_weight.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/init.h"
#include "tensor/quant_kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace csq {
namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng) {
  Tensor tensor(std::move(shape));
  fill_uniform(tensor, -1.0f, 1.0f, rng);
  return tensor;
}

void BM_GemmNN(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(Trans::no, Trans::yes, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_GemmParallel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_parallel(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n, b.data(),
                  n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmParallel)->Arg(256)->Arg(512);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  Conv2dConfig config;
  config.in_channels = channels;
  config.out_channels = channels;
  Conv2d conv("conv", config, dense_weight_factory(), rng);
  Tensor input = random_tensor({16, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor out = conv.forward(input, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 2 * channels * channels *
                          9 * 16 * 16);
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(5);
  ConvGeometry geom;
  geom.channels = state.range(0);
  geom.height = 16;
  geom.width = 16;
  geom.kernel_h = geom.kernel_w = 3;
  geom.stride = 1;
  geom.pad = 1;
  Tensor image = random_tensor({geom.channels, 16, 16}, rng);
  Tensor col({geom.col_rows(), geom.col_cols()});
  for (auto _ : state) {
    im2col(geom, image.data(), col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(32);

void BM_GateEval(benchmark::State& state) {
  Rng rng(6);
  Tensor logits = random_tensor({state.range(0)}, rng);
  Tensor out(logits.shape());
  for (auto _ : state) {
    const float* in = logits.data();
    float* dst = out.data();
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      dst[i] = gate(in[i], 37.0f);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * logits.numel());
}
BENCHMARK(BM_GateEval)->Arg(4096)->Arg(65536);

void BM_CsqMaterialize(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  Rng rng(7);
  CsqWeightOptions options;
  CsqWeightSource source("layer", {side, side}, side, options, rng);
  source.set_beta(13.0f);
  for (auto _ : state) {
    const Tensor& w = source.weight(/*training=*/false);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * side * side * 8);
}
BENCHMARK(BM_CsqMaterialize)->Arg(32)->Arg(96);

void BM_CsqMaterializeAndBackward(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  Rng rng(8);
  CsqWeightOptions options;
  CsqWeightSource source("layer", {side, side}, side, options, rng);
  source.set_beta(13.0f);
  Tensor grad = random_tensor({side, side}, rng);
  for (auto _ : state) {
    source.weight(/*training=*/true);
    source.backward(grad);
  }
  state.SetItemsProcessed(state.iterations() * side * side * 8);
}
BENCHMARK(BM_CsqMaterializeAndBackward)->Arg(32)->Arg(96);

// ------------------------------------------ weight materialization bench --

struct MaterializeFamily {
  const char* name;
  std::function<WeightSourcePtr(Rng&)> make;
};

// A ResNet-20-sized conv layer: 64x64x3x3 = 36864 weights.
const std::vector<std::int64_t>& bench_shape() {
  static const std::vector<std::int64_t> shape = {64, 64, 3, 3};
  return shape;
}
constexpr std::int64_t kBenchFanIn = 64 * 3 * 3;

std::vector<MaterializeFamily> materialize_families() {
  std::vector<MaterializeFamily> families;
  families.push_back({"csq", [](Rng& rng) {
                        CsqWeightOptions options;
                        auto src = std::make_unique<CsqWeightSource>(
                            "layer", bench_shape(), kBenchFanIn, options, rng);
                        src->set_beta(13.0f);
                        return WeightSourcePtr(std::move(src));
                      }});
  families.push_back({"bsq", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<BsqWeightSource>(
                                "layer", bench_shape(), kBenchFanIn, rng));
                      }});
  families.push_back({"ste_uniform", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<SteUniformWeightSource>(
                                "layer", bench_shape(), kBenchFanIn,
                                /*bits=*/4, rng));
                      }});
  families.push_back({"dorefa", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<DorefaWeightSource>(
                                "layer", bench_shape(), kBenchFanIn,
                                /*bits=*/2, rng));
                      }});
  families.push_back({"lqnets", [](Rng& rng) {
                        return WeightSourcePtr(
                            std::make_unique<LqNetsWeightSource>(
                                "layer", bench_shape(), kBenchFanIn,
                                /*bits=*/2, rng));
                      }});
  return families;
}

// Wall-clock ns per element of an eval-mode materialization, measured until
// at least `min_ms` of accumulated runtime.
double time_materialize_ns_per_element(WeightSource& source,
                                       double min_ms = 120.0) {
  const std::int64_t elements = source.weight_count();
  for (int i = 0; i < 3; ++i) source.weight(/*training=*/false);  // warmup
  using clock = std::chrono::steady_clock;
  double elapsed_ns = 0.0;
  std::int64_t iterations = 0;
  while (elapsed_ns < min_ms * 1e6 && iterations < 2000) {
    const auto start = clock::now();
    const Tensor& w = source.weight(/*training=*/false);
    const auto stop = clock::now();
    benchmark::DoNotOptimize(w.data());
    elapsed_ns += std::chrono::duration<double, std::nano>(stop - start).count();
    ++iterations;
  }
  return elapsed_ns / static_cast<double>(iterations * elements);
}

void write_materialize_report(const std::string& path) {
  const KernelExec prior = default_kernel_exec();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing; skipping the "
              << "materialization report\n";
    return;
  }
  const std::int64_t elements = 64 * 64 * 3 * 3;
  out << "{\n  \"layer\": \"64x64x3x3\",\n  \"elements\": " << elements
      << ",\n  \"threads\": " << global_pool().num_threads()
      << ",\n  \"results\": [\n";
  bool first = true;
  for (const MaterializeFamily& family : materialize_families()) {
    Rng rng(42);
    WeightSourcePtr source = family.make(rng);
    set_default_kernel_exec(KernelExec::serial);
    const double serial_ns = time_materialize_ns_per_element(*source);
    set_default_kernel_exec(KernelExec::pooled);
    const double pooled_ns = time_materialize_ns_per_element(*source);
    if (!first) out << ",\n";
    first = false;
    out << "    {\"family\": \"" << family.name
        << "\", \"serial_ns_per_element\": " << serial_ns
        << ", \"pooled_ns_per_element\": " << pooled_ns
        << ", \"speedup\": " << serial_ns / pooled_ns << "}";
    std::cout << "materialize " << family.name << ": serial " << serial_ns
              << " ns/elem, pooled " << pooled_ns << " ns/elem (x"
              << serial_ns / pooled_ns << ")\n";
  }
  out << "\n  ]\n}\n";
  set_default_kernel_exec(prior);
  std::cout << "wrote " << path << "\n";
}

void register_materialize_benchmarks() {
  for (const MaterializeFamily& family : materialize_families()) {
    for (const bool pooled : {false, true}) {
      const std::string name = std::string("BM_WeightMaterialize/") +
                               family.name + (pooled ? "/pooled" : "/serial");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [make = family.make, pooled](benchmark::State& state) {
            Rng rng(42);
            WeightSourcePtr source = make(rng);
            const KernelExec prior = default_kernel_exec();
            set_default_kernel_exec(pooled ? KernelExec::pooled
                                           : KernelExec::serial);
            for (auto _ : state) {
              const Tensor& w = source->weight(/*training=*/false);
              benchmark::DoNotOptimize(w.data());
            }
            set_default_kernel_exec(prior);
            state.SetItemsProcessed(state.iterations() *
                                    source->weight_count());
          });
    }
  }
}

}  // namespace
}  // namespace csq

int main(int argc, char** argv) {
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_list_tests", 0) == 0) {
      list_only = true;
    }
  }
  csq::register_materialize_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The cross-PR tracking report runs after flag parsing so pure listing
  // invocations stay instant; CSQ_SKIP_MATERIALIZE_REPORT=1 opts out.
  if (!list_only && std::getenv("CSQ_SKIP_MATERIALIZE_REPORT") == nullptr) {
    csq::write_materialize_report("BENCH_materialize.json");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
