// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary reproduces one table or figure of the paper. This
// header provides: workload scaling (CSQ_BENCH_MODE=smoke|default|full),
// dataset construction, one runner per quantization method, and row
// formatting that mirrors the paper's table layout, including the paper's
// published number as a reference column ("the shape, not the absolute
// value, is the reproduction target" — see EXPERIMENTS.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/csq_trainer.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "util/table.h"

namespace csq::bench {

enum class Arch { resnet20, vgg19bn, resnet18, resnet50 };

const char* arch_name(Arch arch);

// Workload scaling by bench mode.
struct Scale {
  // Default mode is sized so the whole suite finishes in ~30 minutes on a
  // multicore CPU while preserving the paper's qualitative shapes; CSQ's
  // temperature annealing needs >= ~20 epochs to organize the bit-level
  // representation, which lower-bounds the CIFAR epoch count.
  std::int64_t cifar_train = 640;
  std::int64_t cifar_test = 320;
  std::int64_t imagenet_train = 1000;
  std::int64_t imagenet_test = 400;
  int cifar_epochs = 22;
  int imagenet_epochs = 8;
  int imagenet_finetune = 3;
  std::int64_t width_resnet20 = 8;
  std::int64_t width_vgg = 4;
  std::int64_t width_resnet18 = 8;
  std::int64_t width_resnet50 = 6;

  static Scale from_mode();
};

// Prints the standard bench banner (mode, threads, workload sizes).
void print_banner(const std::string& title, const Scale& scale);

SyntheticDataset make_cifar(const Scale& scale);
SyntheticDataset make_imagenet(const Scale& scale);

// One table row in the paper's format.
struct Row {
  std::string method;
  std::string w_bits;       // "32", "3", "MP", ...
  double compression = 1.0; // 32 / avg weight bits
  double accuracy = 0.0;    // top-1 %
  std::optional<double> paper_accuracy;  // published number, for shape check
  double seconds = 0.0;     // wall clock of the run
};

void add_row(TextTable& table, const std::string& a_bits, const Row& row);

// Standard header for the tables: A-Bits | Method | W-Bits | Comp | Acc |
// paper Acc | time.
TextTable make_paper_table(const std::string& title);

// ---- method runners ----------------------------------------------------
// All runners train from scratch on `data` and return a filled Row.
// `act_bits` == 0 means full-precision activations (the "32" blocks).

struct RunConfig {
  Arch arch = Arch::resnet20;
  int epochs = 15;
  int act_bits = 0;
  std::int64_t batch_size = 50;
  float learning_rate = 0.1f;
  float weight_decay = 5e-4f;
  int warmup_epochs = 0;
  std::uint64_t seed = 7;
  int num_classes = 10;
  std::int64_t base_width = 8;
};

Model build_model(const RunConfig& config,
                  const WeightSourceFactory& weight_factory,
                  const ActQuantFactory& act_factory, Rng& rng);

Row run_fp(const RunConfig& config, const SyntheticDataset& data);
Row run_ste_uniform(const RunConfig& config, const SyntheticDataset& data,
                    int bits);
Row run_dorefa(const RunConfig& config, const SyntheticDataset& data,
               int bits);
// PACT: learnable-clip activation quantization + uniform STE weights.
Row run_pact(const RunConfig& config, const SyntheticDataset& data, int bits);
Row run_lqnets(const RunConfig& config, const SyntheticDataset& data,
               int bits);

struct BsqOptions {
  float sparsity_lambda = 1e-3f;
  int prune_every = 4;
  float prune_threshold = 0.03f;
};
Row run_bsq(const RunConfig& config, const SyntheticDataset& data,
            const BsqOptions& options = {});

struct CsqRunOptions {
  double target_bits = 3.0;
  double lambda = 0.01;
  int fixed_precision = 0;  // CSQ-Uniform arm when > 0
  int finetune_epochs = 0;
};
// Returns the row plus the full training result (for figure benches).
Row run_csq(const RunConfig& config, const SyntheticDataset& data,
            const CsqRunOptions& options,
            CsqTrainResult* result_out = nullptr);

// Post-training quantization of a pretrained FP model (ZeroQ/ZAQ stand-in
// rows of Table II). `percentile` selects the outlier-clipping calibrator.
Row run_ptq(const RunConfig& config, const SyntheticDataset& data, int bits,
            bool percentile);

}  // namespace csq::bench
