// Reproduces Table II of the paper: VGG19BN on (synthetic) CIFAR-10.
//
// The ZeroQ / ZAQ rows are represented by post-training quantization with
// max-abs and percentile calibration (data-free PTQ family; see DESIGN.md
// substitutions). QUANOS and the non-linear quantizer of [23] are not
// reimplemented; their rows print the paper value only.
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Table II: VGG19BN on synthetic CIFAR-10", scale);

  // VGG19 has five 2x2 max-pools: input must be 32x32.
  SyntheticConfig data_config = SyntheticConfig::cifar_like();
  data_config.train_samples = scale.cifar_train;
  data_config.test_samples = scale.cifar_test;
  data_config.height = 32;
  data_config.width = 32;
  const SyntheticDataset data = make_synthetic(data_config);

  RunConfig config;
  config.arch = Arch::vgg19bn;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_vgg;
  config.num_classes = data.train.num_classes();

  TextTable table = make_paper_table("Table II (paper: Table II)");
  const auto emit = [&](const std::string& a_bits, Row row, double paper) {
    row.paper_accuracy = paper;
    add_row(table, a_bits, row);
    std::cout << "  done: A" << a_bits << " " << row.method << " ("
              << format_float(row.seconds, 1) << "s)\n";
  };
  const auto paper_only = [&](const std::string& a_bits,
                              const std::string& method,
                              const std::string& w_bits, double comp,
                              double paper) {
    table.add_row({a_bits, method + " (not reimpl.)", w_bits,
                   format_float(comp, 2), "-", format_float(paper, 2), "-"});
  };

  // ---- A-Bits = 32 -----------------------------------------------------
  config.act_bits = 0;
  emit("32", run_fp(config, data), 94.22);
  emit("32", run_lqnets(config, data, 3), 93.80);
  emit("32", run_csq(config, data, {.target_bits = 2.0}), 94.10);

  // ---- A-Bits = 8 ------------------------------------------------------
  table.add_rule();
  config.act_bits = 8;
  emit("8", run_ptq(config, data, 4, /*percentile=*/false), 92.69);
  emit("8", run_ptq(config, data, 4, /*percentile=*/true), 93.06);
  emit("8", run_csq(config, data, {.target_bits = 3.0}), 93.90);

  // ---- A-Bits = 4 ------------------------------------------------------
  table.add_rule();
  config.act_bits = 4;
  paper_only("4", "QUANOS", "MP", 7.11, 90.70);
  emit("4", run_csq(config, data, {.target_bits = 3.0}), 93.62);

  // ---- A-Bits = 3 ------------------------------------------------------
  table.add_rule();
  config.act_bits = 3;
  emit("3", run_lqnets(config, data, 3), 93.80);
  paper_only("3", "Non-Linear [23]", "3", 9.14, 93.40);
  emit("3", run_csq(config, data, {.target_bits = 2.0}), 93.58);

  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
