// Reproduces Figure 2 of the paper: effect of the base regularization
// strength lambda on the averaged model precision during training
// (ResNet-20, A=3, target 3 bits).
//
// Shape: for lambda in [1e-3, 1] the trajectory converges to the target;
// lambda <= 1e-4 lacks the strength to move the precision off its start.
// Output: one CSV series per lambda (epoch, avg bits), echoed to stdout and
// written to fig2_lambda.csv for replotting.
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Figure 2: lambda vs precision trajectory (target 3)", scale);
  const SyntheticDataset data = make_cifar(scale);

  RunConfig config;
  config.arch = Arch::resnet20;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_resnet20;
  config.num_classes = data.train.num_classes();
  config.act_bits = 3;

  const std::vector<double> lambdas = {1.0, 0.1, 1e-2, 1e-3, 1e-4, 1e-6};
  std::vector<CsqTrainResult> results;
  for (const double lambda : lambdas) {
    CsqRunOptions options;
    options.target_bits = 3.0;
    options.lambda = lambda;
    CsqTrainResult result;
    const Row row = run_csq(config, data, options, &result);
    results.push_back(std::move(result));
    std::cout << "  lambda=" << lambda
              << ": final avg bits=" << format_float(results.back().average_bits, 2)
              << " acc=" << format_float(row.accuracy, 2) << "% ("
              << format_float(row.seconds, 1) << "s)\n";
  }

  // CSV: epoch, then one column per lambda.
  std::vector<std::string> header = {"epoch"};
  for (const double lambda : lambdas) {
    header.push_back("lambda_" + format_float(lambda, 6));
  }
  CsvWriter csv(std::move(header));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<std::string> cells = {std::to_string(epoch)};
    for (const CsqTrainResult& result : results) {
      cells.push_back(format_float(
          result.precision_trajectory[static_cast<std::size_t>(epoch)], 3));
    }
    csv.add_row(std::move(cells));
  }
  std::cout << "\n--- Figure 2 series (avg precision per epoch) ---\n";
  csv.write(std::cout);
  if (csv.save("fig2_lambda.csv")) {
    std::cout << "(saved to fig2_lambda.csv)\n";
  }

  // Shape summary against the paper's finding.
  std::cout << "\nshape check (target 3.0):\n";
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    const double final_bits = results[i].average_bits;
    const bool converged = std::abs(final_bits - 3.0) < 0.75;
    std::cout << "  lambda=" << lambdas[i] << " -> " << format_float(final_bits, 2)
              << " bits: " << (converged ? "converged to target"
                                         : "failed to reach target")
              << '\n';
  }
  return 0;
}
