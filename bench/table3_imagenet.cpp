// Reproduces Table III of the paper: ResNet-18 and ResNet-50 on the
// synthetic ImageNet stand-in, including the search-based baselines:
//   HAWQ-lite = perturbation sensitivity + greedy budgeted assignment,
//   HAQ-lite  = budget-constrained evolutionary search,
// both followed by mixed-precision QAT retraining at the found scheme.
// CSQ rows use the paper's ImageNet recipe: joint phase + finetune phase.
#include <iostream>
#include <unordered_map>

#include "harness.h"
#include "opt/trainer.h"
#include "quant/act_quant.h"
#include "quant/ste_uniform_weight.h"
#include "search/assignment.h"
#include "search/evo_search.h"
#include "search/sensitivity.h"
#include "util/timer.h"

namespace csq::bench {
namespace {

// Pretrains an FP model, profiles sensitivity, assigns bits under the
// budget (greedy for HAWQ-lite, evolutionary for HAQ-lite), then retrains
// from scratch with per-layer STE at the found scheme.
Row run_search_baseline(const RunConfig& config, const SyntheticDataset& data,
                        double target_bits, bool evolutionary) {
  Timer timer;
  Rng rng(config.seed);
  Model pretrained = build_model(config, dense_weight_factory(), nullptr,
                                 rng);
  TrainConfig pretrain_config;
  pretrain_config.epochs = config.epochs;
  pretrain_config.batch_size = config.batch_size;
  pretrain_config.learning_rate = config.learning_rate;
  pretrain_config.weight_decay = config.weight_decay;
  fit(pretrained, data.train, data.test, pretrain_config);

  const SensitivityProfile profile =
      profile_sensitivity(pretrained, data.train, 8, 200);

  std::vector<int> bits;
  if (evolutionary) {
    EvoSearchConfig evo_config;
    evo_config.population = 10;
    evo_config.generations = 5;
    evo_config.target_bits = target_bits;
    evo_config.fitness_samples = 250;
    const EvoSearchResult result =
        evolutionary_search(pretrained, data.test, profile, evo_config);
    bits = result.best_bits;
  } else {
    bits = assign_bits_greedy(profile, target_bits).bits;
  }

  // Retrain at the found scheme (per-layer STE QAT).
  std::unordered_map<std::string, int> bits_by_layer;
  for (std::size_t l = 0; l < bits.size(); ++l) {
    bits_by_layer.emplace(profile.layer_names[l], bits[l]);
  }
  Rng retrain_rng(config.seed + 1);
  Model retrained = build_model(
      config, ste_mixed_weight_factory(std::move(bits_by_layer), 8),
      config.act_bits > 0 ? fixed_act_quant_factory(config.act_bits)
                          : ActQuantFactory{},
      retrain_rng);
  const FitResult fit_result =
      fit(retrained, data.train, data.test, pretrain_config);

  Row row;
  row.method = evolutionary ? "HAQ-lite (evo)" : "HAWQ-lite (sens.)";
  row.w_bits = "MP";
  row.compression = retrained.compression_ratio();
  row.accuracy = fit_result.test_accuracy;
  row.seconds = timer.seconds();
  return row;
}

}  // namespace
}  // namespace csq::bench

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Table III: ResNet-18 / ResNet-50 on synthetic ImageNet",
               scale);
  const SyntheticDataset data = make_imagenet(scale);

  const auto run_column = [&](Arch arch, std::int64_t width,
                              TextTable& table) {
    RunConfig config;
    config.arch = arch;
    config.epochs = scale.imagenet_epochs;
    config.base_width = width;
    config.num_classes = data.train.num_classes();
    config.weight_decay = 1e-4f;  // paper: ImageNet weight decay
    config.warmup_epochs = std::min(2, scale.imagenet_epochs - 1);

    const auto emit = [&](Row row, double paper) {
      row.paper_accuracy = paper;
      add_row(table, config.act_bits > 0 ? std::to_string(config.act_bits)
                                         : "32",
              row);
      std::cout << "  done: " << arch_name(arch) << " " << row.method << " ("
                << format_float(row.seconds, 1) << "s)\n";
    };

    CsqRunOptions csq_t2;
    csq_t2.target_bits = 2.0;
    csq_t2.finetune_epochs = scale.imagenet_finetune;
    CsqRunOptions csq_t3;
    csq_t3.target_bits = 3.0;
    csq_t3.finetune_epochs = scale.imagenet_finetune;

    if (arch == Arch::resnet18) {
      config.act_bits = 0;
      emit(run_fp(config, data), 69.76);
      config.act_bits = 8;
      emit(run_dorefa(config, data, 5), 68.40);
      emit(run_pact(config, data, 4), 69.20);
      emit(run_lqnets(config, data, 3), 69.30);
      emit(run_search_baseline(config, data, 4.0, /*evolutionary=*/false),
           68.45);  // HAWQ-V3 row
      config.act_bits = 4;
      emit(run_csq(config, data, csq_t2), 69.11);
      config.act_bits = 8;
      emit(run_csq(config, data, csq_t3), 69.73);
    } else {
      config.act_bits = 0;
      emit(run_fp(config, data), 76.13);
      config.act_bits = 8;
      emit(run_lqnets(config, data, 3), 74.20);
      emit(run_search_baseline(config, data, 3.0, /*evolutionary=*/true),
           75.30);  // HAQ row
      emit(run_bsq(config, data), 75.16);
      emit(run_csq(config, data, csq_t2), 75.25);
      emit(run_csq(config, data, csq_t3), 75.47);
    }
  };

  TextTable r18_table = make_paper_table("Table III — ResNet-18 column");
  run_column(Arch::resnet18, scale.width_resnet18, r18_table);
  std::cout << '\n';
  r18_table.print(std::cout);

  TextTable r50_table = make_paper_table("Table III — ResNet-50 column");
  run_column(Arch::resnet50, scale.width_resnet50, r50_table);
  std::cout << '\n';
  r50_table.print(std::cout);
  return 0;
}
