#include "harness.h"

#include <iostream>

#include "opt/trainer.h"
#include "quant/act_quant.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ptq.h"
#include "quant/ste_uniform_weight.h"
#include "util/check.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csq::bench {

const char* arch_name(Arch arch) {
  switch (arch) {
    case Arch::resnet20:
      return "resnet20";
    case Arch::vgg19bn:
      return "vgg19bn";
    case Arch::resnet18:
      return "resnet18";
    case Arch::resnet50:
      return "resnet50";
  }
  return "?";
}

Scale Scale::from_mode() {
  Scale scale;
  scale.imagenet_epochs = 12;  // joint phase; CSQ annealing needs >= ~12
  scale.imagenet_finetune = 4;
  switch (bench_mode()) {
    case BenchMode::smoke:
      scale.cifar_train = 300;
      scale.cifar_test = 200;
      scale.imagenet_train = 400;
      scale.imagenet_test = 200;
      scale.cifar_epochs = 5;
      scale.imagenet_epochs = 4;
      scale.imagenet_finetune = 2;
      scale.width_resnet20 = 4;
      scale.width_vgg = 4;
      scale.width_resnet18 = 4;
      scale.width_resnet50 = 4;
      break;
    case BenchMode::normal:
      break;  // defaults above
    case BenchMode::full:
      scale.cifar_train = 1600;
      scale.cifar_test = 600;
      scale.imagenet_train = 3000;
      scale.imagenet_test = 800;
      scale.cifar_epochs = 40;
      scale.imagenet_epochs = 25;
      scale.imagenet_finetune = 10;
      scale.width_resnet20 = 12;
      scale.width_vgg = 8;
      scale.width_resnet18 = 12;
      scale.width_resnet50 = 8;
      break;
  }
  // Per-axis overrides for targeted reruns, e.g.
  // CSQ_IMAGENET_EPOCHS=16 ./bench/table3_imagenet
  scale.cifar_epochs = env_int("CSQ_CIFAR_EPOCHS", scale.cifar_epochs);
  scale.imagenet_epochs =
      env_int("CSQ_IMAGENET_EPOCHS", scale.imagenet_epochs);
  scale.imagenet_finetune =
      env_int("CSQ_IMAGENET_FINETUNE", scale.imagenet_finetune);
  return scale;
}

void print_banner(const std::string& title, const Scale& scale) {
  std::cout << "### " << title << '\n'
            << "mode=" << bench_mode_name(bench_mode())
            << " threads=" << global_pool().num_threads()
            << " cifar=" << scale.cifar_train << "/" << scale.cifar_test
            << " imagenet=" << scale.imagenet_train << "/"
            << scale.imagenet_test << " epochs=" << scale.cifar_epochs << "/"
            << scale.imagenet_epochs << "+" << scale.imagenet_finetune
            << "\n\n";
  set_log_level(LogLevel::warn);  // silence per-epoch chatter in benches
}

SyntheticDataset make_cifar(const Scale& scale) {
  SyntheticConfig config = SyntheticConfig::cifar_like();
  config.train_samples = scale.cifar_train;
  config.test_samples = scale.cifar_test;
  return make_synthetic(config);
}

SyntheticDataset make_imagenet(const Scale& scale) {
  SyntheticConfig config = SyntheticConfig::imagenet_like();
  config.train_samples = scale.imagenet_train;
  config.test_samples = scale.imagenet_test;
  return make_synthetic(config);
}

TextTable make_paper_table(const std::string& title) {
  TextTable table(title);
  table.set_header({"A-Bits", "Method", "W-Bits", "Comp(x)", "Acc(%)",
                    "paper Acc(%)", "time(s)"});
  return table;
}

void add_row(TextTable& table, const std::string& a_bits, const Row& row) {
  table.add_row({a_bits, row.method, row.w_bits,
                 format_float(row.compression, 2),
                 format_float(row.accuracy, 2),
                 row.paper_accuracy ? format_float(*row.paper_accuracy, 2)
                                    : std::string("-"),
                 format_float(row.seconds, 1)});
}

Model build_model(const RunConfig& config,
                  const WeightSourceFactory& weight_factory,
                  const ActQuantFactory& act_factory, Rng& rng) {
  ModelConfig model_config;
  model_config.num_classes = config.num_classes;
  model_config.base_width = config.base_width;
  switch (config.arch) {
    case Arch::resnet20:
      return make_resnet20(model_config, weight_factory, act_factory, rng);
    case Arch::vgg19bn:
      return make_vgg19bn(model_config, weight_factory, act_factory, rng);
    case Arch::resnet18:
      return make_resnet18(model_config, weight_factory, act_factory, rng);
    case Arch::resnet50:
      return make_resnet50(model_config, weight_factory, act_factory, rng);
  }
  CSQ_UNREACHABLE("unknown arch");
}

namespace {

TrainConfig train_config_of(const RunConfig& config) {
  TrainConfig train;
  train.epochs = config.epochs;
  train.batch_size = config.batch_size;
  train.learning_rate = config.learning_rate;
  train.weight_decay = config.weight_decay;
  train.warmup_epochs = config.warmup_epochs;
  train.seed = config.seed;
  return train;
}

ActQuantFactory act_factory_of(const RunConfig& config) {
  if (config.act_bits <= 0) return nullptr;
  return fixed_act_quant_factory(config.act_bits);
}

// Trains with `fit` and fills the common row fields.
Row run_generic(const RunConfig& config, const SyntheticDataset& data,
                const WeightSourceFactory& weight_factory,
                const ActQuantFactory& act_factory, std::string method,
                std::string w_bits, const FitHooks& hooks = {}) {
  Timer timer;
  Rng rng(config.seed);
  Model model = build_model(config, weight_factory, act_factory, rng);
  const FitResult fit_result =
      fit(model, data.train, data.test, train_config_of(config), hooks);
  Row row;
  row.method = std::move(method);
  row.w_bits = std::move(w_bits);
  row.compression = model.compression_ratio();
  row.accuracy = fit_result.test_accuracy;
  row.seconds = timer.seconds();
  return row;
}

}  // namespace

Row run_fp(const RunConfig& config, const SyntheticDataset& data) {
  return run_generic(config, data, dense_weight_factory(),
                     act_factory_of(config), "FP", "32");
}

Row run_ste_uniform(const RunConfig& config, const SyntheticDataset& data,
                    int bits) {
  return run_generic(config, data, ste_uniform_weight_factory(bits),
                     act_factory_of(config), "STE-Uniform",
                     std::to_string(bits));
}

Row run_dorefa(const RunConfig& config, const SyntheticDataset& data,
               int bits) {
  return run_generic(config, data, dorefa_weight_factory(bits),
                     act_factory_of(config), "DoReFa", std::to_string(bits));
}

Row run_pact(const RunConfig& config, const SyntheticDataset& data,
             int bits) {
  // PACT quantizes activations with a learnable clip; weights use the
  // uniform STE scheme at the same precision (as in the original paper's
  // W/A co-quantized setting).
  ActQuantFactory act = config.act_bits > 0
                            ? pact_act_quant_factory(config.act_bits)
                            : nullptr;
  return run_generic(config, data, ste_uniform_weight_factory(bits), act,
                     "PACT", std::to_string(bits));
}

Row run_lqnets(const RunConfig& config, const SyntheticDataset& data,
               int bits) {
  return run_generic(config, data, lqnets_weight_factory(bits),
                     act_factory_of(config), "LQ-Nets", std::to_string(bits));
}

Row run_bsq(const RunConfig& config, const SyntheticDataset& data,
            const BsqOptions& options) {
  Timer timer;
  Rng rng(config.seed);
  std::vector<BsqWeightSource*> sources;
  Model model = build_model(config, bsq_weight_factory(&sources),
                            act_factory_of(config), rng);

  FitHooks hooks;
  hooks.before_step = [&]() {
    for (BsqWeightSource* source : sources) {
      source->add_sparsity_regularizer(options.sparsity_lambda);
    }
  };
  hooks.on_epoch_end = [&](int epoch, float, float) {
    if ((epoch + 1) % options.prune_every == 0) {
      for (BsqWeightSource* source : sources) {
        source->prune_bits(options.prune_threshold);
      }
    }
  };
  const FitResult fit_result =
      fit(model, data.train, data.test, train_config_of(config), hooks);

  Row row;
  row.method = "BSQ";
  row.w_bits = "MP";
  row.compression = model.compression_ratio();
  row.accuracy = fit_result.test_accuracy;
  row.seconds = timer.seconds();
  return row;
}

Row run_csq(const RunConfig& config, const SyntheticDataset& data,
            const CsqRunOptions& options, CsqTrainResult* result_out) {
  Timer timer;
  Rng rng(config.seed);
  std::vector<CsqWeightSource*> sources;
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = options.fixed_precision;
  Model model =
      build_model(config, csq_weight_factory(&sources, weight_options),
                  act_factory_of(config), rng);

  CsqTrainConfig csq_config;
  csq_config.train = train_config_of(config);
  csq_config.lambda = options.lambda;
  csq_config.target_bits = options.target_bits;
  csq_config.finetune_epochs = options.finetune_epochs;
  const CsqTrainResult result =
      train_csq(model, sources, data.train, data.test, csq_config);
  if (result_out != nullptr) *result_out = result;

  Row row;
  row.method = options.fixed_precision > 0
                   ? "CSQ-Uniform"
                   : "CSQ T" + std::to_string(
                                   static_cast<int>(options.target_bits));
  row.w_bits = options.fixed_precision > 0
                   ? std::to_string(options.fixed_precision)
                   : "MP";
  row.compression = result.compression;
  row.accuracy = result.test_accuracy;
  row.seconds = timer.seconds();
  return row;
}

Row run_ptq(const RunConfig& config, const SyntheticDataset& data, int bits,
            bool percentile) {
  Timer timer;
  Rng rng(config.seed);
  Model model = build_model(config, dense_weight_factory(),
                            act_factory_of(config), rng);
  fit(model, data.train, data.test, train_config_of(config));
  quantize_dense_weights(model, bits,
                         percentile ? PtqCalibration::percentile
                                    : PtqCalibration::max_abs);
  Row row;
  row.method = percentile ? "PTQ-pct (ZAQ-like)" : "PTQ-max (ZeroQ-like)";
  row.w_bits = std::to_string(bits);
  row.compression = 32.0 / bits;
  row.accuracy = evaluate_accuracy(model, data.test);
  row.seconds = timer.seconds();
  return row;
}

}  // namespace csq::bench
