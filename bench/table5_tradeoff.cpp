// Reproduces Table V of the paper: accuracy-model size tradeoff of CSQ
// under target precisions 1..5 bits (ResNet-20, A=3), plus the FP
// reference. Shape: achieved average precision tracks the target;
// compression = 32 / avg bits; accuracy degrades gracefully as the budget
// tightens and collapses only at the lowest budget.
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Table V: accuracy-size tradeoff under target bits", scale);
  const SyntheticDataset data = make_cifar(scale);

  RunConfig config;
  config.arch = Arch::resnet20;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_resnet20;
  config.num_classes = data.train.num_classes();
  config.act_bits = 3;

  TextTable table("Table V (paper: Table V)");
  table.set_header({"Target", "Ave. prec.", "Comp(x)", "CSQ acc(%)",
                    "paper prec.", "paper acc(%)", "time(s)"});

  struct PaperRef {
    double precision, accuracy;
  };
  const std::vector<std::pair<int, PaperRef>> targets = {
      {1, {1.00, 90.33}}, {2, {1.97, 91.70}}, {3, {3.05, 92.42}},
      {4, {4.00, 92.51}}, {5, {5.05, 92.61}},
  };

  for (const auto& [target, paper] : targets) {
    CsqRunOptions options;
    options.target_bits = target;
    CsqTrainResult result;
    const Row row = run_csq(config, data, options, &result);
    table.add_row({std::to_string(target) + "-bit",
                   format_float(result.average_bits, 2),
                   format_float(result.compression, 2),
                   format_float(row.accuracy, 2),
                   format_float(paper.precision, 2),
                   format_float(paper.accuracy, 2),
                   format_float(row.seconds, 1)});
    std::cout << "  done: target " << target << "\n";
  }

  // FP reference column of the paper's Table V.
  config.act_bits = 0;
  const Row fp = run_fp(config, data);
  table.add_rule();
  table.add_row({"FP", "32.00", "1.00", format_float(fp.accuracy, 2), "32.00",
                 "92.62", format_float(fp.seconds, 1)});

  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
