// Reproduces Figure 3 of the paper: averaged model precision during CSQ
// training under different target precisions (5/4/3/2 bits; ResNet-20,
// A=3, lambda=0.01).
//
// Shape: each trajectory decays from the 8-bit start and settles near its
// own target, held stable by the budget-aware regularizer.
#include <iostream>

#include "harness.h"

int main() {
  using namespace csq;
  using namespace csq::bench;

  const Scale scale = Scale::from_mode();
  print_banner("Figure 3: target precision vs trajectory", scale);
  const SyntheticDataset data = make_cifar(scale);

  RunConfig config;
  config.arch = Arch::resnet20;
  config.epochs = scale.cifar_epochs;
  config.base_width = scale.width_resnet20;
  config.num_classes = data.train.num_classes();
  config.act_bits = 3;

  const std::vector<int> targets = {5, 4, 3, 2};
  std::vector<CsqTrainResult> results;
  for (const int target : targets) {
    CsqRunOptions options;
    options.target_bits = target;
    CsqTrainResult result;
    const Row row = run_csq(config, data, options, &result);
    results.push_back(std::move(result));
    std::cout << "  target " << target
              << ": final avg=" << format_float(results.back().average_bits, 2)
              << " acc=" << format_float(row.accuracy, 2) << "% ("
              << format_float(row.seconds, 1) << "s)\n";
  }

  std::vector<std::string> header = {"epoch"};
  for (const int target : targets) {
    header.push_back("target_" + std::to_string(target) + "bit");
  }
  CsvWriter csv(std::move(header));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<std::string> cells = {std::to_string(epoch)};
    for (const CsqTrainResult& result : results) {
      cells.push_back(format_float(
          result.precision_trajectory[static_cast<std::size_t>(epoch)], 3));
    }
    csv.add_row(std::move(cells));
  }
  std::cout << "\n--- Figure 3 series (avg precision per epoch) ---\n";
  csv.write(std::cout);
  if (csv.save("fig3_targets.csv")) {
    std::cout << "(saved to fig3_targets.csv)\n";
  }

  std::cout << "\nshape check:\n";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    std::cout << "  target " << targets[i] << " -> settled at "
              << format_float(results[i].average_bits, 2) << " bits (delta "
              << format_float(results[i].average_bits - targets[i], 2)
              << ")\n";
  }
  return 0;
}
