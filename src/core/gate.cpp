#include "core/gate.h"

#include "util/check.h"

namespace csq {

TemperatureSchedule::TemperatureSchedule(float beta0, float beta_max,
                                         int total_epochs)
    : beta0_(beta0), beta_max_(beta_max), total_epochs_(total_epochs) {
  CSQ_CHECK(beta0 > 0.0f) << "temperature schedule: beta0 must be positive";
  CSQ_CHECK(beta_max >= beta0) << "temperature schedule: beta_max < beta0";
  CSQ_CHECK(total_epochs >= 1) << "temperature schedule: bad epoch count";
}

float TemperatureSchedule::at_epoch(int epoch) const {
  CSQ_CHECK(epoch >= 0) << "temperature schedule: negative epoch";
  if (total_epochs_ == 1 || epoch >= total_epochs_ - 1) {
    return beta0_ * beta_max_;
  }
  const float progress = static_cast<float>(epoch) /
                         static_cast<float>(total_epochs_ - 1);
  return beta0_ * std::pow(beta_max_, progress);
}

}  // namespace csq
