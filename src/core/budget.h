// Budget-aware model-size regularization (paper Section III-B).
//
// The regularizer strength on each layer's bit mask is lambda * DeltaS,
// where DeltaS = (element-weighted average precision of the current model)
// minus the target precision. Positive DeltaS (model above budget) prunes
// bits; negative DeltaS (below budget) *grows* precision — the "growing"
// in the paper's title.
#pragma once

#include <string>
#include <vector>

#include "core/csq_weight.h"

namespace csq {

// Element-weighted average precision sum_l n_l |W_l| / sum_l |W_l| with
// n_l = sum_b I(m_B >= 0) — the paper's precision accounting.
double average_precision(const std::vector<CsqWeightSource*>& sources);

// DeltaS = average_precision - target_bits.
double budget_delta(const std::vector<CsqWeightSource*>& sources,
                    double target_bits);

// Adds lambda * DeltaS * dR/dm_B to every source's mask gradient.
void apply_budget_regularizer(const std::vector<CsqWeightSource*>& sources,
                              double lambda, double target_bits);

// Per-layer precision snapshot (name, bits) — the paper's Figure 4 data.
struct LayerPrecision {
  std::string name;
  int bits = 0;
  std::int64_t weight_count = 0;
};
std::vector<LayerPrecision> layer_precisions(
    const std::vector<std::pair<std::string, CsqWeightSource*>>& named);

}  // namespace csq
