#include "core/csq_weight.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

CsqWeightSource::CsqWeightSource(const std::string& name,
                                 std::vector<std::int64_t> shape,
                                 std::int64_t fan_in,
                                 const CsqWeightOptions& options, Rng& rng)
    : shape_(shape), fixed_precision_(options.fixed_precision) {
  CSQ_CHECK(fixed_precision_ >= 0 && fixed_precision_ <= kBits)
      << "csq: fixed precision out of range";
  element_count_ = shape_numel(shape_);
  quantized_ = Tensor(shape_);
  engine_ = BitPlaneEngine(element_count_, kBits, /*cache_gates=*/true);

  // Train-from-scratch initialization: draw a He-initialized dense weight
  // and decompose it onto the 8-bit grid; logits start at a soft +/- kappa
  // so beta0 = 1 gives a smooth landscape (paper Section III-A trains all
  // logits from real values, any magnitude permitted).
  Tensor dense(shape_);
  fill_he_normal(dense, fan_in, rng);
  const float init_scale = max_abs_scale(dense);
  scale_ = Parameter(name + ".s", Tensor::from_data({1}, {init_scale}),
                     /*apply_weight_decay=*/false);

  for (int b = 0; b < kBits; ++b) {
    pos_logits_[static_cast<std::size_t>(b)] =
        Parameter(name + ".mp" + std::to_string(b), Tensor(shape_),
                  /*apply_weight_decay=*/false);
    neg_logits_[static_cast<std::size_t>(b)] =
        Parameter(name + ".mn" + std::to_string(b), Tensor(shape_),
                  /*apply_weight_decay=*/false);
  }

  const float* w = dense.data();
  for (std::int64_t i = 0; i < element_count_; ++i) {
    std::int64_t code = static_cast<std::int64_t>(
        std::lround(std::fabs(w[i]) / init_scale * kDenominator));
    code = std::min<std::int64_t>(code, 255);
    const bool positive = w[i] >= 0.0f;
    for (int b = 0; b < kBits; ++b) {
      const bool bit_set = ((code >> b) & 1) != 0;
      // Jitter breaks the symmetry between elements sharing a bit pattern.
      const float kappa = options.init_logit * rng.uniform(0.75f, 1.25f);
      float& mp = pos_logits_[static_cast<std::size_t>(b)].value[i];
      float& mn = neg_logits_[static_cast<std::size_t>(b)].value[i];
      mp = (positive && bit_set) ? kappa : -kappa;
      mn = (!positive && bit_set) ? kappa : -kappa;
    }
  }

  // Bit mask: all bits start selected (the budget regularizer grows or
  // prunes from there). In fixed-precision mode the mask is a constant
  // selecting the *top* n bits — on the shared 8-bit grid this spans the
  // same dynamic range as the paper's n-bit Eq. (3) form (denominator
  // 2^n - 1 with bits 0..n-1), up to a scale absorbed by s.
  Tensor mask_init({kBits});
  for (int b = 0; b < kBits; ++b) {
    if (fixed_precision_ > 0) {
      mask_init[b] = b >= kBits - fixed_precision_ ? 1.0f : -1.0f;
    } else {
      mask_init[b] = options.mask_init;
    }
  }
  mask_logits_ = Parameter(name + ".mB", std::move(mask_init),
                           /*apply_weight_decay=*/false);
  if (fixed_precision_ > 0) {
    for (int b = 0; b < kBits; ++b) {
      frozen_mask_[static_cast<std::size_t>(b)] =
          b >= kBits - fixed_precision_;
    }
  }
}

void CsqWeightSource::set_beta(float beta) {
  CSQ_CHECK(beta > 0.0f) << "csq: beta must be positive";
  // A temperature change between a training materialization and its
  // backward would make the cached gate values stale (they were evaluated at
  // the old beta); invalidate so backward() asserts instead of silently
  // mixing temperatures. The stamp revision also invalidates the eval-mode
  // weight cache.
  if (beta != beta_) {
    cache_valid_ = false;
    ++internal_rev_;
  }
  beta_ = beta;
}

std::uint64_t CsqWeightSource::state_stamp() const {
  std::uint64_t stamp =
      internal_rev_ + scale_.version + mask_logits_.version;
  for (int b = 0; b < kBits; ++b) {
    stamp += pos_logits_[static_cast<std::size_t>(b)].version +
             neg_logits_[static_cast<std::size_t>(b)].version;
  }
  return stamp;
}

bool CsqWeightSource::mask_bit_active(int bit) const {
  if (mode_ != CsqMode::joint || fixed_precision_ > 0) {
    return frozen_mask_[static_cast<std::size_t>(bit)];
  }
  return mask_logits_.value[bit] >= 0.0f;
}

float CsqWeightSource::soft_mask_value(int bit) const {
  if (fixed_precision_ > 0 || mode_ != CsqMode::joint) {
    // Frozen hard mask (Eq. 4) — constant 0/1, no gradient.
    return frozen_mask_[static_cast<std::size_t>(bit)] ? 1.0f : 0.0f;
  }
  return gate(mask_logits_.value[bit], beta_);
}

int CsqWeightSource::layer_precision() const {
  int precision = 0;
  for (int b = 0; b < kBits; ++b) precision += mask_bit_active(b) ? 1 : 0;
  return precision;
}

void CsqWeightSource::materialize_soft(bool cache_for_backward) {
  const float factor = scale_.value[0] / kDenominator;

  // Stage the engine planes (Eq. 5): one gated pair per participating bit.
  // With a trainable mask every bit participates (its gradient needs the
  // gates even at tiny mask values); with a frozen mask only active bits are
  // evaluated — inactive ones contribute neither value nor gradient.
  engine_.clear_planes();
  staged_planes_ = 0;
  for (int b = 0; b < kBits; ++b) {
    const float mask_value = soft_mask_value(b);
    if (!mask_trains() && mask_value == 0.0f) continue;
    plane_bits_[static_cast<std::size_t>(staged_planes_)] = b;
    plane_mask_values_[static_cast<std::size_t>(staged_planes_)] = mask_value;
    engine_.add_plane(pos_logits_[static_cast<std::size_t>(b)].value.data(),
                      neg_logits_[static_cast<std::size_t>(b)].value.data(),
                      factor * static_cast<float>(1 << b) * mask_value,
                      1 << b);
    ++staged_planes_;
  }
  engine_.materialize(GateKind::sigmoid, beta_, quantized_.data(),
                      cache_for_backward);
  cache_valid_ = cache_for_backward;
}

void CsqWeightSource::stage_hard_planes() const {
  engine_.clear_planes();
  for (int b = 0; b < kBits; ++b) {
    if (!frozen_mask_[static_cast<std::size_t>(b)]) continue;
    engine_.add_plane(pos_logits_[static_cast<std::size_t>(b)].value.data(),
                      neg_logits_[static_cast<std::size_t>(b)].value.data(),
                      /*coeff=*/0.0f, 1 << b);
  }
}

void CsqWeightSource::materialize_hard() {
  // Integer-first accumulation guarantees the materialized weight is
  // exactly s/255 * code (the "exact quantized model" the paper claims).
  stage_hard_planes();
  engine_.materialize_hard(scale_.value[0] / kDenominator, quantized_.data(),
                           /*codes=*/nullptr);
  staged_planes_ = 0;
  cache_valid_ = false;
}

const Tensor& CsqWeightSource::weight(bool training) {
  // Dirty-flag: soft and hard materializations are pure functions of the
  // parameters, beta and mode, so an unchanged stamp means quantized_
  // already holds the right values. Training-mode calls additionally
  // require the backward gate cache to be live (cache_valid_) — this is
  // what lets the backward pass's weight(true) reuse the forward pass's
  // materialization instead of rebuilding identical weights.
  const std::uint64_t stamp = state_stamp();
  if (eval_cache_fresh(stamp) && (!training || cache_valid_)) {
    return quantized_;
  }
  if (mode_ == CsqMode::finalized) {
    materialize_hard();
  } else {
    materialize_soft(/*cache_for_backward=*/training);
  }
  note_materialized(stamp);
  return quantized_;
}

void CsqWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(mode_ != CsqMode::finalized)
      << "csq: backward on a finalized source";
  CSQ_CHECK(cache_valid_)
      << "csq: backward without a matching training materialization (the "
         "gate cache is stale after set_beta/freeze_mask/finalize or an "
         "eval-mode forward)";
  CSQ_CHECK(grad_weight.same_shape(quantized_)) << "csq: grad shape mismatch";

  const float s = scale_.value[0];
  const float factor = s / kDenominator;
  const float* g = grad_weight.data();

  // ds: dW/ds = W / s (W is linear in s).
  if (s != 0.0f) {
    scale_.grad[0] +=
        static_cast<float>(engine_.dot(g, quantized_.data()) / s);
  }

  // dW_i/dm_p = factor * 2^b * mask * f'(m_p);   f'(m) = beta*f*(1-f).
  // The mask needs the raw per-plane reduction sum_i g_i*(f(m_p)-f(m_n)).
  for (int p = 0; p < staged_planes_; ++p) {
    const int b = plane_bits_[static_cast<std::size_t>(p)];
    engine_.set_plane_grads(
        p, pos_logits_[static_cast<std::size_t>(b)].grad.data(),
        neg_logits_[static_cast<std::size_t>(b)].grad.data(),
        /*want_diff_sum=*/mask_trains());
  }
  engine_.backward(GateKind::sigmoid, beta_, g);

  if (mask_trains()) {
    for (int p = 0; p < staged_planes_; ++p) {
      const int b = plane_bits_[static_cast<std::size_t>(p)];
      const float bit_scale = factor * static_cast<float>(1 << b);
      // dW_i/dm_B = factor * 2^b * (f(m_p)-f(m_n)) * f'(m_B).
      const float mask_derivative = gate_derivative_from_value(
          plane_mask_values_[static_cast<std::size_t>(p)], beta_);
      mask_logits_.grad[b] += static_cast<float>(engine_.diff_sum(p)) *
                              bit_scale * mask_derivative;
    }
  }
  cache_valid_ = false;
}

void CsqWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&scale_);
  for (int b = 0; b < kBits; ++b) {
    out.push_back(&pos_logits_[static_cast<std::size_t>(b)]);
    out.push_back(&neg_logits_[static_cast<std::size_t>(b)]);
  }
  out.push_back(&mask_logits_);
}

void CsqWeightSource::add_budget_regularizer_gradient(float strength) {
  if (mode_ != CsqMode::joint || fixed_precision_ > 0) return;
  for (int b = 0; b < kBits; ++b) {
    mask_logits_.grad[b] +=
        strength * gate_derivative(mask_logits_.value[b], beta_);
  }
}

void CsqWeightSource::freeze_mask() {
  CSQ_CHECK(mode_ == CsqMode::joint) << "csq: freeze_mask outside joint mode";
  if (fixed_precision_ == 0) {
    for (int b = 0; b < kBits; ++b) {
      frozen_mask_[static_cast<std::size_t>(b)] =
          mask_logits_.value[b] >= 0.0f;
    }
  }
  mode_ = CsqMode::finetune;
  cache_valid_ = false;
  ++internal_rev_;
}

void CsqWeightSource::finalize() {
  if (mode_ == CsqMode::joint) freeze_mask();
  mode_ = CsqMode::finalized;
  cache_valid_ = false;
  ++internal_rev_;
  // No backward can ever run again: drop the 16x-weight gate cache.
  engine_.release_gate_cache();
}

std::vector<std::int32_t> CsqWeightSource::integer_codes() const {
  CSQ_CHECK(mode_ == CsqMode::finalized)
      << "csq: integer codes require a finalized source";
  std::vector<std::int32_t> codes(static_cast<std::size_t>(element_count_));
  stage_hard_planes();
  engine_.materialize_hard(/*unit=*/0.0f, /*out=*/nullptr, codes.data());
  return codes;
}

WeightCodes CsqWeightSource::finalized_codes() const {
  WeightCodes result;
  result.codes = integer_codes();
  result.scale = scale_.value[0];
  result.denominator = kDenominator;
  result.bits = layer_precision();
  return result;
}

WeightSourceFactory csq_weight_factory(
    std::vector<CsqWeightSource*>* registry,
    const CsqWeightOptions& options) {
  CSQ_CHECK(registry != nullptr) << "csq factory: null registry";
  return [registry, options](const std::string& name,
                             std::vector<std::int64_t> shape,
                             std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    auto source = std::make_unique<CsqWeightSource>(name, std::move(shape),
                                                    fan_in, options, rng);
    registry->push_back(source.get());
    return source;
  };
}

}  // namespace csq
