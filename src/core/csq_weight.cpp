#include "core/csq_weight.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

CsqWeightSource::CsqWeightSource(const std::string& name,
                                 std::vector<std::int64_t> shape,
                                 std::int64_t fan_in,
                                 const CsqWeightOptions& options, Rng& rng)
    : shape_(shape), fixed_precision_(options.fixed_precision) {
  CSQ_CHECK(fixed_precision_ >= 0 && fixed_precision_ <= kBits)
      << "csq: fixed precision out of range";
  element_count_ = shape_numel(shape_);
  quantized_ = Tensor(shape_);

  // Train-from-scratch initialization: draw a He-initialized dense weight
  // and decompose it onto the 8-bit grid; logits start at a soft +/- kappa
  // so beta0 = 1 gives a smooth landscape (paper Section III-A trains all
  // logits from real values, any magnitude permitted).
  Tensor dense(shape_);
  fill_he_normal(dense, fan_in, rng);
  const float init_scale = max_abs_scale(dense);
  scale_ = Parameter(name + ".s", Tensor::from_data({1}, {init_scale}),
                     /*apply_weight_decay=*/false);

  for (int b = 0; b < kBits; ++b) {
    pos_logits_[static_cast<std::size_t>(b)] =
        Parameter(name + ".mp" + std::to_string(b), Tensor(shape_),
                  /*apply_weight_decay=*/false);
    neg_logits_[static_cast<std::size_t>(b)] =
        Parameter(name + ".mn" + std::to_string(b), Tensor(shape_),
                  /*apply_weight_decay=*/false);
  }

  const float* w = dense.data();
  for (std::int64_t i = 0; i < element_count_; ++i) {
    std::int64_t code = static_cast<std::int64_t>(
        std::lround(std::fabs(w[i]) / init_scale * kDenominator));
    code = std::min<std::int64_t>(code, 255);
    const bool positive = w[i] >= 0.0f;
    for (int b = 0; b < kBits; ++b) {
      const bool bit_set = ((code >> b) & 1) != 0;
      // Jitter breaks the symmetry between elements sharing a bit pattern.
      const float kappa = options.init_logit * rng.uniform(0.75f, 1.25f);
      float& mp = pos_logits_[static_cast<std::size_t>(b)].value[i];
      float& mn = neg_logits_[static_cast<std::size_t>(b)].value[i];
      mp = (positive && bit_set) ? kappa : -kappa;
      mn = (!positive && bit_set) ? kappa : -kappa;
    }
  }

  // Bit mask: all bits start selected (the budget regularizer grows or
  // prunes from there). In fixed-precision mode the mask is a constant
  // selecting the *top* n bits — on the shared 8-bit grid this spans the
  // same dynamic range as the paper's n-bit Eq. (3) form (denominator
  // 2^n - 1 with bits 0..n-1), up to a scale absorbed by s.
  Tensor mask_init({kBits});
  for (int b = 0; b < kBits; ++b) {
    if (fixed_precision_ > 0) {
      mask_init[b] = b >= kBits - fixed_precision_ ? 1.0f : -1.0f;
    } else {
      mask_init[b] = options.mask_init;
    }
  }
  mask_logits_ = Parameter(name + ".mB", std::move(mask_init),
                           /*apply_weight_decay=*/false);
  if (fixed_precision_ > 0) {
    for (int b = 0; b < kBits; ++b) {
      frozen_mask_[static_cast<std::size_t>(b)] =
          b >= kBits - fixed_precision_;
    }
  }
}

void CsqWeightSource::set_beta(float beta) {
  CSQ_CHECK(beta > 0.0f) << "csq: beta must be positive";
  beta_ = beta;
}

bool CsqWeightSource::mask_bit_active(int bit) const {
  if (mode_ != CsqMode::joint || fixed_precision_ > 0) {
    return frozen_mask_[static_cast<std::size_t>(bit)];
  }
  return mask_logits_.value[bit] >= 0.0f;
}

float CsqWeightSource::soft_mask_value(int bit) const {
  if (fixed_precision_ > 0 || mode_ != CsqMode::joint) {
    // Frozen hard mask (Eq. 4) — constant 0/1, no gradient.
    return frozen_mask_[static_cast<std::size_t>(bit)] ? 1.0f : 0.0f;
  }
  return gate(mask_logits_.value[bit], beta_);
}

int CsqWeightSource::layer_precision() const {
  int precision = 0;
  for (int b = 0; b < kBits; ++b) precision += mask_bit_active(b) ? 1 : 0;
  return precision;
}

void CsqWeightSource::materialize_soft(bool cache_for_backward) {
  const float factor = scale_.value[0] / kDenominator;
  float* w = quantized_.data();
  std::fill(w, w + element_count_, 0.0f);

  for (int b = 0; b < kBits; ++b) {
    const float mask_value = soft_mask_value(b);
    cached_gate_mask_[static_cast<std::size_t>(b)] = mask_value;
    if (mask_value == 0.0f && !cache_for_backward) continue;

    const float bit_weight = factor * static_cast<float>(1 << b) * mask_value;
    const float* mp = pos_logits_[static_cast<std::size_t>(b)].value.data();
    const float* mn = neg_logits_[static_cast<std::size_t>(b)].value.data();

    if (cache_for_backward) {
      Tensor& gate_pos = cached_gate_pos_[static_cast<std::size_t>(b)];
      Tensor& gate_neg = cached_gate_neg_[static_cast<std::size_t>(b)];
      if (!gate_pos.same_shape(quantized_)) gate_pos = Tensor(shape_);
      if (!gate_neg.same_shape(quantized_)) gate_neg = Tensor(shape_);
      float* gp = gate_pos.data();
      float* gn = gate_neg.data();
      for (std::int64_t i = 0; i < element_count_; ++i) {
        gp[i] = gate(mp[i], beta_);
        gn[i] = gate(mn[i], beta_);
        w[i] += bit_weight * (gp[i] - gn[i]);
      }
    } else {
      for (std::int64_t i = 0; i < element_count_; ++i) {
        w[i] += bit_weight * (gate(mp[i], beta_) - gate(mn[i], beta_));
      }
    }
  }
  cache_valid_ = cache_for_backward;
}

void CsqWeightSource::materialize_hard() {
  // Integer-first accumulation guarantees the materialized weight is
  // exactly s/255 * code (the "exact quantized model" the paper claims).
  const float factor = scale_.value[0] / kDenominator;
  float* w = quantized_.data();
  for (std::int64_t i = 0; i < element_count_; ++i) {
    std::int32_t code = 0;
    for (int b = 0; b < kBits; ++b) {
      if (!frozen_mask_[static_cast<std::size_t>(b)]) continue;
      const float mp = pos_logits_[static_cast<std::size_t>(b)].value[i];
      const float mn = neg_logits_[static_cast<std::size_t>(b)].value[i];
      const std::int32_t bit =
          static_cast<std::int32_t>(hard_gate(mp)) -
          static_cast<std::int32_t>(hard_gate(mn));
      code += bit * (1 << b);
    }
    w[i] = factor * static_cast<float>(code);
  }
  cache_valid_ = false;
}

const Tensor& CsqWeightSource::weight(bool training) {
  if (mode_ == CsqMode::finalized) {
    materialize_hard();
  } else {
    materialize_soft(/*cache_for_backward=*/training);
  }
  return quantized_;
}

void CsqWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(mode_ != CsqMode::finalized)
      << "csq: backward on a finalized source";
  CSQ_CHECK(cache_valid_) << "csq: backward without training materialization";
  CSQ_CHECK(grad_weight.same_shape(quantized_)) << "csq: grad shape mismatch";

  const float s = scale_.value[0];
  const float factor = s / kDenominator;
  const float* g = grad_weight.data();

  // ds: dW/ds = W / s (W is linear in s).
  if (s != 0.0f) {
    const float* q = quantized_.data();
    double ds = 0.0;
    for (std::int64_t i = 0; i < element_count_; ++i) {
      ds += static_cast<double>(g[i]) * q[i] / s;
    }
    scale_.grad[0] += static_cast<float>(ds);
  }

  const bool mask_trains =
      mode_ == CsqMode::joint && fixed_precision_ == 0;

  for (int b = 0; b < kBits; ++b) {
    const float mask_value = cached_gate_mask_[static_cast<std::size_t>(b)];
    const float bit_scale = factor * static_cast<float>(1 << b);
    const float* gp = cached_gate_pos_[static_cast<std::size_t>(b)].data();
    const float* gn = cached_gate_neg_[static_cast<std::size_t>(b)].data();
    float* grad_p = pos_logits_[static_cast<std::size_t>(b)].grad.data();
    float* grad_n = neg_logits_[static_cast<std::size_t>(b)].grad.data();

    // dW_i/dm_p = factor * 2^b * mask * f'(m_p);   f'(m) = beta*f*(1-f).
    const float common = bit_scale * mask_value;
    double mask_grad_acc = 0.0;
    for (std::int64_t i = 0; i < element_count_; ++i) {
      const float gi = g[i];
      if (common != 0.0f) {
        grad_p[i] += gi * common * gate_derivative_from_value(gp[i], beta_);
        grad_n[i] -= gi * common * gate_derivative_from_value(gn[i], beta_);
      }
      if (mask_trains) {
        // dW_i/dm_B = factor * 2^b * (f(m_p)-f(m_n)) * f'(m_B).
        mask_grad_acc += static_cast<double>(gi) * (gp[i] - gn[i]);
      }
    }
    if (mask_trains) {
      const float mask_derivative =
          gate_derivative_from_value(mask_value, beta_);
      mask_logits_.grad[b] +=
          static_cast<float>(mask_grad_acc) * bit_scale * mask_derivative;
    }
  }
  cache_valid_ = false;
}

void CsqWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&scale_);
  for (int b = 0; b < kBits; ++b) {
    out.push_back(&pos_logits_[static_cast<std::size_t>(b)]);
    out.push_back(&neg_logits_[static_cast<std::size_t>(b)]);
  }
  out.push_back(&mask_logits_);
}

void CsqWeightSource::add_budget_regularizer_gradient(float strength) {
  if (mode_ != CsqMode::joint || fixed_precision_ > 0) return;
  for (int b = 0; b < kBits; ++b) {
    mask_logits_.grad[b] +=
        strength * gate_derivative(mask_logits_.value[b], beta_);
  }
}

void CsqWeightSource::freeze_mask() {
  CSQ_CHECK(mode_ == CsqMode::joint) << "csq: freeze_mask outside joint mode";
  if (fixed_precision_ == 0) {
    for (int b = 0; b < kBits; ++b) {
      frozen_mask_[static_cast<std::size_t>(b)] =
          mask_logits_.value[b] >= 0.0f;
    }
  }
  mode_ = CsqMode::finetune;
  cache_valid_ = false;
}

void CsqWeightSource::finalize() {
  if (mode_ == CsqMode::joint) freeze_mask();
  mode_ = CsqMode::finalized;
  cache_valid_ = false;
}

std::vector<std::int32_t> CsqWeightSource::integer_codes() const {
  CSQ_CHECK(mode_ == CsqMode::finalized)
      << "csq: integer codes require a finalized source";
  std::vector<std::int32_t> codes(static_cast<std::size_t>(element_count_));
  for (std::int64_t i = 0; i < element_count_; ++i) {
    std::int32_t code = 0;
    for (int b = 0; b < kBits; ++b) {
      if (!frozen_mask_[static_cast<std::size_t>(b)]) continue;
      const float mp = pos_logits_[static_cast<std::size_t>(b)].value[i];
      const float mn = neg_logits_[static_cast<std::size_t>(b)].value[i];
      code += (static_cast<std::int32_t>(hard_gate(mp)) -
               static_cast<std::int32_t>(hard_gate(mn))) *
              (1 << b);
    }
    codes[static_cast<std::size_t>(i)] = code;
  }
  return codes;
}

WeightSourceFactory csq_weight_factory(
    std::vector<CsqWeightSource*>* registry,
    const CsqWeightOptions& options) {
  CSQ_CHECK(registry != nullptr) << "csq factory: null registry";
  return [registry, options](const std::string& name,
                             std::vector<std::int64_t> shape,
                             std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    auto source = std::make_unique<CsqWeightSource>(name, std::move(shape),
                                                    fan_in, options, rng);
    registry->push_back(source.get());
    return source;
  };
}

}  // namespace csq
