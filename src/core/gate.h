// Temperature sigmoid gate — the continuous-sparsification primitive
// (paper Eq. 2):  f_beta(x) = sigmoid(beta * x)  ->  I(x >= 0) as beta -> inf.
//
// Both levels of the bi-level relaxation use this gate: the bit values of
// each weight (m_p, m_n) and the per-layer bit-selection mask (m_B). The
// exponential temperature schedule (Algorithm 1) anneals beta from beta0 to
// beta_max over training so the relaxation converges to an exact quantized
// model without straight-through estimation.
#pragma once

#include <cmath>

namespace csq {

// sigmoid(beta * x).
inline float gate(float x, float beta) {
  return 1.0f / (1.0f + std::exp(-beta * x));
}

// d gate / d x = beta * sigmoid(beta x) * (1 - sigmoid(beta x)).
inline float gate_derivative(float x, float beta) {
  const float s = gate(x, beta);
  return beta * s * (1.0f - s);
}

// Derivative given a precomputed gate value (avoids a second exp).
inline float gate_derivative_from_value(float gate_value, float beta) {
  return beta * gate_value * (1.0f - gate_value);
}

// Hard unit-step limit used at finalization.
inline float hard_gate(float x) { return x >= 0.0f ? 1.0f : 0.0f; }

// Exponential temperature schedule: beta(e) = beta0 * beta_max^{e/(T-1)}
// (paper Algorithm 1; the maximum is reached exactly at the last epoch).
class TemperatureSchedule {
 public:
  TemperatureSchedule(float beta0, float beta_max, int total_epochs);

  float at_epoch(int epoch) const;

  float beta0() const { return beta0_; }
  float beta_max() const { return beta_max_; }

 private:
  float beta0_;
  float beta_max_;
  int total_epochs_;
};

}  // namespace csq
