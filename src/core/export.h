// Fixed-point export of a finalized CSQ model.
//
// A finalized CsqWeightSource stores its weight as integer codes
// |q| <= 2^8 - 1 times s/255. This module packages those codes, verifies
// that the float materialization is bit-exact with the integer
// reconstruction (the paper's "exact quantized model" property), and
// provides an integer-arithmetic linear/conv forward (int32 accumulation)
// demonstrating the fixed-point deployment path the paper's introduction
// motivates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/csq_weight.h"
#include "tensor/tensor.h"

namespace csq {

struct QuantizedLayerExport {
  std::string name;
  std::vector<std::int64_t> shape;
  std::vector<std::int32_t> codes;  // integer weight codes, |q| <= 255
  float scale = 1.0f;               // s: w = scale * code / 255
  int bits = 0;                     // precision of the layer's scheme
  // Storage estimate: bits * elements for codes (sign handled by the
  // positive/negative planes) plus one float scale.
  std::int64_t storage_bits() const;
};

// Requires the source to be finalized.
QuantizedLayerExport export_layer(const std::string& name,
                                  const CsqWeightSource& source);

// Checks bit-exact agreement between the source's float materialization and
// scale/255 * codes. Returns the max abs difference (0.0 when exact).
float export_roundtrip_error(CsqWeightSource& source);

// Integer-arithmetic fully-connected forward:
//   1. quantize the input activations to unsigned `act_bits` codes over
//      [0, act_clip],
//   2. accumulate int32 dot products of weight codes and activation codes,
//   3. dequantize with the combined scale.
// Matches the float path up to activation-quantization error only.
Tensor integer_linear_forward(const QuantizedLayerExport& layer,
                              const Tensor& input, int act_bits,
                              float act_clip);

// Float reference for the same computation (quantized activations, float
// weights from the export): used to validate the integer path.
Tensor reference_linear_forward(const QuantizedLayerExport& layer,
                                const Tensor& input, int act_bits,
                                float act_clip);

}  // namespace csq
