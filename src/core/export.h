// Fixed-point export of finalized quantized models.
//
// A finalized weight source stores its weights as integer codes times
// scale / denominator (the paper's "exact quantized model" property, surfaced
// through WeightSource::finalized_codes — any fixed-grid family exports, not
// just CSQ). This module packages those codes for serialization (model_io.h),
// verifies that the float materialization is bit-exact with the integer
// reconstruction, and provides an integer-arithmetic linear forward built on
// the runtime's int8 GEMM (runtime/packed_weights.h) — the single-layer
// demonstrator of the fixed-point deployment path; the whole-network story
// lives in runtime/compiled_graph.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/weight_source.h"
#include "tensor/tensor.h"

namespace csq {

struct QuantizedLayerExport {
  std::string name;
  std::vector<std::int64_t> shape;
  std::vector<std::int32_t> codes;  // integer weight codes, |q| <= 255
  float scale = 1.0f;               // w = scale * code / denominator
  float denominator = 255.0f;       // 2^n - 1 of the layer's grid
  int bits = 0;                     // precision of the layer's scheme

  // Real value of one quantization step.
  float step() const { return scale / denominator; }
  // Storage estimate: bits * elements for codes (sign handled by the
  // positive/negative planes) plus the two per-layer floats of the v2
  // container (scale + grid denominator).
  std::int64_t storage_bits() const;
};

// Packages the source's integer form. Requires has_finalized_codes().
QuantizedLayerExport export_layer(const std::string& name,
                                  const WeightSource& source);

// Checks agreement between the source's float materialization and
// step() * codes. Returns the max abs difference — exactly 0.0 for finalized
// CSQ sources (integer-first materialization); at worst one float rounding
// per element for the other fixed-grid families.
float export_roundtrip_error(WeightSource& source);

// Integer-arithmetic fully-connected forward:
//   1. quantize the input activations to unsigned `act_bits` codes over
//      [0, act_clip] (act_bits <= 8: codes live in uint8),
//   2. run the runtime's int8-code GEMM with int32 accumulation,
//   3. dequantize with the combined scale.
// Matches the float path up to activation-quantization error only.
Tensor integer_linear_forward(const QuantizedLayerExport& layer,
                              const Tensor& input, int act_bits,
                              float act_clip);

// Float reference for the same computation (quantized activations, float
// weights from the export): used to validate the integer path.
Tensor reference_linear_forward(const QuantizedLayerExport& layer,
                                const Tensor& input, int act_bits,
                                float act_clip);

}  // namespace csq
