// CSQ training pipeline — the paper's Algorithm 1.
//
//   1. Joint phase: train s, m_p, m_n, m_B with the budget-aware
//      regularizer; the shared temperature beta grows exponentially from
//      beta0 to beta_max across the epochs.
//   2. (optional) Finetune phase: freeze the bit selection to
//      q_b = I(m_B >= 0), rewind beta to beta0 and redo the schedule while
//      training only the bit representations (used for the ImageNet-scale
//      experiments).
//   3. Finalization: every gate becomes a unit step; the model is exactly
//      quantized and is evaluated in that form.
#pragma once

#include <string>
#include <vector>

#include "core/budget.h"
#include "core/csq_weight.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "opt/data_parallel.h"
#include "opt/trainer.h"

namespace csq {

struct CsqTrainConfig {
  TrainConfig train;            // epochs here = joint-phase epochs
  int finetune_epochs = 0;      // 0 disables the finetune phase
  float finetune_learning_rate = 0.01f;
  double lambda = 0.01;         // base regularization strength (paper: 0.01)
  double target_bits = 3.0;     // precision budget
  float beta0 = 1.0f;
  float beta_max = 200.0f;      // paper Algorithm 1
  // workers > 1 runs both phases data-parallel (opt/data_parallel.h); the
  // result is bit-identical to workers == 1 on the same shard grid.
  DataParallelConfig data_parallel;
};

struct CsqTrainResult {
  // Accuracy of the exactly-quantized (finalized) model — the number the
  // paper's tables report.
  float test_accuracy = 0.0f;
  // Accuracy of the soft model just before finalization (diagnostic; a
  // large gap would indicate the annealing failed to converge the gates).
  float soft_test_accuracy = 0.0f;
  double average_bits = 0.0;
  double compression = 0.0;  // 32 / average_bits
  // Element-weighted average precision recorded at the end of every joint
  // epoch — the series plotted in the paper's Figures 2 and 3.
  std::vector<double> precision_trajectory;
  // Final per-layer precision — the paper's Figure 4.
  std::vector<LayerPrecision> layer_bits;
  FitResult joint_phase;
  FitResult finetune_phase;
};

// Trains a model whose quantizable layers were built with
// csq_weight_factory(&sources). The model must contain at least one source.
// When config.data_parallel.workers > 1, `replica_factory` must rebuild the
// model identically (same builder and seed; see opt/data_parallel.h) — the
// trainer mirrors the temperature schedule and mask freezing to every
// replica's CSQ sources so scheme state stays in lockstep with the
// broadcast parameters.
CsqTrainResult train_csq(
    Model& model, const std::vector<CsqWeightSource*>& sources,
    const InMemoryDataset& train_data, const InMemoryDataset& test_data,
    const CsqTrainConfig& config,
    const DataParallelTrainer::ModelFactory& replica_factory = nullptr);

}  // namespace csq
