#include "core/budget.h"

#include "util/check.h"

namespace csq {

double average_precision(const std::vector<CsqWeightSource*>& sources) {
  CSQ_CHECK(!sources.empty()) << "average_precision: no CSQ sources";
  double weighted = 0.0;
  double total = 0.0;
  for (const CsqWeightSource* source : sources) {
    const auto count = static_cast<double>(source->weight_count());
    weighted += static_cast<double>(source->layer_precision()) * count;
    total += count;
  }
  return weighted / total;
}

double budget_delta(const std::vector<CsqWeightSource*>& sources,
                    double target_bits) {
  return average_precision(sources) - target_bits;
}

void apply_budget_regularizer(const std::vector<CsqWeightSource*>& sources,
                              double lambda, double target_bits) {
  const double delta = budget_delta(sources, target_bits);
  const float strength = static_cast<float>(lambda * delta);
  for (CsqWeightSource* source : sources) {
    source->add_budget_regularizer_gradient(strength);
  }
}

std::vector<LayerPrecision> layer_precisions(
    const std::vector<std::pair<std::string, CsqWeightSource*>>& named) {
  std::vector<LayerPrecision> result;
  result.reserve(named.size());
  for (const auto& [name, source] : named) {
    LayerPrecision entry;
    entry.name = name;
    entry.bits = source->layer_precision();
    entry.weight_count = source->weight_count();
    result.push_back(std::move(entry));
  }
  return result;
}

}  // namespace csq
