#include "core/csq_trainer.h"

#include <memory>

#include "util/check.h"
#include "util/logging.h"

namespace csq {

CsqTrainResult train_csq(Model& model,
                         const std::vector<CsqWeightSource*>& sources,
                         const InMemoryDataset& train_data,
                         const InMemoryDataset& test_data,
                         const CsqTrainConfig& config,
                         const DataParallelTrainer::ModelFactory&
                             replica_factory) {
  CSQ_CHECK(!sources.empty()) << "train_csq: no CSQ weight sources";
  CSQ_CHECK(config.train.epochs >= 1) << "train_csq: bad epoch count";

  CsqTrainResult result;

  // Data-parallel setup: the arena broadcast keeps parameters synchronized,
  // but scheme-level state (temperature, frozen masks) lives outside the
  // parameters, so every schedule action below is mirrored to the replica
  // sources as well.
  std::unique_ptr<DataParallelTrainer> dp;
  std::vector<CsqWeightSource*> mirror_sources;
  if (config.data_parallel.workers > 1) {
    dp = std::make_unique<DataParallelTrainer>(model, replica_factory,
                                               config.data_parallel);
    dp->for_each_replica([&mirror_sources](Model& replica) {
      for (const QuantLayer& layer : replica.quant_layers()) {
        if (auto* source = dynamic_cast<CsqWeightSource*>(layer.source)) {
          mirror_sources.push_back(source);
        }
      }
    });
    CSQ_CHECK(mirror_sources.size() ==
              sources.size() * (static_cast<std::size_t>(
                                    config.data_parallel.workers) -
                                1))
        << "train_csq: replica factory produced a different CSQ layer set";
  }
  const auto set_all_beta = [&](float beta) {
    for (CsqWeightSource* source : sources) source->set_beta(beta);
    for (CsqWeightSource* source : mirror_sources) source->set_beta(beta);
  };

  // ---- Joint phase: bi-level training under the budget regularizer ----
  const TemperatureSchedule joint_schedule(config.beta0, config.beta_max,
                                           config.train.epochs);
  FitHooks hooks;
  hooks.on_epoch_begin = [&](int epoch) {
    set_all_beta(joint_schedule.at_epoch(epoch));
  };
  hooks.before_step = [&]() {
    apply_budget_regularizer(sources, config.lambda, config.target_bits);
  };
  hooks.on_epoch_end = [&](int, float, float) {
    result.precision_trajectory.push_back(average_precision(sources));
  };
  result.joint_phase =
      dp ? fit(*dp, train_data, test_data, config.train, hooks)
         : fit(model, train_data, test_data, config.train, hooks);

  // ---- Optional finetune phase: frozen scheme, rewound temperature ----
  for (CsqWeightSource* source : sources) source->freeze_mask();
  for (CsqWeightSource* source : mirror_sources) source->freeze_mask();
  if (config.finetune_epochs > 0) {
    const TemperatureSchedule finetune_schedule(
        config.beta0, config.beta_max, config.finetune_epochs);
    TrainConfig finetune_config = config.train;
    finetune_config.epochs = config.finetune_epochs;
    finetune_config.learning_rate = config.finetune_learning_rate;
    finetune_config.warmup_epochs = 0;

    FitHooks finetune_hooks;
    finetune_hooks.on_epoch_begin = [&](int epoch) {
      set_all_beta(finetune_schedule.at_epoch(epoch));
    };
    result.finetune_phase =
        dp ? fit(*dp, train_data, test_data, finetune_config, finetune_hooks)
           : fit(model, train_data, test_data, finetune_config,
                 finetune_hooks);
  }

  // ---- Finalization: exact quantized model ----------------------------
  result.soft_test_accuracy = evaluate_accuracy(model, test_data);
  for (CsqWeightSource* source : sources) source->finalize();
  result.test_accuracy = evaluate_accuracy(model, test_data);
  result.average_bits = average_precision(sources);
  result.compression = 32.0 / result.average_bits;

  std::vector<std::pair<std::string, CsqWeightSource*>> named;
  named.reserve(model.quant_layers().size());
  for (const QuantLayer& layer : model.quant_layers()) {
    if (auto* source = dynamic_cast<CsqWeightSource*>(layer.source)) {
      named.emplace_back(layer.name, source);
    }
  }
  result.layer_bits = layer_precisions(named);

  log_debug() << "csq: finalized avg_bits=" << result.average_bits
              << " acc=" << result.test_accuracy
              << "% (soft " << result.soft_test_accuracy << "%)"
              << (dp ? " [data-parallel]" : "");
  return result;
}

}  // namespace csq
