#include "core/model_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "util/check.h"

namespace csq {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'Q', 'M'};
// Sanity bounds for reading untrusted files.
constexpr std::uint32_t kMaxLayers = 1 << 16;
constexpr std::uint32_t kMaxNameLength = 1 << 12;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 32;

using model_io::read_pod;
using model_io::write_pod;

}  // namespace

namespace model_io {

void write_container_header(std::ostream& out, std::uint32_t version,
                            std::uint32_t layer_count) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, version);
  write_pod(out, layer_count);
}

std::pair<std::uint32_t, std::uint32_t> read_container_header(
    std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  CSQ_CHECK(in && std::equal(magic, magic + 4, kMagic))
      << "quantized model file: bad magic";
  const auto version = read_pod<std::uint32_t>(in);
  CSQ_CHECK(version >= 1 && version <= kGraphContainerVersion)
      << "quantized model file: unsupported version " << version;
  const auto layer_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(layer_count <= kMaxLayers)
      << "quantized model file: absurd layer count " << layer_count;
  return {version, layer_count};
}

void write_layer_record(std::ostream& out, const QuantizedLayerExport& layer) {
  CSQ_CHECK(shape_numel(layer.shape) ==
            static_cast<std::int64_t>(layer.codes.size()))
      << "save: layer " << layer.name << " shape/code mismatch";
  write_pod(out, static_cast<std::uint32_t>(layer.name.size()));
  out.write(layer.name.data(),
            static_cast<std::streamsize>(layer.name.size()));
  write_pod(out, static_cast<std::uint32_t>(layer.shape.size()));
  for (const std::int64_t dim : layer.shape) write_pod(out, dim);
  write_pod(out, static_cast<std::int32_t>(layer.bits));
  write_pod(out, layer.scale);
  write_pod(out, layer.denominator);
  for (const std::int32_t code : layer.codes) {
    CSQ_CHECK(code >= -255 && code <= 255)
        << "save: layer " << layer.name << " code " << code
        << " outside the 8-bit grid";
    write_pod(out, static_cast<std::int16_t>(code));
  }
}

QuantizedLayerExport read_layer_record(std::istream& in,
                                       std::uint32_t version) {
  QuantizedLayerExport layer;
  const auto name_length = read_pod<std::uint32_t>(in);
  CSQ_CHECK(name_length <= kMaxNameLength)
      << "quantized model file: absurd name length";
  layer.name.resize(name_length);
  in.read(layer.name.data(), name_length);
  CSQ_CHECK(static_cast<bool>(in)) << "quantized model file: truncated name";

  const auto rank = read_pod<std::uint32_t>(in);
  CSQ_CHECK(rank <= kMaxRank) << "quantized model file: absurd rank";
  layer.shape.resize(rank);
  // Overflow-safe element count: bound every partial product, so a
  // corrupted dim can neither wrap the int64 product past the bound check
  // nor drive the code-vector allocation below to an absurd size.
  std::int64_t count = 1;
  for (std::uint32_t d = 0; d < rank; ++d) {
    layer.shape[d] = read_pod<std::int64_t>(in);
    CSQ_CHECK(layer.shape[d] >= 0) << "quantized model file: negative dim";
    CSQ_CHECK(layer.shape[d] == 0 || count <= kMaxElements / layer.shape[d])
        << "quantized model file: absurd element count";
    count *= layer.shape[d];
  }

  layer.bits = read_pod<std::int32_t>(in);
  CSQ_CHECK(layer.bits >= 0 && layer.bits <= 8)
      << "quantized model file: bits out of range";
  layer.scale = read_pod<float>(in);
  if (version >= 2) {
    layer.denominator = read_pod<float>(in);
    CSQ_CHECK(layer.denominator >= 1.0f && layer.denominator <= 255.0f)
        << "quantized model file: bad grid denominator";
  }  // v1 files fixed the denominator at 255 (the struct default)

  // Demand-driven growth (not an up-front resize): a corrupt count larger
  // than the actual payload throws on the first truncated read instead of
  // attempting a multi-gigabyte allocation first.
  layer.codes.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(count, std::int64_t{1} << 20)));
  for (std::int64_t i = 0; i < count; ++i) {
    const auto code = read_pod<std::int16_t>(in);
    CSQ_CHECK(code >= -255 && code <= 255)
        << "quantized model file: code outside the 8-bit grid";
    layer.codes.push_back(code);
  }
  return layer;
}

}  // namespace model_io

std::vector<QuantizedLayerExport> export_model(Model& model) {
  std::vector<QuantizedLayerExport> layers;
  layers.reserve(model.quant_layers().size());
  for (const QuantLayer& layer : model.quant_layers()) {
    CSQ_CHECK(layer.source->has_finalized_codes())
        << "export_model: layer " << layer.name << " ("
        << layer.source->kind()
        << ") has no exact integer form — finalize the model first";
    layers.push_back(export_layer(layer.name, *layer.source));
  }
  return layers;
}

bool save_quantized_model(const std::string& path,
                          const std::vector<QuantizedLayerExport>& layers) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  model_io::write_container_header(
      out, model_io::kLayerVersion,
      static_cast<std::uint32_t>(layers.size()));
  for (const QuantizedLayerExport& layer : layers) {
    model_io::write_layer_record(out, layer);
  }
  return static_cast<bool>(out);
}

std::vector<QuantizedLayerExport> load_quantized_model(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CSQ_CHECK(static_cast<bool>(in))
      << "quantized model file: cannot open " << path;

  const auto [version, layer_count] = model_io::read_container_header(in);
  std::vector<QuantizedLayerExport> layers;
  layers.reserve(layer_count);
  for (std::uint32_t l = 0; l < layer_count; ++l) {
    layers.push_back(model_io::read_layer_record(in, version));
  }
  // v3 containers carry a trailing graph section (runtime/graph_artifact.h)
  // this reader deliberately ignores.
  return layers;
}

std::int64_t model_storage_bits(
    const std::vector<QuantizedLayerExport>& layers) {
  std::int64_t total = 0;
  for (const QuantizedLayerExport& layer : layers) {
    total += layer.storage_bits();
  }
  return total;
}

// ---- training checkpoints -------------------------------------------------

namespace {

constexpr char kCheckpointMagic[4] = {'C', 'S', 'Q', 'C'};
constexpr std::uint32_t kCheckpointVersionLegacy = 1;
constexpr std::uint32_t kCheckpointVersion = 2;

void write_checkpoint_header(std::ostream& out, std::uint32_t version,
                             std::uint32_t param_count) {
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  write_pod(out, version);
  write_pod(out, param_count);
}

void write_param_metadata(std::ostream& out, const Parameter& param) {
  write_pod(out, static_cast<std::uint32_t>(param.name.size()));
  out.write(param.name.data(),
            static_cast<std::streamsize>(param.name.size()));
  const std::vector<std::int64_t>& shape = param.value.shape();
  write_pod(out, static_cast<std::uint32_t>(shape.size()));
  for (const std::int64_t dim : shape) write_pod(out, dim);
  write_pod(out, static_cast<std::uint8_t>(param.weight_decay ? 1 : 0));
}

// Validates one metadata record against the expected parameter and returns
// its element count. The checkpoint must have been written from a model
// with the identical parameter list.
std::int64_t read_param_metadata(std::istream& in, const Parameter& param) {
  const auto name_length = read_pod<std::uint32_t>(in);
  CSQ_CHECK(name_length <= kMaxNameLength)
      << "checkpoint: absurd name length";
  std::string name(name_length, '\0');
  in.read(name.data(), name_length);
  CSQ_CHECK(static_cast<bool>(in)) << "checkpoint: truncated name";
  CSQ_CHECK(name == param.name)
      << "checkpoint: parameter mismatch — file has '" << name
      << "', model expects '" << param.name << "'";

  const auto rank = read_pod<std::uint32_t>(in);
  CSQ_CHECK(rank <= kMaxRank) << "checkpoint: absurd rank";
  std::vector<std::int64_t> shape(rank);
  for (std::uint32_t d = 0; d < rank; ++d) {
    shape[d] = read_pod<std::int64_t>(in);
  }
  CSQ_CHECK(shape == param.value.shape())
      << "checkpoint: shape mismatch for " << param.name;

  const auto decay = read_pod<std::uint8_t>(in);
  CSQ_CHECK((decay != 0) == param.weight_decay)
      << "checkpoint: weight-decay flag mismatch for " << param.name;
  return shape_numel(shape);
}

}  // namespace

bool save_checkpoint(const std::string& path, Model& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  const ParameterArena& arena = model.arena();
  const std::vector<ParameterArena::View>& views = arena.views();
  write_checkpoint_header(out, kCheckpointVersion,
                          static_cast<std::uint32_t>(views.size()));
  for (const ParameterArena::View& view : views) {
    write_param_metadata(out, *view.param);
  }
  // The whole payload is the arena value span — one contiguous write.
  out.write(reinterpret_cast<const char*>(arena.values()),
            static_cast<std::streamsize>(arena.size() *
                                         static_cast<std::int64_t>(
                                             sizeof(float))));
  return static_cast<bool>(out);
}

bool save_checkpoint_per_tensor(const std::string& path, Model& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  const std::vector<Parameter*>& params = model.parameters();
  write_checkpoint_header(out, kCheckpointVersion,
                          static_cast<std::uint32_t>(params.size()));
  for (const Parameter* param : params) write_param_metadata(out, *param);
  for (const Parameter* param : params) {
    out.write(reinterpret_cast<const char*>(param->value.data()),
              static_cast<std::streamsize>(param->value.numel() *
                                           static_cast<std::int64_t>(
                                               sizeof(float))));
  }
  return static_cast<bool>(out);
}

bool save_checkpoint_legacy(const std::string& path, Model& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  const std::vector<Parameter*>& params = model.parameters();
  write_checkpoint_header(out, kCheckpointVersionLegacy,
                          static_cast<std::uint32_t>(params.size()));
  for (const Parameter* param : params) {
    write_param_metadata(out, *param);
    out.write(reinterpret_cast<const char*>(param->value.data()),
              static_cast<std::streamsize>(param->value.numel() *
                                           static_cast<std::int64_t>(
                                               sizeof(float))));
  }
  return static_cast<bool>(out);
}

void load_checkpoint(const std::string& path, Model& model) {
  std::ifstream in(path, std::ios::binary);
  CSQ_CHECK(static_cast<bool>(in)) << "checkpoint: cannot open " << path;

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  CSQ_CHECK(in && std::equal(magic, magic + 4, kCheckpointMagic))
      << "checkpoint: bad magic";
  const auto version = read_pod<std::uint32_t>(in);
  CSQ_CHECK(version >= kCheckpointVersionLegacy &&
            version <= kCheckpointVersion)
      << "checkpoint: unsupported version " << version;

  ParameterArena& arena = model.arena();
  const std::vector<ParameterArena::View>& views = arena.views();
  const auto param_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(param_count == views.size())
      << "checkpoint: file has " << param_count << " parameters, model has "
      << views.size();

  // Both versions carry the same floats in registration order; v1 merely
  // interleaves them with the metadata. Assemble the flat span, then load
  // it through the arena so every version bump happens in one place.
  std::vector<float> values(static_cast<std::size_t>(arena.size()));
  if (version == kCheckpointVersionLegacy) {
    for (const ParameterArena::View& view : views) {
      const std::int64_t count = read_param_metadata(in, *view.param);
      CSQ_CHECK(count == view.count)
          << "checkpoint: element count mismatch for " << view.param->name;
      in.read(reinterpret_cast<char*>(values.data() + view.offset),
              static_cast<std::streamsize>(count *
                                           static_cast<std::int64_t>(
                                               sizeof(float))));
    }
  } else {
    for (const ParameterArena::View& view : views) {
      const std::int64_t count = read_param_metadata(in, *view.param);
      CSQ_CHECK(count == view.count)
          << "checkpoint: element count mismatch for " << view.param->name;
    }
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(arena.size() *
                                         static_cast<std::int64_t>(
                                             sizeof(float))));
  }
  CSQ_CHECK(static_cast<bool>(in)) << "checkpoint: truncated payload";
  arena.load_values(values.data());
}

}  // namespace csq
