#include "core/export.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

std::int64_t QuantizedLayerExport::storage_bits() const {
  return static_cast<std::int64_t>(codes.size()) * bits + 32;
}

QuantizedLayerExport export_layer(const std::string& name,
                                  const CsqWeightSource& source) {
  QuantizedLayerExport layer;
  layer.name = name;
  layer.shape = source.shape();
  layer.codes = source.integer_codes();
  layer.scale = source.scale();
  layer.bits = source.layer_precision();
  return layer;
}

float export_roundtrip_error(CsqWeightSource& source) {
  const Tensor& materialized = source.weight(/*training=*/false);
  const std::vector<std::int32_t> codes = source.integer_codes();
  const float factor = source.scale() / CsqWeightSource::kDenominator;
  float max_diff = 0.0f;
  const float* w = materialized.data();
  for (std::int64_t i = 0; i < materialized.numel(); ++i) {
    // volatile forces the product through a float rounding point; without
    // it, fp-contract fuses the multiply into the subtraction (FMA) and
    // reports a phantom 1-ulp "difference" against the stored weight.
    volatile float reconstructed =
        factor * static_cast<float>(codes[static_cast<std::size_t>(i)]);
    max_diff = std::max(max_diff, std::fabs(w[i] - reconstructed));
  }
  return max_diff;
}

namespace {

// Quantizes activations to integer codes in [0, 2^bits - 1] over [0, clip].
std::vector<std::int32_t> activation_codes(const Tensor& input, int act_bits,
                                           float act_clip) {
  CSQ_CHECK(act_clip > 0.0f) << "integer forward: bad activation clip";
  const auto levels = static_cast<float>(levels_per_side(act_bits));
  std::vector<std::int32_t> codes(static_cast<std::size_t>(input.numel()));
  const float* in = input.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float normalized = std::clamp(in[i] / act_clip, 0.0f, 1.0f);
    codes[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(std::lround(normalized * levels));
  }
  return codes;
}

}  // namespace

Tensor integer_linear_forward(const QuantizedLayerExport& layer,
                              const Tensor& input, int act_bits,
                              float act_clip) {
  CSQ_CHECK(layer.shape.size() == 2 || layer.shape.empty())
      << "integer_linear_forward expects a 2-d (OUT,IN) export";
  CSQ_CHECK(input.ndim() == 2) << "integer forward expects (B, IN)";
  const std::int64_t out_features =
      layer.shape.empty() ? 0 : layer.shape[0];
  const std::int64_t in_features = layer.shape.empty() ? 0 : layer.shape[1];
  CSQ_CHECK(in_features == input.dim(1))
      << "integer forward: in_features mismatch";
  const std::int64_t batch = input.dim(0);

  const std::vector<std::int32_t> act = activation_codes(input, act_bits,
                                                         act_clip);
  const float weight_step = layer.scale / CsqWeightSource::kDenominator;
  const float act_step =
      act_clip / static_cast<float>(levels_per_side(act_bits));
  const float combined_scale = weight_step * act_step;

  Tensor output({batch, out_features});
  float* out = output.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int32_t* act_row = act.data() + b * in_features;
    for (std::int64_t o = 0; o < out_features; ++o) {
      const std::int32_t* w_row = layer.codes.data() + o * in_features;
      std::int64_t acc = 0;  // |w|<=255, |a|<=65535: int64 is ample headroom
      for (std::int64_t i = 0; i < in_features; ++i) {
        acc += static_cast<std::int64_t>(w_row[i]) * act_row[i];
      }
      out[b * out_features + o] =
          combined_scale * static_cast<float>(acc);
    }
  }
  return output;
}

Tensor reference_linear_forward(const QuantizedLayerExport& layer,
                                const Tensor& input, int act_bits,
                                float act_clip) {
  const std::int64_t out_features = layer.shape[0];
  const std::int64_t in_features = layer.shape[1];
  CSQ_CHECK(in_features == input.dim(1))
      << "reference forward: in_features mismatch";
  const std::int64_t batch = input.dim(0);
  const float weight_step = layer.scale / CsqWeightSource::kDenominator;

  Tensor output({batch, out_features});
  float* out = output.data();
  const float* in = input.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < out_features; ++o) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < in_features; ++i) {
        const float w =
            weight_step *
            static_cast<float>(layer.codes[static_cast<std::size_t>(
                o * in_features + i)]);
        const float a = quantize_unsigned(in[b * in_features + i], act_clip,
                                          act_bits);
        acc += static_cast<double>(w) * a;
      }
      out[b * out_features + o] = static_cast<float>(acc);
    }
  }
  return output;
}

}  // namespace csq
