#include "core/export.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "runtime/packed_weights.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

std::int64_t QuantizedLayerExport::storage_bits() const {
  return static_cast<std::int64_t>(codes.size()) * bits + 64;
}

QuantizedLayerExport export_layer(const std::string& name,
                                  const WeightSource& source) {
  CSQ_CHECK(source.has_finalized_codes())
      << "export_layer: " << name << " (" << source.kind()
      << ") has no exact integer form — finalize it first";
  WeightCodes codes = source.finalized_codes();
  QuantizedLayerExport layer;
  layer.name = name;
  layer.shape = source.weight_shape();
  layer.codes = std::move(codes.codes);
  layer.scale = codes.scale;
  layer.denominator = codes.denominator;
  layer.bits = codes.bits;
  return layer;
}

float export_roundtrip_error(WeightSource& source) {
  const Tensor& materialized = source.weight(/*training=*/false);
  const WeightCodes codes = source.finalized_codes();
  const float factor = codes.step();
  float max_diff = 0.0f;
  const float* w = materialized.data();
  for (std::int64_t i = 0; i < materialized.numel(); ++i) {
    // volatile forces the product through a float rounding point; without
    // it, fp-contract fuses the multiply into the subtraction (FMA) and
    // reports a phantom 1-ulp "difference" against the stored weight.
    volatile float reconstructed =
        factor *
        static_cast<float>(codes.codes[static_cast<std::size_t>(i)]);
    max_diff = std::max(max_diff, std::fabs(w[i] - reconstructed));
  }
  return max_diff;
}

namespace {

// Quantizes activations to uint8 codes in [0, 2^bits - 1] over [0, clip].
std::vector<std::uint8_t> activation_codes(const Tensor& input, int act_bits,
                                           float act_clip) {
  CSQ_CHECK(act_clip > 0.0f) << "integer forward: bad activation clip";
  CSQ_CHECK(act_bits >= 1 && act_bits <= 8)
      << "integer forward: activation codes live in uint8 (1..8 bits)";
  const auto levels = static_cast<float>(levels_per_side(act_bits));
  std::vector<std::uint8_t> codes(static_cast<std::size_t>(input.numel()));
  const float* in = input.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float normalized = std::clamp(in[i] / act_clip, 0.0f, 1.0f);
    codes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(std::lround(normalized * levels));
  }
  return codes;
}

WeightCodes to_weight_codes(const QuantizedLayerExport& layer) {
  WeightCodes codes;
  codes.codes = layer.codes;
  codes.scale = layer.scale;
  codes.denominator = layer.denominator;
  codes.bits = layer.bits;
  return codes;
}

}  // namespace

Tensor integer_linear_forward(const QuantizedLayerExport& layer,
                              const Tensor& input, int act_bits,
                              float act_clip) {
  CSQ_CHECK(layer.shape.size() == 2)
      << "integer_linear_forward expects a 2-d (OUT,IN) export";
  CSQ_CHECK(input.ndim() == 2) << "integer forward expects (B, IN)";
  const std::int64_t out_features = layer.shape[0];
  const std::int64_t in_features = layer.shape[1];
  CSQ_CHECK(in_features == input.dim(1))
      << "integer forward: in_features mismatch";
  const std::int64_t batch = input.dim(0);

  const std::vector<std::uint8_t> act =
      activation_codes(input, act_bits, act_clip);
  const runtime::PackedIntWeights weights(to_weight_codes(layer),
                                          out_features, in_features);
  const float act_step =
      act_clip / static_cast<float>(levels_per_side(act_bits));
  const float combined_scale = weights.effective_step() * act_step;

  // acc(OUT, B) = codes(OUT, IN) * act^T — the runtime's int8 GEMM with
  // exact int32 accumulation.
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(out_features * batch));
  weights.gemm(Trans::yes, batch, act.data(), in_features, acc.data(), batch,
               /*pooled=*/false);

  Tensor output({batch, out_features});
  float* out = output.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < out_features; ++o) {
      out[b * out_features + o] =
          combined_scale *
          static_cast<float>(acc[static_cast<std::size_t>(o * batch + b)]);
    }
  }
  return output;
}

Tensor reference_linear_forward(const QuantizedLayerExport& layer,
                                const Tensor& input, int act_bits,
                                float act_clip) {
  const std::int64_t out_features = layer.shape[0];
  const std::int64_t in_features = layer.shape[1];
  CSQ_CHECK(in_features == input.dim(1))
      << "reference forward: in_features mismatch";
  const std::int64_t batch = input.dim(0);
  const float weight_step = layer.step();

  Tensor output({batch, out_features});
  float* out = output.data();
  const float* in = input.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < out_features; ++o) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < in_features; ++i) {
        const float w =
            weight_step *
            static_cast<float>(layer.codes[static_cast<std::size_t>(
                o * in_features + i)]);
        const float a = quantize_unsigned(in[b * in_features + i], act_clip,
                                          act_bits);
        acc += static_cast<double>(w) * a;
      }
      out[b * out_features + o] = static_cast<float>(acc);
    }
  }
  return output;
}

}  // namespace csq
