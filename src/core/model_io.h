// Binary serialization of finalized CSQ models.
//
// Completes the deployment story: after finalization the model is a list of
// integer code tensors plus per-layer scales (core/export.h); this module
// persists that list to a compact binary container and reads it back, so a
// quantized model can ship without the training stack.
//
// Format (little-endian):
//   magic "CSQM" | u32 version | u32 layer_count
//   per layer: u32 name_len | name bytes | u32 ndim | i64 dims[ndim]
//              | i32 bits | f32 scale | f32 denominator (v2+)
//              | i16 codes[numel]
// Codes fit i16 (|q| <= 255 by construction; checked on save). v1 files
// (CSQ-only, denominator fixed at 255) still load.
//
// Version 3 is the GRAPH ARTIFACT container (runtime/graph_artifact.h): the
// same layer section followed by a "CSQG" graph section carrying the lowered
// topology and calibrated edge scales. load_quantized_model reads the layer
// section of a v3 file and ignores the graph section, so serving artifacts
// double as plain quantized-model containers; v1/v2 files load unchanged.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/export.h"
#include "nn/model.h"
#include "util/check.h"

namespace csq {

// Exports every quantizable layer of a model, in registry order. Throws if
// any quant layer has no exact integer form (WeightSource::
// has_finalized_codes — finalized CSQ, BSQ, STE-Uniform all qualify).
std::vector<QuantizedLayerExport> export_model(Model& model);

// Serializes to `path`. Returns false on I/O failure; throws check_error on
// malformed layers (e.g. codes out of the i16-representable range).
bool save_quantized_model(const std::string& path,
                          const std::vector<QuantizedLayerExport>& layers);

// Deserializes from `path`. Throws check_error on format violations
// (bad magic, truncated payload, absurd counts).
std::vector<QuantizedLayerExport> load_quantized_model(
    const std::string& path);

// Total storage of the container payload in bits (sum of per-layer
// storage_bits); used to report deployment size.
std::int64_t model_storage_bits(const std::vector<QuantizedLayerExport>& layers);

// ---- training checkpoints (float parameter state) -------------------------
//
// Distinct container ("CSQC") for mid-training state: every Parameter's
// float values in registration order. Format (little-endian):
//   magic "CSQC" | u32 version | u32 param_count
//   v1 (pre-arena, per-tensor interleaved):
//     per param: u32 name_len | name | u32 ndim | i64 dims[ndim]
//                | u8 weight_decay | f32 data[numel]
//   v2 (arena, the format save_checkpoint writes):
//     per param: u32 name_len | name | u32 ndim | i64 dims[ndim]
//                | u8 weight_decay            (metadata table)
//     f32 blob[total elements]               (one contiguous span)
// Because arena offsets are the unpadded concatenation of the per-tensor
// spans, the v2 blob is byte-identical whether it is written straight from
// the arena (one write) or tensor by tensor — model_io_test asserts this.
// v1 files keep loading: the payload is the same floats in the same order,
// only interleaved with the metadata.

// Saves every parameter of `model` as a v2 checkpoint. Binds the model's
// arena (nn/parameter_arena.h); the value payload is ONE contiguous write
// of the arena span. Returns false on I/O failure.
bool save_checkpoint(const std::string& path, Model& model);

// Same v2 bytes, written tensor by tensor without touching the arena —
// the legacy path kept as the byte-identity oracle for save_checkpoint.
bool save_checkpoint_per_tensor(const std::string& path, Model& model);

// Writes the v1 (pre-arena) layout; used to produce back-compat fixtures.
bool save_checkpoint_legacy(const std::string& path, Model& model);

// Loads a v1 or v2 checkpoint into `model`, which must have an identical
// parameter list (names, shapes, decay flags, order). Binds the arena and
// loads through ParameterArena::load_values, so every Parameter's version
// is bumped (dirty-flag contract). Throws check_error on mismatch or
// malformed files.
void load_checkpoint(const std::string& path, Model& model);

// ---- low-level container sections ----------------------------------------
//
// Shared with the runtime graph-artifact writer (runtime/graph_artifact.cpp),
// which embeds the standard layer section ahead of its graph section so one
// set of readers/writers defines the on-disk layer record.
namespace model_io {

// Container versions: v1 scale-only, v2 adds the grid denominator (the
// format save_quantized_model writes), v3 marks a trailing graph section.
constexpr std::uint32_t kLayerVersion = 2;
constexpr std::uint32_t kGraphContainerVersion = 3;

// Little-endian POD field encoding — ONE definition for every section of
// the container (layer records here, the graph section in
// runtime/graph_artifact.cpp), so the low-level format cannot drift
// between writers.
template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  CSQ_CHECK(static_cast<bool>(in)) << "model container: truncated";
  return value;
}

// Writes/validates the "CSQM" magic + version + layer count header.
void write_container_header(std::ostream& out, std::uint32_t version,
                            std::uint32_t layer_count);
// Returns {version, layer_count}; throws check_error on bad magic/bounds.
std::pair<std::uint32_t, std::uint32_t> read_container_header(
    std::istream& in);

// One layer record in the (version-independent) v2 layout. The reader
// honours `version` for the v1 denominator default.
void write_layer_record(std::ostream& out, const QuantizedLayerExport& layer);
QuantizedLayerExport read_layer_record(std::istream& in,
                                       std::uint32_t version);

}  // namespace model_io

}  // namespace csq
