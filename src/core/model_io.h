// Binary serialization of finalized CSQ models.
//
// Completes the deployment story: after finalization the model is a list of
// integer code tensors plus per-layer scales (core/export.h); this module
// persists that list to a compact binary container and reads it back, so a
// quantized model can ship without the training stack.
//
// Format (little-endian):
//   magic "CSQM" | u32 version | u32 layer_count
//   per layer: u32 name_len | name bytes | u32 ndim | i64 dims[ndim]
//              | i32 bits | f32 scale | f32 denominator (v2+)
//              | i16 codes[numel]
// Codes fit i16 (|q| <= 255 by construction; checked on save). v1 files
// (CSQ-only, denominator fixed at 255) still load.
#pragma once

#include <string>
#include <vector>

#include "core/export.h"
#include "nn/model.h"

namespace csq {

// Exports every quantizable layer of a model, in registry order. Throws if
// any quant layer has no exact integer form (WeightSource::
// has_finalized_codes — finalized CSQ, BSQ, STE-Uniform all qualify).
std::vector<QuantizedLayerExport> export_model(Model& model);

// Serializes to `path`. Returns false on I/O failure; throws check_error on
// malformed layers (e.g. codes out of the i16-representable range).
bool save_quantized_model(const std::string& path,
                          const std::vector<QuantizedLayerExport>& layers);

// Deserializes from `path`. Throws check_error on format violations
// (bad magic, truncated payload, absurd counts).
std::vector<QuantizedLayerExport> load_quantized_model(
    const std::string& path);

// Total storage of the container payload in bits (sum of per-layer
// storage_bits); used to report deployment size.
std::int64_t model_storage_bits(const std::vector<QuantizedLayerExport>& layers);

}  // namespace csq
