// CsqWeightSource — the paper's bi-level continuous-sparsification weight
// parameterization (Eq. 3/4/5) with fully analytic gradients (no STE).
//
// Trainable variables per layer (paper Section III-A):
//   s            per-layer scale (scalar),
//   m_p^(b)      bit-representation logits of the positive part, one plane
//                of the weight shape per bit b in [0, 8),
//   m_n^(b)      same for the negative part,
//   m_B^(b)      bit-selection logits, one scalar per bit.
//
// Materialized weight (Eq. 5):
//   W = s/(2^8-1) * sum_b ( f_beta(m_p^(b)) - f_beta(m_n^(b)) ) * 2^b
//                         * f_beta(m_B^(b))
//
// Three modes follow Algorithm 1:
//   joint      — both levels soft; bit masks receive loss + budget gradients.
//   finetune   — the bit mask is frozen to q_b = I(m_B^(b) >= 0) (Eq. 4);
//                only s, m_p, m_n train, under a rewound temperature.
//   finalized  — every gate is a unit step; the weight is exactly
//                W = s/255 * code with integer codes, |code| <= 255.
#pragma once

#include <array>

#include "core/gate.h"
#include "nn/weight_source.h"
#include "quant/bitplane_engine.h"

namespace csq {

enum class CsqMode { joint, finetune, finalized };

struct CsqWeightOptions {
  // 0 = learned precision (bi-level CSQ). A positive value n fixes the mask
  // to the lowest n bits and disables mask training — the paper's
  // "CSQ-Uniform" ablation arm (Eq. 3).
  int fixed_precision = 0;
  // Initial logit magnitude for the bit-representation planes.
  float init_logit = 0.2f;
  // Initial logit for active bit-mask entries.
  float mask_init = 0.3f;
};

class CsqWeightSource final : public WeightSource {
 public:
  static constexpr int kBits = 8;
  static constexpr float kDenominator = 255.0f;  // 2^8 - 1

  CsqWeightSource(const std::string& name, std::vector<std::int64_t> shape,
                  std::int64_t fan_in, const CsqWeightOptions& options,
                  Rng& rng);

  // --- WeightSource interface ------------------------------------------
  const Tensor& weight(bool training) override;
  void backward(const Tensor& grad_weight) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "csq"; }
  std::int64_t weight_count() const override { return element_count_; }
  std::vector<std::int64_t> weight_shape() const override { return shape_; }
  // Storage bits per weight under the *current* (hard-counted) bit mask —
  // the paper counts precision as sum_b I(m_B^(b) >= 0) throughout training.
  double bits_per_weight() const override { return layer_precision(); }
  // Finalized sources are exactly s/255 * code — the fixed-point form the
  // export container and the integer runtime consume.
  bool has_finalized_codes() const override {
    return mode_ == CsqMode::finalized;
  }
  WeightCodes finalized_codes() const override;

  // --- CSQ-specific API --------------------------------------------------
  void set_beta(float beta);
  float beta() const { return beta_; }
  CsqMode mode() const { return mode_; }

  // Hard-counted layer precision sum_b I(mask bit active).
  int layer_precision() const;

  // Adds the budget-aware regularizer gradient to m_B (paper Eq. 6/7):
  //   d/dm_B [ strength * sum_b f_beta(m_B^(b)) ]
  // where strength = lambda * DeltaS is computed by the caller. No-op unless
  // the source is in joint mode with a trainable mask.
  void add_budget_regularizer_gradient(float strength);

  // Freezes the bit selection to q_b = I(m_B^(b) >= 0) and enters finetune
  // mode (Algorithm 1, "Mixed-precision finetuning").
  void freeze_mask();

  // Snaps every gate to the unit step; subsequent materializations are
  // exactly quantized (integer code times s/255).
  void finalize();

  // Integer codes of the finalized weight, in [-(2^8-1), 2^8-1]. Requires
  // finalized mode.
  std::vector<std::int32_t> integer_codes() const;
  float scale() const { return scale_.value[0]; }
  const std::vector<std::int64_t>& shape() const { return shape_; }

 private:
  void materialize_soft(bool cache_for_backward);
  void materialize_hard();
  // Eval dirty-flag stamp: parameter versions + scheme revision. Any
  // set_beta / freeze_mask / finalize / optimizer step changes it.
  std::uint64_t state_stamp() const;
  // Stages the engine planes for the hard paths (frozen-active bits only).
  void stage_hard_planes() const;
  bool mask_bit_active(int bit) const;
  float soft_mask_value(int bit) const;
  bool mask_trains() const {
    return mode_ == CsqMode::joint && fixed_precision_ == 0;
  }

  Parameter scale_;
  std::array<Parameter, kBits> pos_logits_;
  std::array<Parameter, kBits> neg_logits_;
  Parameter mask_logits_;  // shape (kBits)
  std::array<bool, kBits> frozen_mask_{};

  Tensor quantized_;
  // Shared materialization pipeline: owns the gate caches and the reduction
  // workspace, so steady-state steps allocate nothing. Mutable because the
  // const hard paths (integer_codes) stage planes through it.
  mutable BitPlaneEngine engine_;
  // Per staged plane: originating bit index and the soft mask value used at
  // the last soft materialization (plane order == engine plane order).
  std::array<int, kBits> plane_bits_{};
  std::array<float, kBits> plane_mask_values_{};
  int staged_planes_ = 0;
  // The gate cache is only usable by backward() while nothing that changes
  // the gate values (set_beta, freeze_mask, finalize, a non-training
  // materialization) has run since the caching forward.
  bool cache_valid_ = false;

  std::vector<std::int64_t> shape_;
  std::int64_t element_count_ = 0;
  float beta_ = 1.0f;
  CsqMode mode_ = CsqMode::joint;
  int fixed_precision_ = 0;
  // Bumped on every scheme mutation (set_beta, freeze_mask, finalize) so
  // state_stamp() changes even when no parameter version moved.
  std::uint64_t internal_rev_ = 0;
};

// Registry-recording factory (the CSQ trainer drives temperature, budget
// regularization and finalization through the registry).
WeightSourceFactory csq_weight_factory(
    std::vector<CsqWeightSource*>* registry,
    const CsqWeightOptions& options = {});

}  // namespace csq
