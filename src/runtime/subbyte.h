// Flat sub-byte storage for weight codes: sign/magnitude bit-planes and
// signed nibble packing.
//
// BitPlanes is the storage form of the runtime's bit-serial layers: one
// packed sign mask plus one packed bitmask per magnitude bit, 64 codes per
// uint64 word. Reconstruction is the exact power-of-two combination
//   code = (sign ? -1 : +1) * sum_t (plane_t(bit) << t)
// — the same shift-and-add a per-plane GEMM pass would perform, done once at
// pack time so the compute kernel can consume the collapsed int8 codes. The
// round trip is bit-exact by construction and fuzz-tested.
//
// Nibble packing stores two signed 4-bit codes (range [-8, 7]) per byte, low
// nibble first, matching the in-register decode of the nibble GEMM
// micro-kernel (mask, shift, xor/sub sign extension).
#pragma once

#include <cstdint>
#include <vector>

namespace csq {
namespace runtime {

struct BitPlanes {
  std::int64_t count = 0;  // number of codes
  int planes = 0;          // magnitude bits (0 for an all-zero span)
  std::vector<std::uint64_t> sign;  // ceil(count/64) words
  std::vector<std::uint64_t> bits;  // planes * ceil(count/64) words

  std::int64_t words_per_plane() const { return (count + 63) / 64; }
  // Total packed payload in bits (sign plane + magnitude planes).
  std::int64_t storage_bits() const {
    return count * (1 + static_cast<std::int64_t>(planes));
  }
};

// Packs int8 codes into sign/magnitude planes. The plane count is the
// position of the highest magnitude bit used (max |code| <= 127 always fits
// in 7 planes).
BitPlanes pack_bit_planes(const std::int8_t* codes, std::int64_t count);

// Exact inverse of pack_bit_planes.
void unpack_bit_planes(const BitPlanes& planes, std::int8_t* codes);

// Bytes needed to hold `count` signed nibbles, two per byte.
std::int64_t nibble_bytes(std::int64_t count);

// Packs codes (each in [-8, 7], checked) two per byte, low nibble first; an
// odd trailing code leaves the final high nibble zero.
void pack_nibbles(const std::int8_t* codes, std::int64_t count,
                  std::uint8_t* packed);

// Exact inverse of pack_nibbles.
void unpack_nibbles(const std::uint8_t* packed, std::int64_t count,
                    std::int8_t* codes);

}  // namespace runtime
}  // namespace csq
