// Persisted CompiledGraph artifacts — the serving deployment container.
//
// save_graph serializes a calibrated graph into a version-3 "CSQM"
// container (core/model_io.h): the standard quantized-layer section (so
// load_quantized_model still reads the weights of a serving artifact),
// followed by a "CSQG" graph section holding the recorded lowering program
// (topology, folded batch-norm affines, biases, act-quant pins) and the
// resolved per-edge activation scales/zero-points.
//
// load_graph replays the program through runtime::build_graph and restores
// the edge scales: the float model never exists in the serving process, no
// calibration pass is needed, and the loaded graph's batched forward is
// bit-identical to the graph that was saved (replay and requant-constant
// resolution are deterministic).
//
// Crash safety: save_graph serializes to memory, writes a sibling temp
// file, fsyncs it, atomically renames it over the destination and fsyncs
// the parent directory — a crash or stream failure mid-write leaves the
// previous complete artifact (or nothing), never a truncated file, and the
// published name survives a crash right after the rename. The graph section
// is written at v5, whose last four bytes are a CRC-32 trailer over every
// preceding container byte; load_graph verifies it before trusting any
// field, so torn or bit-flipped artifacts are rejected with a clean
// check_error. v1–v4 sections still load (pre-v4: no trailer, no
// verification).
//
// Page sharing: v5 appends a packed-weights section — each conv/linear
// layer's int8 planes and prepacked kernel panels, 64-byte aligned — so
// load_graph_mmap can map the artifact read-only and build graphs whose
// PackedIntWeights BORROW those pages instead of copying them. N serving
// processes (and all their replicas) then share one page cache for the
// immutable weight data; per-process unique RSS barely moves as replicas
// multiply.
#pragma once

#include <string>

#include "runtime/compiled_graph.h"

namespace csq {
namespace runtime {

// Serializes `graph` to `path`. The graph must have resolved edge scales
// (calibrate() ran, or every edge is act-quant-pinned and the input edge
// calibrated) — throws check_error otherwise; returns false on I/O failure.
bool save_graph(const std::string& path, CompiledGraph& graph);

// Deserializes a graph artifact. Throws check_error on format violations
// (bad magic, truncated payload, absurd counts, non-artifact versions).
// `pooled` selects thread-pool execution of the loaded graph's forwards.
CompiledGraph load_graph(const std::string& path, bool pooled = true);

// Memory-mapped load (v5 artifacts only): maps `path` read-only, verifies
// the CRC-32 trailer over the whole mapping BEFORE trusting any field, then
// builds a graph whose PackedIntWeights borrow planes/panels straight from
// the mapping — the weight codes are never copied into the process. The
// mapping lives as long as any graph sharing the loaded program
// (replicate / rebuild_replica keep it alive), and the loaded graph's
// forwards are bit-identical to a load_graph copy of the same file.
// Throws check_error on corruption or pre-v5 artifacts; such programs
// cannot be re-saved (save_graph rejects them — the owned codes are absent).
CompiledGraph load_graph_mmap(const std::string& path, bool pooled = true);

}  // namespace runtime
}  // namespace csq
