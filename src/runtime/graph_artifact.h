// Persisted CompiledGraph artifacts — the serving deployment container.
//
// save_graph serializes a calibrated graph into a version-3 "CSQM"
// container (core/model_io.h): the standard quantized-layer section (so
// load_quantized_model still reads the weights of a serving artifact),
// followed by a "CSQG" graph section holding the recorded lowering program
// (topology, folded batch-norm affines, biases, act-quant pins) and the
// resolved per-edge activation scales/zero-points.
//
// load_graph replays the program through runtime::build_graph and restores
// the edge scales: the float model never exists in the serving process, no
// calibration pass is needed, and the loaded graph's batched forward is
// bit-identical to the graph that was saved (replay and requant-constant
// resolution are deterministic).
//
// Crash safety: save_graph serializes to memory, writes a sibling temp file
// and atomically renames it over the destination — a crash or stream
// failure mid-write leaves the previous complete artifact (or nothing),
// never a truncated file. The graph section is written at v4, whose last
// four bytes are a CRC-32 trailer over every preceding container byte;
// load_graph verifies it before trusting any field, so torn or bit-flipped
// artifacts are rejected with a clean check_error. v1–v3 sections still
// load (no trailer, no verification).
#pragma once

#include <string>

#include "runtime/compiled_graph.h"

namespace csq {
namespace runtime {

// Serializes `graph` to `path`. The graph must have resolved edge scales
// (calibrate() ran, or every edge is act-quant-pinned and the input edge
// calibrated) — throws check_error otherwise; returns false on I/O failure.
bool save_graph(const std::string& path, CompiledGraph& graph);

// Deserializes a graph artifact. Throws check_error on format violations
// (bad magic, truncated payload, absurd counts, non-artifact versions).
// `pooled` selects thread-pool execution of the loaded graph's forwards.
CompiledGraph load_graph(const std::string& path, bool pooled = true);

}  // namespace runtime
}  // namespace csq
