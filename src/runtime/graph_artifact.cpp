#include "runtime/graph_artifact.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/model_io.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace csq {
namespace runtime {

namespace {

constexpr char kGraphMagic[4] = {'C', 'S', 'Q', 'G'};
// Graph-section versions: v1 square pools only (no kernel_w field, no
// average pooling); v2 adds the pool kernel_w field and the kAvgPool
// instruction; v3 adds the per-instruction kernel_kind (the recorded GEMM
// path of a conv/linear layer) and the avg-pool exclude_pad flag; v4 adds
// nothing to the section body but appends a CRC-32 trailer over every
// preceding container byte, so torn or bit-flipped artifacts are rejected
// at load instead of deserialized. The writer emits v4; the reader accepts
// all — v1 files (tests/data/golden_v3.csqm pins one) decode kernel_w = 0
// (square), pre-v3 files decode kernel_kind = -1 (re-resolved
// deterministically at build_graph) and exclude_pad = false, and pre-v4
// files simply skip CRC verification, preserving bit-identical serving.
constexpr std::uint32_t kGraphSectionVersion = 4;
constexpr std::uint32_t kMinGraphSectionVersion = 1;
// Sanity bounds for reading untrusted artifacts.
constexpr std::uint32_t kMaxInstrs = 1 << 20;
constexpr std::uint32_t kMaxEdges = 1 << 20;
constexpr std::uint32_t kMaxVectorLength = 1 << 24;
constexpr std::int64_t kMaxExtent = 1 << 20;
constexpr std::size_t kCrcTrailerBytes = sizeof(std::uint32_t);

using model_io::read_pod;
using model_io::write_pod;

void write_float_vector(std::ostream& out, const std::vector<float>& values) {
  write_pod(out, static_cast<std::uint32_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
}

std::vector<float> read_float_vector(std::istream& in) {
  const auto count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(count <= kMaxVectorLength)
      << "graph artifact: absurd vector length " << count;
  std::vector<float> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  CSQ_CHECK(static_cast<bool>(in)) << "graph artifact: truncated";
  return values;
}

// Serializes the whole container (layer section + graph section, no CRC
// trailer) — the byte range the v4 trailer covers.
void write_payload(std::ostream& out, const GraphProgram& program,
                   const LowerOptions& options,
                   const std::vector<EdgeScaleRecord>& edges) {
  model_io::write_container_header(
      out, model_io::kGraphContainerVersion,
      static_cast<std::uint32_t>(program.layers.size()));
  for (const QuantizedLayerExport& layer : program.layers) {
    model_io::write_layer_record(out, layer);
  }

  out.write(kGraphMagic, sizeof(kGraphMagic));
  write_pod(out, kGraphSectionVersion);
  write_pod(out, options.in_channels);
  write_pod(out, options.in_height);
  write_pod(out, options.in_width);
  write_pod(out, static_cast<std::int32_t>(options.act_bits));

  write_pod(out, static_cast<std::uint32_t>(program.instrs.size()));
  for (const ProgramInstr& instr : program.instrs) {
    write_pod(out, static_cast<std::uint8_t>(instr.kind));
    write_pod(out, instr.layer);
    write_pod(out, instr.kernel);
    write_pod(out, instr.kernel_w);
    write_pod(out, instr.stride);
    write_pod(out, instr.pad);
    write_pod(out, instr.act_bits);
    write_pod(out, instr.clip);
    write_pod(out, instr.kernel_kind);
    write_pod(out, static_cast<std::uint8_t>(instr.exclude_pad ? 1 : 0));
    write_float_vector(out, instr.scale);
    write_float_vector(out, instr.shift);
    write_float_vector(out, instr.bias);
  }

  write_pod(out, static_cast<std::uint32_t>(edges.size()));
  for (const EdgeScaleRecord& edge : edges) {
    write_pod(out, static_cast<std::uint8_t>(edge.is_acc ? 1 : 0));
    write_pod(out, edge.scale);
    write_pod(out, edge.levels);
    write_pod(out, edge.zero_point);
  }
}

}  // namespace

bool save_graph(const std::string& path, CompiledGraph& graph) {
  // Resolve (and validate) the scales before touching the filesystem so an
  // uncalibrated graph fails cleanly without leaving a partial file.
  const std::vector<EdgeScaleRecord> edges = graph.edge_scales();
  const GraphProgram& program = graph.program();
  const LowerOptions& options = graph.options();
  CSQ_CHECK(!program.instrs.empty())
      << "save_graph: graph carries no lowering program";

  // Serialize to memory first: the CRC trailer covers the exact payload
  // bytes, and the file write below becomes a single streamed copy.
  std::ostringstream buffer(std::ios::binary);
  write_payload(buffer, program, options, edges);
  CSQ_CHECK(static_cast<bool>(buffer))
      << "save_graph: in-memory serialization failed";
  const std::string payload = buffer.str();
  const std::uint32_t checksum = crc32(payload.data(), payload.size());

  // Crash-safe publish: write a sibling temp file, fsync-free but fully
  // flushed, then atomically rename over the destination. A crash or I/O
  // failure mid-write leaves the destination either absent or the previous
  // complete artifact — never a truncated file a later load_graph trusts.
  static std::atomic<std::uint64_t> temp_counter{0};
  const std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    // Mid-write I/O failure injection (disk full): the destination must be
    // untouched and the temp file must not survive.
    CSQ_FAILPOINT_STREAM("artifact.write", out);
    write_pod(out, checksum);
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      return false;
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return false;
  }
  return true;
}

CompiledGraph load_graph(const std::string& path, bool pooled) {
  CSQ_FAILPOINT("artifact.read");
  std::ifstream file(path, std::ios::binary);
  CSQ_CHECK(static_cast<bool>(file))
      << "graph artifact: cannot open " << path;
  // Read the whole artifact up front: the v4 CRC trailer covers every
  // preceding byte, so integrity is decided on the exact file image before
  // any field is trusted (artifacts are compact — the weights are sub-byte
  // codes).
  std::ostringstream sink(std::ios::binary);
  sink << file.rdbuf();
  CSQ_CHECK(static_cast<bool>(file) || file.eof())
      << "graph artifact: cannot read " << path;
  const std::string bytes = sink.str();
  std::istringstream in(bytes, std::ios::binary);

  const auto [version, layer_count] = model_io::read_container_header(in);
  CSQ_CHECK(version == model_io::kGraphContainerVersion)
      << "graph artifact: " << path << " is a plain quantized-model "
      << "container (version " << version << ") with no graph section";

  GraphProgram program;
  program.layers.reserve(layer_count);
  for (std::uint32_t l = 0; l < layer_count; ++l) {
    program.layers.push_back(model_io::read_layer_record(in, version));
  }

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  CSQ_CHECK(in && std::equal(magic, magic + 4, kGraphMagic))
      << "graph artifact: bad graph-section magic";
  const auto section_version = read_pod<std::uint32_t>(in);
  CSQ_CHECK(section_version >= kMinGraphSectionVersion &&
            section_version <= kGraphSectionVersion)
      << "graph artifact: unsupported graph-section version "
      << section_version;

  // v4+: the last four bytes are crc32 over everything before them. Verify
  // BEFORE deserializing the remaining sections — a torn or bit-flipped
  // artifact must be rejected as corrupt, not parsed into a wrong graph.
  if (section_version >= 4) {
    CSQ_CHECK(bytes.size() > kCrcTrailerBytes)
        << "graph artifact: truncated";
    const std::size_t payload_size = bytes.size() - kCrcTrailerBytes;
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + payload_size, kCrcTrailerBytes);
    const std::uint32_t actual = crc32(bytes.data(), payload_size);
    CSQ_CHECK(stored == actual)
        << "graph artifact: CRC mismatch (stored " << stored << ", computed "
        << actual << ") — torn write or corrupted file";
  }

  LowerOptions options;
  options.in_channels = read_pod<std::int64_t>(in);
  options.in_height = read_pod<std::int64_t>(in);
  options.in_width = read_pod<std::int64_t>(in);
  options.act_bits = read_pod<std::int32_t>(in);
  options.pooled = pooled;
  CSQ_CHECK(options.in_channels > 0 && options.in_height > 0 &&
            options.in_width > 0)
      << "graph artifact: non-positive input extents";

  const auto instr_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(instr_count <= kMaxInstrs)
      << "graph artifact: absurd instruction count " << instr_count;
  program.instrs.reserve(instr_count);
  // v1 sections predate the kAvgPool instruction and the kernel_w field.
  const auto max_kind = static_cast<std::uint8_t>(
      section_version >= 2 ? ProgramInstr::Kind::kAvgPool
                           : ProgramInstr::Kind::kLinear);
  for (std::uint32_t i = 0; i < instr_count; ++i) {
    ProgramInstr instr;
    const auto kind = read_pod<std::uint8_t>(in);
    CSQ_CHECK(kind <= max_kind)
        << "graph artifact: unknown instruction kind "
        << static_cast<int>(kind);
    instr.kind = static_cast<ProgramInstr::Kind>(kind);
    instr.layer = read_pod<std::int32_t>(in);
    instr.kernel = read_pod<std::int64_t>(in);
    if (section_version >= 2) instr.kernel_w = read_pod<std::int64_t>(in);
    instr.stride = read_pod<std::int64_t>(in);
    instr.pad = read_pod<std::int64_t>(in);
    instr.act_bits = read_pod<std::int32_t>(in);
    instr.clip = read_pod<float>(in);
    if (section_version >= 3) {
      instr.kernel_kind = read_pod<std::int32_t>(in);
      CSQ_CHECK(instr.kernel_kind >= -1 && instr.kernel_kind <= 3)
          << "graph artifact: unknown kernel kind " << instr.kernel_kind;
      instr.exclude_pad = read_pod<std::uint8_t>(in) != 0;
    }
    instr.scale = read_float_vector(in);
    instr.shift = read_float_vector(in);
    instr.bias = read_float_vector(in);
    // Field validation the replay builder does not re-derive: a zero pool
    // kernel would reach an integer division and a wild act_bits an
    // undefined shift — corrupted artifacts must throw, not crash.
    if (instr.kind == ProgramInstr::Kind::kConv ||
        instr.kind == ProgramInstr::Kind::kMaxPool ||
        instr.kind == ProgramInstr::Kind::kAvgPool) {
      CSQ_CHECK(instr.kernel >= 1 && instr.kernel <= kMaxExtent)
          << "graph artifact: bad kernel extent " << instr.kernel;
      CSQ_CHECK(instr.kernel_w >= 0 && instr.kernel_w <= kMaxExtent)
          << "graph artifact: bad kernel width " << instr.kernel_w;
      CSQ_CHECK(instr.stride >= 1 && instr.stride <= kMaxExtent &&
                instr.pad >= 0 && instr.pad <= kMaxExtent)
          << "graph artifact: bad conv/pool stride/pad";
    }
    if (instr.kind == ProgramInstr::Kind::kActQuant) {
      CSQ_CHECK(instr.act_bits >= 1 && instr.act_bits <= 32)
          << "graph artifact: bad act-quant bits " << instr.act_bits;
    }
    if (section_version == 1 &&
        instr.kind == ProgramInstr::Kind::kMaxPool) {
      // v1 recorded only the pool kernel; the stride field held its unused
      // ProgramInstr default (1) while the replay pooled with
      // stride == kernel. Normalize to the explicit v2 encoding.
      instr.stride = instr.kernel;
      instr.pad = 0;
    }
    program.instrs.push_back(std::move(instr));
  }

  const auto edge_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(edge_count <= kMaxEdges)
      << "graph artifact: absurd edge count " << edge_count;
  std::vector<EdgeScaleRecord> edges;
  edges.reserve(edge_count);
  for (std::uint32_t e = 0; e < edge_count; ++e) {
    EdgeScaleRecord record;
    record.is_acc = read_pod<std::uint8_t>(in) != 0;
    record.scale = read_pod<float>(in);
    record.levels = read_pod<float>(in);
    record.zero_point = read_pod<std::int32_t>(in);
    edges.push_back(record);
  }

  CompiledGraph graph = build_graph(std::move(program), options);
  graph.restore_edge_scales(edges);
  return graph;
}

}  // namespace runtime
}  // namespace csq
