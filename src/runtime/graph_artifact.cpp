#include "runtime/graph_artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <sstream>
#include <streambuf>

#include "core/model_io.h"
#include "runtime/packed_weights.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace csq {
namespace runtime {

namespace {

constexpr char kGraphMagic[4] = {'C', 'S', 'Q', 'G'};
// Graph-section versions: v1 square pools only (no kernel_w field, no
// average pooling); v2 adds the pool kernel_w field and the kAvgPool
// instruction; v3 adds the per-instruction kernel_kind (the recorded GEMM
// path of a conv/linear layer) and the avg-pool exclude_pad flag; v4 adds
// nothing to the section body but appends a CRC-32 trailer over every
// preceding container byte, so torn or bit-flipped artifacts are rejected
// at load instead of deserialized; v5 appends a packed-weights section
// (each layer's int8 planes + prepacked kernel panels, 64-byte aligned)
// between the edge records and the CRC trailer, so load_graph_mmap can
// borrow weight pages straight from a read-only mapping. The writer emits
// v5; the reader accepts all — v1 files (tests/data/golden_v3.csqm pins
// one) decode kernel_w = 0 (square), pre-v3 files decode kernel_kind = -1
// (re-resolved deterministically at build_graph) and exclude_pad = false,
// pre-v4 files simply skip CRC verification, and load_graph ignores the v5
// weight section entirely (it re-packs from the codes), preserving
// bit-identical serving.
constexpr std::uint32_t kGraphSectionVersion = 5;
constexpr std::uint32_t kMinGraphSectionVersion = 1;
// Sanity bounds for reading untrusted artifacts.
constexpr std::uint32_t kMaxInstrs = 1 << 20;
constexpr std::uint32_t kMaxEdges = 1 << 20;
constexpr std::uint32_t kMaxVectorLength = 1 << 24;
constexpr std::int64_t kMaxExtent = 1 << 20;
constexpr std::size_t kCrcTrailerBytes = sizeof(std::uint32_t);
// File-offset alignment of every weight-section blob. mmap bases are
// page-aligned, so file-offset alignment IS memory alignment for the
// borrowed int16 panels (and keeps blobs cache-line aligned).
constexpr std::size_t kWeightAlignment = 64;

using model_io::read_pod;
using model_io::write_pod;

void write_float_vector(std::ostream& out, const std::vector<float>& values) {
  write_pod(out, static_cast<std::uint32_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
}

std::vector<float> read_float_vector(std::istream& in) {
  const auto count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(count <= kMaxVectorLength)
      << "graph artifact: absurd vector length " << count;
  std::vector<float> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  CSQ_CHECK(static_cast<bool>(in)) << "graph artifact: truncated";
  return values;
}

// Zero-pads `out` so the next byte lands on a kWeightAlignment boundary of
// the payload (== file) offset.
void pad_to_alignment(std::ostream& out) {
  static const char zeros[kWeightAlignment] = {};
  const auto pos = static_cast<std::size_t>(out.tellp());
  const std::size_t misalign = pos % kWeightAlignment;
  if (misalign != 0) {
    out.write(zeros,
              static_cast<std::streamsize>(kWeightAlignment - misalign));
  }
}

// Serializes the whole container (layer section + graph section + v5
// packed-weights section, no CRC trailer) — the byte range the trailer
// covers. `weights` are the built graph's packed layers in lowering order.
void write_payload(std::ostream& out, const GraphProgram& program,
                   const LowerOptions& options,
                   const std::vector<EdgeScaleRecord>& edges,
                   const std::vector<const PackedIntWeights*>& weights) {
  model_io::write_container_header(
      out, model_io::kGraphContainerVersion,
      static_cast<std::uint32_t>(program.layers.size()));
  for (const QuantizedLayerExport& layer : program.layers) {
    model_io::write_layer_record(out, layer);
  }

  out.write(kGraphMagic, sizeof(kGraphMagic));
  write_pod(out, kGraphSectionVersion);
  write_pod(out, options.in_channels);
  write_pod(out, options.in_height);
  write_pod(out, options.in_width);
  write_pod(out, static_cast<std::int32_t>(options.act_bits));

  write_pod(out, static_cast<std::uint32_t>(program.instrs.size()));
  std::vector<std::int32_t> weight_layer_indices;
  for (const ProgramInstr& instr : program.instrs) {
    if (instr.kind == ProgramInstr::Kind::kConv ||
        instr.kind == ProgramInstr::Kind::kLinear) {
      weight_layer_indices.push_back(instr.layer);
    }
    write_pod(out, static_cast<std::uint8_t>(instr.kind));
    write_pod(out, instr.layer);
    write_pod(out, instr.kernel);
    write_pod(out, instr.kernel_w);
    write_pod(out, instr.stride);
    write_pod(out, instr.pad);
    write_pod(out, instr.act_bits);
    write_pod(out, instr.clip);
    write_pod(out, instr.kernel_kind);
    write_pod(out, static_cast<std::uint8_t>(instr.exclude_pad ? 1 : 0));
    write_float_vector(out, instr.scale);
    write_float_vector(out, instr.shift);
    write_float_vector(out, instr.bias);
  }

  write_pod(out, static_cast<std::uint32_t>(edges.size()));
  for (const EdgeScaleRecord& edge : edges) {
    write_pod(out, static_cast<std::uint8_t>(edge.is_acc ? 1 : 0));
    write_pod(out, edge.scale);
    write_pod(out, edge.levels);
    write_pod(out, edge.zero_point);
  }

  // v5 packed-weights section: the exact bytes the serving-time GEMM
  // consumes, one entry per conv/linear layer in lowering order, every blob
  // aligned so a mapped view can be consumed in place.
  CSQ_CHECK(weights.size() == weight_layer_indices.size())
      << "save_graph: " << weights.size() << " packed layers for "
      << weight_layer_indices.size() << " conv/linear instructions";
  write_pod(out, static_cast<std::uint32_t>(weights.size()));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const PackedIntWeights& w = *weights[i];
    const std::int64_t count = w.rows() * w.cols();
    write_pod(out, weight_layer_indices[i]);
    write_pod(out, w.rows());
    write_pod(out, w.cols());
    write_pod(out, static_cast<std::int32_t>(w.shift()));
    write_pod(out, static_cast<std::int32_t>(w.kernel()));
    write_pod(out, static_cast<std::uint8_t>(w.split() ? 1 : 0));
    pad_to_alignment(out);
    out.write(reinterpret_cast<const char*>(w.primary_data()),
              static_cast<std::streamsize>(count));
    if (w.split()) {
      pad_to_alignment(out);
      out.write(reinterpret_cast<const char*>(w.low_data()),
                static_cast<std::streamsize>(count));
    }
    switch (w.kernel()) {
      case WeightKernel::kBitSerial:
      case WeightKernel::kBitSerialWide: {
        const std::int64_t panel_count =
            gemm_s8u8_lowbit_packed_a_size(w.rows(), w.cols());
        pad_to_alignment(out);
        out.write(reinterpret_cast<const char*>(w.lowbit_panel_data()),
                  static_cast<std::streamsize>(panel_count));
        break;
      }
      case WeightKernel::kNibble: {
        const std::int64_t panel_count =
            gemm_s8u8_nibble_packed_a_size(w.rows(), w.cols());
        pad_to_alignment(out);
        out.write(reinterpret_cast<const char*>(w.nibble_panel_data()),
                  static_cast<std::streamsize>(panel_count));
        break;
      }
      default: {
        const std::int64_t panel_count =
            gemm_s8u8_packed_a_size(w.rows(), w.cols());
        pad_to_alignment(out);
        out.write(
            reinterpret_cast<const char*>(w.s8u8_panel_data()),
            static_cast<std::streamsize>(panel_count *
                                         static_cast<std::int64_t>(
                                             sizeof(std::int16_t))));
        if (w.split()) {
          pad_to_alignment(out);
          out.write(
              reinterpret_cast<const char*>(w.s8u8_low_panel_data()),
              static_cast<std::streamsize>(panel_count *
                                           static_cast<std::int64_t>(
                                               sizeof(std::int16_t))));
        }
        break;
      }
    }
  }
}

// Forces `path`'s dirty state to stable storage: file data pages for a
// regular file, the entry table for a directory (pass O_DIRECTORY).
bool sync_path(const char* path, int flags) {
  const int fd = ::open(path, flags | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// Directory component of `path` ("." when the path has none) — the directory
// whose entry table must be fsynced for a rename into it to be durable.
std::string parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---- shared parse of the layer + graph sections ---------------------------

// Read-only istream over an existing byte span (the mmap'd artifact) with
// full seek support — parsing never copies the underlying bytes.
class SpanStreamBuf final : public std::streambuf {
 public:
  SpanStreamBuf(const char* data, std::size_t size) {
    char* base = const_cast<char*>(data);
    setg(base, base, base + size);
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) return pos_type(off_type(-1));
    const off_type size = egptr() - eback();
    off_type target = 0;
    switch (dir) {
      case std::ios_base::beg:
        target = off;
        break;
      case std::ios_base::cur:
        target = (gptr() - eback()) + off;
        break;
      case std::ios_base::end:
        target = size + off;
        break;
      default:
        return pos_type(off_type(-1));
    }
    if (target < 0 || target > size) return pos_type(off_type(-1));
    setg(eback(), eback() + target, egptr());
    return pos_type(target);
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

// Layer-record metadata without the code payload: reads name/shape/bits/
// scale/denominator, then SEEKS over the i16 codes (layer.codes stays
// empty) — the mmap path packs from the v5 weight section instead of the
// codes, so it never materializes them.
QuantizedLayerExport read_layer_metadata(std::istream& in,
                                         std::uint32_t version) {
  QuantizedLayerExport layer;
  const auto name_length = read_pod<std::uint32_t>(in);
  CSQ_CHECK(name_length <= 4096) << "graph artifact: absurd name length";
  layer.name.resize(name_length);
  in.read(layer.name.data(), name_length);
  CSQ_CHECK(static_cast<bool>(in)) << "graph artifact: truncated name";

  const auto rank = read_pod<std::uint32_t>(in);
  CSQ_CHECK(rank <= 8) << "graph artifact: absurd layer rank";
  layer.shape.resize(rank);
  std::int64_t count = 1;
  constexpr std::int64_t kMaxElements = std::int64_t{1} << 33;
  for (std::uint32_t d = 0; d < rank; ++d) {
    layer.shape[d] = read_pod<std::int64_t>(in);
    CSQ_CHECK(layer.shape[d] >= 0) << "graph artifact: negative dim";
    CSQ_CHECK(layer.shape[d] == 0 || count <= kMaxElements / layer.shape[d])
        << "graph artifact: absurd element count";
    count *= layer.shape[d];
  }

  layer.bits = read_pod<std::int32_t>(in);
  CSQ_CHECK(layer.bits >= 0 && layer.bits <= 8)
      << "graph artifact: bits out of range";
  layer.scale = read_pod<float>(in);
  if (version >= 2) {
    layer.denominator = read_pod<float>(in);
    CSQ_CHECK(layer.denominator >= 1.0f && layer.denominator <= 255.0f)
        << "graph artifact: bad grid denominator";
  }
  in.seekg(static_cast<std::streamoff>(count) *
               static_cast<std::streamoff>(sizeof(std::int16_t)),
           std::ios_base::cur);
  CSQ_CHECK(static_cast<bool>(in)) << "graph artifact: truncated codes";
  return layer;
}

struct ParsedArtifact {
  GraphProgram program;
  LowerOptions options;
  std::vector<EdgeScaleRecord> edges;
  std::uint32_t section_version = 0;
};

// Parses the layer + graph sections from `in`, whose underlying image is
// [data, data + size). For v4+ the CRC trailer (the last four bytes of the
// image) is verified BEFORE any graph-section field is deserialized.
// skip_layer_codes leaves every layer's code vector empty (mmap path).
// On return the stream is positioned right after the edge records — where
// the v5 weight section begins.
ParsedArtifact parse_artifact(std::istream& in, const char* data,
                              std::size_t size, bool pooled,
                              bool skip_layer_codes) {
  ParsedArtifact parsed;
  const auto [version, layer_count] = model_io::read_container_header(in);
  CSQ_CHECK(version == model_io::kGraphContainerVersion)
      << "graph artifact: file is a plain quantized-model container "
      << "(version " << version << ") with no graph section";

  GraphProgram& program = parsed.program;
  program.layers.reserve(layer_count);
  for (std::uint32_t l = 0; l < layer_count; ++l) {
    program.layers.push_back(skip_layer_codes
                                 ? read_layer_metadata(in, version)
                                 : model_io::read_layer_record(in, version));
  }

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  CSQ_CHECK(in && std::equal(magic, magic + 4, kGraphMagic))
      << "graph artifact: bad graph-section magic";
  const auto section_version = read_pod<std::uint32_t>(in);
  CSQ_CHECK(section_version >= kMinGraphSectionVersion &&
            section_version <= kGraphSectionVersion)
      << "graph artifact: unsupported graph-section version "
      << section_version;
  parsed.section_version = section_version;

  // v4+: the last four bytes are crc32 over everything before them. Verify
  // BEFORE deserializing the remaining sections — a torn or bit-flipped
  // artifact must be rejected as corrupt, not parsed into a wrong graph.
  if (section_version >= 4) {
    CSQ_CHECK(size > kCrcTrailerBytes) << "graph artifact: truncated";
    const std::size_t payload_size = size - kCrcTrailerBytes;
    std::uint32_t stored = 0;
    std::memcpy(&stored, data + payload_size, kCrcTrailerBytes);
    const std::uint32_t actual = crc32(data, payload_size);
    CSQ_CHECK(stored == actual)
        << "graph artifact: CRC mismatch (stored " << stored << ", computed "
        << actual << ") — torn write or corrupted file";
  }

  LowerOptions& options = parsed.options;
  options.in_channels = read_pod<std::int64_t>(in);
  options.in_height = read_pod<std::int64_t>(in);
  options.in_width = read_pod<std::int64_t>(in);
  options.act_bits = read_pod<std::int32_t>(in);
  options.pooled = pooled;
  CSQ_CHECK(options.in_channels > 0 && options.in_height > 0 &&
            options.in_width > 0)
      << "graph artifact: non-positive input extents";

  const auto instr_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(instr_count <= kMaxInstrs)
      << "graph artifact: absurd instruction count " << instr_count;
  program.instrs.reserve(instr_count);
  // v1 sections predate the kAvgPool instruction and the kernel_w field.
  const auto max_kind = static_cast<std::uint8_t>(
      section_version >= 2 ? ProgramInstr::Kind::kAvgPool
                           : ProgramInstr::Kind::kLinear);
  for (std::uint32_t i = 0; i < instr_count; ++i) {
    ProgramInstr instr;
    const auto kind = read_pod<std::uint8_t>(in);
    CSQ_CHECK(kind <= max_kind)
        << "graph artifact: unknown instruction kind "
        << static_cast<int>(kind);
    instr.kind = static_cast<ProgramInstr::Kind>(kind);
    instr.layer = read_pod<std::int32_t>(in);
    instr.kernel = read_pod<std::int64_t>(in);
    if (section_version >= 2) instr.kernel_w = read_pod<std::int64_t>(in);
    instr.stride = read_pod<std::int64_t>(in);
    instr.pad = read_pod<std::int64_t>(in);
    instr.act_bits = read_pod<std::int32_t>(in);
    instr.clip = read_pod<float>(in);
    if (section_version >= 3) {
      instr.kernel_kind = read_pod<std::int32_t>(in);
      CSQ_CHECK(instr.kernel_kind >= -1 && instr.kernel_kind <= 3)
          << "graph artifact: unknown kernel kind " << instr.kernel_kind;
      instr.exclude_pad = read_pod<std::uint8_t>(in) != 0;
    }
    instr.scale = read_float_vector(in);
    instr.shift = read_float_vector(in);
    instr.bias = read_float_vector(in);
    // Field validation the replay builder does not re-derive: a zero pool
    // kernel would reach an integer division and a wild act_bits an
    // undefined shift — corrupted artifacts must throw, not crash.
    if (instr.kind == ProgramInstr::Kind::kConv ||
        instr.kind == ProgramInstr::Kind::kMaxPool ||
        instr.kind == ProgramInstr::Kind::kAvgPool) {
      CSQ_CHECK(instr.kernel >= 1 && instr.kernel <= kMaxExtent)
          << "graph artifact: bad kernel extent " << instr.kernel;
      CSQ_CHECK(instr.kernel_w >= 0 && instr.kernel_w <= kMaxExtent)
          << "graph artifact: bad kernel width " << instr.kernel_w;
      CSQ_CHECK(instr.stride >= 1 && instr.stride <= kMaxExtent &&
                instr.pad >= 0 && instr.pad <= kMaxExtent)
          << "graph artifact: bad conv/pool stride/pad";
    }
    if (instr.kind == ProgramInstr::Kind::kActQuant) {
      CSQ_CHECK(instr.act_bits >= 1 && instr.act_bits <= 32)
          << "graph artifact: bad act-quant bits " << instr.act_bits;
    }
    if (section_version == 1 &&
        instr.kind == ProgramInstr::Kind::kMaxPool) {
      // v1 recorded only the pool kernel; the stride field held its unused
      // ProgramInstr default (1) while the replay pooled with
      // stride == kernel. Normalize to the explicit v2 encoding.
      instr.stride = instr.kernel;
      instr.pad = 0;
    }
    program.instrs.push_back(std::move(instr));
  }

  const auto edge_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(edge_count <= kMaxEdges)
      << "graph artifact: absurd edge count " << edge_count;
  parsed.edges.reserve(edge_count);
  for (std::uint32_t e = 0; e < edge_count; ++e) {
    EdgeScaleRecord record;
    record.is_acc = read_pod<std::uint8_t>(in) != 0;
    record.scale = read_pod<float>(in);
    record.levels = read_pod<float>(in);
    record.zero_point = read_pod<std::int32_t>(in);
    parsed.edges.push_back(record);
  }
  return parsed;
}

// Owns one read-only mapping of an artifact file; the MappedWeightTable's
// keepalive shares it with every graph built from the program.
struct ArtifactMapping {
  const char* data = nullptr;
  std::size_t size = 0;

  ~ArtifactMapping() {
    if (data != nullptr) {
      ::munmap(const_cast<char*>(data), size);
    }
  }
};

// Parses the v5 packed-weights section (stream positioned right after the
// edge records) into borrowed views over the mapping. Every pointer is
// bounds-checked against the payload before it is trusted.
std::shared_ptr<const MappedWeightTable> read_weight_table(
    std::istream& in, const GraphProgram& program,
    std::shared_ptr<ArtifactMapping> mapping) {
  const char* base = mapping->data;
  const std::size_t payload_size = mapping->size - kCrcTrailerBytes;

  std::vector<std::int32_t> weight_layer_indices;
  for (const ProgramInstr& instr : program.instrs) {
    if (instr.kind == ProgramInstr::Kind::kConv ||
        instr.kind == ProgramInstr::Kind::kLinear) {
      weight_layer_indices.push_back(instr.layer);
    }
  }

  const auto entry_count = read_pod<std::uint32_t>(in);
  CSQ_CHECK(entry_count == weight_layer_indices.size())
      << "mmap artifact: weight section holds " << entry_count
      << " entries for " << weight_layer_indices.size()
      << " conv/linear layers";

  auto table = std::make_shared<MappedWeightTable>();
  table->entries.reserve(entry_count);

  // Aligns the read position and returns a bounds-checked view of the next
  // `bytes` payload bytes, advancing the stream past them.
  const auto take_blob = [&](std::int64_t bytes) -> const char* {
    const auto pos = static_cast<std::size_t>(in.tellg());
    const std::size_t misalign = pos % kWeightAlignment;
    const std::size_t aligned =
        misalign == 0 ? pos : pos + (kWeightAlignment - misalign);
    CSQ_CHECK(bytes >= 0 &&
              aligned + static_cast<std::size_t>(bytes) <= payload_size)
        << "mmap artifact: weight blob overruns the payload";
    in.seekg(static_cast<std::streamoff>(aligned +
                                         static_cast<std::size_t>(bytes)),
             std::ios_base::beg);
    CSQ_CHECK(static_cast<bool>(in)) << "mmap artifact: truncated weights";
    return base + aligned;
  };

  for (std::uint32_t i = 0; i < entry_count; ++i) {
    const auto layer_index = read_pod<std::int32_t>(in);
    CSQ_CHECK(layer_index == weight_layer_indices[i])
        << "mmap artifact: weight entry " << i << " keys layer "
        << layer_index << ", program expects " << weight_layer_indices[i];
    MappedWeightTable::Entry entry;
    entry.rows = read_pod<std::int64_t>(in);
    entry.cols = read_pod<std::int64_t>(in);
    entry.shift = read_pod<std::int32_t>(in);
    const auto kernel = read_pod<std::int32_t>(in);
    const bool split = read_pod<std::uint8_t>(in) != 0;
    CSQ_CHECK(entry.rows >= 1 && entry.rows <= kMaxExtent &&
              entry.cols >= 1 && entry.cols <= 32767)
        << "mmap artifact: absurd weight extents " << entry.rows << "x"
        << entry.cols;
    CSQ_CHECK(kernel >= 0 && kernel <= 3)
        << "mmap artifact: unknown weight kernel " << kernel;

    const std::int64_t count = entry.rows * entry.cols;
    entry.spans.primary =
        reinterpret_cast<const std::int8_t*>(take_blob(count));
    if (split) {
      entry.spans.low =
          reinterpret_cast<const std::int8_t*>(take_blob(count));
    }
    switch (static_cast<WeightKernel>(kernel)) {
      case WeightKernel::kBitSerial:
      case WeightKernel::kBitSerialWide:
        entry.spans.lowbit_panels = reinterpret_cast<const std::int8_t*>(
            take_blob(gemm_s8u8_lowbit_packed_a_size(entry.rows, entry.cols)));
        break;
      case WeightKernel::kNibble:
        entry.spans.nibble_panels = reinterpret_cast<const std::uint8_t*>(
            take_blob(gemm_s8u8_nibble_packed_a_size(entry.rows, entry.cols)));
        break;
      default: {
        const std::int64_t panel_bytes =
            gemm_s8u8_packed_a_size(entry.rows, entry.cols) *
            static_cast<std::int64_t>(sizeof(std::int16_t));
        entry.spans.primary_panels =
            reinterpret_cast<const std::int16_t*>(take_blob(panel_bytes));
        if (split) {
          entry.spans.low_panels =
              reinterpret_cast<const std::int16_t*>(take_blob(panel_bytes));
        }
        break;
      }
    }
    table->entries.push_back(entry);
  }
  table->keepalive = std::move(mapping);
  return table;
}

}  // namespace

bool save_graph(const std::string& path, CompiledGraph& graph) {
  // Resolve (and validate) the scales before touching the filesystem so an
  // uncalibrated graph fails cleanly without leaving a partial file.
  const std::vector<EdgeScaleRecord> edges = graph.edge_scales();
  const GraphProgram& program = graph.program();
  const LowerOptions& options = graph.options();
  CSQ_CHECK(!program.instrs.empty())
      << "save_graph: graph carries no lowering program";
  CSQ_CHECK(program.mapped == nullptr)
      << "save_graph: graph was loaded via load_graph_mmap (weight codes "
         "are borrowed, not owned); re-save from a load_graph copy instead";

  // Serialize to memory first: the CRC trailer covers the exact payload
  // bytes, and the file write below becomes a single streamed copy.
  std::ostringstream buffer(std::ios::binary);
  write_payload(buffer, program, options, edges, graph.layer_weight_views());
  CSQ_CHECK(static_cast<bool>(buffer))
      << "save_graph: in-memory serialization failed";
  const std::string payload = buffer.str();
  const std::uint32_t checksum = crc32(payload.data(), payload.size());

  // Crash-safe publish: write a sibling temp file, fsync it, atomically
  // rename over the destination, then fsync the parent directory. A crash
  // or I/O failure mid-write leaves the destination either absent or the
  // previous complete artifact — never a truncated file a later load_graph
  // trusts — and the directory fsync makes the rename itself durable (on
  // ext4/xfs a crash right after rename can otherwise roll the name back to
  // the previous artifact even though the data pages hit disk).
  static std::atomic<std::uint64_t> temp_counter{0};
  const std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    // Mid-write I/O failure injection (disk full): the destination must be
    // untouched and the temp file must not survive.
    CSQ_FAILPOINT_STREAM("artifact.write", out);
    write_pod(out, checksum);
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      return false;
    }
  }
  if (CSQ_FAILPOINT_FIRES("artifact.fsync") ||
      !sync_path(temp_path.c_str(), O_RDONLY)) {
    std::remove(temp_path.c_str());
    return false;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return false;
  }
  // Post-rename window: the new artifact's bytes are durable but its name
  // may not be. On directory-fsync failure report false — the caller must
  // not bank on durability — while the renamed file stays in place and
  // remains loadable.
  const std::string dir = parent_directory(path);
  if (CSQ_FAILPOINT_FIRES("artifact.dirsync") ||
      !sync_path(dir.c_str(), O_RDONLY | O_DIRECTORY)) {
    return false;
  }
  return true;
}

CompiledGraph load_graph(const std::string& path, bool pooled) {
  CSQ_FAILPOINT("artifact.read");
  std::ifstream file(path, std::ios::binary);
  CSQ_CHECK(static_cast<bool>(file))
      << "graph artifact: cannot open " << path;
  // Read the whole artifact up front: the v4+ CRC trailer covers every
  // preceding byte, so integrity is decided on the exact file image before
  // any field is trusted (artifacts are compact — the weights are sub-byte
  // codes).
  std::ostringstream sink(std::ios::binary);
  sink << file.rdbuf();
  CSQ_CHECK(static_cast<bool>(file) || file.eof())
      << "graph artifact: cannot read " << path;
  const std::string bytes = sink.str();
  std::istringstream in(bytes, std::ios::binary);

  ParsedArtifact parsed = parse_artifact(in, bytes.data(), bytes.size(),
                                         pooled, /*skip_layer_codes=*/false);
  // The v5 packed-weights section (if present) is deliberately ignored:
  // this loader re-packs from the owned codes, byte-identically.
  CompiledGraph graph =
      build_graph(std::move(parsed.program), parsed.options);
  graph.restore_edge_scales(parsed.edges);
  return graph;
}

CompiledGraph load_graph_mmap(const std::string& path, bool pooled) {
  CSQ_FAILPOINT("artifact.mmap");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  CSQ_CHECK(fd >= 0) << "graph artifact: cannot open " << path;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    CSQ_CHECK(false) << "graph artifact: cannot stat " << path;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size <= kCrcTrailerBytes) {
    ::close(fd);
    CSQ_CHECK(false) << "graph artifact: " << path << " is truncated";
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  CSQ_CHECK(base != MAP_FAILED) << "graph artifact: mmap failed for " << path;
  auto mapping = std::make_shared<ArtifactMapping>();
  mapping->data = static_cast<const char*>(base);
  mapping->size = size;

  // Integrity first: the trailer is verified over the raw mapping before a
  // single field — header included — is deserialized. A flipped bit
  // anywhere in the file fails here, before any page is trusted.
  const std::size_t payload_size = size - kCrcTrailerBytes;
  std::uint32_t stored = 0;
  std::memcpy(&stored, mapping->data + payload_size, kCrcTrailerBytes);
  const std::uint32_t actual = crc32(mapping->data, payload_size);
  CSQ_CHECK(stored == actual)
      << "graph artifact: CRC mismatch (stored " << stored << ", computed "
      << actual << ") — corrupt file, or a pre-v4 artifact mmap cannot "
      << "verify; use load_graph";

  SpanStreamBuf buf(mapping->data, size);
  std::istream in(&buf);
  ParsedArtifact parsed = parse_artifact(in, mapping->data, size, pooled,
                                         /*skip_layer_codes=*/true);
  CSQ_CHECK(parsed.section_version >= 5)
      << "graph artifact: mmap load needs a v5 artifact with a "
         "packed-weights section (got v"
      << parsed.section_version << "); re-save or use load_graph";

  parsed.program.mapped =
      read_weight_table(in, parsed.program, std::move(mapping));
  CompiledGraph graph =
      build_graph(std::move(parsed.program), parsed.options);
  graph.restore_edge_scales(parsed.edges);
  return graph;
}

}  // namespace runtime
}  // namespace csq
