#include "runtime/compiled_graph.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "data/dataloader.h"
#include "nn/pooling.h"
#include "runtime/packed_weights.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace csq {
namespace runtime {

namespace {

// Activation edge between two ops. u8 edges carry unsigned codes with an
// affine mapping real = scale * (code - zero_point); interior edges are
// post-ReLU so their zero point is 0, the input edge is signed. i32 edges
// carry raw GEMM accumulators whose semantics live in the consuming
// requantization.
struct EdgeData {
  std::int64_t channels = 0;
  std::int64_t height = 1;
  std::int64_t width = 1;
  bool is_acc = false;
  float scale = 0.0f;
  std::int32_t zero_point = 0;
  // Code grid of the edge (largest representable code). Act-quant-pinned
  // edges keep the module's trained 2^bits - 1 grid so the served
  // quantization matches the QAT forward; calibrated edges use the graph's
  // act_bits grid.
  float levels = 0.0f;
  bool scale_fixed = false;  // pinned by an act-quant clip at lowering
  int derived_from = -1;  // pools: same scale as their input edge
  float observed_max = 0.0f;
  float observed_min = 0.0f;
  bool observed = false;
  int slot = -1;  // byte-slot space (u8) or int-slot space (i32)

  std::int64_t per_sample() const { return channels * height * width; }
};

class Op;

}  // namespace

// Everything the ops execute against. Declared as the public Impl so the
// pimpl'd CompiledGraph methods and the (file-local) op classes share it.
struct CompiledGraph::Impl {
  LowerOptions options;
  // The program this graph was replayed from, kept for save_graph /
  // replicate (codes are int32 per weight — comparable to the packed
  // planes). Shared, not owned: replicate() hands every replica the same
  // immutable program, so a shard of N replicas pays for ONE copy.
  std::shared_ptr<const GraphProgram> program;
  std::int64_t levels = 255;  // 2^act_bits - 1

  std::vector<EdgeData> edges;
  std::vector<std::unique_ptr<Op>> ops;
  std::unique_ptr<Workspace> ws;
  int byte_slots_used = 0;
  int int_slots_used = 0;

  std::vector<CompiledGraph::LayerInfo> layer_infos;
  std::vector<const PackedIntWeights*> layer_weights;

  int input_edge = 0;
  std::int64_t out_features = 0;
  bool pooled = true;
  bool scales_final = false;
  std::int64_t prepared_batch = 0;

  // Per-run state.
  std::int64_t batch = 0;
  const Tensor* run_input = nullptr;
  Tensor run_output;

  // Float reference walk (calibration / parity): transient per-edge real
  // values. Only the integer path is allocation-free.
  std::vector<std::vector<float>> float_edges;
  bool calibrating = false;

  std::uint8_t* u8(int edge) {
    const EdgeData& e = edges[static_cast<std::size_t>(edge)];
    return ws->bytes(e.slot, batch * e.per_sample());
  }
  std::int32_t* i32(int edge) {
    const EdgeData& e = edges[static_cast<std::size_t>(edge)];
    return ws->ints(e.slot, batch * e.per_sample());
  }
  float* f32(int edge) {
    const EdgeData& e = edges[static_cast<std::size_t>(edge)];
    std::vector<float>& buffer = float_edges[static_cast<std::size_t>(edge)];
    const auto needed = static_cast<std::size_t>(batch * e.per_sample());
    if (buffer.size() < needed) buffer.resize(needed);
    return buffer.data();
  }

  void record_range(int edge, float lo, float hi) {
    EdgeData& e = edges[static_cast<std::size_t>(edge)];
    if (!e.observed) {
      e.observed_min = lo;
      e.observed_max = hi;
      e.observed = true;
    } else {
      e.observed_min = std::min(e.observed_min, lo);
      e.observed_max = std::max(e.observed_max, hi);
    }
  }

  void check_input(const Tensor& input) const;
  void prepare(std::int64_t new_batch);
  void finalize_scales();
  void run_int_all();
  void run_float_all();
};

namespace {

// Batch loop that is pooled or serial on demand. Integer op bodies are
// order-independent (exact arithmetic, disjoint per-sample outputs), so the
// two modes are bit-identical.
template <typename Ctx>
void for_each_sample(bool pooled, std::int64_t batch, const Ctx& ctx,
                     void (*body)(const Ctx&, std::int64_t)) {
  if (!pooled) {
    for (std::int64_t b = 0; b < batch; ++b) body(ctx, b);
    return;
  }
  struct Shared {
    const Ctx* ctx;
    void (*body)(const Ctx&, std::int64_t);
  } shared{&ctx, body};
  // Single-reference capture keeps the closure inside std::function's
  // small-buffer optimization: no allocation per dispatch.
  parallel_for(0, batch,
               [&shared](std::int64_t b) { shared.body(*shared.ctx, b); });
}

// Round-to-nearest uint8 code with the clamp fused: clamp to [0, levels]
// first, then add-half truncate. Equal to lround-then-clamp on this domain
// (values are non-negative after the clamp) and free of the per-element
// libm call.
inline std::uint8_t round_clamp_code(float value, float levels) {
  value = value < 0.0f ? 0.0f : (value > levels ? levels : value);
  return static_cast<std::uint8_t>(value + 0.5f);
}

// ------------------------------------------------- requantization spans --
//
// The three accumulator-to-code sweeps of the integer path. The AVX2 forms
// process 32 outputs per iteration (convert, FMA, clamp, truncate, pack
// 32->16->8 with a lane-fix permute) — the auto-vectorizer refuses the
// narrowing u8 store chain, and these sweeps are ~20% of the serving
// forward. Scalar tails/fallbacks compute the identical value.

#if defined(__AVX2__)

inline __m256i requant8(__m256i acc, __m256 mul, __m256 add, __m256 levels,
                        __m256 half) {
  __m256 value = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc), mul, add);
  value = _mm256_min_ps(_mm256_max_ps(value, _mm256_setzero_ps()), levels);
  return _mm256_cvttps_epi32(_mm256_add_ps(value, half));
}

// Packs four 8-lane int32 code vectors (values in [0, 255]) into 32 uint8
// codes in order.
inline __m256i pack32(__m256i q0, __m256i q1, __m256i q2, __m256i q3) {
  const __m256i p01 = _mm256_packs_epi32(q0, q1);
  const __m256i p23 = _mm256_packs_epi32(q2, q3);
  const __m256i packed = _mm256_packus_epi16(p01, p23);
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  return _mm256_permutevar8x32_epi32(packed, order);
}

#endif  // __AVX2__

// out[p] = clamp(round(mul * acc[p] + add)).
inline void requant_span(const std::int32_t* acc, std::uint8_t* out,
                         std::int64_t count, float mul, float add,
                         float levels) {
  std::int64_t p = 0;
#if defined(__AVX2__)
  const __m256 vmul = _mm256_set1_ps(mul);
  const __m256 vadd = _mm256_set1_ps(add);
  const __m256 vlev = _mm256_set1_ps(levels);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  for (; p + 32 <= count; p += 32) {
    const auto* src = reinterpret_cast<const __m256i*>(acc + p);
    const __m256i q0 = requant8(_mm256_loadu_si256(src + 0), vmul, vadd,
                                vlev, vhalf);
    const __m256i q1 = requant8(_mm256_loadu_si256(src + 1), vmul, vadd,
                                vlev, vhalf);
    const __m256i q2 = requant8(_mm256_loadu_si256(src + 2), vmul, vadd,
                                vlev, vhalf);
    const __m256i q3 = requant8(_mm256_loadu_si256(src + 3), vmul, vadd,
                                vlev, vhalf);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + p),
                        pack32(q0, q1, q2, q3));
  }
#endif
  for (; p < count; ++p) {
    out[p] = round_clamp_code(mul * static_cast<float>(acc[p]) + add, levels);
  }
}

// out[p] = clamp(round(mul1 * acc1[p] + mul2 * acc2[p] + add)).
inline void join_acc_span(const std::int32_t* acc1, const std::int32_t* acc2,
                          std::uint8_t* out, std::int64_t count, float mul1,
                          float mul2, float add, float levels) {
  std::int64_t p = 0;
#if defined(__AVX2__)
  const __m256 vmul1 = _mm256_set1_ps(mul1);
  const __m256 vmul2 = _mm256_set1_ps(mul2);
  const __m256 vadd = _mm256_set1_ps(add);
  const __m256 vlev = _mm256_set1_ps(levels);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const auto fuse8 = [&](std::int64_t offset) {
    const __m256i a1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc1 + offset));
    const __m256i a2 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc2 + offset));
    const __m256 sum = _mm256_fmadd_ps(
        _mm256_cvtepi32_ps(a1), vmul1,
        _mm256_fmadd_ps(_mm256_cvtepi32_ps(a2), vmul2, vadd));
    const __m256 clamped =
        _mm256_min_ps(_mm256_max_ps(sum, _mm256_setzero_ps()), vlev);
    return _mm256_cvttps_epi32(_mm256_add_ps(clamped, vhalf));
  };
  for (; p + 32 <= count; p += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + p),
        pack32(fuse8(p), fuse8(p + 8), fuse8(p + 16), fuse8(p + 24)));
  }
#endif
  for (; p < count; ++p) {
    const float sum = mul1 * static_cast<float>(acc1[p]) +
                      mul2 * static_cast<float>(acc2[p]) + add;
    out[p] = round_clamp_code(sum, levels);
  }
}

// out[p] = clamp(round(mul1 * acc1[p] + ratio * skip[p] + add)).
inline void join_skip_span(const std::int32_t* acc1, const std::uint8_t* skip,
                           std::uint8_t* out, std::int64_t count, float mul1,
                           float ratio, float add, float levels) {
  std::int64_t p = 0;
#if defined(__AVX2__)
  const __m256 vmul1 = _mm256_set1_ps(mul1);
  const __m256 vratio = _mm256_set1_ps(ratio);
  const __m256 vadd = _mm256_set1_ps(add);
  const __m256 vlev = _mm256_set1_ps(levels);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const auto fuse8 = [&](std::int64_t offset) {
    const __m256i a1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc1 + offset));
    const __m256i s = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(skip + offset)));
    const __m256 sum = _mm256_fmadd_ps(
        _mm256_cvtepi32_ps(a1), vmul1,
        _mm256_fmadd_ps(_mm256_cvtepi32_ps(s), vratio, vadd));
    const __m256 clamped =
        _mm256_min_ps(_mm256_max_ps(sum, _mm256_setzero_ps()), vlev);
    return _mm256_cvttps_epi32(_mm256_add_ps(clamped, vhalf));
  };
  for (; p + 32 <= count; p += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + p),
        pack32(fuse8(p), fuse8(p + 8), fuse8(p + 16), fuse8(p + 24)));
  }
#endif
  for (; p < count; ++p) {
    const float sum = mul1 * static_cast<float>(acc1[p]) +
                      ratio * static_cast<float>(skip[p]) + add;
    out[p] = round_clamp_code(sum, levels);
  }
}

class Op {
 public:
  virtual ~Op() = default;
  virtual const char* kind() const = 0;
  virtual void run_int(CompiledGraph::Impl& g) = 0;
  virtual void run_float(CompiledGraph::Impl& g) = 0;
  // Resolves requantization constants once every edge scale is known.
  virtual void finalize(CompiledGraph::Impl& g) { (void)g; }
  // Frees buffers only the float reference walk needs (re-materialized on
  // demand if another walk runs).
  virtual void release_float_cache() {}
  // Grows op-private scratch for the given batch.
  virtual void prepare(CompiledGraph::Impl& g, std::int64_t batch) {
    (void)g;
    (void)batch;
  }
  // Installs the workspace slot of the op's private scratch buffer (conv
  // im2col stripes, the linear accumulator). Called by the buffer planner
  // after the walk; ops without scratch ignore it.
  virtual void set_scratch_slot(int slot) { (void)slot; }
  virtual std::string describe(const CompiledGraph::Impl& g) const = 0;
};

// Dequantized weight matrix for the float reference walk, materialized on
// first use — serving-only graphs (calibrate once, then integer forwards)
// never pay the 4-bytes/weight float copy.
const std::vector<float>& float_weights(const PackedIntWeights& weights,
                                        std::vector<float>& cache) {
  if (cache.empty()) {
    const std::int64_t count = weights.rows() * weights.cols();
    cache.resize(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      cache[static_cast<std::size_t>(i)] = weights.weight(i);
    }
  }
  return cache;
}

std::string edge_string(const CompiledGraph::Impl& g, int edge) {
  const EdgeData& e = g.edges[static_cast<std::size_t>(edge)];
  std::ostringstream out;
  out << "e" << edge << (e.is_acc ? ":i32(" : ":u8(") << e.channels << "x"
      << e.height << "x" << e.width << ")";
  return out.str();
}

// ------------------------------------------------------- quantize input --

class QuantizeInputOp final : public Op {
 public:
  explicit QuantizeInputOp(int out_edge) : out_edge_(out_edge) {}
  const char* kind() const override { return "quantize_input"; }

  void run_int(CompiledGraph::Impl& g) override {
    const EdgeData& e = g.edges[static_cast<std::size_t>(out_edge_)];
    struct Ctx {
      const float* in;
      std::uint8_t* out;
      std::int64_t stride;
      float inv_scale;
      float zp;
      float levels;
    } ctx;
    ctx.in = g.run_input->data();
    ctx.out = g.u8(out_edge_);
    ctx.stride = e.per_sample();
    ctx.inv_scale = 1.0f / e.scale;
    ctx.zp = static_cast<float>(e.zero_point);
    ctx.levels = e.levels;
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      const float* src = c.in + b * c.stride;
      std::uint8_t* dst = c.out + b * c.stride;
      for (std::int64_t i = 0; i < c.stride; ++i) {
        dst[i] = round_clamp_code(src[i] * c.inv_scale + c.zp, c.levels);
      }
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const EdgeData& e = g.edges[static_cast<std::size_t>(out_edge_)];
    const std::int64_t count = g.batch * e.per_sample();
    const float* src = g.run_input->data();
    float* dst = g.f32(out_edge_);
    std::copy(src, src + count, dst);
    if (g.calibrating) {
      float lo = 0.0f, hi = 0.0f;
      for (std::int64_t i = 0; i < count; ++i) {
        lo = std::min(lo, src[i]);
        hi = std::max(hi, src[i]);
      }
      g.record_range(out_edge_, lo, hi);
    }
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    return std::string("quantize_input -> ") + edge_string(g, out_edge_);
  }

 private:
  int out_edge_;
};

// ------------------------------------------------------------------ conv --

class ConvOp final : public Op {
 public:
  ConvOp(std::string name, int in_edge, int acc_edge, ConvGeometry geom,
         PackedIntWeights weights, bool direct)
      : name_(std::move(name)),
        in_edge_(in_edge),
        acc_edge_(acc_edge),
        geom_(geom),
        weights_(std::move(weights)),
        direct_(direct) {}

  const char* kind() const override { return "conv2d"; }
  const PackedIntWeights& weights() const { return weights_; }
  const std::string& name() const { return name_; }
  void release_float_cache() override {
    float_weights_.clear();
    float_weights_.shrink_to_fit();
  }
  void set_scratch_slot(int slot) override { col_slot_ = slot; }

  bool direct() const { return direct_; }  // 1x1/s1/p0: input IS col

  void prepare(CompiledGraph::Impl& g, std::int64_t batch) override {
    (void)batch;
    if (!direct()) {
      g.ws->bytes(col_slot_, pool_slot_count() * geom_.col_rows() *
                                 geom_.col_cols());
    }
  }

  void run_int(CompiledGraph::Impl& g) override {
    struct Ctx {
      const ConvGeometry* geom;
      const PackedIntWeights* w;
      const std::uint8_t* in;
      std::uint8_t* col_base;  // pool_slot() stripes (null when direct)
      std::int32_t* acc;
      std::int64_t in_stride, col_stride, acc_stride, cols;
      std::uint8_t pad_code;
      bool gemm_pooled;
    } ctx;
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    ctx.geom = &geom_;
    ctx.w = &weights_;
    ctx.in = g.u8(in_edge_);
    ctx.col_base =
        direct() ? nullptr
                 : g.ws->bytes(col_slot_, pool_slot_count() *
                                              geom_.col_rows() *
                                              geom_.col_cols());
    ctx.acc = g.i32(acc_edge_);
    ctx.in_stride = in.per_sample();
    ctx.col_stride = geom_.col_rows() * geom_.col_cols();
    ctx.acc_stride =
        g.edges[static_cast<std::size_t>(acc_edge_)].per_sample();
    ctx.cols = geom_.col_cols();
    ctx.pad_code = static_cast<std::uint8_t>(in.zero_point);
    // Parallelism picks the outermost productive level: larger batches
    // split across samples; batches at or below the sample-loop's pooling
    // threshold (kParallelForSerialThreshold) run pooled GEMMs instead so
    // latency-critical small requests still fan out. These GEMMs are the
    // canonical wide-N/small-M shape (m = out_channels, one MC tile; n =
    // spatial positions), so the kAuto split resolves to the column split —
    // a batch-1 conv forward now uses the whole pool instead of one core.
    ctx.gemm_pooled = g.pooled && g.batch <= kParallelForSerialThreshold;
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      const std::uint8_t* col;
      if (c.col_base == nullptr) {
        col = c.in + b * c.in_stride;
      } else {
        std::uint8_t* stripe = c.col_base + pool_slot() * c.col_stride;
        im2col_u8(*c.geom, c.in + b * c.in_stride, stripe, c.pad_code);
        col = stripe;
      }
      // acc_b(OC, P) = W_codes(OC, K) * col(K, P).
      c.w->gemm(Trans::no, c.cols, col, c.cols, c.acc + b * c.acc_stride,
                c.cols, c.gemm_pooled);
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    const std::int64_t k = geom_.col_rows();
    const std::int64_t p = geom_.col_cols();
    const float* src = g.f32(in_edge_);
    float* acc = g.f32(acc_edge_);
    const std::vector<float>& w = float_weights(weights_, float_weights_);
    std::vector<float> col(static_cast<std::size_t>(k * p));
    for (std::int64_t b = 0; b < g.batch; ++b) {
      const float* sample = src + b * in.per_sample();
      const float* col_data = sample;
      if (!direct()) {
        im2col(geom_, sample, col.data());
        col_data = col.data();
      }
      gemm(Trans::no, Trans::no, weights_.rows(), p, k, 1.0f, w.data(), k,
           col_data, p, 0.0f, acc + b * weights_.rows() * p, p);
    }
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "conv2d " << name_ << " " << edge_string(g, in_edge_) << " -> "
        << edge_string(g, acc_edge_) << " [" << weights_.bits() << "b codes"
        << (weights_.split() ? ", split" : "") << ", shift "
        << weights_.shift() << ", " << weights_.kernel_name() << "]";
    return out.str();
  }

 private:
  std::string name_;
  int in_edge_;
  int acc_edge_;
  ConvGeometry geom_;
  PackedIntWeights weights_;
  std::vector<float> float_weights_;
  bool direct_;
  int col_slot_ = -1;
};

// ------------------------------------------------------- requantization --

// One accumulator-to-real recipe: the folded BatchNorm affine, the optional
// convolution bias, and the weight/activation scales of the producing GEMM.
struct AccRequant {
  int acc_edge = -1;
  int in_edge = -1;
  const PackedIntWeights* weights = nullptr;
  std::vector<float> bn_scale, bn_bias;  // empty = identity
  std::vector<float> bias;               // empty = none
  std::int64_t channels = 0;
  std::int64_t plane = 0;  // out_h * out_w
  // Resolved integer-path constants: code = clamp(round(mul*acc + add)).
  std::vector<float> mul, add;

  float bn_a(std::int64_t c) const {
    return bn_scale.empty() ? 1.0f : bn_scale[static_cast<std::size_t>(c)];
  }
  float bn_b(std::int64_t c) const {
    return bn_bias.empty() ? 0.0f : bn_bias[static_cast<std::size_t>(c)];
  }
  float bias_at(std::int64_t c) const {
    return bias.empty() ? 0.0f : bias[static_cast<std::size_t>(c)];
  }

  // Real pre-activation value from the float reference conv output.
  float real_from_float(float conv_value, std::int64_t c) const {
    return bn_a(c) * (conv_value + bias_at(c)) + bn_b(c);
  }

  void resolve(const std::vector<EdgeData>& edges, float out_scale) {
    const EdgeData& in = edges[static_cast<std::size_t>(in_edge)];
    const float step = weights->effective_step();
    const float s_in = in.scale;
    mul.resize(static_cast<std::size_t>(channels));
    add.resize(static_cast<std::size_t>(channels));
    for (std::int64_t c = 0; c < channels; ++c) {
      const float a = bn_a(c);
      const double zp_term =
          static_cast<double>(step) * s_in * in.zero_point *
          static_cast<double>(
              weights->row_code_sums()[static_cast<std::size_t>(c)]);
      mul[static_cast<std::size_t>(c)] = a * step * s_in / out_scale;
      add[static_cast<std::size_t>(c)] = static_cast<float>(
          (a * (bias_at(c) - zp_term) + bn_b(c)) / out_scale);
    }
  }
};

class RequantOp final : public Op {
 public:
  RequantOp(AccRequant main, int out_edge)
      : main_(std::move(main)), out_edge_(out_edge) {}
  const char* kind() const override { return "requant"; }

  void finalize(CompiledGraph::Impl& g) override {
    main_.resolve(g.edges,
                  g.edges[static_cast<std::size_t>(out_edge_)].scale);
  }

  void run_int(CompiledGraph::Impl& g) override {
    struct Ctx {
      const AccRequant* r;
      const std::int32_t* acc;
      std::uint8_t* out;
      std::int64_t stride;
      float levels;
    } ctx;
    ctx.r = &main_;
    ctx.acc = g.i32(main_.acc_edge);
    ctx.out = g.u8(out_edge_);
    ctx.stride = main_.channels * main_.plane;
    ctx.levels = g.edges[static_cast<std::size_t>(out_edge_)].levels;
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      const std::int32_t* acc = c.acc + b * c.stride;
      std::uint8_t* out = c.out + b * c.stride;
      const std::int64_t plane = c.r->plane;
      for (std::int64_t ch = 0; ch < c.r->channels; ++ch) {
        // The clamp at zero IS the fused ReLU (negative pre-activations
        // fall below code 0 because the output zero point is 0).
        requant_span(acc + ch * plane, out + ch * plane, plane,
                     c.r->mul[static_cast<std::size_t>(ch)],
                     c.r->add[static_cast<std::size_t>(ch)], c.levels);
      }
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const float* acc = g.f32(main_.acc_edge);
    float* out = g.f32(out_edge_);
    const std::int64_t stride = main_.channels * main_.plane;
    float edge_max = 0.0f;
    for (std::int64_t b = 0; b < g.batch; ++b) {
      for (std::int64_t ch = 0; ch < main_.channels; ++ch) {
        const std::int64_t base = b * stride + ch * main_.plane;
        for (std::int64_t p = 0; p < main_.plane; ++p) {
          const float y =
              std::max(0.0f, main_.real_from_float(acc[base + p], ch));
          out[base + p] = y;
          edge_max = std::max(edge_max, y);
        }
      }
    }
    if (g.calibrating) g.record_range(out_edge_, 0.0f, edge_max);
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "requant" << (main_.bn_scale.empty() ? "" : "+bn") << "+relu "
        << edge_string(g, main_.acc_edge) << " -> "
        << edge_string(g, out_edge_);
    return out.str();
  }

 private:
  AccRequant main_;
  int out_edge_;
};

// Residual join: main accumulator (conv2+bn2) plus either an identity skip
// (u8 edge, re-scaled) or a downsample accumulator (conv+bn), requantized
// through the shared ReLU clamp.
class JoinOp final : public Op {
 public:
  JoinOp(AccRequant main, int skip_edge, int out_edge)
      : main_(std::move(main)), skip_edge_(skip_edge), out_edge_(out_edge) {}
  JoinOp(AccRequant main, AccRequant skip, int out_edge)
      : main_(std::move(main)),
        skip_acc_(std::move(skip)),
        has_skip_acc_(true),
        out_edge_(out_edge) {}

  const char* kind() const override { return "join"; }

  void finalize(CompiledGraph::Impl& g) override {
    const float out_scale =
        g.edges[static_cast<std::size_t>(out_edge_)].scale;
    main_.resolve(g.edges, out_scale);
    if (has_skip_acc_) {
      skip_acc_.resolve(g.edges, out_scale);
    } else {
      const EdgeData& skip = g.edges[static_cast<std::size_t>(skip_edge_)];
      skip_ratio_ = skip.scale / out_scale;
      skip_offset_ = -skip_ratio_ * static_cast<float>(skip.zero_point);
    }
  }

  void run_int(CompiledGraph::Impl& g) override {
    struct Ctx {
      const AccRequant* main;
      const AccRequant* skip_acc;  // null for identity skips
      const std::int32_t* acc1;
      const std::int32_t* acc2;     // skip accumulator (or null)
      const std::uint8_t* skip_u8;  // identity skip codes (or null)
      float skip_ratio;
      float skip_offset;
      std::uint8_t* out;
      std::int64_t stride;
      float levels;
    } ctx;
    ctx.main = &main_;
    ctx.skip_acc = has_skip_acc_ ? &skip_acc_ : nullptr;
    ctx.acc1 = g.i32(main_.acc_edge);
    ctx.acc2 = has_skip_acc_ ? g.i32(skip_acc_.acc_edge) : nullptr;
    ctx.skip_u8 = has_skip_acc_ ? nullptr : g.u8(skip_edge_);
    ctx.skip_ratio = skip_ratio_;
    ctx.skip_offset = skip_offset_;
    ctx.out = g.u8(out_edge_);
    ctx.stride = main_.channels * main_.plane;
    ctx.levels = g.edges[static_cast<std::size_t>(out_edge_)].levels;
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      const std::int64_t plane = c.main->plane;
      for (std::int64_t ch = 0; ch < c.main->channels; ++ch) {
        const std::int64_t base = b * c.stride + ch * plane;
        const float mul1 = c.main->mul[static_cast<std::size_t>(ch)];
        const float add1 = c.main->add[static_cast<std::size_t>(ch)];
        if (c.skip_acc != nullptr) {
          join_acc_span(c.acc1 + base, c.acc2 + base, c.out + base, plane,
                        mul1, c.skip_acc->mul[static_cast<std::size_t>(ch)],
                        add1 + c.skip_acc->add[static_cast<std::size_t>(ch)],
                        c.levels);
        } else {
          join_skip_span(c.acc1 + base, c.skip_u8 + base, c.out + base,
                         plane, mul1, c.skip_ratio, add1 + c.skip_offset,
                         c.levels);
        }
      }
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const float* acc1 = g.f32(main_.acc_edge);
    const float* skip = has_skip_acc_ ? g.f32(skip_acc_.acc_edge)
                                      : g.f32(skip_edge_);
    float* out = g.f32(out_edge_);
    const std::int64_t stride = main_.channels * main_.plane;
    float edge_max = 0.0f;
    for (std::int64_t b = 0; b < g.batch; ++b) {
      for (std::int64_t ch = 0; ch < main_.channels; ++ch) {
        const std::int64_t base = b * stride + ch * main_.plane;
        for (std::int64_t p = 0; p < main_.plane; ++p) {
          const float skip_real =
              has_skip_acc_
                  ? skip_acc_.real_from_float(skip[base + p], ch)
                  : skip[base + p];
          const float y = std::max(
              0.0f,
              main_.real_from_float(acc1[base + p], ch) + skip_real);
          out[base + p] = y;
          edge_max = std::max(edge_max, y);
        }
      }
    }
    if (g.calibrating) g.record_range(out_edge_, 0.0f, edge_max);
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "join+relu " << edge_string(g, main_.acc_edge) << " + "
        << (has_skip_acc_ ? edge_string(g, skip_acc_.acc_edge)
                          : edge_string(g, skip_edge_))
        << " -> " << edge_string(g, out_edge_);
    return out.str();
  }

 private:
  AccRequant main_;
  AccRequant skip_acc_;
  bool has_skip_acc_ = false;
  int skip_edge_ = -1;
  float skip_ratio_ = 1.0f;
  float skip_offset_ = 0.0f;
  int out_edge_;
};

// ------------------------------------------------------------- pooling --

class MaxPoolOp final : public Op {
 public:
  MaxPoolOp(int in_edge, int out_edge, const Pool2dConfig& config)
      : in_edge_(in_edge), out_edge_(out_edge), config_(config) {}
  const char* kind() const override { return "maxpool"; }

  void run_int(CompiledGraph::Impl& g) override {
    struct Ctx {
      const MaxPoolOp* op;
      const EdgeData* in_e;
      const EdgeData* out_e;
      const std::uint8_t* in;
      std::uint8_t* out;
    } ctx;
    ctx.op = this;
    ctx.in_e = &g.edges[static_cast<std::size_t>(in_edge_)];
    ctx.out_e = &g.edges[static_cast<std::size_t>(out_edge_)];
    ctx.in = g.u8(in_edge_);
    ctx.out = g.u8(out_edge_);
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      c.op->pool_sample<std::uint8_t>(*c.in_e, *c.out_e,
                                      c.in + b * c.in_e->per_sample(),
                                      c.out + b * c.out_e->per_sample());
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const EdgeData& in_e = g.edges[static_cast<std::size_t>(in_edge_)];
    const EdgeData& out_e = g.edges[static_cast<std::size_t>(out_edge_)];
    const float* in = g.f32(in_edge_);
    float* out = g.f32(out_edge_);
    for (std::int64_t b = 0; b < g.batch; ++b) {
      pool_sample<float>(in_e, out_e, in + b * in_e.per_sample(),
                         out + b * out_e.per_sample());
    }
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "maxpool" << config_.kernel_h << "x" << config_.kernel_w << "s"
        << config_.stride;
    if (config_.pad > 0) out << "p" << config_.pad;
    out << " " << edge_string(g, in_edge_) << " -> "
        << edge_string(g, out_edge_);
    return out.str();
  }

 private:
  // Max over the in-bounds window only — padded taps are the implicit -inf
  // of the float module, and the max is order-preserving on codes, so the
  // integer and float walks pick the same taps.
  template <typename T>
  void pool_sample(const EdgeData& in_e, const EdgeData& out_e, const T* in,
                   T* out) const {
    for (std::int64_t c = 0; c < in_e.channels; ++c) {
      const T* plane = in + c * in_e.height * in_e.width;
      T* dst = out + c * out_e.height * out_e.width;
      for (std::int64_t oy = 0; oy < out_e.height; ++oy) {
        for (std::int64_t ox = 0; ox < out_e.width; ++ox) {
          std::int64_t y0, y1, x0, x1;
          config_.window(oy, config_.kernel_h, in_e.height, y0, y1);
          config_.window(ox, config_.kernel_w, in_e.width, x0, x1);
          T best = plane[y0 * in_e.width + x0];
          for (std::int64_t iy = y0; iy < y1; ++iy) {
            for (std::int64_t ix = x0; ix < x1; ++ix) {
              best = std::max(best, plane[iy * in_e.width + ix]);
            }
          }
          dst[oy * out_e.width + ox] = best;
        }
      }
    }
  }

  int in_edge_;
  int out_edge_;
  Pool2dConfig config_;
};

// Average pooling: exact int32 window sums (padded taps contribute the
// input edge's zero-point code — the code of real zero), then one
// requantization back to uint8 with the fixed 1/(kernel_h*kernel_w)
// divisor folded into the scale. The divisor never touches the integer
// sum, so no precision is lost to a pool-time integer division.
class AvgPoolOp final : public Op {
 public:
  AvgPoolOp(int in_edge, int sum_edge, int out_edge,
            const Pool2dConfig& config, bool exclude_pad)
      : in_edge_(in_edge),
        sum_edge_(sum_edge),
        out_edge_(out_edge),
        config_(config),
        exclude_pad_(exclude_pad) {}
  const char* kind() const override { return "avgpool"; }

  void finalize(CompiledGraph::Impl& g) override {
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    const EdgeData& out = g.edges[static_cast<std::size_t>(out_edge_)];
    const auto window =
        static_cast<float>(config_.kernel_h * config_.kernel_w);
    // real mean = in.scale * (sum / divisor - in.zp); code = real/out.scale
    // + out.zp. Derived edges (out == in scale/zp) reduce to sum/divisor.
    // The zero-point term is divisor-free (each window's mean of a constant
    // in.zp is in.zp), so add_ is shared by both divisor policies.
    mul_ = in.scale / (out.scale * window);
    add_ = static_cast<float>(out.zero_point) -
           in.scale * static_cast<float>(in.zero_point) / out.scale;
    if (exclude_pad_) {
      // Per-position divisors: border windows divide by their valid-tap
      // count. Geometry is static, so the constants resolve once here.
      mul_per_pos_.resize(
          static_cast<std::size_t>(out.height * out.width));
      for (std::int64_t oy = 0; oy < out.height; ++oy) {
        for (std::int64_t ox = 0; ox < out.width; ++ox) {
          std::int64_t y0, y1, x0, x1;
          config_.window(oy, config_.kernel_h, in.height, y0, y1);
          config_.window(ox, config_.kernel_w, in.width, x0, x1);
          mul_per_pos_[static_cast<std::size_t>(oy * out.width + ox)] =
              in.scale /
              (out.scale * static_cast<float>((y1 - y0) * (x1 - x0)));
        }
      }
    }
  }

  void run_int(CompiledGraph::Impl& g) override {
    struct Ctx {
      const AvgPoolOp* op;
      const EdgeData* in_e;
      const EdgeData* out_e;
      const std::uint8_t* in;
      std::int32_t* sum;
      std::uint8_t* out;
      std::int32_t pad_code;
      float mul, add, levels;
      bool exclude_pad;
    } ctx;
    ctx.op = this;
    ctx.in_e = &g.edges[static_cast<std::size_t>(in_edge_)];
    ctx.out_e = &g.edges[static_cast<std::size_t>(out_edge_)];
    ctx.in = g.u8(in_edge_);
    ctx.sum = g.i32(sum_edge_);
    ctx.out = g.u8(out_edge_);
    ctx.pad_code = ctx.in_e->zero_point;
    ctx.mul = mul_;
    ctx.add = add_;
    ctx.levels = ctx.out_e->levels;
    ctx.exclude_pad = exclude_pad_;
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      const std::uint8_t* in = c.in + b * c.in_e->per_sample();
      std::int32_t* sum = c.sum + b * c.out_e->per_sample();
      std::uint8_t* out = c.out + b * c.out_e->per_sample();
      const Pool2dConfig& config = c.op->config_;
      const std::int64_t spatial = c.out_e->height * c.out_e->width;
      std::int64_t index = 0;
      for (std::int64_t ch = 0; ch < c.in_e->channels; ++ch) {
        const std::uint8_t* plane = in + ch * c.in_e->height * c.in_e->width;
        for (std::int64_t oy = 0; oy < c.out_e->height; ++oy) {
          for (std::int64_t ox = 0; ox < c.out_e->width; ++ox, ++index) {
            std::int64_t y0, y1, x0, x1;
            config.window(oy, config.kernel_h, c.in_e->height, y0, y1);
            config.window(ox, config.kernel_w, c.in_e->width, x0, x1);
            std::int32_t acc = 0;
            for (std::int64_t iy = y0; iy < y1; ++iy) {
              for (std::int64_t ix = x0; ix < x1; ++ix) {
                acc += plane[iy * c.in_e->width + ix];
              }
            }
            if (!c.exclude_pad) {
              // count_include_pad: out-of-bounds taps carry the zero-point
              // code (real zero), keeping the divisor fixed at kh*kw.
              const std::int64_t covered = (y1 - y0) * (x1 - x0);
              acc += c.pad_code *
                     static_cast<std::int32_t>(
                         config.kernel_h * config.kernel_w - covered);
            }
            sum[index] = acc;
          }
        }
      }
      if (c.exclude_pad) {
        // Per-position divisor: requantize scalar-wise with the window's
        // own multiplier (shared across channels for each spatial cell).
        const float* mul_pos = c.op->mul_per_pos_.data();
        for (std::int64_t p = 0; p < c.out_e->per_sample(); ++p) {
          out[p] = round_clamp_code(
              mul_pos[p % spatial] * static_cast<float>(sum[p]) + c.add,
              c.levels);
        }
      } else {
        requant_span(sum, out, c.out_e->per_sample(), c.mul, c.add, c.levels);
      }
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const EdgeData& in_e = g.edges[static_cast<std::size_t>(in_edge_)];
    const EdgeData& out_e = g.edges[static_cast<std::size_t>(out_edge_)];
    const float* in = g.f32(in_edge_);
    float* out = g.f32(out_edge_);
    const float inv_window =
        1.0f / static_cast<float>(config_.kernel_h * config_.kernel_w);
    for (std::int64_t b = 0; b < g.batch; ++b) {
      const float* src = in + b * in_e.per_sample();
      float* dst = out + b * out_e.per_sample();
      std::int64_t index = 0;
      for (std::int64_t ch = 0; ch < in_e.channels; ++ch) {
        const float* plane = src + ch * in_e.height * in_e.width;
        for (std::int64_t oy = 0; oy < out_e.height; ++oy) {
          for (std::int64_t ox = 0; ox < out_e.width; ++ox, ++index) {
            std::int64_t y0, y1, x0, x1;
            config_.window(oy, config_.kernel_h, in_e.height, y0, y1);
            config_.window(ox, config_.kernel_w, in_e.width, x0, x1);
            float acc = 0.0f;
            for (std::int64_t iy = y0; iy < y1; ++iy) {
              for (std::int64_t ix = x0; ix < x1; ++ix) {
                acc += plane[iy * in_e.width + ix];
              }
            }
            // Pads contribute zero; exclude_pad divides by the valid-tap
            // count instead of the fixed window.
            dst[index] =
                exclude_pad_
                    ? acc / static_cast<float>((y1 - y0) * (x1 - x0))
                    : acc * inv_window;
          }
        }
      }
    }
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "avgpool" << config_.kernel_h << "x" << config_.kernel_w << "s"
        << config_.stride;
    if (config_.pad > 0) out << "p" << config_.pad;
    if (exclude_pad_) out << " xpad";
    out << " " << edge_string(g, in_edge_) << " -> "
        << edge_string(g, out_edge_);
    return out.str();
  }

 private:
  int in_edge_;
  int sum_edge_;
  int out_edge_;
  Pool2dConfig config_;
  bool exclude_pad_;
  float mul_ = 0.0f;
  float add_ = 0.0f;
  std::vector<float> mul_per_pos_;  // exclude_pad: per-spatial-cell divisor
};

class GlobalAvgPoolOp final : public Op {
 public:
  GlobalAvgPoolOp(int in_edge, int out_edge)
      : in_edge_(in_edge), out_edge_(out_edge) {}
  const char* kind() const override { return "global_avg_pool"; }

  void run_int(CompiledGraph::Impl& g) override {
    struct Ctx {
      const std::uint8_t* in;
      std::uint8_t* out;
      std::int64_t channels, plane;
    } ctx;
    const EdgeData& in_e = g.edges[static_cast<std::size_t>(in_edge_)];
    ctx.in = g.u8(in_edge_);
    ctx.out = g.u8(out_edge_);
    ctx.channels = in_e.channels;
    ctx.plane = in_e.height * in_e.width;
    for_each_sample(g.pooled, g.batch, ctx, +[](const Ctx& c, std::int64_t b) {
      const std::uint8_t* src = c.in + b * c.channels * c.plane;
      std::uint8_t* dst = c.out + b * c.channels;
      for (std::int64_t ch = 0; ch < c.channels; ++ch) {
        std::int64_t sum = 0;
        const std::uint8_t* plane = src + ch * c.plane;
        for (std::int64_t p = 0; p < c.plane; ++p) sum += plane[p];
        // Integer round-half-up mean; codes are unsigned so this matches
        // round-to-nearest. Same scale as the input edge (derived).
        dst[ch] =
            static_cast<std::uint8_t>((2 * sum + c.plane) / (2 * c.plane));
      }
    });
  }

  void run_float(CompiledGraph::Impl& g) override {
    const EdgeData& in_e = g.edges[static_cast<std::size_t>(in_edge_)];
    const std::int64_t plane = in_e.height * in_e.width;
    const float* in = g.f32(in_edge_);
    float* out = g.f32(out_edge_);
    for (std::int64_t b = 0; b < g.batch; ++b) {
      for (std::int64_t ch = 0; ch < in_e.channels; ++ch) {
        const float* src = in + (b * in_e.channels + ch) * plane;
        double sum = 0.0;
        for (std::int64_t p = 0; p < plane; ++p) sum += src[p];
        out[b * in_e.channels + ch] =
            static_cast<float>(sum / static_cast<double>(plane));
      }
    }
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "global_avg_pool " << edge_string(g, in_edge_) << " -> "
        << edge_string(g, out_edge_);
    return out.str();
  }

 private:
  int in_edge_;
  int out_edge_;
};

// -------------------------------------------------------- dequant output --

// Terminates a conv-head (no-Linear) graph: the last realized uint8 edge —
// a GlobalAvgPool's (C,1,1) feature vector — dequantizes into the float
// output tensor.
class DequantOutputOp final : public Op {
 public:
  explicit DequantOutputOp(int in_edge) : in_edge_(in_edge) {}
  const char* kind() const override { return "dequant_output"; }

  void run_int(CompiledGraph::Impl& g) override {
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    const std::int64_t features = in.per_sample();
    g.run_output = Tensor::uninitialized({g.batch, features});
    const std::uint8_t* codes = g.u8(in_edge_);
    float* out = g.run_output.data();
    const float scale = in.scale;
    const float zp = static_cast<float>(in.zero_point);
    const std::int64_t count = g.batch * features;
    for (std::int64_t i = 0; i < count; ++i) {
      out[i] = scale * (static_cast<float>(codes[i]) - zp);
    }
  }

  void run_float(CompiledGraph::Impl& g) override {
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    const std::int64_t features = in.per_sample();
    g.run_output = Tensor::uninitialized({g.batch, features});
    const float* src = g.f32(in_edge_);
    std::copy(src, src + g.batch * features, g.run_output.data());
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    std::ostringstream out;
    out << "dequant_output " << edge_string(g, in_edge_) << " -> f32("
        << in.per_sample() << ")";
    return out.str();
  }

 private:
  int in_edge_;
};

// ---------------------------------------------------------------- linear --

class LinearOp final : public Op {
 public:
  LinearOp(std::string name, int in_edge, PackedIntWeights weights,
           std::vector<float> bias)
      : name_(std::move(name)),
        in_edge_(in_edge),
        weights_(std::move(weights)),
        bias_(std::move(bias)) {}

  const char* kind() const override { return "linear"; }
  const PackedIntWeights& weights() const { return weights_; }
  std::int64_t out_features() const { return weights_.rows(); }
  void release_float_cache() override {
    float_weights_.clear();
    float_weights_.shrink_to_fit();
  }
  void set_scratch_slot(int slot) override { acc_slot_ = slot; }

  void prepare(CompiledGraph::Impl& g, std::int64_t batch) override {
    g.ws->ints(acc_slot_, weights_.rows() * batch);
  }

  void run_int(CompiledGraph::Impl& g) override {
    const EdgeData& in = g.edges[static_cast<std::size_t>(in_edge_)];
    const std::int64_t out_f = weights_.rows();
    const std::int64_t in_f = weights_.cols();
    std::int32_t* acc = g.ws->ints(acc_slot_, out_f * g.batch);
    // acc(OUT, B) = W_codes(OUT, IN) * X^T — the one top-level integer GEMM.
    // n here is the BATCH (kAuto keeps the row split: at batch 1 there is a
    // single output column, so there is nothing for a column split to carve;
    // the head matmul only fans out via its m = OUT row tiles).
    weights_.gemm(Trans::yes, g.batch, g.u8(in_edge_), in_f, acc, g.batch,
                  g.pooled, &scratch_);

    g.run_output = Tensor::uninitialized({g.batch, out_f});
    float* logits = g.run_output.data();
    const float step = weights_.effective_step();
    const float s_in = in.scale;
    const std::int32_t zp = in.zero_point;
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float combined = step * s_in;
      const float offset =
          bias_.empty() ? 0.0f : bias_[static_cast<std::size_t>(o)];
      const std::int64_t zp_correction =
          zp * weights_.row_code_sums()[static_cast<std::size_t>(o)];
      const std::int32_t* row = acc + o * g.batch;
      for (std::int64_t b = 0; b < g.batch; ++b) {
        logits[b * out_f + o] =
            combined * static_cast<float>(static_cast<std::int64_t>(row[b]) -
                                          zp_correction) +
            offset;
      }
    }
  }

  void run_float(CompiledGraph::Impl& g) override {
    const std::int64_t out_f = weights_.rows();
    const std::int64_t in_f = weights_.cols();
    g.run_output = Tensor::uninitialized({g.batch, out_f});
    const std::vector<float>& w = float_weights(weights_, float_weights_);
    gemm(Trans::no, Trans::yes, g.batch, out_f, in_f, 1.0f, g.f32(in_edge_),
         in_f, w.data(), in_f, 0.0f, g.run_output.data(), out_f);
    if (!bias_.empty()) {
      float* logits = g.run_output.data();
      for (std::int64_t b = 0; b < g.batch; ++b) {
        for (std::int64_t o = 0; o < out_f; ++o) {
          logits[b * out_f + o] += bias_[static_cast<std::size_t>(o)];
        }
      }
    }
  }

  std::string describe(const CompiledGraph::Impl& g) const override {
    std::ostringstream out;
    out << "linear " << name_ << " " << edge_string(g, in_edge_)
        << " -> f32(" << weights_.rows() << ") [" << weights_.bits()
        << "b codes" << (weights_.split() ? ", split" : "") << ", "
        << weights_.kernel_name() << "]";
    return out.str();
  }

 private:
  std::string name_;
  int in_edge_;
  PackedIntWeights weights_;
  std::vector<float> float_weights_;
  std::vector<float> bias_;
  int acc_slot_ = -1;
  IntGemmScratch scratch_;
};

}  // namespace

// ------------------------------------------------------------ Impl body --

void CompiledGraph::Impl::check_input(const Tensor& input) const {
  const EdgeData& in_e = edges[static_cast<std::size_t>(input_edge)];
  CSQ_CHECK(input.ndim() == 4 && input.dim(1) == in_e.channels &&
            input.dim(2) == in_e.height && input.dim(3) == in_e.width)
      << "integer graph: input " << input.shape_string()
      << " does not match the compiled (C,H,W)";
}

void CompiledGraph::Impl::prepare(std::int64_t new_batch) {
  if (new_batch <= prepared_batch) return;
  const std::int64_t saved = batch;
  batch = new_batch;
  for (EdgeData& e : edges) {
    if (e.is_acc) {
      ws->ints(e.slot, new_batch * e.per_sample());
    } else {
      ws->bytes(e.slot, new_batch * e.per_sample());
    }
  }
  for (auto& op : ops) op->prepare(*this, new_batch);
  prepared_batch = new_batch;
  batch = saved;
}

void CompiledGraph::Impl::finalize_scales() {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EdgeData& e = edges[i];
    if (e.is_acc || e.scale_fixed || e.derived_from >= 0) continue;
    CSQ_CHECK(e.observed)
        << "integer graph: edge " << i
        << " has no scale — run calibrate() before forward()";
    const float lo = std::min(0.0f, e.observed_min);
    const float hi = std::max({e.observed_max, lo + 1e-6f, 1e-6f});
    e.levels = static_cast<float>(levels);
    e.scale = (hi - lo) / e.levels;
    e.zero_point = static_cast<std::int32_t>(std::clamp<long>(
        std::lround(-lo / e.scale), 0, levels));
  }
  // Pools inherit their input edge's scale and grid (codes pass through).
  for (EdgeData& e : edges) {
    if (e.derived_from >= 0) {
      const EdgeData& base = edges[static_cast<std::size_t>(e.derived_from)];
      e.scale = base.scale;
      e.levels = base.levels;
      e.zero_point = base.zero_point;
    }
  }
  for (auto& op : ops) op->finalize(*this);
  scales_final = true;
}

void CompiledGraph::Impl::run_int_all() {
  prepare(batch);
  for (auto& op : ops) op->run_int(*this);
}

void CompiledGraph::Impl::run_float_all() {
  float_edges.resize(edges.size());
  for (auto& op : ops) op->run_float(*this);
}

// -------------------------------------------------------------- builder --

namespace {

// Replays a recorded GraphProgram into the op list. The conv/bn/relu/
// act-quant run of a plain stack is accumulated as a "pending" accumulator
// and flushed into one RequantOp (or JoinOp at residual joins) when the
// next instruction needs a realized uint8 edge. Consumes only program data
// — never a module — so artifact loading shares this path byte for byte
// with live lowering.
class GraphBuilder {
 public:
  // `mapped` is the borrowed-weight table of an mmap-loaded program (null
  // for regular programs): conv/linear layers then adopt pre-packed views
  // from it, in lowering order, instead of packing from the layer codes.
  GraphBuilder(CompiledGraph::Impl& g, const MappedWeightTable* mapped)
      : g_(g), mapped_(mapped) {
    EdgeData input;
    input.channels = g.options.in_channels;
    input.height = g.options.in_height;
    input.width = g.options.in_width;
    g_.edges.push_back(input);
    g_.input_edge = 0;
    current_edge_ = 0;
    add_op(std::make_unique<QuantizeInputOp>(0), {}, {0});
  }

  // Packs (or borrows) one layer's weights for the replayed conv/linear.
  PackedIntWeights make_packed(const QuantizedLayerExport& layer,
                               const ProgramInstr& instr, std::int64_t rows,
                               std::int64_t cols) {
    if (mapped_ == nullptr) {
      return PackedIntWeights(layer.codes, layer.step(), layer.bits, rows,
                              cols,
                              static_cast<WeightKernel>(instr.kernel_kind));
    }
    CSQ_CHECK(next_mapped_ < mapped_->entries.size())
        << "mmap artifact: weight table holds " << mapped_->entries.size()
        << " entries but the program replays more conv/linear layers";
    const MappedWeightTable::Entry& entry = mapped_->entries[next_mapped_++];
    CSQ_CHECK(entry.rows == rows && entry.cols == cols)
        << "mmap artifact: " << layer.name << " weight extents " << entry.rows
        << "x" << entry.cols << " do not match the replayed layer (" << rows
        << "x" << cols << ")";
    return PackedIntWeights(entry.spans, layer.step(), layer.bits,
                            entry.shift, rows, cols,
                            static_cast<WeightKernel>(instr.kernel_kind));
  }

  void conv(const QuantizedLayerExport& layer, const ProgramInstr& instr) {
    const int in = realize();
    const EdgeData in_e = g_.edges[static_cast<std::size_t>(in)];
    CSQ_CHECK(layer.shape.size() == 4)
        << "lowering " << layer.name << ": conv weights must be rank 4, got "
        << layer.shape.size();
    const std::int64_t out_channels = layer.shape[0];
    const std::int64_t in_channels = layer.shape[1];
    CSQ_CHECK(layer.shape[2] == instr.kernel && layer.shape[3] == instr.kernel)
        << "lowering " << layer.name << ": kernel " << instr.kernel
        << " does not match the weight shape";
    CSQ_CHECK(in_e.channels == in_channels)
        << "lowering " << layer.name << ": edge channels " << in_e.channels
        << " != " << in_channels;
    CSQ_CHECK(instr.bias.empty() ||
              static_cast<std::int64_t>(instr.bias.size()) == out_channels)
        << "lowering " << layer.name << ": bias length mismatch";

    ConvGeometry geom;
    geom.channels = in_channels;
    geom.height = in_e.height;
    geom.width = in_e.width;
    geom.kernel_h = geom.kernel_w = instr.kernel;
    geom.stride = instr.stride;
    geom.pad = instr.pad;
    geom.validate();

    PackedIntWeights packed =
        make_packed(layer, instr, out_channels, geom.col_rows());
    const bool direct =
        instr.kernel == 1 && instr.stride == 1 && instr.pad == 0;
    const int acc = new_acc_edge(out_channels, geom.out_h(), geom.out_w());

    auto op = std::make_unique<ConvOp>(layer.name, in, acc, geom,
                                       std::move(packed), direct);
    const ConvOp* raw = op.get();
    record_layer(layer.name, raw->weights());
    add_op(std::move(op), {in}, {acc},
           direct ? ScratchKind::kNone : ScratchKind::kByte);

    pending_.active = true;
    pending_.main.acc_edge = acc;
    pending_.main.in_edge = in;
    pending_.main.weights = &raw->weights();
    pending_.main.channels = out_channels;
    pending_.main.plane = geom.out_h() * geom.out_w();
    pending_.main.bias = instr.bias;
  }

  void linear(const QuantizedLayerExport& layer, const ProgramInstr& instr) {
    const int in = realize();
    const EdgeData& in_e = g_.edges[static_cast<std::size_t>(in)];
    CSQ_CHECK(layer.shape.size() == 2)
        << "lowering " << layer.name << ": linear weights must be rank 2, "
        << "got " << layer.shape.size();
    const std::int64_t out_features = layer.shape[0];
    const std::int64_t in_features = layer.shape[1];
    CSQ_CHECK(in_e.per_sample() == in_features)
        << "lowering " << layer.name << ": edge carries " << in_e.per_sample()
        << " values, layer expects " << in_features;
    CSQ_CHECK(g_.out_features == 0)
        << "integer graph: multiple Linear heads are not supported";
    CSQ_CHECK(instr.bias.empty() ||
              static_cast<std::int64_t>(instr.bias.size()) == out_features)
        << "lowering " << layer.name << ": bias length mismatch";

    PackedIntWeights packed =
        make_packed(layer, instr, out_features, in_features);
    auto op = std::make_unique<LinearOp>(layer.name, in, std::move(packed),
                                         instr.bias);
    record_layer(layer.name, op->weights());
    g_.out_features = out_features;
    add_op(std::move(op), {in}, {}, ScratchKind::kInt);
    current_edge_ = -1;  // the graph output is the float logits tensor
  }

  void batchnorm(const ProgramInstr& instr) {
    CSQ_CHECK(pending_.active && pending_.main.bn_scale.empty())
        << "integer graph: batch norm must directly follow a convolution";
    AccRequant& main = pending_.main;
    CSQ_CHECK(static_cast<std::int64_t>(instr.scale.size()) ==
                  main.channels &&
              instr.shift.size() == instr.scale.size())
        << "integer graph: batch-norm channel mismatch";
    main.bn_scale = instr.scale;
    main.bn_bias = instr.shift;
  }

  void relu() {
    CSQ_CHECK(pending_.active)
        << "integer graph: standalone ReLU (without a producing conv/join) "
           "is not supported";
    pending_.relu = true;
  }

  void act_quant(int bits, float clip) {
    CSQ_CHECK(pending_.active)
        << "integer graph: activation quantizer without a producing layer";
    CSQ_CHECK(clip > 0.0f) << "integer graph: non-positive act-quant clip";
    // Serve the module's own grid so the deployed activations match the
    // QAT forward the accuracy was validated on. Grids finer than uint8
    // (bits > 8) degrade to the graph's act_bits grid over the same clip.
    const std::int64_t levels =
        std::min((std::int64_t{1} << bits) - 1, g_.levels);
    pending_.fixed_scale = clip / static_cast<float>(levels);
    pending_.fixed_levels = static_cast<float>(levels);
    pending_.has_fixed_scale = true;
  }

  void pool(const ProgramInstr& instr, bool is_avg) {
    const int in = realize();
    const EdgeData in_e = g_.edges[static_cast<std::size_t>(in)];
    Pool2dConfig config;
    config.kernel_h = instr.kernel;
    config.kernel_w = instr.kernel_w > 0 ? instr.kernel_w : instr.kernel;
    config.stride = instr.stride;
    config.pad = instr.pad;
    config.validate(is_avg ? "avgpool" : "maxpool");
    const std::int64_t out_h = config.out_h(in_e.height);
    const std::int64_t out_w = config.out_w(in_e.width);
    CSQ_CHECK(out_h >= 1 && out_w >= 1)
        << "integer graph: pool window " << config.kernel_h << "x"
        << config.kernel_w << " larger than the " << in_e.height << "x"
        << in_e.width << " feature map";
    const int out = new_u8_edge(in_e.channels, out_h, out_w);
    g_.edges[static_cast<std::size_t>(out)].derived_from = in;
    if (is_avg) {
      const int sum = new_acc_edge(in_e.channels, out_h, out_w);
      add_op(std::make_unique<AvgPoolOp>(in, sum, out, config,
                                         instr.exclude_pad),
             {in}, {sum, out});
    } else {
      add_op(std::make_unique<MaxPoolOp>(in, out, config), {in}, {out});
    }
    current_edge_ = out;
  }

  void global_avg_pool() {
    const int in = realize();
    const EdgeData in_e = g_.edges[static_cast<std::size_t>(in)];
    const int out = new_u8_edge(in_e.channels, 1, 1);
    g_.edges[static_cast<std::size_t>(out)].derived_from = in;
    add_op(std::make_unique<GlobalAvgPoolOp>(in, out), {in}, {out});
    current_edge_ = out;
  }

  void flatten() {
    // Shape bookkeeping only: edges are flat per-sample spans already.
    realize();
  }

  void begin_residual() {
    residual_stack_.push_back(Frame{realize(), {}, false});
  }

  void begin_skip() {
    CSQ_CHECK(!residual_stack_.empty()) << "begin_skip outside a residual";
    Frame& frame = residual_stack_.back();
    CSQ_CHECK(pending_.active && !pending_.relu &&
              !pending_.has_fixed_scale && !frame.main_saved)
        << "integer graph: residual main branch must end in conv(+bn)";
    frame.main = std::move(pending_.main);
    frame.main_saved = true;
    pending_ = Pending{};
    current_edge_ = frame.fork_edge;
  }

  void end_residual() {
    CSQ_CHECK(!residual_stack_.empty()) << "end_residual outside a residual";
    Frame frame = std::move(residual_stack_.back());
    residual_stack_.pop_back();
    CSQ_CHECK(frame.main_saved) << "end_residual without begin_skip";

    Pending join;
    join.active = true;
    join.is_join = true;
    join.main = std::move(frame.main);
    // The float path CHECKs the join shapes at runtime (blocks.cpp); the
    // lowered graph must refuse mismatched branches at compile time — the
    // join op indexes both buffers with the main branch's extents.
    const auto branch_dims = [this](int edge) {
      const EdgeData& e = g_.edges[static_cast<std::size_t>(edge)];
      return std::array<std::int64_t, 3>{e.channels, e.height, e.width};
    };
    const auto main_dims = branch_dims(join.main.acc_edge);
    if (pending_.active) {
      CSQ_CHECK(!pending_.relu)
          << "integer graph: residual skip branch must end in conv(+bn)";
      CSQ_CHECK(branch_dims(pending_.main.acc_edge) == main_dims)
          << "integer graph: residual branch shape mismatch";
      join.skip_is_acc = true;
      join.skip = std::move(pending_.main);
    } else {
      CSQ_CHECK(branch_dims(current_edge_) == main_dims)
          << "integer graph: residual branch shape mismatch";
      join.skip_edge = current_edge_;
    }
    pending_ = std::move(join);
    current_edge_ = -1;
  }

  void finish() {
    CSQ_CHECK(residual_stack_.empty())
        << "integer graph: dangling residual frames after the walk";
    if (g_.out_features == 0) {
      // Conv-head model: no Linear anywhere — a GlobalAvgPool terminates
      // the graph and its (C,1,1) codes dequantize into the float output.
      const int out = realize();
      const EdgeData& e = g_.edges[static_cast<std::size_t>(out)];
      CSQ_CHECK(e.height == 1 && e.width == 1)
          << "integer graph: a model without a Linear head must end in "
             "GlobalAvgPool (last edge is " << e.height << "x" << e.width
          << ")";
      g_.out_features = e.channels;
      add_op(std::make_unique<DequantOutputOp>(out), {out}, {});
    }
    CSQ_CHECK(!pending_.active)
        << "integer graph: dangling un-realized ops after the walk";
    plan_slots();
    const int slots =
        std::max({g_.byte_slots_used, g_.int_slots_used, 1});
    g_.ws = std::make_unique<Workspace>(slots);
  }

 private:
  enum class ScratchKind { kNone, kByte, kInt };

  // Edge traffic of one op, in topological (execution) order — the liveness
  // intervals the buffer planner colors.
  struct OpMeta {
    std::vector<int> reads;
    std::vector<int> writes;
    ScratchKind scratch = ScratchKind::kNone;
  };

  void add_op(std::unique_ptr<Op> op, std::vector<int> reads,
              std::vector<int> writes,
              ScratchKind scratch = ScratchKind::kNone) {
    g_.ops.push_back(std::move(op));
    op_meta_.push_back(OpMeta{std::move(reads), std::move(writes), scratch});
  }

  // Assigns every edge (and op scratch buffer) its workspace slot. Planned
  // mode colors the liveness intervals over the op order: an edge's slot
  // returns to its class free list after the edge's last consumer, and ops'
  // private scratch (conv im2col, linear accumulator) lives only for its
  // own op — so all convolutions share one im2col stripe. Outputs and
  // scratch of op i never recycle a slot freed AT op i (an op must not
  // write into a buffer it is still reading), which keeps planned and
  // unplanned graphs bit-identical.
  void plan_slots() {
    const int n_ops = static_cast<int>(g_.ops.size());
    if (!g_.options.plan_buffers) {
      // Baseline policy: one dedicated slot per edge / scratch buffer for
      // the graph's lifetime (the memory-regression comparison point).
      for (EdgeData& e : g_.edges) {
        e.slot = e.is_acc ? g_.int_slots_used++ : g_.byte_slots_used++;
      }
      for (int i = 0; i < n_ops; ++i) {
        if (op_meta_[static_cast<std::size_t>(i)].scratch ==
            ScratchKind::kByte) {
          g_.ops[static_cast<std::size_t>(i)]->set_scratch_slot(
              g_.byte_slots_used++);
        } else if (op_meta_[static_cast<std::size_t>(i)].scratch ==
                   ScratchKind::kInt) {
          g_.ops[static_cast<std::size_t>(i)]->set_scratch_slot(
              g_.int_slots_used++);
        }
      }
      return;
    }

    std::vector<int> last(g_.edges.size(), -1);
    for (int i = 0; i < n_ops; ++i) {
      const OpMeta& meta = op_meta_[static_cast<std::size_t>(i)];
      for (const int e : meta.writes) {
        last[static_cast<std::size_t>(e)] = i;
      }
      for (const int e : meta.reads) {
        last[static_cast<std::size_t>(e)] =
            std::max(last[static_cast<std::size_t>(e)], i);
      }
    }
    std::vector<int> free_bytes, free_ints;
    std::vector<char> released(g_.edges.size(), 0);
    const auto take = [](std::vector<int>& free_list, int& used) {
      if (free_list.empty()) return used++;
      const int slot = free_list.back();
      free_list.pop_back();
      return slot;
    };
    for (int i = 0; i < n_ops; ++i) {
      const OpMeta& meta = op_meta_[static_cast<std::size_t>(i)];
      for (const int e : meta.writes) {
        EdgeData& edge = g_.edges[static_cast<std::size_t>(e)];
        CSQ_CHECK(edge.slot < 0) << "buffer plan: edge " << e
                                 << " written by two ops";
        edge.slot = edge.is_acc ? take(free_ints, g_.int_slots_used)
                                : take(free_bytes, g_.byte_slots_used);
      }
      int scratch = -1;
      if (meta.scratch == ScratchKind::kByte) {
        scratch = take(free_bytes, g_.byte_slots_used);
      } else if (meta.scratch == ScratchKind::kInt) {
        scratch = take(free_ints, g_.int_slots_used);
      }
      if (scratch >= 0) {
        g_.ops[static_cast<std::size_t>(i)]->set_scratch_slot(scratch);
      }
      const auto release_dead = [&](int e) {
        if (last[static_cast<std::size_t>(e)] != i ||
            released[static_cast<std::size_t>(e)]) {
          return;
        }
        released[static_cast<std::size_t>(e)] = 1;
        const EdgeData& edge = g_.edges[static_cast<std::size_t>(e)];
        (edge.is_acc ? free_ints : free_bytes).push_back(edge.slot);
      };
      for (const int e : meta.reads) release_dead(e);
      for (const int e : meta.writes) release_dead(e);
      if (meta.scratch == ScratchKind::kByte) {
        free_bytes.push_back(scratch);
      } else if (meta.scratch == ScratchKind::kInt) {
        free_ints.push_back(scratch);
      }
    }
    for (std::size_t e = 0; e < g_.edges.size(); ++e) {
      CSQ_CHECK(g_.edges[e].slot >= 0)
          << "buffer plan: edge " << e << " was never written";
    }
  }

  struct Pending {
    bool active = false;
    bool is_join = false;
    AccRequant main;
    bool skip_is_acc = false;
    AccRequant skip;
    int skip_edge = -1;
    bool relu = false;
    bool has_fixed_scale = false;
    float fixed_scale = 0.0f;
    float fixed_levels = 0.0f;
  };
  struct Frame {
    int fork_edge = -1;
    AccRequant main;
    bool main_saved = false;
  };

  // Edges are created without a workspace slot; plan_slots() assigns them
  // all at finish(), once the full liveness picture exists.
  int new_u8_edge(std::int64_t c, std::int64_t h, std::int64_t w) {
    EdgeData e;
    e.channels = c;
    e.height = h;
    e.width = w;
    g_.edges.push_back(e);
    return static_cast<int>(g_.edges.size()) - 1;
  }

  int new_acc_edge(std::int64_t c, std::int64_t h, std::int64_t w) {
    EdgeData e;
    e.channels = c;
    e.height = h;
    e.width = w;
    e.is_acc = true;
    g_.edges.push_back(e);
    return static_cast<int>(g_.edges.size()) - 1;
  }

  void record_layer(const std::string& name, const PackedIntWeights& w) {
    CompiledGraph::LayerInfo info;
    info.name = name;
    info.bits = w.bits();
    info.split = w.split();
    info.weight_count = w.rows() * w.cols();
    info.storage_bits = w.storage_bits();
    info.kernel = w.kernel_name();
    g_.layer_infos.push_back(std::move(info));
    g_.layer_weights.push_back(&w);
  }

  // Flushes the pending accumulator into a requant/join op and returns the
  // realized uint8 edge the next op consumes.
  int realize() {
    if (!pending_.active) {
      CSQ_CHECK(current_edge_ >= 0)
          << "integer graph: no realized activation edge at this point "
             "(ops after the Linear head are not supported)";
      return current_edge_;
    }
    CSQ_CHECK(pending_.relu)
        << "integer graph: a quantized activation edge requires a fused "
           "ReLU (unsigned codes cannot carry negative pre-activations)";
    const AccRequant& main = pending_.main;
    const EdgeData acc_e =
        g_.edges[static_cast<std::size_t>(main.acc_edge)];
    const int out = new_u8_edge(acc_e.channels, acc_e.height, acc_e.width);
    if (pending_.has_fixed_scale) {
      EdgeData& e = g_.edges[static_cast<std::size_t>(out)];
      e.scale = pending_.fixed_scale;
      e.levels = pending_.fixed_levels;
      e.scale_fixed = true;
    }
    if (pending_.is_join) {
      if (pending_.skip_is_acc) {
        const int main_acc = pending_.main.acc_edge;
        const int skip_acc = pending_.skip.acc_edge;
        add_op(std::make_unique<JoinOp>(std::move(pending_.main),
                                        std::move(pending_.skip), out),
               {main_acc, skip_acc}, {out});
      } else {
        const int main_acc = pending_.main.acc_edge;
        add_op(std::make_unique<JoinOp>(std::move(pending_.main),
                                        pending_.skip_edge, out),
               {main_acc, pending_.skip_edge}, {out});
      }
    } else {
      const int main_acc = pending_.main.acc_edge;
      add_op(std::make_unique<RequantOp>(std::move(pending_.main), out),
             {main_acc}, {out});
    }
    pending_ = Pending{};
    current_edge_ = out;
    return out;
  }

  CompiledGraph::Impl& g_;
  const MappedWeightTable* mapped_ = nullptr;
  std::size_t next_mapped_ = 0;  // borrowed entries consumed so far
  Pending pending_;
  std::vector<Frame> residual_stack_;
  std::vector<OpMeta> op_meta_;  // parallel to g_.ops
  int current_edge_ = -1;
};

}  // namespace

// ------------------------------------------------------- CompiledGraph --

CompiledGraph::CompiledGraph() : impl_(std::make_unique<Impl>()) {}
CompiledGraph::CompiledGraph(CompiledGraph&&) noexcept = default;
CompiledGraph& CompiledGraph::operator=(CompiledGraph&&) noexcept = default;
CompiledGraph::~CompiledGraph() = default;

Tensor CompiledGraph::forward(const Tensor& input) {
  Impl& g = *impl_;
  g.check_input(input);
  if (!g.scales_final) g.finalize_scales();
  g.batch = input.dim(0);
  g.run_input = &input;
  g.run_int_all();
  g.run_input = nullptr;
  return std::move(g.run_output);
}

Tensor CompiledGraph::forward_reference(const Tensor& input) {
  Impl& g = *impl_;
  g.check_input(input);
  g.batch = input.dim(0);
  g.run_input = &input;
  g.run_float_all();
  g.run_input = nullptr;
  return std::move(g.run_output);
}

void CompiledGraph::calibrate(const Tensor& batch) {
  Impl& g = *impl_;
  g.calibrating = true;
  forward_reference(batch);
  g.calibrating = false;
  g.scales_final = false;  // ranges moved; requant constants are stale
  // Serving keeps only the integer workspace; drop the per-edge float
  // buffers and dequantized-weight caches of the calibration walk
  // (forward_reference regrows them on demand).
  g.float_edges.clear();
  g.float_edges.shrink_to_fit();
  for (auto& op : g.ops) op->release_float_cache();
}

void CompiledGraph::prepare(std::int64_t batch) {
  if (!impl_->scales_final) impl_->finalize_scales();
  impl_->prepare(batch);
}

bool CompiledGraph::pooled() const { return impl_->pooled; }

void CompiledGraph::set_pooled(bool pooled) { impl_->pooled = pooled; }

std::uint64_t CompiledGraph::buffer_growth_count() const {
  return impl_->ws->growth_count();
}

std::int64_t CompiledGraph::workspace_bytes() const {
  return impl_->ws->total_bytes();
}

const std::vector<CompiledGraph::LayerInfo>& CompiledGraph::layers() const {
  return impl_->layer_infos;
}

std::int64_t CompiledGraph::weight_storage_bits() const {
  std::int64_t total = 0;
  for (const LayerInfo& info : impl_->layer_infos) {
    total += info.storage_bits;
  }
  return total;
}

Tensor CompiledGraph::dequantized_weights(
    const std::string& layer_name) const {
  for (std::size_t i = 0; i < impl_->layer_infos.size(); ++i) {
    if (impl_->layer_infos[i].name != layer_name) continue;
    const PackedIntWeights& w = *impl_->layer_weights[i];
    Tensor result({w.rows(), w.cols()});
    float* data = result.data();
    for (std::int64_t j = 0; j < w.rows() * w.cols(); ++j) {
      data[j] = w.weight(j);
    }
    return result;
  }
  CSQ_CHECK(false) << "integer graph: no lowered layer named " << layer_name;
  return Tensor();
}

const std::vector<const PackedIntWeights*>&
CompiledGraph::layer_weight_views() const {
  return impl_->layer_weights;
}

std::string CompiledGraph::describe() const {
  std::ostringstream out;
  for (const auto& op : impl_->ops) {
    out << op->describe(*impl_) << "\n";
  }
  return out.str();
}

CompiledGraph::IoShape CompiledGraph::io_shape() const {
  const EdgeData& in =
      impl_->edges[static_cast<std::size_t>(impl_->input_edge)];
  IoShape shape;
  shape.channels = in.channels;
  shape.height = in.height;
  shape.width = in.width;
  shape.out_features = impl_->out_features;
  return shape;
}

const LowerOptions& CompiledGraph::options() const { return impl_->options; }

const GraphProgram& CompiledGraph::program() const {
  return *impl_->program;
}

std::shared_ptr<const GraphProgram> CompiledGraph::shared_program() const {
  return impl_->program;
}

std::vector<EdgeScaleRecord> CompiledGraph::edge_scales() {
  if (!impl_->scales_final) impl_->finalize_scales();
  std::vector<EdgeScaleRecord> records;
  records.reserve(impl_->edges.size());
  for (const EdgeData& e : impl_->edges) {
    EdgeScaleRecord record;
    record.is_acc = e.is_acc;
    if (!e.is_acc) {
      record.scale = e.scale;
      record.levels = e.levels;
      record.zero_point = e.zero_point;
    }
    records.push_back(record);
  }
  return records;
}

void CompiledGraph::restore_edge_scales(
    const std::vector<EdgeScaleRecord>& records) {
  Impl& g = *impl_;
  CSQ_CHECK(records.size() == g.edges.size())
      << "graph artifact: edge count " << records.size()
      << " does not match the program's " << g.edges.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EdgeData& e = g.edges[i];
    const EdgeScaleRecord& record = records[i];
    CSQ_CHECK(record.is_acc == e.is_acc)
        << "graph artifact: edge " << i << " type mismatch";
    if (e.is_acc) continue;
    CSQ_CHECK(record.scale > 0.0f && record.levels >= 1.0f)
        << "graph artifact: edge " << i << " carries an unresolved scale";
    e.scale = record.scale;
    e.levels = record.levels;
    e.zero_point = record.zero_point;
    // Pools keep re-deriving from their input edge (same restored values);
    // every other edge serves the snapshot as a pinned scale.
    if (e.derived_from < 0) e.scale_fixed = true;
  }
  g.scales_final = false;
  g.finalize_scales();
}

CompiledGraph lower(Model& model, const LowerOptions& options) {
  CSQ_CHECK(model.has_root()) << "lower: model has no root module";
  return build_graph(record_program(model), options);
}

namespace {

// Replays `program` into a fresh Impl. Shared by build_graph (which then
// takes ownership of the program) and replicate (which shares the source
// graph's program instead of deep-copying it).
void replay_program(CompiledGraph::Impl& impl, const GraphProgram& program,
                    const LowerOptions& options) {
  CSQ_CHECK(options.act_bits >= 1 && options.act_bits <= 8)
      << "lower: act_bits must be in [1, 8] (codes are stored in uint8)";
  impl.options = options;
  impl.levels = (std::int64_t{1} << options.act_bits) - 1;
  impl.pooled = options.pooled;
  GraphBuilder builder(impl, program.mapped.get());
  const auto layer_of = [&program](const ProgramInstr& instr) ->
      const QuantizedLayerExport& {
    CSQ_CHECK(instr.layer >= 0 &&
              instr.layer < static_cast<std::int32_t>(program.layers.size()))
        << "graph program: instruction references layer " << instr.layer
        << " of " << program.layers.size();
    return program.layers[static_cast<std::size_t>(instr.layer)];
  };
  for (const ProgramInstr& instr : program.instrs) {
    switch (instr.kind) {
      case ProgramInstr::Kind::kConv:
        builder.conv(layer_of(instr), instr);
        break;
      case ProgramInstr::Kind::kLinear:
        builder.linear(layer_of(instr), instr);
        break;
      case ProgramInstr::Kind::kBatchNorm:
        builder.batchnorm(instr);
        break;
      case ProgramInstr::Kind::kRelu:
        builder.relu();
        break;
      case ProgramInstr::Kind::kActQuant:
        builder.act_quant(instr.act_bits, instr.clip);
        break;
      case ProgramInstr::Kind::kMaxPool:
        builder.pool(instr, /*is_avg=*/false);
        break;
      case ProgramInstr::Kind::kAvgPool:
        builder.pool(instr, /*is_avg=*/true);
        break;
      case ProgramInstr::Kind::kGlobalAvgPool:
        builder.global_avg_pool();
        break;
      case ProgramInstr::Kind::kFlatten:
        builder.flatten();
        break;
      case ProgramInstr::Kind::kBeginResidual:
        builder.begin_residual();
        break;
      case ProgramInstr::Kind::kBeginSkip:
        builder.begin_skip();
        break;
      case ProgramInstr::Kind::kEndResidual:
        builder.end_residual();
        break;
      default:
        CSQ_CHECK(false) << "graph program: unknown instruction kind "
                         << static_cast<int>(instr.kind);
    }
  }
  builder.finish();
}

// Per-layer kernel selection, recorded in the program BEFORE replay so the
// persisted artifact (and every replica sharing the program) replays the
// exact same GEMM paths. Instructions that already carry a recorded kind
// (v3 artifacts) keep it; pre-kernel-record programs re-derive the identical
// choice (select_kernel is a pure function of the layer data);
// force_reference_kernel pins everything to the s8u8 baseline.
void resolve_kernel_selection(GraphProgram& program,
                              const LowerOptions& options) {
  // Mmap-loaded programs carry no owned codes to re-derive a selection from
  // — the borrowed panels were packed for the recorded kernels, so the
  // recorded kinds are the only valid replay.
  if (program.mapped != nullptr) {
    CSQ_CHECK(!options.force_reference_kernel)
        << "mmap artifact: force_reference_kernel would mismatch the "
           "borrowed panels; use load_graph for kernel A/B runs";
    for (const ProgramInstr& instr : program.instrs) {
      if (instr.kind != ProgramInstr::Kind::kConv &&
          instr.kind != ProgramInstr::Kind::kLinear) {
        continue;
      }
      CSQ_CHECK(instr.kernel_kind >= 0)
          << "mmap artifact: unresolved kernel kind on a mapped program";
    }
    return;
  }
  for (ProgramInstr& instr : program.instrs) {
    if (instr.kind != ProgramInstr::Kind::kConv &&
        instr.kind != ProgramInstr::Kind::kLinear) {
      continue;
    }
    if (options.force_reference_kernel) {
      instr.kernel_kind = static_cast<std::int32_t>(WeightKernel::kS8U8);
      continue;
    }
    if (instr.kernel_kind >= 0) continue;  // recorded choice wins
    CSQ_CHECK(instr.layer >= 0 &&
              instr.layer < static_cast<std::int32_t>(program.layers.size()))
        << "graph program: instruction references layer " << instr.layer
        << " of " << program.layers.size();
    const QuantizedLayerExport& layer =
        program.layers[static_cast<std::size_t>(instr.layer)];
    std::int64_t cols = 1;
    for (std::size_t d = 1; d < layer.shape.size(); ++d) {
      cols *= layer.shape[d];
    }
    instr.kernel_kind = static_cast<std::int32_t>(
        PackedIntWeights::select_kernel(layer.codes, layer.bits, cols));
  }
}

}  // namespace

CompiledGraph build_graph(GraphProgram program, const LowerOptions& options) {
  CompiledGraph graph;
  resolve_kernel_selection(program, options);
  replay_program(*graph.impl_, program, options);
  graph.impl_->program =
      std::make_shared<const GraphProgram>(std::move(program));
  return graph;
}

CompiledGraph replicate(CompiledGraph& graph) {
  CompiledGraph copy;
  replay_program(*copy.impl_, *graph.impl_->program, graph.options());
  copy.impl_->program = graph.impl_->program;  // shared: no deep copy
  copy.restore_edge_scales(graph.edge_scales());
  return copy;
}

CompiledGraph rebuild_replica(std::shared_ptr<const GraphProgram> program,
                              const LowerOptions& options,
                              const std::vector<EdgeScaleRecord>& records) {
  CSQ_CHECK(program != nullptr) << "rebuild_replica: null program";
  CompiledGraph copy;
  replay_program(*copy.impl_, *program, options);
  copy.impl_->program = std::move(program);  // shared: no deep copy
  copy.restore_edge_scales(records);
  return copy;
}

float evaluate_graph_accuracy(CompiledGraph& graph,
                              const InMemoryDataset& dataset,
                              std::int64_t batch_size) {
  DataLoader loader(dataset, batch_size, /*shuffle=*/false, Rng(1));
  Batch batch;
  std::int64_t correct = 0;
  loader.start_epoch();
  while (loader.next(batch)) {
    const Tensor logits = graph.forward(batch.images);
    const std::int64_t classes = logits.dim(1);
    for (std::int64_t b = 0;
         b < static_cast<std::int64_t>(batch.labels.size()); ++b) {
      if (argmax(logits.data() + b * classes, classes) ==
          batch.labels[static_cast<std::size_t>(b)]) {
        ++correct;
      }
    }
  }
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(dataset.size());
}

}  // namespace runtime
}  // namespace csq
