#include "runtime/subbyte.h"

#include <algorithm>

#include "util/check.h"

namespace csq {
namespace runtime {

BitPlanes pack_bit_planes(const std::int8_t* codes, std::int64_t count) {
  CSQ_CHECK(count >= 0) << "pack_bit_planes: negative count";
  BitPlanes planes;
  planes.count = count;
  std::int32_t max_magnitude = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t v = codes[i];
    max_magnitude = std::max(max_magnitude, v < 0 ? -v : v);
  }
  int plane_count = 0;
  while ((max_magnitude >> plane_count) != 0) ++plane_count;
  planes.planes = plane_count;

  const std::int64_t words = planes.words_per_plane();
  planes.sign.assign(static_cast<std::size_t>(words), 0);
  planes.bits.assign(static_cast<std::size_t>(plane_count * words), 0);
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t v = codes[i];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (v < 0) planes.sign[static_cast<std::size_t>(i >> 6)] |= bit;
    const std::uint32_t magnitude = static_cast<std::uint32_t>(v < 0 ? -v : v);
    for (int t = 0; t < plane_count; ++t) {
      if ((magnitude >> t) & 1) {
        planes.bits[static_cast<std::size_t>(t * words + (i >> 6))] |= bit;
      }
    }
  }
  return planes;
}

void unpack_bit_planes(const BitPlanes& planes, std::int8_t* codes) {
  const std::int64_t words = planes.words_per_plane();
  for (std::int64_t i = 0; i < planes.count; ++i) {
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    std::int32_t magnitude = 0;
    // The power-of-two shift combination, exact in integers.
    for (int t = 0; t < planes.planes; ++t) {
      if (planes.bits[static_cast<std::size_t>(t * words + (i >> 6))] & bit) {
        magnitude += 1 << t;
      }
    }
    const bool negative =
        (planes.sign[static_cast<std::size_t>(i >> 6)] & bit) != 0;
    codes[i] = static_cast<std::int8_t>(negative ? -magnitude : magnitude);
  }
}

std::int64_t nibble_bytes(std::int64_t count) { return (count + 1) / 2; }

void pack_nibbles(const std::int8_t* codes, std::int64_t count,
                  std::uint8_t* packed) {
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t v = codes[i];
    CSQ_CHECK(v >= -8 && v <= 7)
        << "pack_nibbles: code " << v
        << " outside the signed nibble range [-8, 7]";
    const std::uint8_t nib = static_cast<std::uint8_t>(v) & 0x0F;
    if ((i & 1) == 0) {
      packed[i >> 1] = nib;
    } else {
      packed[i >> 1] = static_cast<std::uint8_t>(packed[i >> 1] | (nib << 4));
    }
  }
}

void unpack_nibbles(const std::uint8_t* packed, std::int64_t count,
                    std::int8_t* codes) {
  for (std::int64_t i = 0; i < count; ++i) {
    const std::uint8_t byte = packed[i >> 1];
    const std::uint32_t nib = (i & 1) ? (byte >> 4) : (byte & 0x0F);
    codes[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(nib ^ 8) - 8);
  }
}

}  // namespace runtime
}  // namespace csq
