// Int8 packing of exact fixed-point weight codes (nn/weight_source.h
// WeightCodes) for the integer inference runtime.
//
// The paper's finalized grid is sign-magnitude with |code| <= 2^8 - 1 —
// one bit wider than int8. Packing normalizes each layer in two exact steps:
//
//   1. A per-layer power-of-two shift: every code is divisible by
//      2^shift (shift = the lowest active bit of the layer's scheme), so the
//      stored plane holds code >> shift and the shift folds into the
//      effective scale exactly (power-of-two float scaling is lossless).
//   2. If the shifted codes still exceed +/-127 (a full-span 8-bit layer),
//      a hi/lo split: code = 2*hi + lo with hi in [-128, 127] and lo in
//      {0, 1}. The GEMM then runs two int8 passes chained through the
//      kernel's integer alpha (alpha=2 overwrite, alpha=1 accumulate).
//
// Both transforms are integer-exact, so reconstructing
//   weight[i] = effective_step() * full_code(i)
// reproduces the float materialization of a finalized CSQ source bit for
// bit (one float multiply of the step by an exactly-representable integer —
// the same operation materialize_hard performs).
//
// On top of the representation, each layer carries a KERNEL: the GEMM path
// its precision earns. Low-bit layers store genuine sign/magnitude
// bit-planes (runtime/subbyte.h) whose power-of-two combination is folded
// back into collapsed int8 codes at pack time — the bit-serial shift-and-add
// performed once, exactly, instead of per forward — and run the K-quad
// vpmaddubsw kernel (or its int16-accumulator variant when the depth
// headroom proves no overflow). 4-bit layers run the nibble-packed kernel.
// Every kernel produces the SAME int32 accumulators as the s8u8 reference,
// so the choice never changes served outputs, only latency.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/weight_source.h"
#include "runtime/subbyte.h"
#include "tensor/gemm.h"

namespace csq {
namespace runtime {

// Per-layer GEMM path. Numeric values are persisted in graph artifacts
// (ProgramInstr::kernel_kind); kAuto (-1) means "resolve at lowering".
enum class WeightKernel : std::int32_t {
  kAuto = -1,
  kS8U8 = 0,        // widened int16 K-pair reference path
  kBitSerial = 1,   // bit-planes collapsed at pack time, K-quad vpmaddubsw
  kNibble = 2,      // two codes per byte, unpacked in-register
  kBitSerialWide = 3,  // bit-serial with int16 accumulators (3x MACs)
};

// Stable short name for describe() output and bench reports:
// "s8u8" | "bitserial" | "nibble" | "bitserial-w16" | "auto".
const char* weight_kernel_name(WeightKernel kernel);

// Raw views of one layer's packed storage — every byte the serving-time
// GEMM consumes — pointing into externally-owned memory (a CRC-verified
// read-only file mapping for the load_graph_mmap path). Extents are implied
// by rows/cols/kernel: planes are rows*cols int8; panel element counts come
// from the gemm_*_packed_a_size functions. Exactly one panel family is
// non-null, matching the layer's kernel (plus low_panels for split s8u8).
struct WeightSpans {
  const std::int8_t* primary = nullptr;          // rows*cols plane codes
  const std::int8_t* low = nullptr;              // split layers only
  const std::int16_t* primary_panels = nullptr;  // s8u8 micro-panels
  const std::int16_t* low_panels = nullptr;      // split s8u8 only
  const std::int8_t* lowbit_panels = nullptr;    // bit-serial kernels
  const std::uint8_t* nibble_panels = nullptr;   // nibble kernel
};

// Borrowed packed-weight storage for graphs loaded via load_graph_mmap():
// per conv/linear layer (lowering order), views into one read-only file
// mapping, plus the keepalive that unmaps the file once the last graph
// sharing the program drops it. GraphProgram::mapped holds this table.
struct MappedWeightTable {
  struct Entry {
    WeightSpans spans;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    int shift = 0;
  };
  std::vector<Entry> entries;
  std::shared_ptr<const void> keepalive;
};

class PackedIntWeights {
 public:
  PackedIntWeights() = default;

  // Packs `codes` as a (rows x cols) int8 matrix. rows*cols must equal
  // codes.codes.size(); rows is the GEMM M extent (output channels).
  PackedIntWeights(const WeightCodes& codes, std::int64_t rows,
                   std::int64_t cols,
                   WeightKernel kernel = WeightKernel::kAuto);

  // Borrowing form: packs a caller-owned code vector (e.g. a layer record
  // inside a shared GraphProgram) without the WeightCodes wrapper copy.
  // `step` is the real value of one grid unit (WeightCodes::step()).
  PackedIntWeights(const std::vector<std::int32_t>& codes, float step,
                   int bits, std::int64_t rows, std::int64_t cols,
                   WeightKernel kernel = WeightKernel::kAuto);

  // Borrowing (mmap) form: adopts pre-packed planes and panels that live in
  // externally-owned CRC-verified memory (runtime/graph_artifact.h
  // load_graph_mmap) — no plane or panel copies, so replicas across N
  // processes share one page cache. Row sums and the max-|code| bound are
  // recomputed with one scan, and the kernel's exactness eligibility is
  // re-checked exactly as in the owning form. The caller must keep the
  // backing memory alive for this object's lifetime (the GraphProgram's
  // MappedWeightTable holds the mapping).
  PackedIntWeights(const WeightSpans& spans, float step, int bits, int shift,
                   std::int64_t rows, std::int64_t cols, WeightKernel kernel);

  // The deterministic auto-selection policy: the kernel a layer with these
  // codes earns. Pure function of the codes/bits/shape, so re-resolving a
  // pre-kernel-record artifact reproduces the original choice.
  static WeightKernel select_kernel(const std::vector<std::int32_t>& codes,
                                    int bits, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  int bits() const { return bits_; }
  int shift() const { return shift_; }
  bool split() const { return split_; }

  // True when the planes/panels point into externally-owned memory (the
  // mmap'd artifact path) instead of this object's own vectors.
  bool borrowed() const { return borrowed_; }

  // Raw storage views — the bytes the v5 artifact weight section persists
  // and the borrowing constructor adopts. Null where not applicable.
  const std::int8_t* primary_data() const {
    return borrowed_ ? spans_.primary : primary_.data();
  }
  const std::int8_t* low_data() const {
    if (!split_) return nullptr;
    return borrowed_ ? spans_.low : low_.data();
  }
  const std::int16_t* s8u8_panel_data() const {
    return borrowed_ ? spans_.primary_panels : primary_panels_.data();
  }
  const std::int16_t* s8u8_low_panel_data() const {
    if (!split_) return nullptr;
    return borrowed_ ? spans_.low_panels : low_panels_.data();
  }
  const std::int8_t* lowbit_panel_data() const {
    return borrowed_ ? spans_.lowbit_panels : lowbit_panels_.data();
  }
  const std::uint8_t* nibble_panel_data() const {
    return borrowed_ ? spans_.nibble_panels : nibble_panels_.data();
  }

  // The GEMM path this layer runs (never kAuto after construction).
  WeightKernel kernel() const { return kernel_; }
  const char* kernel_name() const { return weight_kernel_name(kernel_); }

  // Largest |stored-plane code| — the bound the kernel eligibility checks
  // are derived from.
  std::int32_t max_abs_code() const { return max_abs_code_; }

  // Sign/magnitude bit-planes of the stored codes for bit-serial layers;
  // nullptr for other kernels and for borrowed (mmap) weights — the planes
  // are test-only introspection the artifact does not persist.
  const BitPlanes* bit_planes() const {
    return !borrowed_ && (kernel_ == WeightKernel::kBitSerial ||
                          kernel_ == WeightKernel::kBitSerialWide)
               ? &planes_
               : nullptr;
  }

  // Real value of one stored-plane unit: step * 2^shift (exact).
  float effective_step() const { return effective_step_; }

  // Full integer code of element i (plane value re-assembled and shifted).
  std::int32_t full_code(std::int64_t i) const {
    return plane_code(i) * (1 << shift_);
  }
  // Bit-exact float weight of element i (power-of-two scaling makes
  // effective_step * plane == step * full_code exactly).
  float weight(std::int64_t i) const {
    return effective_step_ * static_cast<float>(plane_code(i));
  }

  // Per-row sum of the stored-plane codes — the same units the GEMM
  // accumulator is in — for the zero-point correction term of the consuming
  // requantization: real = effective_step * S_in * (acc - zp * row_sum).
  const std::vector<std::int64_t>& row_code_sums() const { return row_sums_; }

  // C(rows, n) int32 = plane-codes * op(B): one pass through the selected
  // kernel, or the alpha-chained hi/lo pair for split layers. Every kernel
  // yields bit-identical accumulators. `pooled` routes through the parallel
  // kernel (top-level calls); serial inside parallel regions. `split` picks
  // the pooled tile decomposition — the default kAuto resolves by shape, so
  // wide-N/small-rows layers (conv GEMMs at batch 1, attention-style heads)
  // take the column split instead of degrading to serial.
  void gemm(Trans trans_b, std::int64_t n, const std::uint8_t* b,
            std::int64_t ldb, std::int32_t* c, std::int64_t ldc, bool pooled,
            IntGemmScratch* scratch = nullptr,
            GemmSplit split = GemmSplit::kAuto) const;

  // Storage of the packed planes in bits (bits() per weight, doubled for
  // split layers, plus the scale).
  std::int64_t storage_bits() const;

 private:
  // Recorded kernel kinds (artifact replay / mmap load) are honored but
  // never trusted: a record that violates the kernel's exactness bound must
  // throw, not produce wrong logits. Requires max_abs_code_/split_/cols_ set.
  void check_kernel_eligibility() const;

  // Stored-plane code of element i: the hi/lo pair re-assembled for split
  // layers, the single plane otherwise (GEMM-accumulator units).
  std::int32_t plane_code(std::int64_t i) const {
    return split_ ? 2 * static_cast<std::int32_t>(primary_data()[i]) +
                        low_data()[i]
                  : primary_data()[i];
  }

  std::vector<std::int8_t> primary_;
  std::vector<std::int8_t> low_;  // empty unless split()
  // Kernel micro-panel form of the planes, packed once at construction
  // (weights are static at serving time) so gemm() skips per-call A packing.
  // Exactly one family is populated, matching kernel_.
  std::vector<std::int16_t> primary_panels_;
  std::vector<std::int16_t> low_panels_;
  std::vector<std::int8_t> lowbit_panels_;    // K-quad raw int8
  std::vector<std::uint8_t> nibble_panels_;   // K-quad, two codes per byte
  BitPlanes planes_;  // populated for the bit-serial kernels (owned mode)
  WeightSpans spans_;  // borrowed mode: views into the caller's mapping
  std::vector<std::int64_t> row_sums_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  int bits_ = 0;
  int shift_ = 0;
  std::int32_t max_abs_code_ = 0;
  WeightKernel kernel_ = WeightKernel::kS8U8;
  float effective_step_ = 1.0f;
  bool split_ = false;
  bool borrowed_ = false;
};

}  // namespace runtime
}  // namespace csq
