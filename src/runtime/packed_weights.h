// Int8 packing of exact fixed-point weight codes (nn/weight_source.h
// WeightCodes) for the integer inference runtime.
//
// The paper's finalized grid is sign-magnitude with |code| <= 2^8 - 1 —
// one bit wider than int8. Packing normalizes each layer in two exact steps:
//
//   1. A per-layer power-of-two shift: every code is divisible by
//      2^shift (shift = the lowest active bit of the layer's scheme), so the
//      stored plane holds code >> shift and the shift folds into the
//      effective scale exactly (power-of-two float scaling is lossless).
//   2. If the shifted codes still exceed +/-127 (a full-span 8-bit layer),
//      a hi/lo split: code = 2*hi + lo with hi in [-128, 127] and lo in
//      {0, 1}. The GEMM then runs two int8 passes chained through the
//      kernel's integer alpha (alpha=2 overwrite, alpha=1 accumulate).
//
// Both transforms are integer-exact, so reconstructing
//   weight[i] = effective_step() * full_code(i)
// reproduces the float materialization of a finalized CSQ source bit for
// bit (one float multiply of the step by an exactly-representable integer —
// the same operation materialize_hard performs).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/weight_source.h"
#include "tensor/gemm.h"

namespace csq {
namespace runtime {

class PackedIntWeights {
 public:
  PackedIntWeights() = default;

  // Packs `codes` as a (rows x cols) int8 matrix. rows*cols must equal
  // codes.codes.size(); rows is the GEMM M extent (output channels).
  PackedIntWeights(const WeightCodes& codes, std::int64_t rows,
                   std::int64_t cols);

  // Borrowing form: packs a caller-owned code vector (e.g. a layer record
  // inside a shared GraphProgram) without the WeightCodes wrapper copy.
  // `step` is the real value of one grid unit (WeightCodes::step()).
  PackedIntWeights(const std::vector<std::int32_t>& codes, float step,
                   int bits, std::int64_t rows, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  int bits() const { return bits_; }
  int shift() const { return shift_; }
  bool split() const { return !low_.empty(); }

  // Real value of one stored-plane unit: step * 2^shift (exact).
  float effective_step() const { return effective_step_; }

  // Full integer code of element i (plane value re-assembled and shifted).
  std::int32_t full_code(std::int64_t i) const {
    return plane_code(i) * (1 << shift_);
  }
  // Bit-exact float weight of element i (power-of-two scaling makes
  // effective_step * plane == step * full_code exactly).
  float weight(std::int64_t i) const {
    return effective_step_ * static_cast<float>(plane_code(i));
  }

  // Per-row sum of the stored-plane codes — the same units the GEMM
  // accumulator is in — for the zero-point correction term of the consuming
  // requantization: real = effective_step * S_in * (acc - zp * row_sum).
  const std::vector<std::int64_t>& row_code_sums() const { return row_sums_; }

  // C(rows, n) int32 = plane-codes * op(B); one pass, or the alpha-chained
  // hi/lo pair for split layers. `pooled` routes through the MC-tile
  // parallel kernel (top-level calls); serial inside parallel regions.
  void gemm(Trans trans_b, std::int64_t n, const std::uint8_t* b,
            std::int64_t ldb, std::int32_t* c, std::int64_t ldc, bool pooled,
            IntGemmScratch* scratch = nullptr) const;

  // Storage of the packed planes in bits (bits() per weight, doubled for
  // split layers, plus the scale).
  std::int64_t storage_bits() const;

 private:
  // Stored-plane code of element i: the hi/lo pair re-assembled for split
  // layers, the single plane otherwise (GEMM-accumulator units).
  std::int32_t plane_code(std::int64_t i) const {
    const auto index = static_cast<std::size_t>(i);
    return split() ? 2 * static_cast<std::int32_t>(primary_[index]) +
                         low_[index]
                   : primary_[index];
  }

  std::vector<std::int8_t> primary_;
  std::vector<std::int8_t> low_;  // empty unless split()
  // Kernel micro-panel form of the planes, packed once at construction
  // (weights are static at serving time) so gemm() skips per-call A packing.
  std::vector<std::int16_t> primary_panels_;
  std::vector<std::int16_t> low_panels_;
  std::vector<std::int64_t> row_sums_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  int bits_ = 0;
  int shift_ = 0;
  float effective_step_ = 1.0f;
};

}  // namespace runtime
}  // namespace csq
