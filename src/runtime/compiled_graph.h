// Integer inference runtime: lowering a finalized float Model into an
// int8 compiled graph with a serving-grade batched forward.
//
// `lower(model, options)` walks the module tree through the nn lowering seam
// (nn/lowering.h) and emits a flat list of integer ops over typed edges:
//
//   * Conv2d / Linear  -> int8 weight-code GEMMs (runtime/packed_weights.h)
//                         with int32 accumulation into an i32 edge;
//   * BatchNorm2d      -> folded into the consuming requantization's
//                         per-channel scale/bias (running statistics — the
//                         eval-mode semantics);
//   * ReLU             -> fused into the requantization clamp;
//   * activation       -> uint8 codes with a per-edge scale; act-quant
//     flow                modules pin their edge's scale (clip / levels),
//                         remaining edges take calibrated ranges;
//   * residual joins   -> integer re-scaled adds inside the requantization;
//   * max pooling      -> order-preserving max over the uint8 codes
//     (independent stride/padding; padded taps are skipped, the implicit
//     -inf);
//   * average pooling  -> exact int32 window sums with the fixed 1/(kh*kw)
//     divisor folded into the requantization back to uint8 codes;
//   * conv-head models -> a GlobalAvgPool with no following Linear
//     terminates the graph; its codes dequantize into the float output.
//
// Execution: `forward` runs the integer path — quantize input once, then
// uint8 GEMM operands, int32 accumulators and one fused scale/clamp pass per
// layer. Every activation buffer and scratch stripe is drawn from a
// grow-once Workspace, so a steady-state batched forward performs ZERO heap
// allocations (asserted by the operator-new counter tests). Serial and
// pooled execution are bit-identical (integer arithmetic plus the fixed
// blocking of the int8 GEMM).
//
// Calibration: `calibrate` runs the float reference walk of the same
// lowered ops (dequantized weights, folded BN) recording per-edge activation
// ranges; edges without an act-quant-pinned scale take range / levels. The
// input edge is affine (scale + zero point) since images are signed;
// interior edges are post-ReLU and unsigned.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "runtime/graph_program.h"
#include "tensor/tensor.h"

namespace csq {
namespace runtime {

class PackedIntWeights;  // runtime/packed_weights.h

struct LowerOptions {
  // Per-sample input extents (the module tree is shape-polymorphic; the
  // compiled graph is not).
  std::int64_t in_channels = 3;
  std::int64_t in_height = 32;
  std::int64_t in_width = 32;
  // Activation code width; codes are stored in uint8, so at most 8.
  int act_bits = 8;
  // Thread-pool execution (flippable later via set_pooled).
  bool pooled = true;
  // Liveness-colored buffer planning: edges share workspace slots once
  // their last consumer has run (interval coloring over the topological op
  // order), shrinking the steady-state footprint to the peak live set.
  // Planned and unplanned graphs are bit-identical; OFF keeps the
  // one-dedicated-slot-per-edge policy (the memory-regression baseline).
  bool plan_buffers = true;
  // Escape hatch: run every conv/linear layer on the widened s8u8 reference
  // GEMM, ignoring per-layer kernel selection. All kernels are bit-identical,
  // so this only changes latency — the A/B baseline for the precision-latency
  // benchmarks and the parity tests.
  bool force_reference_kernel = false;
};

// Per-edge activation-quantization state, snapshotted by edge_scales() and
// re-installed by restore_edge_scales() — the calibration half of a
// persisted graph artifact (the topology half is the GraphProgram).
struct EdgeScaleRecord {
  bool is_acc = false;  // integrity marker; i32 edges carry no scale
  float scale = 0.0f;
  float levels = 0.0f;
  std::int32_t zero_point = 0;
};

class CompiledGraph {
 public:
  CompiledGraph(CompiledGraph&&) noexcept;
  CompiledGraph& operator=(CompiledGraph&&) noexcept;
  ~CompiledGraph();

  // Integer forward: float images (B, C, H, W) -> float logits. Requires
  // every edge scale to be resolved (calibrate() or act-quant everywhere
  // plus a calibrated input edge — in practice: call calibrate first).
  Tensor forward(const Tensor& input);

  // Float walk of the SAME lowered ops (dequantized weights, folded BN,
  // fused ReLU) with no activation quantization: the reference the parity
  // tests compare against.
  Tensor forward_reference(const Tensor& input);

  // Records activation ranges from a float reference walk and resolves the
  // scale of every non-pinned edge. Multiple calls accumulate ranges.
  void calibrate(const Tensor& batch);

  // Grows every activation buffer for batches up to `batch`. STEADY-STATE
  // forwards at or below that size perform zero heap allocations; the first
  // forward per pool thread may still grow thread-local GEMM packing
  // scratch and the pooled output span, so latency-critical deployments
  // should warm with one real forward (the allocation-regression test
  // measures after exactly that warmup). forward() prepares on demand, so
  // this is an optional hook.
  void prepare(std::int64_t batch);

  // Current execution mode. Tracks set_pooled, unlike options().pooled,
  // which keeps the construction-time value (the batching server's
  // idle-core borrowing restores to this between grants).
  bool pooled() const;
  void set_pooled(bool pooled);

  // Growth events of the activation/scratch workspace (flat in steady
  // state; the allocation regression tests assert on it).
  std::uint64_t buffer_growth_count() const;

  // Bytes of activation/scratch workspace currently retained — the
  // per-replica serving footprint (weights excluded). Grows with
  // prepare(batch); call prepare first to measure a deployment's
  // steady-state footprint. With plan_buffers (the default) this is the
  // liveness-colored peak live set, strictly below the one-slot-per-edge
  // baseline on any multi-layer graph.
  std::int64_t workspace_bytes() const;

  // ---- introspection ----------------------------------------------------
  struct LayerInfo {
    std::string name;
    int bits = 0;              // scheme bits from the search assignment
    bool split = false;        // full-span layer stored as two int8 planes
    std::int64_t weight_count = 0;
    std::int64_t storage_bits = 0;
    std::string kernel;        // selected GEMM path (weight_kernel_name)
  };
  const std::vector<LayerInfo>& layers() const;
  std::int64_t weight_storage_bits() const;

  // Bit-exact reconstruction of a lowered layer's weights from its packed
  // int8 codes (flat tensor, row-major (out, in) / (oc, ic*kh*kw)).
  Tensor dequantized_weights(const std::string& layer_name) const;

  // The packed weights of every lowered conv/linear layer, in lowering
  // order (parallel to layers()) — the v5 artifact weight section
  // serializes their planes and kernel panels (runtime/graph_artifact.h).
  const std::vector<const PackedIntWeights*>& layer_weight_views() const;

  // Human-readable op listing for debugging / the deploy example.
  std::string describe() const;

  // ---- artifact / replication seam ---------------------------------------

  // Compiled per-sample input extents and logit width — what a server needs
  // to size request buffers without consulting the float model.
  struct IoShape {
    std::int64_t channels = 0;
    std::int64_t height = 0;
    std::int64_t width = 0;
    std::int64_t out_features = 0;
  };
  IoShape io_shape() const;

  const LowerOptions& options() const;

  // The recorded lowering program this graph was built from (weight codes +
  // topology). save_graph persists it; build_graph replays it.
  const GraphProgram& program() const;

  // The same program as a shared handle — replicate() hands every replica
  // this one immutable object, and the serving layer's quarantine-restore
  // path rebuilds a dead replica from it (rebuild_replica below) without
  // deep-copying the codes.
  std::shared_ptr<const GraphProgram> shared_program() const;

  // Snapshot of every edge's resolved quantization state. Finalizes scales
  // first, so the graph must be calibrated (or act-quant-pinned everywhere
  // with a calibrated input edge); throws otherwise.
  std::vector<EdgeScaleRecord> edge_scales();

  // Installs a snapshot taken from an identically-programmed graph and
  // resolves the requantization constants — after this the graph serves
  // without any calibration pass. Throws on edge-count/type mismatch.
  void restore_edge_scales(const std::vector<EdgeScaleRecord>& records);

  struct Impl;

 private:
  friend CompiledGraph build_graph(GraphProgram program,
                                   const LowerOptions& options);
  friend CompiledGraph replicate(CompiledGraph& graph);
  friend CompiledGraph rebuild_replica(
      std::shared_ptr<const GraphProgram> program, const LowerOptions& options,
      const std::vector<EdgeScaleRecord>& records);
  CompiledGraph();
  std::unique_ptr<Impl> impl_;
};

// Lowers a finalized model: record_program + build_graph. Every quantizable
// layer must answer WeightSource::has_finalized_codes() (finalized CSQ,
// BSQ, STE-Uniform...); throws with the offending layer's name otherwise.
CompiledGraph lower(Model& model, const LowerOptions& options = {});

// Replays a recorded lowering program into a graph — the data-only path:
// no Model is required, so a persisted artifact (runtime/graph_artifact.h)
// lowers with the float model absent from memory. Replay is deterministic;
// two graphs built from the same program run bit-identical forwards once
// they carry the same edge scales.
CompiledGraph build_graph(GraphProgram program,
                          const LowerOptions& options = {});

// Deep copy of a calibrated graph (program replay + edge-scale snapshot):
// the per-worker replicas of the serving layer. Forwards are bit-identical
// to the source graph's.
CompiledGraph replicate(CompiledGraph& graph);

// Rebuilds a replica from a shared immutable program + edge-scale snapshot
// — replicate() without a live source graph. The serving layer's
// quarantine-recovery path uses this to restore a dead replica from the
// shard's shared program; the rebuilt graph shares `program` (no deep copy
// of the codes) and its forwards are bit-identical to every sibling built
// from the same program and records. The program's conv/linear kernel
// selections must already be resolved (true for any program taken from a
// built graph).
CompiledGraph rebuild_replica(std::shared_ptr<const GraphProgram> program,
                              const LowerOptions& options,
                              const std::vector<EdgeScaleRecord>& records);

// Top-1 accuracy (percent) of the integer graph on a dataset — the
// integer-path counterpart of evaluate_accuracy (opt/trainer.h).
float evaluate_graph_accuracy(CompiledGraph& graph,
                              const InMemoryDataset& dataset,
                              std::int64_t batch_size = 100);

}  // namespace runtime
}  // namespace csq
