// Integer inference runtime: lowering a finalized float Model into an
// int8 compiled graph with a serving-grade batched forward.
//
// `lower(model, options)` walks the module tree through the nn lowering seam
// (nn/lowering.h) and emits a flat list of integer ops over typed edges:
//
//   * Conv2d / Linear  -> int8 weight-code GEMMs (runtime/packed_weights.h)
//                         with int32 accumulation into an i32 edge;
//   * BatchNorm2d      -> folded into the consuming requantization's
//                         per-channel scale/bias (running statistics — the
//                         eval-mode semantics);
//   * ReLU             -> fused into the requantization clamp;
//   * activation       -> uint8 codes with a per-edge scale; act-quant
//     flow                modules pin their edge's scale (clip / levels),
//                         remaining edges take calibrated ranges;
//   * residual joins   -> integer re-scaled adds inside the requantization.
//
// Execution: `forward` runs the integer path — quantize input once, then
// uint8 GEMM operands, int32 accumulators and one fused scale/clamp pass per
// layer. Every activation buffer and scratch stripe is drawn from a
// grow-once Workspace, so a steady-state batched forward performs ZERO heap
// allocations (asserted by the operator-new counter tests). Serial and
// pooled execution are bit-identical (integer arithmetic plus the fixed
// blocking of the int8 GEMM).
//
// Calibration: `calibrate` runs the float reference walk of the same
// lowered ops (dequantized weights, folded BN) recording per-edge activation
// ranges; edges without an act-quant-pinned scale take range / levels. The
// input edge is affine (scale + zero point) since images are signed;
// interior edges are post-ReLU and unsigned.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "tensor/tensor.h"

namespace csq {
namespace runtime {

struct LowerOptions {
  // Per-sample input extents (the module tree is shape-polymorphic; the
  // compiled graph is not).
  std::int64_t in_channels = 3;
  std::int64_t in_height = 32;
  std::int64_t in_width = 32;
  // Activation code width; codes are stored in uint8, so at most 8.
  int act_bits = 8;
  // Thread-pool execution (flippable later via set_pooled).
  bool pooled = true;
};

class CompiledGraph {
 public:
  CompiledGraph(CompiledGraph&&) noexcept;
  CompiledGraph& operator=(CompiledGraph&&) noexcept;
  ~CompiledGraph();

  // Integer forward: float images (B, C, H, W) -> float logits. Requires
  // every edge scale to be resolved (calibrate() or act-quant everywhere
  // plus a calibrated input edge — in practice: call calibrate first).
  Tensor forward(const Tensor& input);

  // Float walk of the SAME lowered ops (dequantized weights, folded BN,
  // fused ReLU) with no activation quantization: the reference the parity
  // tests compare against.
  Tensor forward_reference(const Tensor& input);

  // Records activation ranges from a float reference walk and resolves the
  // scale of every non-pinned edge. Multiple calls accumulate ranges.
  void calibrate(const Tensor& batch);

  // Grows every activation buffer for batches up to `batch`. STEADY-STATE
  // forwards at or below that size perform zero heap allocations; the first
  // forward per pool thread may still grow thread-local GEMM packing
  // scratch and the pooled output span, so latency-critical deployments
  // should warm with one real forward (the allocation-regression test
  // measures after exactly that warmup). forward() prepares on demand, so
  // this is an optional hook.
  void prepare(std::int64_t batch);

  void set_pooled(bool pooled);

  // Growth events of the activation/scratch workspace (flat in steady
  // state; the allocation regression tests assert on it).
  std::uint64_t buffer_growth_count() const;

  // ---- introspection ----------------------------------------------------
  struct LayerInfo {
    std::string name;
    int bits = 0;              // scheme bits from the search assignment
    bool split = false;        // full-span layer stored as two int8 planes
    std::int64_t weight_count = 0;
    std::int64_t storage_bits = 0;
  };
  const std::vector<LayerInfo>& layers() const;
  std::int64_t weight_storage_bits() const;

  // Bit-exact reconstruction of a lowered layer's weights from its packed
  // int8 codes (flat tensor, row-major (out, in) / (oc, ic*kh*kw)).
  Tensor dequantized_weights(const std::string& layer_name) const;

  // Human-readable op listing for debugging / the deploy example.
  std::string describe() const;

  struct Impl;

 private:
  friend CompiledGraph lower(Model& model, const LowerOptions& options);
  CompiledGraph();
  std::unique_ptr<Impl> impl_;
};

// Lowers a finalized model. Every quantizable layer must answer
// WeightSource::has_finalized_codes() (finalized CSQ, BSQ, STE-Uniform...);
// throws with the offending layer's name otherwise.
CompiledGraph lower(Model& model, const LowerOptions& options = {});

// Top-1 accuracy (percent) of the integer graph on a dataset — the
// integer-path counterpart of evaluate_accuracy (opt/trainer.h).
float evaluate_graph_accuracy(CompiledGraph& graph,
                              const InMemoryDataset& dataset,
                              std::int64_t batch_size = 100);

}  // namespace runtime
}  // namespace csq
