#include "runtime/graph_program.h"

#include <cmath>
#include <utility>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lowering.h"
#include "nn/model.h"
#include "nn/pooling.h"
#include "util/check.h"

namespace csq {
namespace runtime {

namespace {

// GraphLowering sink that captures the walk as data. All module access
// happens here; the graph builder (compiled_graph.cpp) replays the program
// without ever touching a module again.
class ProgramRecorder final : public GraphLowering {
 public:
  explicit ProgramRecorder(GraphProgram& program) : program_(program) {}

  void lower_conv2d(Conv2d& conv) override {
    const Conv2dConfig& config = conv.config();
    ProgramInstr instr;
    instr.kind = ProgramInstr::Kind::kConv;
    instr.layer = add_layer(conv.name(), conv.source());
    instr.kernel = config.kernel;
    instr.stride = config.stride;
    instr.pad = config.pad;
    if (const float* bias = conv.bias_data()) {
      instr.bias.assign(bias, bias + config.out_channels);
    }
    program_.instrs.push_back(std::move(instr));
  }

  void lower_linear(Linear& linear) override {
    ProgramInstr instr;
    instr.kind = ProgramInstr::Kind::kLinear;
    instr.layer = add_layer(linear.name(), linear.source());
    if (const float* bias = linear.bias_data()) {
      instr.bias.assign(bias, bias + linear.out_features());
    }
    program_.instrs.push_back(std::move(instr));
  }

  void lower_batchnorm(const BatchNorm2d& bn) override {
    // Fold the eval-mode running statistics into one per-channel affine
    // a*x + b here, so the program (and the persisted artifact) carry only
    // the two vectors the requantization consumes.
    const std::int64_t channels = bn.running_mean().numel();
    ProgramInstr instr;
    instr.kind = ProgramInstr::Kind::kBatchNorm;
    instr.scale.resize(static_cast<std::size_t>(channels));
    instr.shift.resize(static_cast<std::size_t>(channels));
    const float* mean = bn.running_mean().data();
    const float* var = bn.running_var().data();
    const float* gamma = bn.gamma().data();
    const float* beta = bn.beta().data();
    for (std::int64_t c = 0; c < channels; ++c) {
      const float a = gamma[c] / std::sqrt(var[c] + bn.epsilon());
      instr.scale[static_cast<std::size_t>(c)] = a;
      instr.shift[static_cast<std::size_t>(c)] = beta[c] - mean[c] * a;
    }
    program_.instrs.push_back(std::move(instr));
  }

  void lower_relu() override { push_simple(ProgramInstr::Kind::kRelu); }

  void lower_act_quant(int bits, float clip) override {
    ProgramInstr instr;
    instr.kind = ProgramInstr::Kind::kActQuant;
    instr.act_bits = bits;
    instr.clip = clip;
    program_.instrs.push_back(std::move(instr));
  }

  void lower_maxpool(const Pool2dConfig& config) override {
    push_pool(ProgramInstr::Kind::kMaxPool, config);
  }

  void lower_avgpool(const Pool2dConfig& config,
                     bool count_include_pad) override {
    push_pool(ProgramInstr::Kind::kAvgPool, config,
              /*exclude_pad=*/!count_include_pad);
  }

  void lower_global_avg_pool() override {
    push_simple(ProgramInstr::Kind::kGlobalAvgPool);
  }

  void lower_flatten() override { push_simple(ProgramInstr::Kind::kFlatten); }

  void begin_residual() override {
    push_simple(ProgramInstr::Kind::kBeginResidual);
  }

  void begin_skip() override { push_simple(ProgramInstr::Kind::kBeginSkip); }

  void end_residual() override {
    push_simple(ProgramInstr::Kind::kEndResidual);
  }

 private:
  void push_simple(ProgramInstr::Kind kind) {
    ProgramInstr instr;
    instr.kind = kind;
    program_.instrs.push_back(std::move(instr));
  }

  void push_pool(ProgramInstr::Kind kind, const Pool2dConfig& config,
                 bool exclude_pad = false) {
    ProgramInstr instr;
    instr.kind = kind;
    instr.kernel = config.kernel_h;
    // kernel_w = 0 encodes a square window (matches programs loaded from
    // pre-rectangular artifacts, which carry no width field at all).
    instr.kernel_w =
        config.kernel_w == config.kernel_h ? 0 : config.kernel_w;
    instr.stride = config.stride;
    instr.pad = config.pad;
    instr.exclude_pad = exclude_pad;
    program_.instrs.push_back(std::move(instr));
  }

  std::int32_t add_layer(const std::string& name, const WeightSource& source) {
    CSQ_CHECK(source.has_finalized_codes())
        << "lowering " << name << ": weight source '" << source.kind()
        << "' has no exact integer form (finalize the model first)";
    program_.layers.push_back(export_layer(name, source));
    return static_cast<std::int32_t>(program_.layers.size()) - 1;
  }

  GraphProgram& program_;
};

}  // namespace

GraphProgram record_program(Model& model) {
  CSQ_CHECK(model.has_root()) << "record_program: model has no root module";
  GraphProgram program;
  ProgramRecorder recorder(program);
  model.root().lower(recorder);
  return program;
}

}  // namespace runtime
}  // namespace csq
