#include "runtime/packed_weights.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace csq {
namespace runtime {

namespace {

// Largest power-of-two divisor shared by every nonzero code (capped at 7 —
// beyond that the layer is all zeros or a single plane anyway).
int common_shift(const std::vector<std::int32_t>& codes) {
  int shift = 8;
  for (const std::int32_t code : codes) {
    if (code == 0) continue;
    int tz = 0;
    std::int32_t magnitude = std::abs(code);
    while ((magnitude & 1) == 0 && tz < 8) {
      magnitude >>= 1;
      ++tz;
    }
    shift = std::min(shift, tz);
    if (shift == 0) break;
  }
  return shift == 8 ? 0 : shift;
}

}  // namespace

PackedIntWeights::PackedIntWeights(const WeightCodes& codes, std::int64_t rows,
                                   std::int64_t cols)
    : PackedIntWeights(codes.codes, codes.step(), codes.bits, rows, cols) {}

PackedIntWeights::PackedIntWeights(const std::vector<std::int32_t>& codes,
                                   float step, int bits, std::int64_t rows,
                                   std::int64_t cols)
    : rows_(rows), cols_(cols), bits_(bits) {
  const std::int64_t count = rows * cols;
  CSQ_CHECK(count == static_cast<std::int64_t>(codes.size()))
      << "packed weights: " << rows << "x" << cols << " != "
      << codes.size() << " codes";
  // int32 accumulator headroom: the worst per-k contribution is the split
  // form 2 * |hi| * 255 + lo * 255 with hi = -128, lo = 1 (65535), so the
  // reduction depth must satisfy k * 65535 < 2^31 - 1.
  CSQ_CHECK(cols <= 32767)
      << "packed weights: reduction depth " << cols
      << " would overflow int32 accumulation";

  shift_ = common_shift(codes);
  // Power-of-two scaling of a float is exact: effective_step * plane-value
  // reproduces step * full-code bit for bit.
  effective_step_ = std::ldexp(step, shift_);

  std::int32_t max_magnitude = 0;
  for (const std::int32_t code : codes) {
    max_magnitude = std::max(max_magnitude, std::abs(code >> shift_));
  }
  const bool needs_split = max_magnitude > 127;

  primary_.resize(static_cast<std::size_t>(count));
  if (needs_split) low_.resize(static_cast<std::size_t>(count));
  row_sums_.assign(static_cast<std::size_t>(rows), 0);
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t shifted =
        codes[static_cast<std::size_t>(i)] / (1 << shift_);
    CSQ_CHECK(shifted >= -255 && shifted <= 255)
        << "packed weights: code " << codes[static_cast<std::size_t>(i)]
        << " outside the 8-bit grid";
    if (needs_split) {
      const std::int32_t lo = shifted & 1;
      const std::int32_t hi = (shifted - lo) / 2;
      primary_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(hi);
      low_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(lo);
    } else {
      primary_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(shifted);
    }
    row_sums_[static_cast<std::size_t>(i / cols)] += shifted;
  }

  primary_panels_.resize(
      static_cast<std::size_t>(gemm_s8u8_packed_a_size(rows, cols)));
  gemm_s8u8_pack_a(rows, cols, primary_.data(), cols,
                   primary_panels_.data());
  if (needs_split) {
    low_panels_.resize(primary_panels_.size());
    gemm_s8u8_pack_a(rows, cols, low_.data(), cols, low_panels_.data());
  }
}

void PackedIntWeights::gemm(Trans trans_b, std::int64_t n,
                            const std::uint8_t* b, std::int64_t ldb,
                            std::int32_t* c, std::int64_t ldc, bool pooled,
                            IntGemmScratch* scratch) const {
  const auto run = pooled ? gemm_s8u8_prepacked_parallel : gemm_s8u8_prepacked;
  if (!split()) {
    run(trans_b, rows_, n, cols_, /*alpha=*/1, primary_panels_.data(), b, ldb,
        /*accumulate=*/false, c, ldc, scratch);
    return;
  }
  // code = 2*hi + lo: alpha-chained passes, both exact in int32.
  run(trans_b, rows_, n, cols_, /*alpha=*/2, primary_panels_.data(), b, ldb,
      /*accumulate=*/false, c, ldc, scratch);
  run(trans_b, rows_, n, cols_, /*alpha=*/1, low_panels_.data(), b, ldb,
      /*accumulate=*/true, c, ldc, scratch);
}

std::int64_t PackedIntWeights::storage_bits() const {
  // Split layers carry the scheme-bits hi plane plus a 1-bit lo plane.
  const std::int64_t count = rows_ * cols_;
  const std::int64_t per_weight = split() ? bits_ + 1 : bits_;
  return count * per_weight + 32;
}

}  // namespace runtime
}  // namespace csq
