#include "runtime/packed_weights.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace csq {
namespace runtime {

namespace {

// Largest power-of-two divisor shared by every nonzero code (capped at 7 —
// beyond that the layer is all zeros or a single plane anyway).
int common_shift(const std::vector<std::int32_t>& codes) {
  int shift = 8;
  for (const std::int32_t code : codes) {
    if (code == 0) continue;
    int tz = 0;
    std::int32_t magnitude = std::abs(code);
    while ((magnitude & 1) == 0 && tz < 8) {
      magnitude >>= 1;
      ++tz;
    }
    shift = std::min(shift, tz);
    if (shift == 0) break;
  }
  return shift == 8 ? 0 : shift;
}

// The auto-selection policy, a pure function of the layer's stored-plane
// shape: bit-serial (wide where the depth headroom allows) for <= 3-bit
// layers, nibble packing for 4-bit layers whose shifted codes fit the
// signed nibble, the widened s8u8 reference otherwise (including every
// split layer — the hi/lo alpha chain stays on the reference path).
WeightKernel auto_kernel(int bits, std::int32_t max_abs, bool split,
                         std::int64_t cols) {
  if (split) return WeightKernel::kS8U8;
  if (bits <= 3 && max_abs <= 64) {
    return gemm_s8u8_wide_eligible(cols, max_abs)
               ? WeightKernel::kBitSerialWide
               : WeightKernel::kBitSerial;
  }
  if (bits <= 4 && max_abs <= 7) return WeightKernel::kNibble;
  return WeightKernel::kS8U8;
}

}  // namespace

const char* weight_kernel_name(WeightKernel kernel) {
  switch (kernel) {
    case WeightKernel::kAuto:
      return "auto";
    case WeightKernel::kS8U8:
      return "s8u8";
    case WeightKernel::kBitSerial:
      return "bitserial";
    case WeightKernel::kNibble:
      return "nibble";
    case WeightKernel::kBitSerialWide:
      return "bitserial-w16";
  }
  return "unknown";
}

WeightKernel PackedIntWeights::select_kernel(
    const std::vector<std::int32_t>& codes, int bits, std::int64_t cols) {
  const int shift = common_shift(codes);
  std::int32_t max_abs = 0;
  for (const std::int32_t code : codes) {
    max_abs = std::max(max_abs, std::abs(code >> shift));
  }
  return auto_kernel(bits, max_abs, /*split=*/max_abs > 127, cols);
}

PackedIntWeights::PackedIntWeights(const WeightCodes& codes, std::int64_t rows,
                                   std::int64_t cols, WeightKernel kernel)
    : PackedIntWeights(codes.codes, codes.step(), codes.bits, rows, cols,
                       kernel) {}

PackedIntWeights::PackedIntWeights(const std::vector<std::int32_t>& codes,
                                   float step, int bits, std::int64_t rows,
                                   std::int64_t cols, WeightKernel kernel)
    : rows_(rows), cols_(cols), bits_(bits) {
  const std::int64_t count = rows * cols;
  CSQ_CHECK(count == static_cast<std::int64_t>(codes.size()))
      << "packed weights: " << rows << "x" << cols << " != "
      << codes.size() << " codes";
  // int32 accumulator headroom: the worst per-k contribution is the split
  // form 2 * |hi| * 255 + lo * 255 with hi = -128, lo = 1 (65535), so the
  // reduction depth must satisfy k * 65535 < 2^31 - 1.
  CSQ_CHECK(cols <= 32767)
      << "packed weights: reduction depth " << cols
      << " would overflow int32 accumulation";

  shift_ = common_shift(codes);
  // Power-of-two scaling of a float is exact: effective_step * plane-value
  // reproduces step * full-code bit for bit.
  effective_step_ = std::ldexp(step, shift_);

  std::int32_t max_magnitude = 0;
  for (const std::int32_t code : codes) {
    max_magnitude = std::max(max_magnitude, std::abs(code >> shift_));
  }
  max_abs_code_ = max_magnitude;
  const bool needs_split = max_magnitude > 127;
  split_ = needs_split;

  primary_.resize(static_cast<std::size_t>(count));
  if (needs_split) low_.resize(static_cast<std::size_t>(count));
  row_sums_.assign(static_cast<std::size_t>(rows), 0);
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t shifted =
        codes[static_cast<std::size_t>(i)] / (1 << shift_);
    CSQ_CHECK(shifted >= -255 && shifted <= 255)
        << "packed weights: code " << codes[static_cast<std::size_t>(i)]
        << " outside the 8-bit grid";
    if (needs_split) {
      const std::int32_t lo = shifted & 1;
      const std::int32_t hi = (shifted - lo) / 2;
      primary_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(hi);
      low_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(lo);
    } else {
      primary_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(shifted);
    }
    row_sums_[static_cast<std::size_t>(i / cols)] += shifted;
  }

  kernel_ = kernel == WeightKernel::kAuto
                ? auto_kernel(bits_, max_abs_code_, needs_split, cols)
                : kernel;
  check_kernel_eligibility();

  switch (kernel_) {
    case WeightKernel::kBitSerial:
    case WeightKernel::kBitSerialWide: {
      // The bit-serial storage form: sign/magnitude planes. Collapsing them
      // back through the power-of-two shift combination IS the bit-serial
      // inner product's plane summation, hoisted to pack time; the GEMM then
      // consumes the collapsed codes. Round-trip checked so the planes stay
      // the authoritative representation.
      planes_ = pack_bit_planes(primary_.data(), count);
      std::vector<std::int8_t> collapsed(static_cast<std::size_t>(count));
      unpack_bit_planes(planes_, collapsed.data());
      for (std::int64_t i = 0; i < count; ++i) {
        CSQ_CHECK(collapsed[static_cast<std::size_t>(i)] ==
                  primary_[static_cast<std::size_t>(i)])
            << "packed weights: bit-plane round trip diverged at " << i;
      }
      lowbit_panels_.resize(
          static_cast<std::size_t>(gemm_s8u8_lowbit_packed_a_size(rows, cols)));
      gemm_s8u8_lowbit_pack_a(rows, cols, collapsed.data(), cols,
                              lowbit_panels_.data());
      break;
    }
    case WeightKernel::kNibble:
      nibble_panels_.resize(
          static_cast<std::size_t>(gemm_s8u8_nibble_packed_a_size(rows, cols)));
      gemm_s8u8_nibble_pack_a(rows, cols, primary_.data(), cols,
                              nibble_panels_.data());
      break;
    default:
      primary_panels_.resize(
          static_cast<std::size_t>(gemm_s8u8_packed_a_size(rows, cols)));
      gemm_s8u8_pack_a(rows, cols, primary_.data(), cols,
                       primary_panels_.data());
      if (needs_split) {
        low_panels_.resize(primary_panels_.size());
        gemm_s8u8_pack_a(rows, cols, low_.data(), cols, low_panels_.data());
      }
      break;
  }
}

void PackedIntWeights::check_kernel_eligibility() const {
  switch (kernel_) {
    case WeightKernel::kBitSerialWide:
      CSQ_CHECK(gemm_s8u8_wide_eligible(cols_, max_abs_code_))
          << "packed weights: bitserial-w16 kernel needs int16 headroom "
             "(depth "
          << cols_ << ", max |code| " << max_abs_code_ << ")";
      [[fallthrough]];
    case WeightKernel::kBitSerial:
      CSQ_CHECK(!split_ && max_abs_code_ <= 64)
          << "packed weights: bit-serial kernel needs unsplit codes with "
             "|code| <= 64, got max "
          << max_abs_code_;
      break;
    case WeightKernel::kNibble:
      CSQ_CHECK(!split_ && max_abs_code_ <= 7)
          << "packed weights: nibble kernel needs codes in [-8, 7], got max "
          << max_abs_code_;
      break;
    case WeightKernel::kS8U8:
      break;
    case WeightKernel::kAuto:
      CSQ_CHECK(false) << "packed weights: unresolved kernel kind";
      break;
  }
}

PackedIntWeights::PackedIntWeights(const WeightSpans& spans, float step,
                                   int bits, int shift, std::int64_t rows,
                                   std::int64_t cols, WeightKernel kernel)
    : spans_(spans),
      rows_(rows),
      cols_(cols),
      bits_(bits),
      shift_(shift),
      kernel_(kernel),
      borrowed_(true) {
  CSQ_CHECK(rows > 0 && cols > 0)
      << "packed weights: borrowed extents " << rows << "x" << cols;
  CSQ_CHECK(cols <= 32767)
      << "packed weights: reduction depth " << cols
      << " would overflow int32 accumulation";
  CSQ_CHECK(shift >= 0 && shift <= 7)
      << "packed weights: borrowed shift " << shift << " out of range";
  CSQ_CHECK(spans.primary != nullptr)
      << "packed weights: borrowed primary plane is null";
  split_ = spans.low != nullptr;
  effective_step_ = std::ldexp(step, shift_);

  // One scan over the borrowed planes recomputes the two derived quantities
  // the artifact does not persist — per-row code sums (the requant
  // zero-point correction) and the max-|code| bound the kernel eligibility
  // checks consume — and re-validates the 8-bit grid on the way.
  const std::int64_t count = rows * cols;
  row_sums_.assign(static_cast<std::size_t>(rows), 0);
  std::int32_t max_magnitude = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t code =
        split_ ? 2 * static_cast<std::int32_t>(spans.primary[i]) +
                     spans.low[i]
               : spans.primary[i];
    CSQ_CHECK(code >= -255 && code <= 255)
        << "packed weights: borrowed plane code " << code
        << " outside the 8-bit grid";
    max_magnitude = std::max(max_magnitude, std::abs(code));
    row_sums_[static_cast<std::size_t>(i / cols)] += code;
  }
  max_abs_code_ = max_magnitude;
  CSQ_CHECK(!split_ || max_magnitude > 127)
      << "packed weights: borrowed split layer with |code| <= 127";

  check_kernel_eligibility();
  switch (kernel_) {
    case WeightKernel::kBitSerial:
    case WeightKernel::kBitSerialWide:
      CSQ_CHECK(spans.lowbit_panels != nullptr)
          << "packed weights: borrowed bit-serial panels missing";
      break;
    case WeightKernel::kNibble:
      CSQ_CHECK(spans.nibble_panels != nullptr)
          << "packed weights: borrowed nibble panels missing";
      break;
    default:
      CSQ_CHECK(spans.primary_panels != nullptr &&
                (!split_ || spans.low_panels != nullptr))
          << "packed weights: borrowed s8u8 panels missing";
      break;
  }
}

void PackedIntWeights::gemm(Trans trans_b, std::int64_t n,
                            const std::uint8_t* b, std::int64_t ldb,
                            std::int32_t* c, std::int64_t ldc, bool pooled,
                            IntGemmScratch* scratch,
                            GemmSplit gemm_split) const {
  // The serial entry points take no split (nothing to decompose); the
  // parallel ones get the caller's split so wide-N layers fan out even when
  // rows_ fits in one MC tile.
  switch (kernel_) {
    case WeightKernel::kBitSerial:
      if (pooled) {
        gemm_s8u8_lowbit_prepacked_parallel(
            trans_b, rows_, n, cols_, /*alpha=*/1, lowbit_panel_data(), b,
            ldb, /*accumulate=*/false, c, ldc, scratch, gemm_split);
      } else {
        gemm_s8u8_lowbit_prepacked(trans_b, rows_, n, cols_, /*alpha=*/1,
                                   lowbit_panel_data(), b, ldb,
                                   /*accumulate=*/false, c, ldc, scratch);
      }
      return;
    case WeightKernel::kBitSerialWide:
      if (pooled) {
        gemm_s8u8_lowbit_wide_prepacked_parallel(
            trans_b, rows_, n, cols_, /*alpha=*/1, lowbit_panel_data(), b,
            ldb, /*accumulate=*/false, c, ldc, scratch, gemm_split);
      } else {
        gemm_s8u8_lowbit_wide_prepacked(trans_b, rows_, n, cols_,
                                        /*alpha=*/1, lowbit_panel_data(), b,
                                        ldb, /*accumulate=*/false, c, ldc,
                                        scratch);
      }
      return;
    case WeightKernel::kNibble:
      if (pooled) {
        gemm_s8u8_nibble_prepacked_parallel(
            trans_b, rows_, n, cols_, /*alpha=*/1, nibble_panel_data(), b,
            ldb, /*accumulate=*/false, c, ldc, scratch, gemm_split);
      } else {
        gemm_s8u8_nibble_prepacked(trans_b, rows_, n, cols_, /*alpha=*/1,
                                   nibble_panel_data(), b, ldb,
                                   /*accumulate=*/false, c, ldc, scratch);
      }
      return;
    default:
      break;
  }
  const auto run = [&](std::int32_t alpha, const std::int16_t* panels,
                       bool accumulate) {
    if (pooled) {
      gemm_s8u8_prepacked_parallel(trans_b, rows_, n, cols_, alpha, panels,
                                   b, ldb, accumulate, c, ldc, scratch,
                                   gemm_split);
    } else {
      gemm_s8u8_prepacked(trans_b, rows_, n, cols_, alpha, panels, b, ldb,
                          accumulate, c, ldc, scratch);
    }
  };
  if (!split()) {
    run(/*alpha=*/1, s8u8_panel_data(), /*accumulate=*/false);
    return;
  }
  // code = 2*hi + lo: alpha-chained passes, both exact in int32.
  run(/*alpha=*/2, s8u8_panel_data(), /*accumulate=*/false);
  run(/*alpha=*/1, s8u8_low_panel_data(), /*accumulate=*/true);
}

std::int64_t PackedIntWeights::storage_bits() const {
  // Split layers carry the scheme-bits hi plane plus a 1-bit lo plane.
  const std::int64_t count = rows_ * cols_;
  const std::int64_t per_weight = split() ? bits_ + 1 : bits_;
  return count * per_weight + 32;
}

}  // namespace runtime
}  // namespace csq
