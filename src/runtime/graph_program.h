// GraphProgram — the serializable intermediate representation between the
// float module tree and the integer compiled graph.
//
// A finalized model is lowered in two stages:
//
//   1. record_program(model) walks the module tree through the nn lowering
//      seam (nn/lowering.h) and captures everything the integer runtime
//      needs as plain data: per-layer integer weight codes (the same
//      QuantizedLayerExport records the model container stores), folded
//      batch-norm affines, conv geometry, activation-quantizer pins and the
//      residual fork/join markers.
//   2. build_graph(program, options) (runtime/compiled_graph.h) replays the
//      instruction list into a CompiledGraph.
//
// Because stage 2 consumes only data, the same replay reconstructs a graph
// from a persisted artifact (runtime/graph_artifact.h) with the float model
// absent from memory — the serving deployment path. Replay is
// deterministic: building from a recorded program and building from its
// save/load round-trip produce bit-identical graphs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/export.h"

namespace csq {

class Model;

namespace runtime {

struct MappedWeightTable;  // runtime/packed_weights.h

// One lowering step. Fields beyond `kind` are meaningful only for the kinds
// noted; unused fields keep their defaults (and serialize as such).
struct ProgramInstr {
  enum class Kind : std::uint8_t {
    kConv = 0,        // layer, kernel/stride/pad, bias
    kBatchNorm = 1,   // scale/shift: the folded eval-mode affine
    kRelu = 2,
    kActQuant = 3,    // act_bits, clip
    kMaxPool = 4,     // kernel(_w)/stride/pad
    kGlobalAvgPool = 5,
    kFlatten = 6,
    kBeginResidual = 7,
    kBeginSkip = 8,
    kEndResidual = 9,
    kLinear = 10,     // layer, bias
    kAvgPool = 11,    // kernel(_w)/stride/pad; divisor per exclude_pad
  };

  Kind kind = Kind::kRelu;
  std::int32_t layer = -1;  // index into GraphProgram::layers (conv/linear)
  std::int64_t kernel = 0;  // conv kernel or pool kernel height
  std::int64_t kernel_w = 0;  // pool kernel width; 0 = square (`kernel`)
  std::int64_t stride = 1;  // conv and pools
  std::int64_t pad = 0;     // conv and pools
  std::int32_t act_bits = 0;  // act-quant only
  float clip = 0.0f;          // act-quant only
  // conv/linear: the selected GEMM path (runtime::WeightKernel numeric
  // value). -1 = unresolved; build_graph resolves it deterministically
  // before replay, so persisted programs replay the recorded choice and
  // pre-kernel-record artifacts re-derive the identical one.
  std::int32_t kernel_kind = -1;
  // avg-pool: divide each window by its valid-tap count instead of the
  // fixed kh*kw (count_include_pad=false semantics).
  bool exclude_pad = false;
  std::vector<float> scale;   // batch-norm: per-channel a of a*x + b
  std::vector<float> shift;   // batch-norm: per-channel b
  std::vector<float> bias;    // conv/linear bias (empty = none)
};

struct GraphProgram {
  // Quantized weight payloads, one per conv/linear instruction, in lowering
  // order — the exact records the model container's layer section stores.
  std::vector<QuantizedLayerExport> layers;
  std::vector<ProgramInstr> instrs;
  // Non-null only for programs loaded through load_graph_mmap(): per
  // conv/linear layer, borrowed packed-weight views into the read-only file
  // mapping (each `layers[i].codes` stays EMPTY — build_graph packs from
  // these views instead of the codes) plus the mapping keepalive. Replicas
  // sharing the program share the mapping; save_graph rejects such programs
  // (the owned codes are not present to serialize).
  std::shared_ptr<const MappedWeightTable> mapped;
};

// Records the module-tree walk of a finalized model. Every quantizable
// layer must answer WeightSource::has_finalized_codes(); throws with the
// offending layer's name otherwise.
GraphProgram record_program(Model& model);

}  // namespace runtime
}  // namespace csq
