// Weight initializers (He / Xavier / uniform / constant).
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace csq {

// He (Kaiming) normal: stddev = sqrt(2 / fan_in). The standard initializer
// for ReLU networks; used by every conv/linear layer in the model zoo.
void fill_he_normal(Tensor& weights, std::int64_t fan_in, Rng& rng);

// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)).
void fill_xavier_uniform(Tensor& weights, std::int64_t fan_in,
                         std::int64_t fan_out, Rng& rng);

void fill_uniform(Tensor& tensor, float lo, float hi, Rng& rng);
void fill_normal(Tensor& tensor, float mean, float stddev, Rng& rng);

}  // namespace csq
