#include "tensor/quant_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

namespace {

std::atomic<KernelExec> g_default_exec{KernelExec::pooled};

// Same arithmetic as core/gate.h's gate(); restated here because the tensor
// layer sits below src/core. Any change must keep the two bit-identical.
inline float sigmoid_gate(float x, float beta) {
  return 1.0f / (1.0f + std::exp(-beta * x));
}

inline float sigmoid_gate_derivative(float gate_value, float beta) {
  return beta * gate_value * (1.0f - gate_value);
}

inline float round_clip_gate(float x) {
  return std::round(std::clamp(x, 0.0f, 1.0f));
}

// Clipped-STE window of the round_clip gate.
inline bool in_unit_window(float x) { return x >= 0.0f && x <= 1.0f; }

}  // namespace

void set_default_kernel_exec(KernelExec exec) {
  g_default_exec.store(exec, std::memory_order_relaxed);
}

KernelExec default_kernel_exec() {
  return g_default_exec.load(std::memory_order_relaxed);
}

std::int64_t quant_chunk_count(std::int64_t count) {
  return count <= 0 ? 0 : (count + kQuantChunk - 1) / kQuantChunk;
}

// ------------------------------------------------------ bit-plane kernels --

void bitplane_materialize(GateKind kind, float beta, const BitPlane* planes,
                          int num_planes, float* out, std::int64_t count,
                          KernelExec exec) {
  CSQ_CHECK(kind != GateKind::step)
      << "bitplane_materialize: use bitplane_materialize_hard for step gates";
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t /*chunk*/, std::int64_t begin, std::int64_t end) {
        std::fill(out + begin, out + end, 0.0f);
        for (int p = 0; p < num_planes; ++p) {
          const BitPlane& plane = planes[p];
          const float* mp = plane.pos;
          const float* mn = plane.neg;
          const float coeff = plane.coeff;
          if (plane.gate_pos != nullptr) {
            float* gp = plane.gate_pos;
            float* gn = plane.gate_neg;
            if (kind == GateKind::sigmoid) {
              for (std::int64_t i = begin; i < end; ++i) {
                gp[i] = sigmoid_gate(mp[i], beta);
                gn[i] = sigmoid_gate(mn[i], beta);
                out[i] += coeff * (gp[i] - gn[i]);
              }
            } else {  // round_clip
              for (std::int64_t i = begin; i < end; ++i) {
                gp[i] = round_clip_gate(mp[i]);
                gn[i] = round_clip_gate(mn[i]);
                out[i] += coeff * (gp[i] - gn[i]);
              }
            }
          } else {
            if (kind == GateKind::sigmoid) {
              for (std::int64_t i = begin; i < end; ++i) {
                out[i] += coeff * (sigmoid_gate(mp[i], beta) -
                                   sigmoid_gate(mn[i], beta));
              }
            } else {  // round_clip
              for (std::int64_t i = begin; i < end; ++i) {
                out[i] +=
                    coeff * (round_clip_gate(mp[i]) - round_clip_gate(mn[i]));
              }
            }
          }
        }
      });
}

void bitplane_materialize_hard(const BitPlane* planes, int num_planes,
                               float unit, float* out, std::int32_t* codes,
                               std::int64_t count, KernelExec exec) {
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t /*chunk*/, std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          std::int32_t code = 0;
          for (int p = 0; p < num_planes; ++p) {
            const BitPlane& plane = planes[p];
            const std::int32_t bit =
                static_cast<std::int32_t>(plane.pos[i] >= 0.0f) -
                static_cast<std::int32_t>(plane.neg[i] >= 0.0f);
            code += bit * plane.code_weight;
          }
          if (codes != nullptr) codes[i] = code;
          // Integer-first accumulation: the emitted weight is exactly
          // unit * integer, the finalized-model exactness guarantee.
          if (out != nullptr) out[i] = unit * static_cast<float>(code);
        }
      });
}

void bitplane_backward(GateKind kind, float beta, const BitPlaneGrad* planes,
                       int num_planes, const float* grad_out,
                       std::int64_t count, double* partials, double* diff_sums,
                       KernelExec exec) {
  CSQ_CHECK(kind != GateKind::step)
      << "bitplane_backward: step gates have no gradient";
  const std::int64_t chunks = quant_chunk_count(count);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        for (int p = 0; p < num_planes; ++p) {
          const BitPlaneGrad& plane = planes[p];
          const float coeff = plane.coeff;
          double acc = 0.0;
          if (kind == GateKind::sigmoid) {
            const float* gp = plane.gate_pos;
            const float* gn = plane.gate_neg;
            for (std::int64_t i = begin; i < end; ++i) {
              const float gi = grad_out[i];
              if (plane.grad_pos != nullptr) {
                plane.grad_pos[i] +=
                    gi * coeff * sigmoid_gate_derivative(gp[i], beta);
              }
              if (plane.grad_neg != nullptr) {
                plane.grad_neg[i] -=
                    gi * coeff * sigmoid_gate_derivative(gn[i], beta);
              }
              if (plane.want_diff_sum) {
                acc += static_cast<double>(gi) * (gp[i] - gn[i]);
              }
            }
          } else {  // round_clip: clipped STE through the rounding
            for (std::int64_t i = begin; i < end; ++i) {
              const float gi = grad_out[i];
              if (plane.grad_pos != nullptr && in_unit_window(plane.pos[i])) {
                plane.grad_pos[i] += gi * coeff;
              }
              if (plane.grad_neg != nullptr && in_unit_window(plane.neg[i])) {
                plane.grad_neg[i] -= gi * coeff;
              }
              if (plane.want_diff_sum) {
                acc += static_cast<double>(gi) * (plane.gate_pos[i] -
                                                  plane.gate_neg[i]);
              }
            }
          }
          partials[chunk * num_planes + p] = acc;
        }
      });
  if (diff_sums != nullptr) {
    for (int p = 0; p < num_planes; ++p) {
      double total = 0.0;
      for (std::int64_t c = 0; c < chunks; ++c) {
        total += partials[c * num_planes + p];
      }
      diff_sums[p] = total;
    }
  }
}

// -------------------------------------------------------------- reductions --

void tree_reduce_spans(const float* const* sources, int num_sources,
                       float* dst, std::int64_t count, KernelExec exec) {
  CSQ_CHECK(num_sources >= 1 && num_sources <= kMaxReduceSpans)
      << "tree_reduce_spans: source count " << num_sources
      << " outside 1.." << kMaxReduceSpans;
  if (num_sources == 1) {
    const float* src = sources[0];
    for_each_quant_chunk(count, exec,
                         [&](std::int64_t, std::int64_t begin,
                             std::int64_t end) {
                           std::copy(src + begin, src + end, dst + begin);
                         });
    return;
  }
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t, std::int64_t begin, std::int64_t end) {
        float lane[kMaxReduceSpans];
        for (std::int64_t i = begin; i < end; ++i) {
          for (int s = 0; s < num_sources; ++s) lane[s] = sources[s][i];
          // Pairwise tree: (s0+s1)+(s2+s3)... — a fixed shape per source
          // count; an odd tail at any level rides up unchanged.
          for (int stride = 1; stride < num_sources; stride *= 2) {
            for (int s = 0; s + stride < num_sources; s += 2 * stride) {
              lane[s] += lane[s + stride];
            }
          }
          dst[i] = lane[0];
        }
      });
}

double chunked_dot(const float* a, const float* b, std::int64_t count,
                   double* partials, KernelExec exec) {
  const std::int64_t chunks = quant_chunk_count(count);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        double acc = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          acc += static_cast<double>(a[i]) * b[i];
        }
        partials[chunk] = acc;
      });
  double total = 0.0;
  for (std::int64_t c = 0; c < chunks; ++c) total += partials[c];
  return total;
}

float reduce_max_abs(const float* data, std::int64_t count, float* partials,
                     KernelExec exec) {
  const std::int64_t chunks = quant_chunk_count(count);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        float best = 0.0f;
        for (std::int64_t i = begin; i < end; ++i) {
          best = std::max(best, std::fabs(data[i]));
        }
        partials[chunk] = best;
      });
  float best = 0.0f;
  for (std::int64_t c = 0; c < chunks; ++c) best = std::max(best, partials[c]);
  return best;
}

// --------------------------------------------------- fake-quant / clip ----

void fake_quant_symmetric(const float* in, float* out, std::int64_t count,
                          float scale, int bits, KernelExec exec) {
  CSQ_CHECK(scale > 0.0f) << "fake_quant_symmetric: scale must be positive";
  CSQ_CHECK(bits >= 1 && bits <= 16)
      << "fake_quant_symmetric: bits out of range: " << bits;
  const auto levels = static_cast<float>((std::int64_t{1} << bits) - 1);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t /*chunk*/, std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          // Same arithmetic as quantize_symmetric (quant/quantizer.h): clamp,
          // round to the integer grid, dequantize.
          const float normalized = std::clamp(in[i] / scale, -1.0f, 1.0f);
          const auto code =
              static_cast<std::int64_t>(std::lround(normalized * levels));
          out[i] = static_cast<float>(code) * scale / levels;
        }
      });
}

void accumulate(const float* x, float* y, std::int64_t count,
                KernelExec exec) {
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t /*chunk*/, std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) y[i] += x[i];
      });
}

float tanh_forward_max(const float* in, float* tanh_out, std::int64_t count,
                       float* partials, KernelExec exec) {
  const std::int64_t chunks = quant_chunk_count(count);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        float best = 0.0f;
        for (std::int64_t i = begin; i < end; ++i) {
          tanh_out[i] = std::tanh(in[i]);
          best = std::max(best, std::fabs(tanh_out[i]));
        }
        partials[chunk] = best;
      });
  float best = 0.0f;
  for (std::int64_t c = 0; c < chunks; ++c) best = std::max(best, partials[c]);
  return best;
}

void dorefa_fake_quant(const float* tanh_in, float* out, std::int64_t count,
                       float inv_two_max, float levels, KernelExec exec) {
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t /*chunk*/, std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const float normalized = tanh_in[i] * inv_two_max + 0.5f;  // [0, 1]
          out[i] = 2.0f * std::round(levels * normalized) / levels - 1.0f;
        }
      });
}

void tanh_ste_backward(const float* grad_out, const float* tanh_in,
                       float* grad_latent, std::int64_t count, float inv_max,
                       KernelExec exec) {
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t /*chunk*/, std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          grad_latent[i] +=
              grad_out[i] * (1.0f - tanh_in[i] * tanh_in[i]) * inv_max;
        }
      });
}

// ------------------------------------------------------- LQ-Nets kernels --

double nearest_level_encode(const float* in, const float* levels,
                            int num_levels, std::int8_t* codes, float* out,
                            std::int64_t count, double* partials,
                            KernelExec exec) {
  CSQ_CHECK(num_levels >= 1 && num_levels <= 127)
      << "nearest_level_encode: level count out of int8 code range";
  const std::int64_t chunks = quant_chunk_count(count);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        double fit_error = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          int best_code = 0;
          float best_dist = std::fabs(in[i] - levels[0]);
          for (int c = 1; c < num_levels; ++c) {
            const float dist = std::fabs(in[i] - levels[c]);
            if (dist < best_dist) {
              best_dist = dist;
              best_code = c;
            }
          }
          codes[i] = static_cast<std::int8_t>(best_code);
          out[i] = levels[best_code];
          fit_error += static_cast<double>(best_dist) * best_dist;
        }
        partials[chunk] = fit_error;
      });
  double total = 0.0;
  for (std::int64_t c = 0; c < chunks; ++c) total += partials[c];
  return total;
}

void code_gram_accumulate(const float* in, const std::int8_t* codes, int n,
                          double* gram, double* rhs, std::int64_t count,
                          double* partials, KernelExec exec) {
  CSQ_CHECK(n >= 1 && n <= 4) << "code_gram_accumulate: basis size 1..4";
  const int block = n * n + n;  // per-chunk scratch: gram then rhs
  const std::int64_t chunks = quant_chunk_count(count);
  for_each_quant_chunk(
      count, exec,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        double* local = partials + chunk * block;
        std::fill(local, local + block, 0.0);
        double* local_gram = local;
        double* local_rhs = local + n * n;
        for (std::int64_t i = begin; i < end; ++i) {
          const int code = codes[i];
          for (int a = 0; a < n; ++a) {
            const double sign_a = (code >> a) & 1 ? 1.0 : -1.0;
            local_rhs[a] += sign_a * in[i];
            for (int b = 0; b < n; ++b) {
              const double sign_b = (code >> b) & 1 ? 1.0 : -1.0;
              local_gram[a * n + b] += sign_a * sign_b;
            }
          }
        }
      });
  std::fill(gram, gram + n * n, 0.0);
  std::fill(rhs, rhs + n, 0.0);
  for (std::int64_t c = 0; c < chunks; ++c) {
    const double* local = partials + c * block;
    for (int j = 0; j < n * n; ++j) gram[j] += local[j];
    for (int a = 0; a < n; ++a) rhs[a] += local[n * n + a];
  }
}

}  // namespace csq
