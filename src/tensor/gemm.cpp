#include "tensor/gemm.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

namespace {

// Scales a row block of C by beta (handles beta == 0 without reading C).
void apply_beta(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
                float beta, float* c, std::int64_t ldc) {
  if (beta == 1.0f) return;
  for (std::int64_t i = m_begin; i < m_end; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

// C[i,:] += alpha * A[i,:] * B  for i in [m_begin, m_end).
// i-k-j order: the j loop runs over contiguous C and B rows and vectorizes.
void kernel_nn(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = m_begin; i < m_end; ++i) {
    const float* a_row = a + i * lda;
    float* c_row = c + i * ldc;
    for (std::int64_t p = 0; p < k; ++p) {
      const float a_ip = alpha * a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

// C[i,j] += alpha * dot(A[i,:], B[j,:])  (B given transposed, [n, k]).
// Dot products over contiguous rows; unrolled 4x over j to reuse the A row.
void kernel_nt(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = m_begin; i < m_end; ++i) {
    const float* a_row = a + i * lda;
    float* c_row = c + i * ldc;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * ldb;
      const float* b1 = b + (j + 1) * ldb;
      const float* b2 = b + (j + 2) * ldb;
      const float* b3 = b + (j + 3) * ldb;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        const float a_ip = a_row[p];
        acc0 += a_ip * b0[p];
        acc1 += a_ip * b1[p];
        acc2 += a_ip * b2[p];
        acc3 += a_ip * b3[p];
      }
      c_row[j + 0] += alpha * acc0;
      c_row[j + 1] += alpha * acc1;
      c_row[j + 2] += alpha * acc2;
      c_row[j + 3] += alpha * acc3;
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

// C[i,j] += alpha * sum_p A[p,i] * B[p,j]  (A given transposed, [k, m]).
// p-outer order keeps both A and B accesses row-contiguous; the row block
// [m_begin, m_end) owned by this thread is updated independently.
void kernel_tn(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * lda;
    const float* b_row = b + p * ldb;
    for (std::int64_t i = m_begin; i < m_end; ++i) {
      const float a_pi = alpha * a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
    }
  }
}

void gemm_rows(Trans trans_a, Trans trans_b, std::int64_t m_begin,
               std::int64_t m_end, std::int64_t n, std::int64_t k, float alpha,
               const float* a, std::int64_t lda, const float* b,
               std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  apply_beta(m_begin, m_end, n, beta, c, ldc);
  if (alpha == 0.0f || k == 0) return;
  if (trans_a == Trans::no && trans_b == Trans::no) {
    kernel_nn(m_begin, m_end, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (trans_a == Trans::no && trans_b == Trans::yes) {
    kernel_nt(m_begin, m_end, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (trans_a == Trans::yes && trans_b == Trans::no) {
    kernel_tn(m_begin, m_end, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    CSQ_UNREACHABLE("gemm TT is not implemented (unused in this library)");
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  CSQ_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm: negative extent";
  if (m == 0 || n == 0) return;
  gemm_rows(trans_a, trans_b, 0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc) {
  CSQ_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm: negative extent";
  if (m == 0 || n == 0) return;
  // Only fan out when there is enough arithmetic to amortize the pool wakeup.
  const std::int64_t flops = 2 * m * n * k;
  if (flops < (1 << 18) || inside_parallel_region()) {
    gemm_rows(trans_a, trans_b, 0, m, n, k, alpha, a, lda, b, ldb, beta, c,
              ldc);
    return;
  }
  parallel_for_chunked(0, m, [&](std::int64_t row_begin, std::int64_t row_end) {
    gemm_rows(trans_a, trans_b, row_begin, row_end, n, k, alpha, a, lda, b,
              ldb, beta, c, ldc);
  });
}

}  // namespace csq
