#include "tensor/gemm.h"

#include <algorithm>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

namespace {

static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

// Per-thread packing scratch for callers that do not supply one. Pool worker
// threads are long-lived, so each buffer grows to its steady-state size once
// and is then recycled forever.
GemmScratch& local_scratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

void ensure_size(std::vector<float>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer.resize(count);
}

// Scales a row block of C by beta (handles beta == 0 without reading C).
void apply_beta(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
                float beta, float* c, std::int64_t ldc) {
  if (beta == 1.0f) return;
  for (std::int64_t i = m_begin; i < m_end; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

// ----------------------------------------------------- tile-grid split ----
//
// Task decomposition for the column-split (kCols) and 2-D-grid (kGrid)
// pooled paths, shared by all three blocked drivers. The C tile grid is
// carved into row_groups x col_stripes tasks: each task owns a disjoint
// block of C (a contiguous run of MC row tiles x one NR-aligned column
// stripe) and runs the full ascending pc depth loop itself, packing op(B)
// for its stripe into a per-slot region of the shared packed-B scratch.
//
// Bit-identity argument (extends the row-split one):
//  * Ownership: every C element belongs to exactly one (row tile, column
//    stripe) pair — no write conflicts, no order dependence across tasks.
//  * Identical packed panels: stripe boundaries are NR-aligned, and the
//    serial sweep also carves B into NR-wide micro-panels from NR-aligned
//    offsets (kGemmNC is a multiple of kGemmNR), so each micro-panel a task
//    packs holds exactly the bytes the serial pack produces for those
//    columns — zero-padding happens only at the true matrix edge either way.
//  * Identical per-element op order: each task visits pc panels in the same
//    ascending order as the serial loop (beta / accumulate applied at
//    pc == 0), and the micro-kernel's packed-k order is fixed by the
//    blocking constants.
// Stripes are capped at kGemmNC columns so the per-task packed panel keeps
// the serial path's cache footprint.

struct TileGrid {
  std::int64_t row_groups = 1;         // groups of consecutive MC row tiles
  std::int64_t tiles_per_group = 1;    // MC tiles per group (last may be short)
  std::int64_t col_stripes = 1;        // NR-aligned column stripes
  std::int64_t panels_per_stripe = 1;  // NR panels per stripe (last may be short)
  std::int64_t tasks() const { return row_groups * col_stripes; }
};

int resolve_split_ways(int split_ways) {
  return split_ways > 0 ? split_ways : global_pool().num_threads();
}

// Builds the task grid for kCols / kGrid (kRows never reaches this). Targets
// `ways` tasks; produces more when a stripe would exceed kGemmNC columns
// (tasks queue on the pool, which is fine) and fewer when the shape has too
// few tiles to split that finely.
TileGrid make_tile_grid(GemmSplit split, std::int64_t m, std::int64_t n,
                        int ways) {
  const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
  const std::int64_t col_panels = (n + kGemmNR - 1) / kGemmNR;
  TileGrid grid;
  grid.tiles_per_group = std::max<std::int64_t>(ic_tiles, 1);
  std::int64_t col_ways = std::max<std::int64_t>(ways, 1);
  if (split == GemmSplit::kGrid && ic_tiles > 1) {
    grid.row_groups = std::min<std::int64_t>(ic_tiles, ways);
    grid.tiles_per_group =
        (ic_tiles + grid.row_groups - 1) / grid.row_groups;
    grid.row_groups =
        (ic_tiles + grid.tiles_per_group - 1) / grid.tiles_per_group;
    col_ways = std::max<std::int64_t>(ways / grid.row_groups, 1);
  }
  grid.col_stripes = std::max<std::int64_t>(
      std::min<std::int64_t>(col_panels, col_ways), 1);
  grid.panels_per_stripe =
      (col_panels + grid.col_stripes - 1) / grid.col_stripes;
  grid.panels_per_stripe =
      std::min<std::int64_t>(grid.panels_per_stripe, kGemmNC / kGemmNR);
  grid.col_stripes =
      (col_panels + grid.panels_per_stripe - 1) / grid.panels_per_stripe;
  return grid;
}

// --------------------------------------------------------------- packing --
//
// A~ layout: ceil(mc/MR) micro-panels, each kc x MR:
//   packed[panel r][p * MR + i] = op(A)[ic + r*MR + i, pc + p]
// B~ layout: ceil(nc/NR) micro-panels, each kc x NR:
//   packed[panel s][p * NR + j] = op(B)[pc + p, jc + s*NR + j]
// Rows/columns beyond the matrix edge are zero-filled so the micro-kernel
// always runs full MR x NR tiles.

void pack_a_panel(Trans trans, const float* a, std::int64_t lda,
                  std::int64_t ic, std::int64_t pc, std::int64_t mc,
                  std::int64_t kc, float* dst) {
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    if (trans == Trans::no) {
      // op(A)[i, p] = a[(ic + i) * lda + pc + p]: row-contiguous reads.
      for (std::int64_t i = 0; i < rows; ++i) {
        const float* src = a + (ic + r + i) * lda + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR + i] = src[p];
      }
      for (std::int64_t i = rows; i < kGemmMR; ++i) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR + i] = 0.0f;
      }
    } else {
      // op(A)[i, p] = a[(pc + p) * lda + ic + i]: contiguous in i.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (pc + p) * lda + ic + r;
        float* d = dst + p * kGemmMR;
        std::int64_t i = 0;
        for (; i < rows; ++i) d[i] = src[i];
        for (; i < kGemmMR; ++i) d[i] = 0.0f;
      }
    }
    dst += kGemmMR * kc;
  }
}

void pack_b_panel(Trans trans, const float* b, std::int64_t ldb,
                  std::int64_t pc, std::int64_t jc, std::int64_t kc,
                  std::int64_t nc, float* dst) {
  for (std::int64_t s = 0; s < nc; s += kGemmNR) {
    const std::int64_t cols = std::min(kGemmNR, nc - s);
    if (trans == Trans::no) {
      // op(B)[p, j] = b[(pc + p) * ldb + jc + j]: contiguous in j.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + s;
        float* d = dst + p * kGemmNR;
        std::int64_t j = 0;
        for (; j < cols; ++j) d[j] = src[j];
        for (; j < kGemmNR; ++j) d[j] = 0.0f;
      }
    } else {
      // op(B)[p, j] = b[(jc + j) * ldb + pc + p]: row-contiguous reads.
      for (std::int64_t j = 0; j < cols; ++j) {
        const float* src = b + (jc + s + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + j] = src[p];
      }
      for (std::int64_t j = cols; j < kGemmNR; ++j) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + j] = 0.0f;
      }
    }
    dst += kGemmNR * kc;
  }
}

// ---------------------------------------------------------- micro-kernel --
//
// acc(MR, NR) = A~panel(kc, MR) * B~panel(kc, NR). On GCC/Clang the kernel
// is written with vector extensions: one 8-float vector register per
// accumulator row, one unaligned load of the packed B row per k step, and a
// broadcast-multiply per packed A element — the classic outer-product form
// that maps 1:1 onto FMA units. Elsewhere a scalar form with constant trip
// counts lets the auto-vectorizer do its best.

#if defined(__GNUC__) || defined(__clang__)
#define CSQ_GEMM_VECTOR_KERNEL 1
#endif

#ifdef CSQ_GEMM_VECTOR_KERNEL

typedef float Vec8 __attribute__((vector_size(32)));
static_assert(kGemmMR == 8 && kGemmNR == 8,
              "vector micro-kernel assumes an 8x8 tile");

inline Vec8 load8(const float* p) {
  Vec8 r;
  __builtin_memcpy(&r, p, sizeof(r));  // unaligned vector load
  return r;
}

inline void micro_kernel(const float* pa, const float* pb, std::int64_t kc,
                         float* acc) {
  Vec8 c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a_col = pa + p * kGemmMR;
    const Vec8 b = load8(pb + p * kGemmNR);
    c0 += a_col[0] * b;
    c1 += a_col[1] * b;
    c2 += a_col[2] * b;
    c3 += a_col[3] * b;
    c4 += a_col[4] * b;
    c5 += a_col[5] * b;
    c6 += a_col[6] * b;
    c7 += a_col[7] * b;
  }
  __builtin_memcpy(acc + 0 * 8, &c0, sizeof(c0));
  __builtin_memcpy(acc + 1 * 8, &c1, sizeof(c1));
  __builtin_memcpy(acc + 2 * 8, &c2, sizeof(c2));
  __builtin_memcpy(acc + 3 * 8, &c3, sizeof(c3));
  __builtin_memcpy(acc + 4 * 8, &c4, sizeof(c4));
  __builtin_memcpy(acc + 5 * 8, &c5, sizeof(c5));
  __builtin_memcpy(acc + 6 * 8, &c6, sizeof(c6));
  __builtin_memcpy(acc + 7 * 8, &c7, sizeof(c7));
}

#else  // portable fallback

inline void micro_kernel(const float* pa, const float* pb, std::int64_t kc,
                         float* acc) {
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0.0f;
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a_col = pa + p * kGemmMR;
    const float* b_row = pb + p * kGemmNR;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      const float a_ip = a_col[i];
      float* acc_row = acc + i * kGemmNR;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        acc_row[j] += a_ip * b_row[j];
      }
    }
  }
}

#endif  // CSQ_GEMM_VECTOR_KERNEL

// C tile update: c = beta_eff * c + alpha * acc over the valid m_sub x n_sub
// region. beta_eff == 0 never reads C (NaN/garbage safe).
inline void update_c_tile(float* c, std::int64_t ldc, const float* acc,
                          std::int64_t m_sub, std::int64_t n_sub, float alpha,
                          float beta_eff) {
  for (std::int64_t i = 0; i < m_sub; ++i) {
    float* c_row = c + i * ldc;
    const float* acc_row = acc + i * kGemmNR;
    if (beta_eff == 0.0f) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] = alpha * acc_row[j];
    } else if (beta_eff == 1.0f) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] += alpha * acc_row[j];
    } else {
      for (std::int64_t j = 0; j < n_sub; ++j) {
        c_row[j] = beta_eff * c_row[j] + alpha * acc_row[j];
      }
    }
  }
}

// One MC-tall row tile of C inside a (jc, pc) panel: packs its A panel and
// sweeps the jr/ir micro-tile grid. `packed_b` is read-only shared state.
void run_ic_tile(Trans trans_a, const float* a, std::int64_t lda,
                 std::int64_t ic, std::int64_t pc, std::int64_t jc,
                 std::int64_t m, std::int64_t kc, std::int64_t nc, float alpha,
                 float beta_eff, const float* packed_b, float* c,
                 std::int64_t ldc, std::vector<float>& pack_a_storage) {
  const std::int64_t mc = std::min(kGemmMC, m - ic);
  const std::int64_t a_panels = (mc + kGemmMR - 1) / kGemmMR;
  ensure_size(pack_a_storage,
              static_cast<std::size_t>(a_panels * kGemmMR * kc));
  float* packed_a = pack_a_storage.data();
  pack_a_panel(trans_a, a, lda, ic, pc, mc, kc, packed_a);

  float acc[kGemmMR * kGemmNR];
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t n_sub = std::min(kGemmNR, nc - jr);
    const float* pb = packed_b + (jr / kGemmNR) * kGemmNR * kc;
    for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const std::int64_t m_sub = std::min(kGemmMR, mc - ir);
      const float* pa = packed_a + (ir / kGemmMR) * kGemmMR * kc;
      micro_kernel(pa, pb, kc, acc);
      update_c_tile(c + (ic + ir) * ldc + jc + jr, ldc, acc, m_sub, n_sub,
                    alpha, beta_eff);
    }
  }
}

// Column-split / 2-D-grid pooled driver (float). Each task owns a disjoint
// (row group x column stripe) block of C, packs op(B) for its stripe into a
// pool_slot()-indexed region of the shared packed-B scratch (the pool runs
// one top-level task graph at a time, so slots are never shared), packs A
// into its thread-local scratch, and runs the ascending pc loop itself —
// see the TileGrid comment for the bit-identity argument.
void gemm_blocked_grid(Trans trans_a, Trans trans_b, std::int64_t m,
                       std::int64_t n, std::int64_t k, float alpha,
                       const float* a, std::int64_t lda, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t ldc, GemmScratch& shared,
                       const TileGrid& grid) {
  const std::int64_t kc_max = std::min(k, kGemmKC);
  const std::int64_t stripe_elems = grid.panels_per_stripe * kGemmNR * kc_max;
  ensure_size(shared.packed_b,
              static_cast<std::size_t>(pool_slot_count() * stripe_elems));

  struct GridContext {
    Trans trans_a, trans_b;
    const float* a;
    std::int64_t lda;
    const float* b;
    std::int64_t ldb, m, n, k;
    float alpha, beta;
    float* c;
    std::int64_t ldc;
    float* packed_b_base;
    std::int64_t stripe_elems, ic_tiles;
    TileGrid grid;
  } ctx;
  ctx.trans_a = trans_a;
  ctx.trans_b = trans_b;
  ctx.a = a;
  ctx.lda = lda;
  ctx.b = b;
  ctx.ldb = ldb;
  ctx.m = m;
  ctx.n = n;
  ctx.k = k;
  ctx.alpha = alpha;
  ctx.beta = beta;
  ctx.c = c;
  ctx.ldc = ldc;
  ctx.packed_b_base = shared.packed_b.data();
  ctx.stripe_elems = stripe_elems;
  ctx.ic_tiles = (m + kGemmMC - 1) / kGemmMC;
  ctx.grid = grid;
  parallel_for_chunked(
      0, grid.tasks(), [&ctx](std::int64_t begin, std::int64_t end) {
        float* stripe = ctx.packed_b_base + pool_slot() * ctx.stripe_elems;
        for (std::int64_t t = begin; t < end; ++t) {
          const std::int64_t g = t / ctx.grid.col_stripes;
          const std::int64_t s = t % ctx.grid.col_stripes;
          const std::int64_t jc = s * ctx.grid.panels_per_stripe * kGemmNR;
          const std::int64_t nc =
              std::min(ctx.grid.panels_per_stripe * kGemmNR, ctx.n - jc);
          const std::int64_t tile_begin = g * ctx.grid.tiles_per_group;
          const std::int64_t tile_end = std::min(
              tile_begin + ctx.grid.tiles_per_group, ctx.ic_tiles);
          for (std::int64_t pc = 0; pc < ctx.k; pc += kGemmKC) {
            const std::int64_t kc = std::min(kGemmKC, ctx.k - pc);
            pack_b_panel(ctx.trans_b, ctx.b, ctx.ldb, pc, jc, kc, nc, stripe);
            const float beta_eff = pc == 0 ? ctx.beta : 1.0f;
            for (std::int64_t tt = tile_begin; tt < tile_end; ++tt) {
              run_ic_tile(ctx.trans_a, ctx.a, ctx.lda, tt * kGemmMC, pc, jc,
                          ctx.m, kc, nc, ctx.alpha, beta_eff, stripe, ctx.c,
                          ctx.ldc, local_scratch().packed_a);
            }
          }
        }
      });
}

// Shared driver for the serial and pooled paths. The jc/pc loop nest runs on
// the calling thread (B is packed once per (jc, pc) and reused across the
// whole ic sweep); the ic tiles either run in order (serial) or are
// distributed across the pool. Both orders compute each C element with an
// identical floating-point operation sequence, so results are bit-identical.
// The kCols/kGrid splits route to gemm_blocked_grid instead — same
// operation sequence per element, different task decomposition.
void gemm_blocked(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc, GemmScratch* scratch,
                  bool pooled, GemmSplit split = GemmSplit::kRows,
                  int split_ways = 0) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    apply_beta(0, m, n, beta, c, ldc);
    return;
  }
  GemmScratch& shared = scratch != nullptr ? *scratch : local_scratch();

  if (pooled) {
    const int ways = resolve_split_ways(split_ways);
    if (split == GemmSplit::kAuto) split = gemm_choose_split(m, n, ways);
    if (split != GemmSplit::kRows) {
      const TileGrid grid = make_tile_grid(split, m, n, ways);
      if (grid.tasks() > 1) {
        gemm_blocked_grid(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc, shared, grid);
        return;
      }
      // A 1-task grid means the shape cannot use this split; fall through
      // to the row path (which degrades to serial for a single row tile).
    }
  }

  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t b_panels = (nc + kGemmNR - 1) / kGemmNR;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      ensure_size(shared.packed_b,
                  static_cast<std::size_t>(b_panels * kGemmNR * kc));
      pack_b_panel(trans_b, b, ldb, pc, jc, kc, nc, shared.packed_b.data());
      const float beta_eff = pc == 0 ? beta : 1.0f;

      const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
      if (!pooled || ic_tiles <= 1) {
        for (std::int64_t t = 0; t < ic_tiles; ++t) {
          run_ic_tile(trans_a, a, lda, t * kGemmMC, pc, jc, m, kc, nc, alpha,
                      beta_eff, shared.packed_b.data(), c, ldc,
                      shared.packed_a);
        }
      } else {
        // Each worker packs A into its own thread-local scratch; every C
        // element belongs to exactly one ic tile, so there are no write
        // conflicts and no order dependence.
        struct TileContext {
          Trans trans_a;
          const float* a;
          std::int64_t lda, pc, jc, m, kc, nc;
          float alpha, beta_eff;
          const float* packed_b;
          float* c;
          std::int64_t ldc;
        } ctx;
        ctx.trans_a = trans_a;
        ctx.a = a;
        ctx.lda = lda;
        ctx.pc = pc;
        ctx.jc = jc;
        ctx.m = m;
        ctx.kc = kc;
        ctx.nc = nc;
        ctx.alpha = alpha;
        ctx.beta_eff = beta_eff;
        ctx.packed_b = shared.packed_b.data();
        ctx.c = c;
        ctx.ldc = ldc;
        // Single-reference capture keeps the closure inside std::function's
        // small-buffer optimization: no allocation per dispatch.
        parallel_for_chunked(
            0, ic_tiles, [&ctx](std::int64_t begin, std::int64_t end) {
              for (std::int64_t t = begin; t < end; ++t) {
                run_ic_tile(ctx.trans_a, ctx.a, ctx.lda, t * kGemmMC, ctx.pc,
                            ctx.jc, ctx.m, ctx.kc, ctx.nc, ctx.alpha,
                            ctx.beta_eff, ctx.packed_b, ctx.c, ctx.ldc,
                            local_scratch().packed_a);
              }
            });
      }
    }
  }
}

void check_extents(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k) {
  CSQ_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm: negative extent";
  CSQ_CHECK(trans_a == Trans::no || trans_b == Trans::no)
      << "gemm TT is not implemented (unused in this library)";
}

// Integer-path extents: the exactness contract (see gemm.h) is derived for
// the split-plane chaining alphas (|alpha| <= 2), where the worst
// per-depth-step contribution is 65535 and int32 accumulation therefore
// requires k <= 32767. Enforce both halves of that derivation here so
// direct callers cannot silently wrap, not just through PackedIntWeights.
void check_int_extents(Trans trans_b, std::int64_t m, std::int64_t n,
                       std::int64_t k, std::int32_t alpha) {
  check_extents(Trans::no, trans_b, m, n, k);
  CSQ_CHECK(alpha >= -2 && alpha <= 2)
      << "gemm_s8u8: alpha " << alpha
      << " outside the [-2, 2] range the exactness bound is derived for";
  CSQ_CHECK(k <= 32767)
      << "gemm_s8u8: reduction depth " << k
      << " would overflow int32 accumulation";
}

// ------------------------------------------------------ integer kernel ----
//
// Same blocking scheme as the float path (NC/KC/MC panels, MR x NR
// micro-tiles, MC-row-tile pooled split). Operands are widened to int16
// while packing, laid out in K-PAIRS: consecutive depth steps 2p and 2p+1
// sit adjacent per row/column, so the AVX2 micro-kernel fuses them with one
// vpmaddwd (int16 pair dot -> int32, no saturation possible at |a| <= 255,
// |b| <= 255) — the integer analogue of the float kernel's FMA. Odd kc
// tails are zero-padded (exact).
//
// A~ pair layout: panels MR-tall; entry (p, i) at [(p/2)*MR + i]*2 + p%2.
// B~ pair layout: panels NR-wide; entry (p, j) at [(p/2)*NR + j]*2 + p%2.

IntGemmScratch& local_int_scratch() {
  thread_local IntGemmScratch scratch;
  return scratch;
}

void ensure_size_s16(std::vector<std::int16_t>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer.resize(count);
}

// Depth extent after pairing (elements per packed row/column).
inline std::int64_t paired_kc(std::int64_t kc) { return (kc + 1) & ~1; }

// A is always (m x k) row-major int8 (the weight codes); panels MR-tall.
void pack_a_s8(const std::int8_t* a, std::int64_t lda, std::int64_t ic,
               std::int64_t pc, std::int64_t mc, std::int64_t kc,
               std::int16_t* dst) {
  const std::int64_t kcp = paired_kc(kc);
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    std::fill(dst, dst + kGemmMR * kcp, std::int16_t{0});
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int8_t* src = a + (ic + r + i) * lda + pc;
      for (std::int64_t p = 0; p < kc; ++p) {
        dst[((p / 2) * kGemmMR + i) * 2 + (p & 1)] =
            static_cast<std::int16_t>(src[p]);
      }
    }
    dst += kGemmMR * kcp;
  }
}

// op(B) is (k x n) uint8 activation codes; panels NR-wide, zero-padded.
void pack_b_u8(Trans trans, const std::uint8_t* b, std::int64_t ldb,
               std::int64_t pc, std::int64_t jc, std::int64_t kc,
               std::int64_t nc, std::int16_t* dst) {
  const std::int64_t kcp = paired_kc(kc);
  for (std::int64_t s = 0; s < nc; s += kGemmNR) {
    const std::int64_t cols = std::min(kGemmNR, nc - s);
    std::fill(dst, dst + kGemmNR * kcp, std::int16_t{0});
    if (trans == Trans::no) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const std::uint8_t* src = b + (pc + p) * ldb + jc + s;
        std::int16_t* d = dst + (p / 2) * kGemmNR * 2 + (p & 1);
        for (std::int64_t j = 0; j < cols; ++j) {
          d[j * 2] = static_cast<std::int16_t>(src[j]);
        }
      }
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::uint8_t* src = b + (jc + s + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) {
          dst[((p / 2) * kGemmNR + j) * 2 + (p & 1)] =
              static_cast<std::int16_t>(src[p]);
        }
      }
    }
    dst += kGemmNR * kcp;
  }
}

#if defined(__AVX2__)
#define CSQ_GEMM_AVX2_INT_KERNEL 1
#endif

#ifdef CSQ_GEMM_AVX2_INT_KERNEL

static_assert(kGemmMR == 8 && kGemmNR == 8,
              "AVX2 integer micro-kernel assumes an 8x8 tile");

// Reads one packed int16 A pair as its int32 broadcast payload. memcpy (not
// a reinterpret_cast dereference) keeps the int16-store/int32-load pattern
// well-defined under strict aliasing; it compiles to the same vpbroadcastd.
inline std::int32_t load_a_pair(const std::int16_t* p) {
  std::int32_t pair;
  __builtin_memcpy(&pair, p, sizeof(pair));
  return pair;
}

// One vpbroadcastd per packed A pair, one vpmaddwd + vpaddd per accumulator
// row: the same instruction-per-MAC budget as the float kernel's
// broadcast-FMA form.
inline void micro_kernel_int(const std::int16_t* pa, const std::int16_t* pb,
                             std::int64_t kc, std::int32_t* acc) {
  const std::int64_t pairs = paired_kc(kc) / 2;
  __m256i c0 = _mm256_setzero_si256(), c1 = _mm256_setzero_si256(),
          c2 = _mm256_setzero_si256(), c3 = _mm256_setzero_si256(),
          c4 = _mm256_setzero_si256(), c5 = _mm256_setzero_si256(),
          c6 = _mm256_setzero_si256(), c7 = _mm256_setzero_si256();
  for (std::int64_t p = 0; p < pairs; ++p) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pb + p * kGemmNR * 2));
    const std::int16_t* a_col = pa + p * kGemmMR * 2;
    c0 = _mm256_add_epi32(
        c0, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 0)), b));
    c1 = _mm256_add_epi32(
        c1, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 2)), b));
    c2 = _mm256_add_epi32(
        c2, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 4)), b));
    c3 = _mm256_add_epi32(
        c3, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 6)), b));
    c4 = _mm256_add_epi32(
        c4, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 8)), b));
    c5 = _mm256_add_epi32(
        c5, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 10)), b));
    c6 = _mm256_add_epi32(
        c6, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 12)), b));
    c7 = _mm256_add_epi32(
        c7, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 14)), b));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * 8), c0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * 8), c1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * 8), c2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * 8), c3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4 * 8), c4);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 5 * 8), c5);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 6 * 8), c6);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 7 * 8), c7);
}

#else  // portable fallback over the same pair layout

inline void micro_kernel_int(const std::int16_t* pa, const std::int16_t* pb,
                             std::int64_t kc, std::int32_t* acc) {
  const std::int64_t pairs = paired_kc(kc) / 2;
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0;
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::int16_t* a_col = pa + p * kGemmMR * 2;
    const std::int16_t* b_row = pb + p * kGemmNR * 2;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      const std::int32_t a0 = a_col[i * 2];
      const std::int32_t a1 = a_col[i * 2 + 1];
      std::int32_t* acc_row = acc + i * kGemmNR;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        acc_row[j] += a0 * b_row[j * 2] + a1 * b_row[j * 2 + 1];
      }
    }
  }
}

#endif  // CSQ_GEMM_AVX2_INT_KERNEL

inline void update_c_tile_int(std::int32_t* c, std::int64_t ldc,
                              const std::int32_t* acc, std::int64_t m_sub,
                              std::int64_t n_sub, std::int32_t alpha,
                              bool add_into_c) {
  for (std::int64_t i = 0; i < m_sub; ++i) {
    std::int32_t* c_row = c + i * ldc;
    const std::int32_t* acc_row = acc + i * kGemmNR;
    if (add_into_c) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] += alpha * acc_row[j];
    } else {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] = alpha * acc_row[j];
    }
  }
}

void run_ic_tile_int(std::int64_t ic, std::int64_t jc, std::int64_t m,
                     std::int64_t kc, std::int64_t nc, std::int32_t alpha,
                     bool add_into_c, const std::int16_t* packed_a,
                     const std::int16_t* packed_b, std::int32_t* c,
                     std::int64_t ldc) {
  const std::int64_t mc = std::min(kGemmMC, m - ic);
  std::int32_t acc[kGemmMR * kGemmNR];
  const std::int64_t kcp = paired_kc(kc);
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t n_sub = std::min(kGemmNR, nc - jr);
    const std::int16_t* pb = packed_b + (jr / kGemmNR) * kGemmNR * kcp;
    for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const std::int64_t m_sub = std::min(kGemmMR, mc - ir);
      const std::int16_t* pa = packed_a + (ir / kGemmMR) * kGemmMR * kcp;
      micro_kernel_int(pa, pb, kc, acc);
      update_c_tile_int(c + (ic + ir) * ldc + jc + jr, ldc, acc, m_sub, n_sub,
                        alpha, add_into_c);
    }
  }
}

// Row-panel stride of one pc block in the prepacked-A layout: every MR-tall
// panel of the full m extent, consecutively.
inline std::int64_t packed_a_block_size(std::int64_t m, std::int64_t kc) {
  return ((m + kGemmMR - 1) / kGemmMR) * kGemmMR * paired_kc(kc);
}

// Column-split / 2-D-grid pooled driver (widened s8u8). Mirrors
// gemm_blocked_grid; the prepacked-A block offset depends only on pc (never
// on jc or ic), so every task recomputes it locally by accumulating
// packed_a_block_size over its own ascending pc loop — identical offsets to
// the serial sweep. Integer accumulation is associative, so the ownership
// argument alone gives bit-identity.
void gemm_s8u8_blocked_grid(Trans trans_b, std::int64_t m, std::int64_t n,
                            std::int64_t k, std::int32_t alpha,
                            const std::int8_t* a, std::int64_t lda,
                            const std::int16_t* prepacked_a,
                            const std::uint8_t* b, std::int64_t ldb,
                            bool accumulate, std::int32_t* c, std::int64_t ldc,
                            IntGemmScratch& shared, const TileGrid& grid) {
  const std::int64_t kcp_max = paired_kc(std::min(k, kGemmKC));
  const std::int64_t stripe_elems =
      grid.panels_per_stripe * kGemmNR * kcp_max;
  ensure_size_s16(shared.packed_b,
                  static_cast<std::size_t>(pool_slot_count() * stripe_elems));

  struct GridContext {
    Trans trans_b;
    const std::int8_t* a;
    std::int64_t lda;
    const std::int16_t* prepacked_a;
    const std::uint8_t* b;
    std::int64_t ldb, m, n, k;
    std::int32_t alpha;
    bool accumulate;
    std::int32_t* c;
    std::int64_t ldc;
    std::int16_t* packed_b_base;
    std::int64_t stripe_elems, ic_tiles;
    TileGrid grid;
  } ctx;
  ctx.trans_b = trans_b;
  ctx.a = a;
  ctx.lda = lda;
  ctx.prepacked_a = prepacked_a;
  ctx.b = b;
  ctx.ldb = ldb;
  ctx.m = m;
  ctx.n = n;
  ctx.k = k;
  ctx.alpha = alpha;
  ctx.accumulate = accumulate;
  ctx.c = c;
  ctx.ldc = ldc;
  ctx.packed_b_base = shared.packed_b.data();
  ctx.stripe_elems = stripe_elems;
  ctx.ic_tiles = (m + kGemmMC - 1) / kGemmMC;
  ctx.grid = grid;
  parallel_for_chunked(
      0, grid.tasks(), [&ctx](std::int64_t begin, std::int64_t end) {
        std::int16_t* stripe =
            ctx.packed_b_base + pool_slot() * ctx.stripe_elems;
        for (std::int64_t t = begin; t < end; ++t) {
          const std::int64_t g = t / ctx.grid.col_stripes;
          const std::int64_t s = t % ctx.grid.col_stripes;
          const std::int64_t jc = s * ctx.grid.panels_per_stripe * kGemmNR;
          const std::int64_t nc =
              std::min(ctx.grid.panels_per_stripe * kGemmNR, ctx.n - jc);
          const std::int64_t tile_begin = g * ctx.grid.tiles_per_group;
          const std::int64_t tile_end = std::min(
              tile_begin + ctx.grid.tiles_per_group, ctx.ic_tiles);
          std::int64_t a_block_offset = 0;
          for (std::int64_t pc = 0; pc < ctx.k; pc += kGemmKC) {
            const std::int64_t kc = std::min(kGemmKC, ctx.k - pc);
            const std::int64_t kcp = paired_kc(kc);
            pack_b_u8(ctx.trans_b, ctx.b, ctx.ldb, pc, jc, kc, nc, stripe);
            const bool add_into_c = ctx.accumulate || pc != 0;
            for (std::int64_t tt = tile_begin; tt < tile_end; ++tt) {
              const std::int64_t ic = tt * kGemmMC;
              const std::int16_t* pa;
              if (ctx.prepacked_a != nullptr) {
                pa = ctx.prepacked_a + a_block_offset +
                     (ic / kGemmMR) * kGemmMR * kcp;
              } else {
                const std::int64_t mc = std::min(kGemmMC, ctx.m - ic);
                const std::int64_t a_panels = (mc + kGemmMR - 1) / kGemmMR;
                std::vector<std::int16_t>& storage =
                    local_int_scratch().packed_a;
                ensure_size_s16(
                    storage, static_cast<std::size_t>(a_panels * kGemmMR * kcp));
                pack_a_s8(ctx.a, ctx.lda, ic, pc, mc, kc, storage.data());
                pa = storage.data();
              }
              run_ic_tile_int(ic, jc, ctx.m, kc, nc, ctx.alpha, add_into_c,
                              pa, stripe, ctx.c, ctx.ldc);
            }
            a_block_offset += packed_a_block_size(ctx.m, kc);
          }
        }
      });
}

// `prepacked_a` may be null (A packed per (ic, pc) tile into scratch — the
// one-shot path) or point at a gemm_s8u8_pack_a layout (weights packed once
// at graph-lowering time).
void gemm_s8u8_blocked(Trans trans_b, std::int64_t m, std::int64_t n,
                       std::int64_t k, std::int32_t alpha,
                       const std::int8_t* a, std::int64_t lda,
                       const std::int16_t* prepacked_a, const std::uint8_t* b,
                       std::int64_t ldb, bool accumulate, std::int32_t* c,
                       std::int64_t ldc, IntGemmScratch* scratch,
                       bool pooled, GemmSplit split = GemmSplit::kRows,
                       int split_ways = 0) {
  if (m == 0 || n == 0) return;
  if (alpha == 0 || k == 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0);
      }
    }
    return;
  }
  IntGemmScratch& shared = scratch != nullptr ? *scratch : local_int_scratch();

  if (pooled) {
    const int ways = resolve_split_ways(split_ways);
    if (split == GemmSplit::kAuto) split = gemm_choose_split(m, n, ways);
    if (split != GemmSplit::kRows) {
      const TileGrid grid = make_tile_grid(split, m, n, ways);
      if (grid.tasks() > 1) {
        gemm_s8u8_blocked_grid(trans_b, m, n, k, alpha, a, lda, prepacked_a,
                               b, ldb, accumulate, c, ldc, shared, grid);
        return;
      }
    }
  }

  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t b_panels = (nc + kGemmNR - 1) / kGemmNR;
    std::int64_t a_block_offset = 0;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      const std::int64_t kcp = paired_kc(kc);
      ensure_size_s16(shared.packed_b,
                      static_cast<std::size_t>(b_panels * kGemmNR * kcp));
      pack_b_u8(trans_b, b, ldb, pc, jc, kc, nc, shared.packed_b.data());
      const bool add_into_c = accumulate || pc != 0;

      const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
      const auto tile_a = [&](std::int64_t ic,
                              std::vector<std::int16_t>& pack_storage)
          -> const std::int16_t* {
        if (prepacked_a != nullptr) {
          return prepacked_a + a_block_offset + (ic / kGemmMR) * kGemmMR * kcp;
        }
        const std::int64_t mc = std::min(kGemmMC, m - ic);
        const std::int64_t a_panels = (mc + kGemmMR - 1) / kGemmMR;
        ensure_size_s16(pack_storage,
                        static_cast<std::size_t>(a_panels * kGemmMR * kcp));
        pack_a_s8(a, lda, ic, pc, mc, kc, pack_storage.data());
        return pack_storage.data();
      };

      if (!pooled || ic_tiles <= 1) {
        for (std::int64_t t = 0; t < ic_tiles; ++t) {
          run_ic_tile_int(t * kGemmMC, jc, m, kc, nc, alpha, add_into_c,
                          tile_a(t * kGemmMC, shared.packed_a),
                          shared.packed_b.data(), c, ldc);
        }
      } else {
        struct TileContext {
          const decltype(tile_a)* pick_a;
          std::int64_t jc, m, kc, nc;
          std::int32_t alpha;
          bool add_into_c;
          const std::int16_t* packed_b;
          std::int32_t* c;
          std::int64_t ldc;
        } ctx;
        ctx.pick_a = &tile_a;
        ctx.jc = jc;
        ctx.m = m;
        ctx.kc = kc;
        ctx.nc = nc;
        ctx.alpha = alpha;
        ctx.add_into_c = add_into_c;
        ctx.packed_b = shared.packed_b.data();
        ctx.c = c;
        ctx.ldc = ldc;
        parallel_for_chunked(
            0, ic_tiles, [&ctx](std::int64_t begin, std::int64_t end) {
              for (std::int64_t t = begin; t < end; ++t) {
                run_ic_tile_int(t * kGemmMC, ctx.jc, ctx.m, ctx.kc, ctx.nc,
                                ctx.alpha, ctx.add_into_c,
                                (*ctx.pick_a)(t * kGemmMC,
                                              local_int_scratch().packed_a),
                                ctx.packed_b, ctx.c, ctx.ldc);
              }
            });
      }
      a_block_offset += packed_a_block_size(m, kc);
    }
  }
}

// ----------------------------------------------------- sub-byte kernels ---
//
// The low-bit family keeps raw 8-bit operands in the packed panels and lays
// depth out in K-QUADS: steps 4q..4q+3 adjacent per row/column, fused by one
// vpmaddubsw (u8 activations * s8 weight codes, int16 pair sums) and one
// vpmaddwd against ones. Saturation analysis: each int16 pair sum is at most
// 255 * (|a0| + |a1|), so |a| <= 64 per code keeps vpmaddubsw exact — the
// pack routines enforce it. Quad tails are zero-padded (exact).
//
// A~ quad layout (low-bit): panels MR-tall; entry (p, i) at
//   [(p/4)*MR + i]*4 + p%4   (one int8 per code).
// A~ nibble layout: same quad structure, two codes per byte; entry (p, i)
//   lives in byte [(p/4)*MR + i]*2 + (p%4)/2, low nibble for even p, high
//   for odd; codes are stored as their low 4 bits (signed range [-8, 7]).
// B~ quad layout: panels NR-wide; entry (p, j) at [(p/4)*NR + j]*4 + p%4
//   (one uint8 per activation code — half the widened int16 panel traffic).

enum class QuadKernel { kLowBit, kLowBitWide, kNibble };

inline std::int64_t quad_kc(std::int64_t kc) {
  return (kc + 3) & ~std::int64_t{3};
}

void ensure_size_u8(std::vector<std::uint8_t>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer.resize(count);
}

void pack_a_s8_quad(const std::int8_t* a, std::int64_t lda, std::int64_t ic,
                    std::int64_t pc, std::int64_t mc, std::int64_t kc,
                    std::int8_t* dst) {
  const std::int64_t kcq = quad_kc(kc);
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    std::fill(dst, dst + kGemmMR * kcq, std::int8_t{0});
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int8_t* src = a + (ic + r + i) * lda + pc;
      for (std::int64_t p = 0; p < kc; ++p) {
        dst[((p / 4) * kGemmMR + i) * 4 + (p & 3)] = src[p];
      }
    }
    dst += kGemmMR * kcq;
  }
}

void pack_a_nibble_quad(const std::int8_t* a, std::int64_t lda,
                        std::int64_t ic, std::int64_t pc, std::int64_t mc,
                        std::int64_t kc, std::uint8_t* dst) {
  const std::int64_t kcq = quad_kc(kc);
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    std::fill(dst, dst + kGemmMR * kcq / 2, std::uint8_t{0});
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int8_t* src = a + (ic + r + i) * lda + pc;
      for (std::int64_t p = 0; p < kc; ++p) {
        const std::uint8_t nib = static_cast<std::uint8_t>(src[p]) & 0x0F;
        std::uint8_t& byte =
            dst[((p / 4) * kGemmMR + i) * 2 + ((p & 3) >> 1)];
        byte = static_cast<std::uint8_t>(
            (p & 1) ? (byte | (nib << 4)) : (byte | nib));
      }
    }
    dst += kGemmMR * kcq / 2;
  }
}

void pack_b_u8_quad(Trans trans, const std::uint8_t* b, std::int64_t ldb,
                    std::int64_t pc, std::int64_t jc, std::int64_t kc,
                    std::int64_t nc, std::uint8_t* dst) {
  const std::int64_t kcq = quad_kc(kc);
  for (std::int64_t s = 0; s < nc; s += kGemmNR) {
    const std::int64_t cols = std::min(kGemmNR, nc - s);
    std::fill(dst, dst + kGemmNR * kcq, std::uint8_t{0});
    if (trans == Trans::no) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const std::uint8_t* src = b + (pc + p) * ldb + jc + s;
        std::uint8_t* d = dst + (p / 4) * kGemmNR * 4 + (p & 3);
        for (std::int64_t j = 0; j < cols; ++j) d[j * 4] = src[j];
      }
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::uint8_t* src = b + (jc + s + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) {
          dst[((p / 4) * kGemmNR + j) * 4 + (p & 3)] = src[p];
        }
      }
    }
    dst += kGemmNR * kcq;
  }
}

#ifdef CSQ_GEMM_AVX2_INT_KERNEL

// Broadcasts one packed A quad (4 consecutive int8 codes) to every 32-bit
// lane. Same strict-aliasing-safe memcpy idiom as load_a_pair.
inline __m256i broadcast_a_quad(const std::int8_t* p) {
  std::int32_t quad;
  __builtin_memcpy(&quad, p, sizeof(quad));
  return _mm256_set1_epi32(quad);
}

// One vpmaddubsw (u8 B * s8 A quad, pair sums) + one vpmaddwd (pair-of-pairs
// widen) + vpaddd per accumulator row: four depth steps per instruction
// triple — twice the widened baseline's MAC throughput.
inline void micro_kernel_lowbit(const std::int8_t* pa, const std::uint8_t* pb,
                                std::int64_t kc, std::int32_t* acc) {
  const std::int64_t quads = quad_kc(kc) / 4;
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i c0 = _mm256_setzero_si256(), c1 = _mm256_setzero_si256(),
          c2 = _mm256_setzero_si256(), c3 = _mm256_setzero_si256(),
          c4 = _mm256_setzero_si256(), c5 = _mm256_setzero_si256(),
          c6 = _mm256_setzero_si256(), c7 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < quads; ++q) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pb + q * kGemmNR * 4));
    const std::int8_t* a_col = pa + q * kGemmMR * 4;
    c0 = _mm256_add_epi32(
        c0, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 0)), ones));
    c1 = _mm256_add_epi32(
        c1, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 4)), ones));
    c2 = _mm256_add_epi32(
        c2, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 8)), ones));
    c3 = _mm256_add_epi32(
        c3, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 12)), ones));
    c4 = _mm256_add_epi32(
        c4, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 16)), ones));
    c5 = _mm256_add_epi32(
        c5, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 20)), ones));
    c6 = _mm256_add_epi32(
        c6, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 24)), ones));
    c7 = _mm256_add_epi32(
        c7, _mm256_madd_epi16(
                _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 28)), ones));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * 8), c0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * 8), c1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * 8), c2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * 8), c3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4 * 8), c4);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 5 * 8), c5);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 6 * 8), c6);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 7 * 8), c7);
}

// Same layout, int16 accumulators: the vpmaddwd widen runs ONCE per KC
// block instead of once per quad. Exact only under the wide-eligibility
// bound (per-lane sum <= quads * 2 * 255 * max|a| <= 32767) — the vpaddw
// would otherwise wrap; the dispatcher never selects this kernel without
// proving the bound.
inline void micro_kernel_lowbit_wide(const std::int8_t* pa,
                                     const std::uint8_t* pb, std::int64_t kc,
                                     std::int32_t* acc) {
  const std::int64_t quads = quad_kc(kc) / 4;
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i s0 = _mm256_setzero_si256(), s1 = _mm256_setzero_si256(),
          s2 = _mm256_setzero_si256(), s3 = _mm256_setzero_si256(),
          s4 = _mm256_setzero_si256(), s5 = _mm256_setzero_si256(),
          s6 = _mm256_setzero_si256(), s7 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < quads; ++q) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pb + q * kGemmNR * 4));
    const std::int8_t* a_col = pa + q * kGemmMR * 4;
    s0 = _mm256_add_epi16(
        s0, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 0)));
    s1 = _mm256_add_epi16(
        s1, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 4)));
    s2 = _mm256_add_epi16(
        s2, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 8)));
    s3 = _mm256_add_epi16(
        s3, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 12)));
    s4 = _mm256_add_epi16(
        s4, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 16)));
    s5 = _mm256_add_epi16(
        s5, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 20)));
    s6 = _mm256_add_epi16(
        s6, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 24)));
    s7 = _mm256_add_epi16(
        s7, _mm256_maddubs_epi16(b, broadcast_a_quad(a_col + 28)));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * 8),
                      _mm256_madd_epi16(s0, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * 8),
                      _mm256_madd_epi16(s1, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * 8),
                      _mm256_madd_epi16(s2, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * 8),
                      _mm256_madd_epi16(s3, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4 * 8),
                      _mm256_madd_epi16(s4, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 5 * 8),
                      _mm256_madd_epi16(s5, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 6 * 8),
                      _mm256_madd_epi16(s6, ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 7 * 8),
                      _mm256_madd_epi16(s7, ones));
}

// Nibble kernel: one 16-byte load covers a whole 8-row quad group. The
// in-register unpack (mask/shift + byte interleave) lands row r's quad in
// 32-bit lane r; the xor/sub pair sign-extends the 4-bit codes, and
// vpermd duplicates one lane per accumulator row.
inline void micro_kernel_nibble(const std::uint8_t* pa, const std::uint8_t* pb,
                                std::int64_t kc, std::int32_t* acc) {
  const std::int64_t quads = quad_kc(kc) / 4;
  const __m256i ones = _mm256_set1_epi16(1);
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  const __m256i sign_bias = _mm256_set1_epi8(8);
  const __m256i dup0 = _mm256_set1_epi32(0), dup1 = _mm256_set1_epi32(1),
                dup2 = _mm256_set1_epi32(2), dup3 = _mm256_set1_epi32(3),
                dup4 = _mm256_set1_epi32(4), dup5 = _mm256_set1_epi32(5),
                dup6 = _mm256_set1_epi32(6), dup7 = _mm256_set1_epi32(7);
  __m256i c0 = _mm256_setzero_si256(), c1 = _mm256_setzero_si256(),
          c2 = _mm256_setzero_si256(), c3 = _mm256_setzero_si256(),
          c4 = _mm256_setzero_si256(), c5 = _mm256_setzero_si256(),
          c6 = _mm256_setzero_si256(), c7 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < quads; ++q) {
    const __m128i raw = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pa + q * kGemmMR * 2));
    const __m128i lo = _mm_and_si128(raw, low_mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), low_mask);
    // Interleaving even-p and odd-p nibbles restores depth order: lane r of
    // the combined vector holds codes (4q..4q+3, row r).
    const __m128i rows03 = _mm_unpacklo_epi8(lo, hi);
    const __m128i rows47 = _mm_unpackhi_epi8(lo, hi);
    __m256i a_quads = _mm256_inserti128_si256(
        _mm256_castsi128_si256(rows03), rows47, 1);
    a_quads = _mm256_sub_epi8(_mm256_xor_si256(a_quads, sign_bias), sign_bias);
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pb + q * kGemmNR * 4));
    c0 = _mm256_add_epi32(
        c0, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup0)),
                ones));
    c1 = _mm256_add_epi32(
        c1, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup1)),
                ones));
    c2 = _mm256_add_epi32(
        c2, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup2)),
                ones));
    c3 = _mm256_add_epi32(
        c3, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup3)),
                ones));
    c4 = _mm256_add_epi32(
        c4, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup4)),
                ones));
    c5 = _mm256_add_epi32(
        c5, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup5)),
                ones));
    c6 = _mm256_add_epi32(
        c6, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup6)),
                ones));
    c7 = _mm256_add_epi32(
        c7, _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    b, _mm256_permutevar8x32_epi32(a_quads, dup7)),
                ones));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * 8), c0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * 8), c1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * 8), c2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * 8), c3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4 * 8), c4);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 5 * 8), c5);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 6 * 8), c6);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 7 * 8), c7);
}

#else  // portable fallbacks over the same quad layouts

inline void micro_kernel_lowbit(const std::int8_t* pa, const std::uint8_t* pb,
                                std::int64_t kc, std::int32_t* acc) {
  const std::int64_t quads = quad_kc(kc) / 4;
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0;
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::int8_t* a_col = pa + q * kGemmMR * 4;
    const std::uint8_t* b_row = pb + q * kGemmNR * 4;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      std::int32_t* acc_row = acc + i * kGemmNR;
      const std::int8_t* a_quad = a_col + i * 4;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        const std::uint8_t* b_quad = b_row + j * 4;
        acc_row[j] += static_cast<std::int32_t>(a_quad[0]) * b_quad[0] +
                      static_cast<std::int32_t>(a_quad[1]) * b_quad[1] +
                      static_cast<std::int32_t>(a_quad[2]) * b_quad[2] +
                      static_cast<std::int32_t>(a_quad[3]) * b_quad[3];
      }
    }
  }
}

// Exact integer math has one result: under the eligibility bound the wide
// kernel computes the same dot products, so the portable form is shared.
inline void micro_kernel_lowbit_wide(const std::int8_t* pa,
                                     const std::uint8_t* pb, std::int64_t kc,
                                     std::int32_t* acc) {
  micro_kernel_lowbit(pa, pb, kc, acc);
}

inline void micro_kernel_nibble(const std::uint8_t* pa, const std::uint8_t* pb,
                                std::int64_t kc, std::int32_t* acc) {
  const std::int64_t quads = quad_kc(kc) / 4;
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0;
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::uint8_t* a_group = pa + q * kGemmMR * 2;
    const std::uint8_t* b_row = pb + q * kGemmNR * 4;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      std::int32_t a_quad[4];
      for (int c = 0; c < 2; ++c) {
        const std::uint8_t byte = a_group[i * 2 + c];
        a_quad[c * 2] = ((byte & 0x0F) ^ 8) - 8;
        a_quad[c * 2 + 1] = ((byte >> 4) ^ 8) - 8;
      }
      std::int32_t* acc_row = acc + i * kGemmNR;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        const std::uint8_t* b_quad = b_row + j * 4;
        acc_row[j] += a_quad[0] * b_quad[0] + a_quad[1] * b_quad[1] +
                      a_quad[2] * b_quad[2] + a_quad[3] * b_quad[3];
      }
    }
  }
}

#endif  // CSQ_GEMM_AVX2_INT_KERNEL

// Row-panel stride of one pc block in the prepacked quad layouts, in BYTES
// (the nibble layout halves it; kcq is a multiple of 4 so the division is
// exact).
inline std::int64_t quad_packed_a_block_bytes(QuadKernel kernel,
                                              std::int64_t m,
                                              std::int64_t kc) {
  const std::int64_t full =
      ((m + kGemmMR - 1) / kGemmMR) * kGemmMR * quad_kc(kc);
  return kernel == QuadKernel::kNibble ? full / 2 : full;
}

void run_ic_tile_quad(QuadKernel kernel, std::int64_t ic, std::int64_t jc,
                      std::int64_t m, std::int64_t kc, std::int64_t nc,
                      std::int32_t alpha, bool add_into_c,
                      const std::uint8_t* packed_a_block,
                      const std::uint8_t* packed_b, std::int32_t* c,
                      std::int64_t ldc) {
  const std::int64_t mc = std::min(kGemmMC, m - ic);
  const std::int64_t kcq = quad_kc(kc);
  const std::int64_t panel_bytes =
      kernel == QuadKernel::kNibble ? kGemmMR * kcq / 2 : kGemmMR * kcq;
  std::int32_t acc[kGemmMR * kGemmNR];
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t n_sub = std::min(kGemmNR, nc - jr);
    const std::uint8_t* pb = packed_b + (jr / kGemmNR) * kGemmNR * kcq;
    for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const std::int64_t m_sub = std::min(kGemmMR, mc - ir);
      const std::uint8_t* pa =
          packed_a_block + ((ic + ir) / kGemmMR) * panel_bytes;
      switch (kernel) {
        case QuadKernel::kLowBit:
          micro_kernel_lowbit(reinterpret_cast<const std::int8_t*>(pa), pb,
                              kc, acc);
          break;
        case QuadKernel::kLowBitWide:
          micro_kernel_lowbit_wide(reinterpret_cast<const std::int8_t*>(pa),
                                   pb, kc, acc);
          break;
        case QuadKernel::kNibble:
          micro_kernel_nibble(pa, pb, kc, acc);
          break;
      }
      update_c_tile_int(c + (ic + ir) * ldc + jc + jr, ldc, acc, m_sub, n_sub,
                        alpha, add_into_c);
    }
  }
}

// Column-split / 2-D-grid pooled driver (quad-layout kernels). A is always
// prepacked; the per-pc block offset is a pure function of (kernel, m, pc),
// so each task accumulates it locally over its own ascending pc loop.
void gemm_s8u8_quad_blocked_grid(QuadKernel kernel, Trans trans_b,
                                 std::int64_t m, std::int64_t n,
                                 std::int64_t k, std::int32_t alpha,
                                 const std::uint8_t* prepacked_a,
                                 const std::uint8_t* b, std::int64_t ldb,
                                 bool accumulate, std::int32_t* c,
                                 std::int64_t ldc, IntGemmScratch& shared,
                                 const TileGrid& grid) {
  const std::int64_t kcq_max = quad_kc(std::min(k, kGemmKC));
  const std::int64_t stripe_elems =
      grid.panels_per_stripe * kGemmNR * kcq_max;
  ensure_size_u8(shared.packed_b_quad,
                 static_cast<std::size_t>(pool_slot_count() * stripe_elems));

  struct GridContext {
    QuadKernel kernel;
    Trans trans_b;
    const std::uint8_t* prepacked_a;
    const std::uint8_t* b;
    std::int64_t ldb, m, n, k;
    std::int32_t alpha;
    bool accumulate;
    std::int32_t* c;
    std::int64_t ldc;
    std::uint8_t* packed_b_base;
    std::int64_t stripe_elems, ic_tiles;
    TileGrid grid;
  } ctx;
  ctx.kernel = kernel;
  ctx.trans_b = trans_b;
  ctx.prepacked_a = prepacked_a;
  ctx.b = b;
  ctx.ldb = ldb;
  ctx.m = m;
  ctx.n = n;
  ctx.k = k;
  ctx.alpha = alpha;
  ctx.accumulate = accumulate;
  ctx.c = c;
  ctx.ldc = ldc;
  ctx.packed_b_base = shared.packed_b_quad.data();
  ctx.stripe_elems = stripe_elems;
  ctx.ic_tiles = (m + kGemmMC - 1) / kGemmMC;
  ctx.grid = grid;
  parallel_for_chunked(
      0, grid.tasks(), [&ctx](std::int64_t begin, std::int64_t end) {
        std::uint8_t* stripe =
            ctx.packed_b_base + pool_slot() * ctx.stripe_elems;
        for (std::int64_t t = begin; t < end; ++t) {
          const std::int64_t g = t / ctx.grid.col_stripes;
          const std::int64_t s = t % ctx.grid.col_stripes;
          const std::int64_t jc = s * ctx.grid.panels_per_stripe * kGemmNR;
          const std::int64_t nc =
              std::min(ctx.grid.panels_per_stripe * kGemmNR, ctx.n - jc);
          const std::int64_t tile_begin = g * ctx.grid.tiles_per_group;
          const std::int64_t tile_end = std::min(
              tile_begin + ctx.grid.tiles_per_group, ctx.ic_tiles);
          std::int64_t a_block_offset = 0;
          for (std::int64_t pc = 0; pc < ctx.k; pc += kGemmKC) {
            const std::int64_t kc = std::min(kGemmKC, ctx.k - pc);
            pack_b_u8_quad(ctx.trans_b, ctx.b, ctx.ldb, pc, jc, kc, nc,
                           stripe);
            const bool add_into_c = ctx.accumulate || pc != 0;
            const std::uint8_t* a_block = ctx.prepacked_a + a_block_offset;
            for (std::int64_t tt = tile_begin; tt < tile_end; ++tt) {
              run_ic_tile_quad(ctx.kernel, tt * kGemmMC, jc, ctx.m, kc, nc,
                               ctx.alpha, add_into_c, a_block, stripe, ctx.c,
                               ctx.ldc);
            }
            a_block_offset +=
                quad_packed_a_block_bytes(ctx.kernel, ctx.m, kc);
          }
        }
      });
}

// Shared blocked driver for the quad-layout kernels. Identical NC/KC/MC
// split and MC-row-tile pooled distribution as gemm_s8u8_blocked, so the
// serial/pooled bit-identity argument carries over verbatim. A is always
// prepacked (weights are static at serving time).
void gemm_s8u8_quad_blocked(QuadKernel kernel, Trans trans_b, std::int64_t m,
                            std::int64_t n, std::int64_t k, std::int32_t alpha,
                            const std::uint8_t* prepacked_a,
                            const std::uint8_t* b, std::int64_t ldb,
                            bool accumulate, std::int32_t* c, std::int64_t ldc,
                            IntGemmScratch* scratch, bool pooled,
                            GemmSplit split = GemmSplit::kRows,
                            int split_ways = 0) {
  if (m == 0 || n == 0) return;
  if (alpha == 0 || k == 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0);
      }
    }
    return;
  }
  IntGemmScratch& shared = scratch != nullptr ? *scratch : local_int_scratch();

  if (pooled) {
    const int ways = resolve_split_ways(split_ways);
    if (split == GemmSplit::kAuto) split = gemm_choose_split(m, n, ways);
    if (split != GemmSplit::kRows) {
      const TileGrid grid = make_tile_grid(split, m, n, ways);
      if (grid.tasks() > 1) {
        gemm_s8u8_quad_blocked_grid(kernel, trans_b, m, n, k, alpha,
                                    prepacked_a, b, ldb, accumulate, c, ldc,
                                    shared, grid);
        return;
      }
    }
  }

  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t b_panels = (nc + kGemmNR - 1) / kGemmNR;
    std::int64_t a_block_offset = 0;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      const std::int64_t kcq = quad_kc(kc);
      ensure_size_u8(shared.packed_b_quad,
                     static_cast<std::size_t>(b_panels * kGemmNR * kcq));
      pack_b_u8_quad(trans_b, b, ldb, pc, jc, kc, nc,
                     shared.packed_b_quad.data());
      const bool add_into_c = accumulate || pc != 0;
      const std::uint8_t* a_block = prepacked_a + a_block_offset;

      const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
      if (!pooled || ic_tiles <= 1) {
        for (std::int64_t t = 0; t < ic_tiles; ++t) {
          run_ic_tile_quad(kernel, t * kGemmMC, jc, m, kc, nc, alpha,
                           add_into_c, a_block, shared.packed_b_quad.data(),
                           c, ldc);
        }
      } else {
        struct TileContext {
          QuadKernel kernel;
          std::int64_t jc, m, kc, nc;
          std::int32_t alpha;
          bool add_into_c;
          const std::uint8_t* a_block;
          const std::uint8_t* packed_b;
          std::int32_t* c;
          std::int64_t ldc;
        } ctx;
        ctx.kernel = kernel;
        ctx.jc = jc;
        ctx.m = m;
        ctx.kc = kc;
        ctx.nc = nc;
        ctx.alpha = alpha;
        ctx.add_into_c = add_into_c;
        ctx.a_block = a_block;
        ctx.packed_b = shared.packed_b_quad.data();
        ctx.c = c;
        ctx.ldc = ldc;
        parallel_for_chunked(
            0, ic_tiles, [&ctx](std::int64_t begin, std::int64_t end) {
              for (std::int64_t t = begin; t < end; ++t) {
                run_ic_tile_quad(ctx.kernel, t * kGemmMC, ctx.jc, ctx.m,
                                 ctx.kc, ctx.nc, ctx.alpha, ctx.add_into_c,
                                 ctx.a_block, ctx.packed_b, ctx.c, ctx.ldc);
              }
            });
      }
      a_block_offset += quad_packed_a_block_bytes(kernel, m, kc);
    }
  }
}

// Low-bit extents: |alpha| <= 8 admits chaining per-bit-plane passes with
// power-of-two weights (2^t, t <= 3); the combined |alpha| * k * 255 *
// max|a| < 2^31 headroom is the caller's contract (serving always runs
// alpha = 1, where k <= 32767 and max|a| <= 64 bound it directly).
void check_lowbit_extents(Trans trans_b, std::int64_t m, std::int64_t n,
                          std::int64_t k, std::int32_t alpha) {
  check_extents(Trans::no, trans_b, m, n, k);
  CSQ_CHECK(alpha >= -8 && alpha <= 8)
      << "gemm_s8u8 low-bit: alpha " << alpha
      << " outside the [-8, 8] range the exactness bound is derived for";
  CSQ_CHECK(k <= 32767)
      << "gemm_s8u8 low-bit: reduction depth " << k
      << " would overflow int32 accumulation";
}

inline bool pooled_int_dispatch(std::int64_t m, std::int64_t n,
                                std::int64_t k) {
  const std::int64_t ops = 2 * m * n * k;
  return ops >= (1 << 18) && !inside_parallel_region();
}

}  // namespace

GemmSplit gemm_choose_split(std::int64_t m, std::int64_t n, int ways) {
  const int w = resolve_split_ways(ways);
  const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
  const std::int64_t col_panels = (n + kGemmNR - 1) / kGemmNR;
  if (w <= 1 || col_panels <= 1) return GemmSplit::kRows;
  if (ic_tiles >= w) return GemmSplit::kRows;
  if (ic_tiles <= 1) return GemmSplit::kCols;
  return GemmSplit::kGrid;
}

std::int64_t gemm_split_task_count(GemmSplit split, std::int64_t m,
                                   std::int64_t n, int ways) {
  if (m <= 0 || n <= 0) return 1;
  const int w = resolve_split_ways(ways);
  if (split == GemmSplit::kAuto) split = gemm_choose_split(m, n, w);
  if (split == GemmSplit::kRows) return (m + kGemmMC - 1) / kGemmMC;
  return make_tile_grid(split, m, n, w).tasks();
}

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch) {
  check_extents(trans_a, trans_b, m, n, k);
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch, /*pooled=*/false);
}

void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc,
                   GemmScratch* scratch, GemmSplit split, int split_ways) {
  check_extents(trans_a, trans_b, m, n, k);
  // Only fan out when there is enough arithmetic to amortize the pool wakeup.
  const std::int64_t flops = 2 * m * n * k;
  const bool pooled = flops >= (1 << 18) && !inside_parallel_region();
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch, pooled, split, split_ways);
}

void gemm_s8u8(Trans trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
               std::int32_t alpha, const std::int8_t* a, std::int64_t lda,
               const std::uint8_t* b, std::int64_t ldb, bool accumulate,
               std::int32_t* c, std::int64_t ldc, IntGemmScratch* scratch) {
  check_int_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, a, lda, /*prepacked_a=*/nullptr,
                    b, ldb, accumulate, c, ldc, scratch, /*pooled=*/false);
}

void gemm_s8u8_parallel(Trans trans_b, std::int64_t m, std::int64_t n,
                        std::int64_t k, std::int32_t alpha,
                        const std::int8_t* a, std::int64_t lda,
                        const std::uint8_t* b, std::int64_t ldb,
                        bool accumulate, std::int32_t* c, std::int64_t ldc,
                        IntGemmScratch* scratch, GemmSplit split,
                        int split_ways) {
  check_int_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, a, lda, /*prepacked_a=*/nullptr,
                    b, ldb, accumulate, c, ldc, scratch,
                    pooled_int_dispatch(m, n, k), split, split_ways);
}

std::int64_t gemm_s8u8_packed_a_size(std::int64_t m, std::int64_t k) {
  std::int64_t total = 0;
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    total += packed_a_block_size(m, std::min(kGemmKC, k - pc));
  }
  return total;
}

void gemm_s8u8_pack_a(std::int64_t m, std::int64_t k, const std::int8_t* a,
                      std::int64_t lda, std::int16_t* packed) {
  // Panels for the whole m extent per pc block — run_ic_tile_int slices MC
  // tiles out of the same consecutive layout.
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    pack_a_s8(a, lda, /*ic=*/0, pc, m, kc, packed);
    packed += packed_a_block_size(m, kc);
  }
}

void gemm_s8u8_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                         std::int64_t k, std::int32_t alpha,
                         const std::int16_t* packed_a, const std::uint8_t* b,
                         std::int64_t ldb, bool accumulate, std::int32_t* c,
                         std::int64_t ldc, IntGemmScratch* scratch) {
  check_int_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, /*a=*/nullptr, /*lda=*/0,
                    packed_a, b, ldb, accumulate, c, ldc, scratch,
                    /*pooled=*/false);
}

void gemm_s8u8_prepacked_parallel(Trans trans_b, std::int64_t m,
                                  std::int64_t n, std::int64_t k,
                                  std::int32_t alpha,
                                  const std::int16_t* packed_a,
                                  const std::uint8_t* b, std::int64_t ldb,
                                  bool accumulate, std::int32_t* c,
                                  std::int64_t ldc, IntGemmScratch* scratch,
                                  GemmSplit split, int split_ways) {
  check_int_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, /*a=*/nullptr, /*lda=*/0,
                    packed_a, b, ldb, accumulate, c, ldc, scratch,
                    pooled_int_dispatch(m, n, k), split, split_ways);
}

std::int64_t gemm_s8u8_lowbit_packed_a_size(std::int64_t m, std::int64_t k) {
  std::int64_t total = 0;
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    total += quad_packed_a_block_bytes(QuadKernel::kLowBit, m,
                                       std::min(kGemmKC, k - pc));
  }
  return total;
}

void gemm_s8u8_lowbit_pack_a(std::int64_t m, std::int64_t k,
                             const std::int8_t* a, std::int64_t lda,
                             std::int8_t* packed) {
  std::int32_t max_abs = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const std::int32_t v = a[i * lda + p];
      max_abs = std::max(max_abs, v < 0 ? -v : v);
    }
  }
  CSQ_CHECK(max_abs <= 64)
      << "gemm_s8u8_lowbit_pack_a: |code| " << max_abs
      << " > 64 would saturate the vpmaddubsw pair sums";
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    pack_a_s8_quad(a, lda, /*ic=*/0, pc, m, kc, packed);
    packed += quad_packed_a_block_bytes(QuadKernel::kLowBit, m, kc);
  }
}

std::int64_t gemm_s8u8_nibble_packed_a_size(std::int64_t m, std::int64_t k) {
  std::int64_t total = 0;
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    total += quad_packed_a_block_bytes(QuadKernel::kNibble, m,
                                       std::min(kGemmKC, k - pc));
  }
  return total;
}

void gemm_s8u8_nibble_pack_a(std::int64_t m, std::int64_t k,
                             const std::int8_t* a, std::int64_t lda,
                             std::uint8_t* packed) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const std::int32_t v = a[i * lda + p];
      CSQ_CHECK(v >= -8 && v <= 7)
          << "gemm_s8u8_nibble_pack_a: code " << v
          << " outside the signed nibble range [-8, 7]";
    }
  }
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    pack_a_nibble_quad(a, lda, /*ic=*/0, pc, m, kc, packed);
    packed += quad_packed_a_block_bytes(QuadKernel::kNibble, m, kc);
  }
}

bool gemm_s8u8_wide_eligible(std::int64_t k, std::int32_t max_abs_a) {
  if (k <= 0) return true;
  if (max_abs_a < 0) max_abs_a = -max_abs_a;
  if (max_abs_a > 64) return false;
  // Per int16 lane, one KC-depth block accumulates quad_kc(kc)/4 pair sums
  // of at most 2 * 255 * max|a| each.
  const std::int64_t kc = std::min(k, kGemmKC);
  const std::int64_t block_positions = (kc + 3) & ~std::int64_t{3};
  return (block_positions / 2) * 255 *
             static_cast<std::int64_t>(max_abs_a) <=
         32767;
}

void gemm_s8u8_lowbit_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                                std::int64_t k, std::int32_t alpha,
                                const std::int8_t* packed_a,
                                const std::uint8_t* b, std::int64_t ldb,
                                bool accumulate, std::int32_t* c,
                                std::int64_t ldc, IntGemmScratch* scratch) {
  check_lowbit_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_quad_blocked(QuadKernel::kLowBit, trans_b, m, n, k, alpha,
                         reinterpret_cast<const std::uint8_t*>(packed_a), b,
                         ldb, accumulate, c, ldc, scratch, /*pooled=*/false);
}

void gemm_s8u8_lowbit_prepacked_parallel(Trans trans_b, std::int64_t m,
                                         std::int64_t n, std::int64_t k,
                                         std::int32_t alpha,
                                         const std::int8_t* packed_a,
                                         const std::uint8_t* b,
                                         std::int64_t ldb, bool accumulate,
                                         std::int32_t* c, std::int64_t ldc,
                                         IntGemmScratch* scratch,
                                         GemmSplit split, int split_ways) {
  check_lowbit_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_quad_blocked(QuadKernel::kLowBit, trans_b, m, n, k, alpha,
                         reinterpret_cast<const std::uint8_t*>(packed_a), b,
                         ldb, accumulate, c, ldc, scratch,
                         pooled_int_dispatch(m, n, k), split, split_ways);
}

void gemm_s8u8_lowbit_wide_prepacked(Trans trans_b, std::int64_t m,
                                     std::int64_t n, std::int64_t k,
                                     std::int32_t alpha,
                                     const std::int8_t* packed_a,
                                     const std::uint8_t* b, std::int64_t ldb,
                                     bool accumulate, std::int32_t* c,
                                     std::int64_t ldc,
                                     IntGemmScratch* scratch) {
  check_lowbit_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_quad_blocked(QuadKernel::kLowBitWide, trans_b, m, n, k, alpha,
                         reinterpret_cast<const std::uint8_t*>(packed_a), b,
                         ldb, accumulate, c, ldc, scratch, /*pooled=*/false);
}

void gemm_s8u8_lowbit_wide_prepacked_parallel(
    Trans trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
    std::int32_t alpha, const std::int8_t* packed_a, const std::uint8_t* b,
    std::int64_t ldb, bool accumulate, std::int32_t* c, std::int64_t ldc,
    IntGemmScratch* scratch, GemmSplit split, int split_ways) {
  check_lowbit_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_quad_blocked(QuadKernel::kLowBitWide, trans_b, m, n, k, alpha,
                         reinterpret_cast<const std::uint8_t*>(packed_a), b,
                         ldb, accumulate, c, ldc, scratch,
                         pooled_int_dispatch(m, n, k), split, split_ways);
}

void gemm_s8u8_nibble_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                                std::int64_t k, std::int32_t alpha,
                                const std::uint8_t* packed_a,
                                const std::uint8_t* b, std::int64_t ldb,
                                bool accumulate, std::int32_t* c,
                                std::int64_t ldc, IntGemmScratch* scratch) {
  check_lowbit_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_quad_blocked(QuadKernel::kNibble, trans_b, m, n, k, alpha,
                         packed_a, b, ldb, accumulate, c, ldc, scratch,
                         /*pooled=*/false);
}

void gemm_s8u8_nibble_prepacked_parallel(Trans trans_b, std::int64_t m,
                                         std::int64_t n, std::int64_t k,
                                         std::int32_t alpha,
                                         const std::uint8_t* packed_a,
                                         const std::uint8_t* b,
                                         std::int64_t ldb, bool accumulate,
                                         std::int32_t* c, std::int64_t ldc,
                                         IntGemmScratch* scratch,
                                         GemmSplit split, int split_ways) {
  check_lowbit_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_quad_blocked(QuadKernel::kNibble, trans_b, m, n, k, alpha,
                         packed_a, b, ldb, accumulate, c, ldc, scratch,
                         pooled_int_dispatch(m, n, k), split, split_ways);
}

}  // namespace csq
