#include "tensor/gemm.h"

#include <algorithm>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

namespace {

static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

// Per-thread packing scratch for callers that do not supply one. Pool worker
// threads are long-lived, so each buffer grows to its steady-state size once
// and is then recycled forever.
GemmScratch& local_scratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

void ensure_size(std::vector<float>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer.resize(count);
}

// Scales a row block of C by beta (handles beta == 0 without reading C).
void apply_beta(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
                float beta, float* c, std::int64_t ldc) {
  if (beta == 1.0f) return;
  for (std::int64_t i = m_begin; i < m_end; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

// --------------------------------------------------------------- packing --
//
// A~ layout: ceil(mc/MR) micro-panels, each kc x MR:
//   packed[panel r][p * MR + i] = op(A)[ic + r*MR + i, pc + p]
// B~ layout: ceil(nc/NR) micro-panels, each kc x NR:
//   packed[panel s][p * NR + j] = op(B)[pc + p, jc + s*NR + j]
// Rows/columns beyond the matrix edge are zero-filled so the micro-kernel
// always runs full MR x NR tiles.

void pack_a_panel(Trans trans, const float* a, std::int64_t lda,
                  std::int64_t ic, std::int64_t pc, std::int64_t mc,
                  std::int64_t kc, float* dst) {
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    if (trans == Trans::no) {
      // op(A)[i, p] = a[(ic + i) * lda + pc + p]: row-contiguous reads.
      for (std::int64_t i = 0; i < rows; ++i) {
        const float* src = a + (ic + r + i) * lda + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR + i] = src[p];
      }
      for (std::int64_t i = rows; i < kGemmMR; ++i) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR + i] = 0.0f;
      }
    } else {
      // op(A)[i, p] = a[(pc + p) * lda + ic + i]: contiguous in i.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (pc + p) * lda + ic + r;
        float* d = dst + p * kGemmMR;
        std::int64_t i = 0;
        for (; i < rows; ++i) d[i] = src[i];
        for (; i < kGemmMR; ++i) d[i] = 0.0f;
      }
    }
    dst += kGemmMR * kc;
  }
}

void pack_b_panel(Trans trans, const float* b, std::int64_t ldb,
                  std::int64_t pc, std::int64_t jc, std::int64_t kc,
                  std::int64_t nc, float* dst) {
  for (std::int64_t s = 0; s < nc; s += kGemmNR) {
    const std::int64_t cols = std::min(kGemmNR, nc - s);
    if (trans == Trans::no) {
      // op(B)[p, j] = b[(pc + p) * ldb + jc + j]: contiguous in j.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + s;
        float* d = dst + p * kGemmNR;
        std::int64_t j = 0;
        for (; j < cols; ++j) d[j] = src[j];
        for (; j < kGemmNR; ++j) d[j] = 0.0f;
      }
    } else {
      // op(B)[p, j] = b[(jc + j) * ldb + pc + p]: row-contiguous reads.
      for (std::int64_t j = 0; j < cols; ++j) {
        const float* src = b + (jc + s + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + j] = src[p];
      }
      for (std::int64_t j = cols; j < kGemmNR; ++j) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + j] = 0.0f;
      }
    }
    dst += kGemmNR * kc;
  }
}

// ---------------------------------------------------------- micro-kernel --
//
// acc(MR, NR) = A~panel(kc, MR) * B~panel(kc, NR). On GCC/Clang the kernel
// is written with vector extensions: one 8-float vector register per
// accumulator row, one unaligned load of the packed B row per k step, and a
// broadcast-multiply per packed A element — the classic outer-product form
// that maps 1:1 onto FMA units. Elsewhere a scalar form with constant trip
// counts lets the auto-vectorizer do its best.

#if defined(__GNUC__) || defined(__clang__)
#define CSQ_GEMM_VECTOR_KERNEL 1
#endif

#ifdef CSQ_GEMM_VECTOR_KERNEL

typedef float Vec8 __attribute__((vector_size(32)));
static_assert(kGemmMR == 8 && kGemmNR == 8,
              "vector micro-kernel assumes an 8x8 tile");

inline Vec8 load8(const float* p) {
  Vec8 r;
  __builtin_memcpy(&r, p, sizeof(r));  // unaligned vector load
  return r;
}

inline void micro_kernel(const float* pa, const float* pb, std::int64_t kc,
                         float* acc) {
  Vec8 c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a_col = pa + p * kGemmMR;
    const Vec8 b = load8(pb + p * kGemmNR);
    c0 += a_col[0] * b;
    c1 += a_col[1] * b;
    c2 += a_col[2] * b;
    c3 += a_col[3] * b;
    c4 += a_col[4] * b;
    c5 += a_col[5] * b;
    c6 += a_col[6] * b;
    c7 += a_col[7] * b;
  }
  __builtin_memcpy(acc + 0 * 8, &c0, sizeof(c0));
  __builtin_memcpy(acc + 1 * 8, &c1, sizeof(c1));
  __builtin_memcpy(acc + 2 * 8, &c2, sizeof(c2));
  __builtin_memcpy(acc + 3 * 8, &c3, sizeof(c3));
  __builtin_memcpy(acc + 4 * 8, &c4, sizeof(c4));
  __builtin_memcpy(acc + 5 * 8, &c5, sizeof(c5));
  __builtin_memcpy(acc + 6 * 8, &c6, sizeof(c6));
  __builtin_memcpy(acc + 7 * 8, &c7, sizeof(c7));
}

#else  // portable fallback

inline void micro_kernel(const float* pa, const float* pb, std::int64_t kc,
                         float* acc) {
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0.0f;
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a_col = pa + p * kGemmMR;
    const float* b_row = pb + p * kGemmNR;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      const float a_ip = a_col[i];
      float* acc_row = acc + i * kGemmNR;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        acc_row[j] += a_ip * b_row[j];
      }
    }
  }
}

#endif  // CSQ_GEMM_VECTOR_KERNEL

// C tile update: c = beta_eff * c + alpha * acc over the valid m_sub x n_sub
// region. beta_eff == 0 never reads C (NaN/garbage safe).
inline void update_c_tile(float* c, std::int64_t ldc, const float* acc,
                          std::int64_t m_sub, std::int64_t n_sub, float alpha,
                          float beta_eff) {
  for (std::int64_t i = 0; i < m_sub; ++i) {
    float* c_row = c + i * ldc;
    const float* acc_row = acc + i * kGemmNR;
    if (beta_eff == 0.0f) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] = alpha * acc_row[j];
    } else if (beta_eff == 1.0f) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] += alpha * acc_row[j];
    } else {
      for (std::int64_t j = 0; j < n_sub; ++j) {
        c_row[j] = beta_eff * c_row[j] + alpha * acc_row[j];
      }
    }
  }
}

// One MC-tall row tile of C inside a (jc, pc) panel: packs its A panel and
// sweeps the jr/ir micro-tile grid. `packed_b` is read-only shared state.
void run_ic_tile(Trans trans_a, const float* a, std::int64_t lda,
                 std::int64_t ic, std::int64_t pc, std::int64_t jc,
                 std::int64_t m, std::int64_t kc, std::int64_t nc, float alpha,
                 float beta_eff, const float* packed_b, float* c,
                 std::int64_t ldc, std::vector<float>& pack_a_storage) {
  const std::int64_t mc = std::min(kGemmMC, m - ic);
  const std::int64_t a_panels = (mc + kGemmMR - 1) / kGemmMR;
  ensure_size(pack_a_storage,
              static_cast<std::size_t>(a_panels * kGemmMR * kc));
  float* packed_a = pack_a_storage.data();
  pack_a_panel(trans_a, a, lda, ic, pc, mc, kc, packed_a);

  float acc[kGemmMR * kGemmNR];
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t n_sub = std::min(kGemmNR, nc - jr);
    const float* pb = packed_b + (jr / kGemmNR) * kGemmNR * kc;
    for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const std::int64_t m_sub = std::min(kGemmMR, mc - ir);
      const float* pa = packed_a + (ir / kGemmMR) * kGemmMR * kc;
      micro_kernel(pa, pb, kc, acc);
      update_c_tile(c + (ic + ir) * ldc + jc + jr, ldc, acc, m_sub, n_sub,
                    alpha, beta_eff);
    }
  }
}

// Shared driver for the serial and pooled paths. The jc/pc loop nest runs on
// the calling thread (B is packed once per (jc, pc) and reused across the
// whole ic sweep); the ic tiles either run in order (serial) or are
// distributed across the pool. Both orders compute each C element with an
// identical floating-point operation sequence, so results are bit-identical.
void gemm_blocked(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc, GemmScratch* scratch,
                  bool pooled) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    apply_beta(0, m, n, beta, c, ldc);
    return;
  }
  GemmScratch& shared = scratch != nullptr ? *scratch : local_scratch();

  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t b_panels = (nc + kGemmNR - 1) / kGemmNR;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      ensure_size(shared.packed_b,
                  static_cast<std::size_t>(b_panels * kGemmNR * kc));
      pack_b_panel(trans_b, b, ldb, pc, jc, kc, nc, shared.packed_b.data());
      const float beta_eff = pc == 0 ? beta : 1.0f;

      const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
      if (!pooled || ic_tiles <= 1) {
        for (std::int64_t t = 0; t < ic_tiles; ++t) {
          run_ic_tile(trans_a, a, lda, t * kGemmMC, pc, jc, m, kc, nc, alpha,
                      beta_eff, shared.packed_b.data(), c, ldc,
                      shared.packed_a);
        }
      } else {
        // Each worker packs A into its own thread-local scratch; every C
        // element belongs to exactly one ic tile, so there are no write
        // conflicts and no order dependence.
        struct TileContext {
          Trans trans_a;
          const float* a;
          std::int64_t lda, pc, jc, m, kc, nc;
          float alpha, beta_eff;
          const float* packed_b;
          float* c;
          std::int64_t ldc;
        } ctx;
        ctx.trans_a = trans_a;
        ctx.a = a;
        ctx.lda = lda;
        ctx.pc = pc;
        ctx.jc = jc;
        ctx.m = m;
        ctx.kc = kc;
        ctx.nc = nc;
        ctx.alpha = alpha;
        ctx.beta_eff = beta_eff;
        ctx.packed_b = shared.packed_b.data();
        ctx.c = c;
        ctx.ldc = ldc;
        // Single-reference capture keeps the closure inside std::function's
        // small-buffer optimization: no allocation per dispatch.
        parallel_for_chunked(
            0, ic_tiles, [&ctx](std::int64_t begin, std::int64_t end) {
              for (std::int64_t t = begin; t < end; ++t) {
                run_ic_tile(ctx.trans_a, ctx.a, ctx.lda, t * kGemmMC, ctx.pc,
                            ctx.jc, ctx.m, ctx.kc, ctx.nc, ctx.alpha,
                            ctx.beta_eff, ctx.packed_b, ctx.c, ctx.ldc,
                            local_scratch().packed_a);
              }
            });
      }
    }
  }
}

void check_extents(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k) {
  CSQ_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm: negative extent";
  CSQ_CHECK(trans_a == Trans::no || trans_b == Trans::no)
      << "gemm TT is not implemented (unused in this library)";
}

// Integer-path extents: the exactness contract (see gemm.h) is derived for
// the split-plane chaining alphas (|alpha| <= 2), where the worst
// per-depth-step contribution is 65535 and int32 accumulation therefore
// requires k <= 32767. Enforce both halves of that derivation here so
// direct callers cannot silently wrap, not just through PackedIntWeights.
void check_int_extents(Trans trans_b, std::int64_t m, std::int64_t n,
                       std::int64_t k, std::int32_t alpha) {
  check_extents(Trans::no, trans_b, m, n, k);
  CSQ_CHECK(alpha >= -2 && alpha <= 2)
      << "gemm_s8u8: alpha " << alpha
      << " outside the [-2, 2] range the exactness bound is derived for";
  CSQ_CHECK(k <= 32767)
      << "gemm_s8u8: reduction depth " << k
      << " would overflow int32 accumulation";
}

// ------------------------------------------------------ integer kernel ----
//
// Same blocking scheme as the float path (NC/KC/MC panels, MR x NR
// micro-tiles, MC-row-tile pooled split). Operands are widened to int16
// while packing, laid out in K-PAIRS: consecutive depth steps 2p and 2p+1
// sit adjacent per row/column, so the AVX2 micro-kernel fuses them with one
// vpmaddwd (int16 pair dot -> int32, no saturation possible at |a| <= 255,
// |b| <= 255) — the integer analogue of the float kernel's FMA. Odd kc
// tails are zero-padded (exact).
//
// A~ pair layout: panels MR-tall; entry (p, i) at [(p/2)*MR + i]*2 + p%2.
// B~ pair layout: panels NR-wide; entry (p, j) at [(p/2)*NR + j]*2 + p%2.

IntGemmScratch& local_int_scratch() {
  thread_local IntGemmScratch scratch;
  return scratch;
}

void ensure_size_s16(std::vector<std::int16_t>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer.resize(count);
}

// Depth extent after pairing (elements per packed row/column).
inline std::int64_t paired_kc(std::int64_t kc) { return (kc + 1) & ~1; }

// A is always (m x k) row-major int8 (the weight codes); panels MR-tall.
void pack_a_s8(const std::int8_t* a, std::int64_t lda, std::int64_t ic,
               std::int64_t pc, std::int64_t mc, std::int64_t kc,
               std::int16_t* dst) {
  const std::int64_t kcp = paired_kc(kc);
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    std::fill(dst, dst + kGemmMR * kcp, std::int16_t{0});
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int8_t* src = a + (ic + r + i) * lda + pc;
      for (std::int64_t p = 0; p < kc; ++p) {
        dst[((p / 2) * kGemmMR + i) * 2 + (p & 1)] =
            static_cast<std::int16_t>(src[p]);
      }
    }
    dst += kGemmMR * kcp;
  }
}

// op(B) is (k x n) uint8 activation codes; panels NR-wide, zero-padded.
void pack_b_u8(Trans trans, const std::uint8_t* b, std::int64_t ldb,
               std::int64_t pc, std::int64_t jc, std::int64_t kc,
               std::int64_t nc, std::int16_t* dst) {
  const std::int64_t kcp = paired_kc(kc);
  for (std::int64_t s = 0; s < nc; s += kGemmNR) {
    const std::int64_t cols = std::min(kGemmNR, nc - s);
    std::fill(dst, dst + kGemmNR * kcp, std::int16_t{0});
    if (trans == Trans::no) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const std::uint8_t* src = b + (pc + p) * ldb + jc + s;
        std::int16_t* d = dst + (p / 2) * kGemmNR * 2 + (p & 1);
        for (std::int64_t j = 0; j < cols; ++j) {
          d[j * 2] = static_cast<std::int16_t>(src[j]);
        }
      }
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::uint8_t* src = b + (jc + s + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) {
          dst[((p / 2) * kGemmNR + j) * 2 + (p & 1)] =
              static_cast<std::int16_t>(src[p]);
        }
      }
    }
    dst += kGemmNR * kcp;
  }
}

#if defined(__AVX2__)
#define CSQ_GEMM_AVX2_INT_KERNEL 1
#endif

#ifdef CSQ_GEMM_AVX2_INT_KERNEL

static_assert(kGemmMR == 8 && kGemmNR == 8,
              "AVX2 integer micro-kernel assumes an 8x8 tile");

// Reads one packed int16 A pair as its int32 broadcast payload. memcpy (not
// a reinterpret_cast dereference) keeps the int16-store/int32-load pattern
// well-defined under strict aliasing; it compiles to the same vpbroadcastd.
inline std::int32_t load_a_pair(const std::int16_t* p) {
  std::int32_t pair;
  __builtin_memcpy(&pair, p, sizeof(pair));
  return pair;
}

// One vpbroadcastd per packed A pair, one vpmaddwd + vpaddd per accumulator
// row: the same instruction-per-MAC budget as the float kernel's
// broadcast-FMA form.
inline void micro_kernel_int(const std::int16_t* pa, const std::int16_t* pb,
                             std::int64_t kc, std::int32_t* acc) {
  const std::int64_t pairs = paired_kc(kc) / 2;
  __m256i c0 = _mm256_setzero_si256(), c1 = _mm256_setzero_si256(),
          c2 = _mm256_setzero_si256(), c3 = _mm256_setzero_si256(),
          c4 = _mm256_setzero_si256(), c5 = _mm256_setzero_si256(),
          c6 = _mm256_setzero_si256(), c7 = _mm256_setzero_si256();
  for (std::int64_t p = 0; p < pairs; ++p) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pb + p * kGemmNR * 2));
    const std::int16_t* a_col = pa + p * kGemmMR * 2;
    c0 = _mm256_add_epi32(
        c0, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 0)), b));
    c1 = _mm256_add_epi32(
        c1, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 2)), b));
    c2 = _mm256_add_epi32(
        c2, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 4)), b));
    c3 = _mm256_add_epi32(
        c3, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 6)), b));
    c4 = _mm256_add_epi32(
        c4, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 8)), b));
    c5 = _mm256_add_epi32(
        c5, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 10)), b));
    c6 = _mm256_add_epi32(
        c6, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 12)), b));
    c7 = _mm256_add_epi32(
        c7, _mm256_madd_epi16(_mm256_set1_epi32(load_a_pair(a_col + 14)), b));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * 8), c0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * 8), c1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * 8), c2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * 8), c3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4 * 8), c4);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 5 * 8), c5);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 6 * 8), c6);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 7 * 8), c7);
}

#else  // portable fallback over the same pair layout

inline void micro_kernel_int(const std::int16_t* pa, const std::int16_t* pb,
                             std::int64_t kc, std::int32_t* acc) {
  const std::int64_t pairs = paired_kc(kc) / 2;
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0;
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::int16_t* a_col = pa + p * kGemmMR * 2;
    const std::int16_t* b_row = pb + p * kGemmNR * 2;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      const std::int32_t a0 = a_col[i * 2];
      const std::int32_t a1 = a_col[i * 2 + 1];
      std::int32_t* acc_row = acc + i * kGemmNR;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        acc_row[j] += a0 * b_row[j * 2] + a1 * b_row[j * 2 + 1];
      }
    }
  }
}

#endif  // CSQ_GEMM_AVX2_INT_KERNEL

inline void update_c_tile_int(std::int32_t* c, std::int64_t ldc,
                              const std::int32_t* acc, std::int64_t m_sub,
                              std::int64_t n_sub, std::int32_t alpha,
                              bool add_into_c) {
  for (std::int64_t i = 0; i < m_sub; ++i) {
    std::int32_t* c_row = c + i * ldc;
    const std::int32_t* acc_row = acc + i * kGemmNR;
    if (add_into_c) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] += alpha * acc_row[j];
    } else {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] = alpha * acc_row[j];
    }
  }
}

void run_ic_tile_int(std::int64_t ic, std::int64_t jc, std::int64_t m,
                     std::int64_t kc, std::int64_t nc, std::int32_t alpha,
                     bool add_into_c, const std::int16_t* packed_a,
                     const std::int16_t* packed_b, std::int32_t* c,
                     std::int64_t ldc) {
  const std::int64_t mc = std::min(kGemmMC, m - ic);
  std::int32_t acc[kGemmMR * kGemmNR];
  const std::int64_t kcp = paired_kc(kc);
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t n_sub = std::min(kGemmNR, nc - jr);
    const std::int16_t* pb = packed_b + (jr / kGemmNR) * kGemmNR * kcp;
    for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const std::int64_t m_sub = std::min(kGemmMR, mc - ir);
      const std::int16_t* pa = packed_a + (ir / kGemmMR) * kGemmMR * kcp;
      micro_kernel_int(pa, pb, kc, acc);
      update_c_tile_int(c + (ic + ir) * ldc + jc + jr, ldc, acc, m_sub, n_sub,
                        alpha, add_into_c);
    }
  }
}

// Row-panel stride of one pc block in the prepacked-A layout: every MR-tall
// panel of the full m extent, consecutively.
inline std::int64_t packed_a_block_size(std::int64_t m, std::int64_t kc) {
  return ((m + kGemmMR - 1) / kGemmMR) * kGemmMR * paired_kc(kc);
}

// `prepacked_a` may be null (A packed per (ic, pc) tile into scratch — the
// one-shot path) or point at a gemm_s8u8_pack_a layout (weights packed once
// at graph-lowering time).
void gemm_s8u8_blocked(Trans trans_b, std::int64_t m, std::int64_t n,
                       std::int64_t k, std::int32_t alpha,
                       const std::int8_t* a, std::int64_t lda,
                       const std::int16_t* prepacked_a, const std::uint8_t* b,
                       std::int64_t ldb, bool accumulate, std::int32_t* c,
                       std::int64_t ldc, IntGemmScratch* scratch,
                       bool pooled) {
  if (m == 0 || n == 0) return;
  if (alpha == 0 || k == 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0);
      }
    }
    return;
  }
  IntGemmScratch& shared = scratch != nullptr ? *scratch : local_int_scratch();

  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t b_panels = (nc + kGemmNR - 1) / kGemmNR;
    std::int64_t a_block_offset = 0;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      const std::int64_t kcp = paired_kc(kc);
      ensure_size_s16(shared.packed_b,
                      static_cast<std::size_t>(b_panels * kGemmNR * kcp));
      pack_b_u8(trans_b, b, ldb, pc, jc, kc, nc, shared.packed_b.data());
      const bool add_into_c = accumulate || pc != 0;

      const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
      const auto tile_a = [&](std::int64_t ic,
                              std::vector<std::int16_t>& pack_storage)
          -> const std::int16_t* {
        if (prepacked_a != nullptr) {
          return prepacked_a + a_block_offset + (ic / kGemmMR) * kGemmMR * kcp;
        }
        const std::int64_t mc = std::min(kGemmMC, m - ic);
        const std::int64_t a_panels = (mc + kGemmMR - 1) / kGemmMR;
        ensure_size_s16(pack_storage,
                        static_cast<std::size_t>(a_panels * kGemmMR * kcp));
        pack_a_s8(a, lda, ic, pc, mc, kc, pack_storage.data());
        return pack_storage.data();
      };

      if (!pooled || ic_tiles <= 1) {
        for (std::int64_t t = 0; t < ic_tiles; ++t) {
          run_ic_tile_int(t * kGemmMC, jc, m, kc, nc, alpha, add_into_c,
                          tile_a(t * kGemmMC, shared.packed_a),
                          shared.packed_b.data(), c, ldc);
        }
      } else {
        struct TileContext {
          const decltype(tile_a)* pick_a;
          std::int64_t jc, m, kc, nc;
          std::int32_t alpha;
          bool add_into_c;
          const std::int16_t* packed_b;
          std::int32_t* c;
          std::int64_t ldc;
        } ctx;
        ctx.pick_a = &tile_a;
        ctx.jc = jc;
        ctx.m = m;
        ctx.kc = kc;
        ctx.nc = nc;
        ctx.alpha = alpha;
        ctx.add_into_c = add_into_c;
        ctx.packed_b = shared.packed_b.data();
        ctx.c = c;
        ctx.ldc = ldc;
        parallel_for_chunked(
            0, ic_tiles, [&ctx](std::int64_t begin, std::int64_t end) {
              for (std::int64_t t = begin; t < end; ++t) {
                run_ic_tile_int(t * kGemmMC, ctx.jc, ctx.m, ctx.kc, ctx.nc,
                                ctx.alpha, ctx.add_into_c,
                                (*ctx.pick_a)(t * kGemmMC,
                                              local_int_scratch().packed_a),
                                ctx.packed_b, ctx.c, ctx.ldc);
              }
            });
      }
      a_block_offset += packed_a_block_size(m, kc);
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch) {
  check_extents(trans_a, trans_b, m, n, k);
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch, /*pooled=*/false);
}

void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc,
                   GemmScratch* scratch) {
  check_extents(trans_a, trans_b, m, n, k);
  // Only fan out when there is enough arithmetic to amortize the pool wakeup.
  const std::int64_t flops = 2 * m * n * k;
  const bool pooled = flops >= (1 << 18) && !inside_parallel_region();
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch, pooled);
}

void gemm_s8u8(Trans trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
               std::int32_t alpha, const std::int8_t* a, std::int64_t lda,
               const std::uint8_t* b, std::int64_t ldb, bool accumulate,
               std::int32_t* c, std::int64_t ldc, IntGemmScratch* scratch) {
  check_int_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, a, lda, /*prepacked_a=*/nullptr,
                    b, ldb, accumulate, c, ldc, scratch, /*pooled=*/false);
}

void gemm_s8u8_parallel(Trans trans_b, std::int64_t m, std::int64_t n,
                        std::int64_t k, std::int32_t alpha,
                        const std::int8_t* a, std::int64_t lda,
                        const std::uint8_t* b, std::int64_t ldb,
                        bool accumulate, std::int32_t* c, std::int64_t ldc,
                        IntGemmScratch* scratch) {
  check_int_extents(trans_b, m, n, k, alpha);
  const std::int64_t ops = 2 * m * n * k;
  const bool pooled = ops >= (1 << 18) && !inside_parallel_region();
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, a, lda, /*prepacked_a=*/nullptr,
                    b, ldb, accumulate, c, ldc, scratch, pooled);
}

std::int64_t gemm_s8u8_packed_a_size(std::int64_t m, std::int64_t k) {
  std::int64_t total = 0;
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    total += packed_a_block_size(m, std::min(kGemmKC, k - pc));
  }
  return total;
}

void gemm_s8u8_pack_a(std::int64_t m, std::int64_t k, const std::int8_t* a,
                      std::int64_t lda, std::int16_t* packed) {
  // Panels for the whole m extent per pc block — run_ic_tile_int slices MC
  // tiles out of the same consecutive layout.
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    pack_a_s8(a, lda, /*ic=*/0, pc, m, kc, packed);
    packed += packed_a_block_size(m, kc);
  }
}

void gemm_s8u8_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                         std::int64_t k, std::int32_t alpha,
                         const std::int16_t* packed_a, const std::uint8_t* b,
                         std::int64_t ldb, bool accumulate, std::int32_t* c,
                         std::int64_t ldc, IntGemmScratch* scratch) {
  check_int_extents(trans_b, m, n, k, alpha);
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, /*a=*/nullptr, /*lda=*/0,
                    packed_a, b, ldb, accumulate, c, ldc, scratch,
                    /*pooled=*/false);
}

void gemm_s8u8_prepacked_parallel(Trans trans_b, std::int64_t m,
                                  std::int64_t n, std::int64_t k,
                                  std::int32_t alpha,
                                  const std::int16_t* packed_a,
                                  const std::uint8_t* b, std::int64_t ldb,
                                  bool accumulate, std::int32_t* c,
                                  std::int64_t ldc, IntGemmScratch* scratch) {
  check_int_extents(trans_b, m, n, k, alpha);
  const std::int64_t ops = 2 * m * n * k;
  const bool pooled = ops >= (1 << 18) && !inside_parallel_region();
  gemm_s8u8_blocked(trans_b, m, n, k, alpha, /*a=*/nullptr, /*lda=*/0,
                    packed_a, b, ldb, accumulate, c, ldc, scratch, pooled);
}

}  // namespace csq
