#include "tensor/gemm.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

namespace {

static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

// Per-thread packing scratch for callers that do not supply one. Pool worker
// threads are long-lived, so each buffer grows to its steady-state size once
// and is then recycled forever.
GemmScratch& local_scratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

void ensure_size(std::vector<float>& buffer, std::size_t count) {
  if (buffer.size() < count) buffer.resize(count);
}

// Scales a row block of C by beta (handles beta == 0 without reading C).
void apply_beta(std::int64_t m_begin, std::int64_t m_end, std::int64_t n,
                float beta, float* c, std::int64_t ldc) {
  if (beta == 1.0f) return;
  for (std::int64_t i = m_begin; i < m_end; ++i) {
    float* row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

// --------------------------------------------------------------- packing --
//
// A~ layout: ceil(mc/MR) micro-panels, each kc x MR:
//   packed[panel r][p * MR + i] = op(A)[ic + r*MR + i, pc + p]
// B~ layout: ceil(nc/NR) micro-panels, each kc x NR:
//   packed[panel s][p * NR + j] = op(B)[pc + p, jc + s*NR + j]
// Rows/columns beyond the matrix edge are zero-filled so the micro-kernel
// always runs full MR x NR tiles.

void pack_a_panel(Trans trans, const float* a, std::int64_t lda,
                  std::int64_t ic, std::int64_t pc, std::int64_t mc,
                  std::int64_t kc, float* dst) {
  for (std::int64_t r = 0; r < mc; r += kGemmMR) {
    const std::int64_t rows = std::min(kGemmMR, mc - r);
    if (trans == Trans::no) {
      // op(A)[i, p] = a[(ic + i) * lda + pc + p]: row-contiguous reads.
      for (std::int64_t i = 0; i < rows; ++i) {
        const float* src = a + (ic + r + i) * lda + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR + i] = src[p];
      }
      for (std::int64_t i = rows; i < kGemmMR; ++i) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmMR + i] = 0.0f;
      }
    } else {
      // op(A)[i, p] = a[(pc + p) * lda + ic + i]: contiguous in i.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (pc + p) * lda + ic + r;
        float* d = dst + p * kGemmMR;
        std::int64_t i = 0;
        for (; i < rows; ++i) d[i] = src[i];
        for (; i < kGemmMR; ++i) d[i] = 0.0f;
      }
    }
    dst += kGemmMR * kc;
  }
}

void pack_b_panel(Trans trans, const float* b, std::int64_t ldb,
                  std::int64_t pc, std::int64_t jc, std::int64_t kc,
                  std::int64_t nc, float* dst) {
  for (std::int64_t s = 0; s < nc; s += kGemmNR) {
    const std::int64_t cols = std::min(kGemmNR, nc - s);
    if (trans == Trans::no) {
      // op(B)[p, j] = b[(pc + p) * ldb + jc + j]: contiguous in j.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + s;
        float* d = dst + p * kGemmNR;
        std::int64_t j = 0;
        for (; j < cols; ++j) d[j] = src[j];
        for (; j < kGemmNR; ++j) d[j] = 0.0f;
      }
    } else {
      // op(B)[p, j] = b[(jc + j) * ldb + pc + p]: row-contiguous reads.
      for (std::int64_t j = 0; j < cols; ++j) {
        const float* src = b + (jc + s + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + j] = src[p];
      }
      for (std::int64_t j = cols; j < kGemmNR; ++j) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kGemmNR + j] = 0.0f;
      }
    }
    dst += kGemmNR * kc;
  }
}

// ---------------------------------------------------------- micro-kernel --
//
// acc(MR, NR) = A~panel(kc, MR) * B~panel(kc, NR). On GCC/Clang the kernel
// is written with vector extensions: one 8-float vector register per
// accumulator row, one unaligned load of the packed B row per k step, and a
// broadcast-multiply per packed A element — the classic outer-product form
// that maps 1:1 onto FMA units. Elsewhere a scalar form with constant trip
// counts lets the auto-vectorizer do its best.

#if defined(__GNUC__) || defined(__clang__)
#define CSQ_GEMM_VECTOR_KERNEL 1
#endif

#ifdef CSQ_GEMM_VECTOR_KERNEL

typedef float Vec8 __attribute__((vector_size(32)));
static_assert(kGemmMR == 8 && kGemmNR == 8,
              "vector micro-kernel assumes an 8x8 tile");

inline Vec8 load8(const float* p) {
  Vec8 r;
  __builtin_memcpy(&r, p, sizeof(r));  // unaligned vector load
  return r;
}

inline void micro_kernel(const float* pa, const float* pb, std::int64_t kc,
                         float* acc) {
  Vec8 c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a_col = pa + p * kGemmMR;
    const Vec8 b = load8(pb + p * kGemmNR);
    c0 += a_col[0] * b;
    c1 += a_col[1] * b;
    c2 += a_col[2] * b;
    c3 += a_col[3] * b;
    c4 += a_col[4] * b;
    c5 += a_col[5] * b;
    c6 += a_col[6] * b;
    c7 += a_col[7] * b;
  }
  __builtin_memcpy(acc + 0 * 8, &c0, sizeof(c0));
  __builtin_memcpy(acc + 1 * 8, &c1, sizeof(c1));
  __builtin_memcpy(acc + 2 * 8, &c2, sizeof(c2));
  __builtin_memcpy(acc + 3 * 8, &c3, sizeof(c3));
  __builtin_memcpy(acc + 4 * 8, &c4, sizeof(c4));
  __builtin_memcpy(acc + 5 * 8, &c5, sizeof(c5));
  __builtin_memcpy(acc + 6 * 8, &c6, sizeof(c6));
  __builtin_memcpy(acc + 7 * 8, &c7, sizeof(c7));
}

#else  // portable fallback

inline void micro_kernel(const float* pa, const float* pb, std::int64_t kc,
                         float* acc) {
  for (std::int64_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0.0f;
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a_col = pa + p * kGemmMR;
    const float* b_row = pb + p * kGemmNR;
    for (std::int64_t i = 0; i < kGemmMR; ++i) {
      const float a_ip = a_col[i];
      float* acc_row = acc + i * kGemmNR;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        acc_row[j] += a_ip * b_row[j];
      }
    }
  }
}

#endif  // CSQ_GEMM_VECTOR_KERNEL

// C tile update: c = beta_eff * c + alpha * acc over the valid m_sub x n_sub
// region. beta_eff == 0 never reads C (NaN/garbage safe).
inline void update_c_tile(float* c, std::int64_t ldc, const float* acc,
                          std::int64_t m_sub, std::int64_t n_sub, float alpha,
                          float beta_eff) {
  for (std::int64_t i = 0; i < m_sub; ++i) {
    float* c_row = c + i * ldc;
    const float* acc_row = acc + i * kGemmNR;
    if (beta_eff == 0.0f) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] = alpha * acc_row[j];
    } else if (beta_eff == 1.0f) {
      for (std::int64_t j = 0; j < n_sub; ++j) c_row[j] += alpha * acc_row[j];
    } else {
      for (std::int64_t j = 0; j < n_sub; ++j) {
        c_row[j] = beta_eff * c_row[j] + alpha * acc_row[j];
      }
    }
  }
}

// One MC-tall row tile of C inside a (jc, pc) panel: packs its A panel and
// sweeps the jr/ir micro-tile grid. `packed_b` is read-only shared state.
void run_ic_tile(Trans trans_a, const float* a, std::int64_t lda,
                 std::int64_t ic, std::int64_t pc, std::int64_t jc,
                 std::int64_t m, std::int64_t kc, std::int64_t nc, float alpha,
                 float beta_eff, const float* packed_b, float* c,
                 std::int64_t ldc, std::vector<float>& pack_a_storage) {
  const std::int64_t mc = std::min(kGemmMC, m - ic);
  const std::int64_t a_panels = (mc + kGemmMR - 1) / kGemmMR;
  ensure_size(pack_a_storage,
              static_cast<std::size_t>(a_panels * kGemmMR * kc));
  float* packed_a = pack_a_storage.data();
  pack_a_panel(trans_a, a, lda, ic, pc, mc, kc, packed_a);

  float acc[kGemmMR * kGemmNR];
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t n_sub = std::min(kGemmNR, nc - jr);
    const float* pb = packed_b + (jr / kGemmNR) * kGemmNR * kc;
    for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const std::int64_t m_sub = std::min(kGemmMR, mc - ir);
      const float* pa = packed_a + (ir / kGemmMR) * kGemmMR * kc;
      micro_kernel(pa, pb, kc, acc);
      update_c_tile(c + (ic + ir) * ldc + jc + jr, ldc, acc, m_sub, n_sub,
                    alpha, beta_eff);
    }
  }
}

// Shared driver for the serial and pooled paths. The jc/pc loop nest runs on
// the calling thread (B is packed once per (jc, pc) and reused across the
// whole ic sweep); the ic tiles either run in order (serial) or are
// distributed across the pool. Both orders compute each C element with an
// identical floating-point operation sequence, so results are bit-identical.
void gemm_blocked(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc, GemmScratch* scratch,
                  bool pooled) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    apply_beta(0, m, n, beta, c, ldc);
    return;
  }
  GemmScratch& shared = scratch != nullptr ? *scratch : local_scratch();

  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t b_panels = (nc + kGemmNR - 1) / kGemmNR;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      ensure_size(shared.packed_b,
                  static_cast<std::size_t>(b_panels * kGemmNR * kc));
      pack_b_panel(trans_b, b, ldb, pc, jc, kc, nc, shared.packed_b.data());
      const float beta_eff = pc == 0 ? beta : 1.0f;

      const std::int64_t ic_tiles = (m + kGemmMC - 1) / kGemmMC;
      if (!pooled || ic_tiles <= 1) {
        for (std::int64_t t = 0; t < ic_tiles; ++t) {
          run_ic_tile(trans_a, a, lda, t * kGemmMC, pc, jc, m, kc, nc, alpha,
                      beta_eff, shared.packed_b.data(), c, ldc,
                      shared.packed_a);
        }
      } else {
        // Each worker packs A into its own thread-local scratch; every C
        // element belongs to exactly one ic tile, so there are no write
        // conflicts and no order dependence.
        struct TileContext {
          Trans trans_a;
          const float* a;
          std::int64_t lda, pc, jc, m, kc, nc;
          float alpha, beta_eff;
          const float* packed_b;
          float* c;
          std::int64_t ldc;
        } ctx;
        ctx.trans_a = trans_a;
        ctx.a = a;
        ctx.lda = lda;
        ctx.pc = pc;
        ctx.jc = jc;
        ctx.m = m;
        ctx.kc = kc;
        ctx.nc = nc;
        ctx.alpha = alpha;
        ctx.beta_eff = beta_eff;
        ctx.packed_b = shared.packed_b.data();
        ctx.c = c;
        ctx.ldc = ldc;
        // Single-reference capture keeps the closure inside std::function's
        // small-buffer optimization: no allocation per dispatch.
        parallel_for_chunked(
            0, ic_tiles, [&ctx](std::int64_t begin, std::int64_t end) {
              for (std::int64_t t = begin; t < end; ++t) {
                run_ic_tile(ctx.trans_a, ctx.a, ctx.lda, t * kGemmMC, ctx.pc,
                            ctx.jc, ctx.m, ctx.kc, ctx.nc, ctx.alpha,
                            ctx.beta_eff, ctx.packed_b, ctx.c, ctx.ldc,
                            local_scratch().packed_a);
              }
            });
      }
    }
  }
}

void check_extents(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k) {
  CSQ_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm: negative extent";
  CSQ_CHECK(trans_a == Trans::no || trans_b == Trans::no)
      << "gemm TT is not implemented (unused in this library)";
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch) {
  check_extents(trans_a, trans_b, m, n, k);
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch, /*pooled=*/false);
}

void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc,
                   GemmScratch* scratch) {
  check_extents(trans_a, trans_b, m, n, k);
  // Only fan out when there is enough arithmetic to amortize the pool wakeup.
  const std::int64_t flops = 2 * m * n * k;
  const bool pooled = flops >= (1 << 18) && !inside_parallel_region();
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch, pooled);
}

}  // namespace csq
