#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace csq {

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t count = 1;
  for (const std::int64_t extent : shape) {
    CSQ_CHECK(extent >= 0) << "negative shape extent " << extent;
    count *= extent;
  }
  return count;
}

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::int64_t> shape)
    : Tensor(std::vector<std::int64_t>(shape)) {}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor result(std::move(shape));
  result.fill(value);
  return result;
}

Tensor Tensor::from_data(std::vector<std::int64_t> shape,
                         std::vector<float> values) {
  CSQ_CHECK(shape_numel(shape) == static_cast<std::int64_t>(values.size()))
      << "data size " << values.size() << " does not match shape";
  Tensor result;
  result.shape_ = std::move(shape);
  result.data_ = std::move(values);
  return result;
}

std::int64_t Tensor::dim(int axis) const {
  CSQ_CHECK(axis >= 0 && axis < ndim())
      << "axis " << axis << " out of range for " << ndim() << "-d tensor";
  return shape_[static_cast<std::size_t>(axis)];
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) const& {
  CSQ_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_string() << " -> incompatible element count";
  Tensor result;
  result.shape_ = std::move(new_shape);
  result.data_ = data_;
  return result;
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) && {
  CSQ_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_string() << " -> incompatible element count";
  shape_ = std::move(new_shape);
  return std::move(*this);
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data_[flat_offset(index)];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data_[flat_offset(index)];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::size_t Tensor::check_flat(std::int64_t flat_index) const {
  CSQ_CHECK(flat_index >= 0 && flat_index < numel())
      << "flat index " << flat_index << " out of range " << numel();
  return static_cast<std::size_t>(flat_index);
}

std::size_t Tensor::flat_offset(
    std::initializer_list<std::int64_t> index) const {
  CSQ_CHECK(static_cast<int>(index.size()) == ndim())
      << "index rank " << index.size() << " != tensor rank " << ndim();
  std::size_t offset = 0;
  int axis = 0;
  for (const std::int64_t i : index) {
    const std::int64_t extent = shape_[static_cast<std::size_t>(axis)];
    CSQ_CHECK(i >= 0 && i < extent)
        << "index " << i << " out of range " << extent << " on axis " << axis;
    offset = offset * static_cast<std::size_t>(extent) +
             static_cast<std::size_t>(i);
    ++axis;
  }
  return offset;
}

}  // namespace csq
