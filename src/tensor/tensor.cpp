#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace csq {

namespace {

constexpr int kBuckets = 40;

int floor_log2(std::size_t n) {
  int bits = 0;
  while (n > 1) {
    n >>= 1;
    ++bits;
  }
  return bits;
}

int ceil_log2(std::size_t n) {
  const int floor = floor_log2(n);
  return (std::size_t{1} << floor) == n ? floor : floor + 1;
}

// Pool telemetry. Relaxed atomics: the counters are monotone statistics read
// only by tensor_pool_stats(), never used for synchronization.
std::atomic<std::uint64_t> g_data_requests{0};
std::atomic<std::uint64_t> g_data_reuses{0};
std::atomic<std::uint64_t> g_data_allocations{0};
// Bytes parked across all per-thread caches (the global tier tracks its own
// bytes under the pool mutex).
std::atomic<std::uint64_t> g_thread_cached_bytes{0};

// Per-thread front cache over the shared pool. A thread's steady-state
// acquire/release cycle is served entirely from its own shelves, so the
// zero-allocation guarantee is deterministic under concurrent trainers: with
// a single shared shelf, N data-parallel workers releasing and re-acquiring
// identical working sets race for the recycled spans, and a worker whose
// acquire lands before a sibling's release sees an empty shelf and hits the
// heap — an interleaving-dependent high-water mark. Thread-local shelves
// also keep the mutex off the steady-state hot path entirely; the shared
// tier below is only touched on a local miss (first sighting of a size on
// this thread) and on overflow past the local caps.
class ThreadCache {
 public:
  static constexpr std::size_t kMaxCachedPerBucket = 64;
  static constexpr std::uint64_t kMaxCachedBytes = 32ull << 20;
  static constexpr std::size_t kMaxCachedShapes = 1024;

  ThreadCache();
  ~ThreadCache();

  bool try_acquire_data(std::vector<float>& out, int bucket) {
    std::vector<std::vector<float>>& shelf =
        shelves_[static_cast<std::size_t>(bucket)];
    if (shelf.empty()) return false;
    const std::uint64_t bytes = shelf.back().capacity() * sizeof(float);
    cached_bytes_ -= bytes;
    g_thread_cached_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    out = std::move(shelf.back());
    shelf.pop_back();
    return true;
  }

  // Takes ownership and returns true when the span fits under the local
  // caps; leaves `v` untouched (for the global tier) otherwise.
  bool try_release_data(std::vector<float>& v) noexcept {
    const std::uint64_t bytes = v.capacity() * sizeof(float);
    std::vector<std::vector<float>>& shelf =
        shelves_[static_cast<std::size_t>(floor_log2(v.capacity()))];
    if (shelf.size() >= kMaxCachedPerBucket ||
        cached_bytes_ + bytes > kMaxCachedBytes) {
      return false;
    }
    shelf.push_back(std::move(v));
    cached_bytes_ += bytes;
    g_thread_cached_bytes.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }

  bool try_acquire_shape(std::vector<std::int64_t>& out) {
    if (shapes_.empty()) return false;
    out = std::move(shapes_.back());
    shapes_.pop_back();
    out.clear();
    return true;
  }

  bool try_release_shape(std::vector<std::int64_t>& v) noexcept {
    if (shapes_.size() >= kMaxCachedShapes) return false;
    shapes_.push_back(std::move(v));
    return true;
  }

  // Hands every cached buffer to the global tier (thread exit, trim) so
  // short-lived worker threads donate their warm spans instead of freeing.
  void flush() noexcept;

 private:
  std::vector<std::vector<float>> shelves_[kBuckets];
  std::vector<std::vector<std::int64_t>> shapes_;
  std::uint64_t cached_bytes_ = 0;
};

thread_local ThreadCache* t_thread_cache = nullptr;
// Set once this thread's cache has been destroyed: late releases during
// thread teardown (thread_local tensors destroyed after the cache) must
// bypass straight to the global tier instead of resurrecting the cache.
thread_local bool t_thread_cache_retired = false;

ThreadCache* thread_cache() {
  if (t_thread_cache != nullptr) return t_thread_cache;
  if (t_thread_cache_retired) return nullptr;
  thread_local ThreadCache cache;  // ctor publishes itself to t_thread_cache
  return t_thread_cache;
}

// Shared recycling tier. Data spans are bucketed by floor(log2(capacity)):
// a request for n elements is served from bucket ceil(log2(n)), whose
// members all have capacity >= 2^ceil(log2(n)) >= n. Freshly allocated
// spans reserve the rounded-up power of two, so recycled capacities stay
// normalized and the waste factor is bounded by 2x. The cache is
// byte-capped; releases beyond the cap simply free.
class StoragePool {
 public:
  static constexpr std::uint64_t kMaxCachedBytes = 256ull << 20;
  static constexpr std::size_t kMaxCachedShapes = 4096;
  static constexpr std::size_t kMaxCachedPerBucket = 256;

  StoragePool() {
    // The shelf containers are reserved once and never exceed their
    // reserved extents (releases beyond a cap drop the buffer instead of
    // pushing), so the pool's own bookkeeping performs no allocations
    // after construction — a shelf push_back that reallocated mid-serving
    // would break the zero-allocation steady-state guarantee exactly when
    // the cached high-water mark advances.
    shapes_.reserve(kMaxCachedShapes);
    for (auto& shelf : data_shelves_) shelf.reserve(kMaxCachedPerBucket);
  }

  void acquire_data(std::vector<float>& out, std::size_t count) {
    if (count == 0) {
      out.clear();
      return;
    }
    g_data_requests.fetch_add(1, std::memory_order_relaxed);
    const int bucket = ceil_log2(count);
    ThreadCache* cache = thread_cache();
    if (cache != nullptr && cache->try_acquire_data(out, bucket)) {
      g_data_reuses.fetch_add(1, std::memory_order_relaxed);
      out.resize(count);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::vector<std::vector<float>>& shelf =
          data_shelves_[static_cast<std::size_t>(bucket)];
      if (!shelf.empty()) {
        g_data_reuses.fetch_add(1, std::memory_order_relaxed);
        cached_bytes_ -= shelf.back().capacity() * sizeof(float);
        out = std::move(shelf.back());
        shelf.pop_back();
        out.resize(count);
        return;
      }
    }
    g_data_allocations.fetch_add(1, std::memory_order_relaxed);
    out.reserve(std::size_t{1} << bucket);
    out.resize(count);
  }

  void release_data(std::vector<float>&& v) noexcept {
    if (v.capacity() == 0) return;
    ThreadCache* cache = thread_cache();
    if (cache != nullptr && cache->try_release_data(v)) return;
    global_release_data(std::move(v));
  }

  void global_release_data(std::vector<float>&& v) noexcept {
    const std::uint64_t bytes = v.capacity() * sizeof(float);
    const int bucket = floor_log2(v.capacity());
    std::lock_guard<std::mutex> lock(mutex_);
    if (cached_bytes_ + bytes > kMaxCachedBytes) return;  // drop: just free
    std::vector<std::vector<float>>& shelf =
        data_shelves_[static_cast<std::size_t>(bucket)];
    if (shelf.size() >= kMaxCachedPerBucket) return;  // drop: stay reserved
    shelf.push_back(std::move(v));
    cached_bytes_ += bytes;
  }

  void acquire_shape(std::vector<std::int64_t>& out) {
    ThreadCache* cache = thread_cache();
    if (cache != nullptr && cache->try_acquire_shape(out)) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!shapes_.empty()) {
        out = std::move(shapes_.back());
        shapes_.pop_back();
        out.clear();
        return;
      }
    }
    out.reserve(8);
  }

  void release_shape(std::vector<std::int64_t>&& v) noexcept {
    if (v.capacity() == 0) return;
    ThreadCache* cache = thread_cache();
    if (cache != nullptr && cache->try_release_shape(v)) return;
    global_release_shape(std::move(v));
  }

  void global_release_shape(std::vector<std::int64_t>&& v) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shapes_.size() >= kMaxCachedShapes) return;
    shapes_.push_back(std::move(v));
  }

  TensorPoolStats stats() {
    TensorPoolStats snapshot;
    snapshot.data_requests = g_data_requests.load(std::memory_order_relaxed);
    snapshot.data_reuses = g_data_reuses.load(std::memory_order_relaxed);
    snapshot.data_allocations =
        g_data_allocations.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.cached_bytes =
        cached_bytes_ + g_thread_cached_bytes.load(std::memory_order_relaxed);
    return snapshot;
  }

  // Frees the global tier plus the calling thread's cache. Other threads'
  // caches stay untouched (they cannot be cleared safely from here); they
  // flush themselves into the global tier when their thread exits.
  void trim() {
    if (ThreadCache* cache = thread_cache()) cache->flush();
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& shelf : data_shelves_) {
      shelf.clear();
      shelf.shrink_to_fit();
      shelf.reserve(kMaxCachedPerBucket);  // keep releases allocation-free
    }
    shapes_.clear();
    shapes_.shrink_to_fit();
    shapes_.reserve(kMaxCachedShapes);
    cached_bytes_ = 0;
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<float>> data_shelves_[kBuckets];
  std::vector<std::vector<std::int64_t>> shapes_;
  std::uint64_t cached_bytes_ = 0;
};

// Leaked so tensors with static storage duration can release safely during
// program teardown regardless of destruction order.
StoragePool& pool() {
  static StoragePool* instance = new StoragePool();
  return *instance;
}

ThreadCache::ThreadCache() {
  // Reserve once so cache pushes never allocate (release_data is noexcept
  // and runs inside the zero-allocation steady-state window).
  shapes_.reserve(kMaxCachedShapes);
  for (auto& shelf : shelves_) shelf.reserve(kMaxCachedPerBucket);
  t_thread_cache = this;
}

ThreadCache::~ThreadCache() {
  t_thread_cache = nullptr;
  t_thread_cache_retired = true;
  flush();
}

void ThreadCache::flush() noexcept {
  for (auto& shelf : shelves_) {
    while (!shelf.empty()) {
      std::vector<float> v = std::move(shelf.back());
      shelf.pop_back();
      g_thread_cached_bytes.fetch_sub(v.capacity() * sizeof(float),
                                      std::memory_order_relaxed);
      pool().global_release_data(std::move(v));
    }
  }
  while (!shapes_.empty()) {
    std::vector<std::int64_t> v = std::move(shapes_.back());
    shapes_.pop_back();
    pool().global_release_shape(std::move(v));
  }
  cached_bytes_ = 0;
}

}  // namespace

TensorPoolStats tensor_pool_stats() { return pool().stats(); }

void tensor_pool_trim() { pool().trim(); }

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t count = 1;
  for (const std::int64_t extent : shape) {
    CSQ_CHECK(extent >= 0) << "negative shape extent " << extent;
    count *= extent;
  }
  return count;
}

Tensor::Tensor(const std::vector<std::int64_t>& shape) {
  pool().acquire_shape(shape_);
  shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(data_, static_cast<std::size_t>(shape_numel(shape_)));
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(std::vector<std::int64_t>&& shape) : shape_(std::move(shape)) {
  pool().acquire_data(data_, static_cast<std::size_t>(shape_numel(shape_)));
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape) {
  pool().acquire_shape(shape_);
  shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(data_, static_cast<std::size_t>(shape_numel(shape_)));
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(const Tensor& other) {
  // Copying FROM a borrowed view yields an independent OWNED tensor: the
  // copy must stay valid after the view's arena is gone.
  pool().acquire_shape(shape_);
  shape_.assign(other.shape_.begin(), other.shape_.end());
  pool().acquire_data(data_, static_cast<std::size_t>(other.numel()));
  std::copy(other.data(), other.data() + other.numel(), data_.begin());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (borrowed_ != nullptr) {
    // Assignment INTO a view copies elements in place — the view must keep
    // aliasing its arena segment (callers that snapshot/restore a
    // Parameter's value would otherwise silently unhook it).
    CSQ_CHECK(other.numel() == borrowed_count_)
        << "assign into borrowed tensor: element count " << other.numel()
        << " != " << borrowed_count_;
    shape_ = other.shape_;
    std::copy(other.data(), other.data() + other.numel(), borrowed_);
    return *this;
  }
  // Plain vector copy-assignment reuses existing capacity, so repeated
  // same-shape assignments (per-step activation caches) never allocate.
  shape_ = other.shape_;
  data_.assign(other.data(), other.data() + other.numel());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      borrowed_(other.borrowed_),
      borrowed_count_(other.borrowed_count_) {
  other.borrowed_ = nullptr;
  other.borrowed_count_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    if (borrowed_ != nullptr) {
      // A borrowed target keeps its arena segment: fall back to an element
      // copy (same semantics as copy-assign into a view). numel mismatch
      // would be a caller bug; terminate via the noexcept boundary.
      CSQ_CHECK(other.numel() == borrowed_count_)
          << "move-assign into borrowed tensor: element count mismatch";
      shape_ = other.shape_;
      std::copy(other.data(), other.data() + other.numel(), borrowed_);
      return *this;
    }
    pool().release_shape(std::move(shape_));
    pool().release_data(std::move(data_));
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    borrowed_ = other.borrowed_;
    borrowed_count_ = other.borrowed_count_;
    other.borrowed_ = nullptr;
    other.borrowed_count_ = 0;
  }
  return *this;
}

Tensor::~Tensor() {
  pool().release_shape(std::move(shape_));
  pool().release_data(std::move(data_));
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor result(std::move(shape));
  result.fill(value);
  return result;
}

Tensor Tensor::from_data(std::vector<std::int64_t> shape,
                         std::vector<float> values) {
  CSQ_CHECK(shape_numel(shape) == static_cast<std::int64_t>(values.size()))
      << "data size " << values.size() << " does not match shape";
  Tensor result;
  result.shape_ = std::move(shape);
  result.data_ = std::move(values);
  return result;
}

Tensor Tensor::uninitialized(const std::vector<std::int64_t>& shape) {
  Tensor result;
  pool().acquire_shape(result.shape_);
  result.shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(result.data_,
                      static_cast<std::size_t>(shape_numel(result.shape_)));
  return result;
}

Tensor Tensor::uninitialized(std::initializer_list<std::int64_t> shape) {
  Tensor result;
  pool().acquire_shape(result.shape_);
  result.shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(result.data_,
                      static_cast<std::size_t>(shape_numel(result.shape_)));
  return result;
}

Tensor Tensor::borrow(float* data, const std::vector<std::int64_t>& shape) {
  const std::int64_t count = shape_numel(shape);
  CSQ_CHECK(data != nullptr || count == 0) << "borrow: null span";
  Tensor result;
  pool().acquire_shape(result.shape_);
  result.shape_.assign(shape.begin(), shape.end());
  result.borrowed_ = data;
  result.borrowed_count_ = count;
  return result;
}

std::int64_t Tensor::dim(int axis) const {
  CSQ_CHECK(axis >= 0 && axis < ndim())
      << "axis " << axis << " out of range for " << ndim() << "-d tensor";
  return shape_[static_cast<std::size_t>(axis)];
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) const& {
  CSQ_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_string() << " -> incompatible element count";
  Tensor result(*this);
  result.shape_.assign(new_shape.begin(), new_shape.end());
  return result;
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) && {
  CSQ_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_string() << " -> incompatible element count";
  shape_ = std::move(new_shape);
  return std::move(*this);
}

void Tensor::resize_unspecified(const std::vector<std::int64_t>& new_shape) {
  shape_.assign(new_shape.begin(), new_shape.end());
  resize_storage();
}

void Tensor::resize_unspecified(
    std::initializer_list<std::int64_t> new_shape) {
  shape_.assign(new_shape.begin(), new_shape.end());
  resize_storage();
}

void Tensor::resize_storage() {
  CSQ_CHECK(borrowed_ == nullptr)
      << "resize on a borrowed tensor (views cannot reshape their storage)";
  const auto count = static_cast<std::size_t>(shape_numel(shape_));
  if (data_.capacity() < count) {
    pool().release_data(std::move(data_));
    pool().acquire_data(data_, count);
  } else {
    data_.resize(count);
  }
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data()[flat_offset(index)];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data()[flat_offset(index)];
}

void Tensor::fill(float value) {
  std::fill(data(), data() + numel(), value);
}

std::size_t Tensor::check_flat(std::int64_t flat_index) const {
  CSQ_CHECK(flat_index >= 0 && flat_index < numel())
      << "flat index " << flat_index << " out of range " << numel();
  return static_cast<std::size_t>(flat_index);
}

std::size_t Tensor::flat_offset(
    std::initializer_list<std::int64_t> index) const {
  CSQ_CHECK(static_cast<int>(index.size()) == ndim())
      << "index rank " << index.size() << " != tensor rank " << ndim();
  std::size_t offset = 0;
  int axis = 0;
  for (const std::int64_t i : index) {
    const std::int64_t extent = shape_[static_cast<std::size_t>(axis)];
    CSQ_CHECK(i >= 0 && i < extent)
        << "index " << i << " out of range " << extent << " on axis " << axis;
    offset = offset * static_cast<std::size_t>(extent) +
             static_cast<std::size_t>(i);
    ++axis;
  }
  return offset;
}

}  // namespace csq
