#include "tensor/tensor.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace csq {

namespace {

// Process-wide recycling pool for tensor storage. Data spans are bucketed by
// floor(log2(capacity)): a request for n elements is served from bucket
// ceil(log2(n)), whose members all have capacity >= 2^ceil(log2(n)) >= n.
// Freshly allocated spans reserve the rounded-up power of two, so recycled
// capacities stay normalized and the waste factor is bounded by 2x. The
// cache is byte-capped; releases beyond the cap simply free.
class StoragePool {
 public:
  static constexpr int kBuckets = 40;
  static constexpr std::uint64_t kMaxCachedBytes = 256ull << 20;
  static constexpr std::size_t kMaxCachedShapes = 4096;
  static constexpr std::size_t kMaxCachedPerBucket = 256;

  StoragePool() {
    // The shelf containers are reserved once and never exceed their
    // reserved extents (releases beyond a cap drop the buffer instead of
    // pushing), so the pool's own bookkeeping performs no allocations
    // after construction — a shelf push_back that reallocated mid-serving
    // would break the zero-allocation steady-state guarantee exactly when
    // the cached high-water mark advances.
    shapes_.reserve(kMaxCachedShapes);
    for (auto& shelf : data_shelves_) shelf.reserve(kMaxCachedPerBucket);
  }

  void acquire_data(std::vector<float>& out, std::size_t count) {
    if (count == 0) {
      out.clear();
      return;
    }
    const int bucket = ceil_log2(count);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.data_requests;
      std::vector<std::vector<float>>& shelf =
          data_shelves_[static_cast<std::size_t>(bucket)];
      if (!shelf.empty()) {
        ++stats_.data_reuses;
        cached_bytes_ -= shelf.back().capacity() * sizeof(float);
        out = std::move(shelf.back());
        shelf.pop_back();
        out.resize(count);
        return;
      }
      ++stats_.data_allocations;
    }
    out.reserve(std::size_t{1} << bucket);
    out.resize(count);
  }

  void release_data(std::vector<float>&& v) noexcept {
    if (v.capacity() == 0) return;
    const std::uint64_t bytes = v.capacity() * sizeof(float);
    const int bucket = floor_log2(v.capacity());
    std::lock_guard<std::mutex> lock(mutex_);
    if (cached_bytes_ + bytes > kMaxCachedBytes) return;  // drop: just free
    std::vector<std::vector<float>>& shelf =
        data_shelves_[static_cast<std::size_t>(bucket)];
    if (shelf.size() >= kMaxCachedPerBucket) return;  // drop: stay reserved
    shelf.push_back(std::move(v));
    cached_bytes_ += bytes;
  }

  void acquire_shape(std::vector<std::int64_t>& out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!shapes_.empty()) {
        out = std::move(shapes_.back());
        shapes_.pop_back();
        out.clear();
        return;
      }
    }
    out.reserve(8);
  }

  void release_shape(std::vector<std::int64_t>&& v) noexcept {
    if (v.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (shapes_.size() >= kMaxCachedShapes) return;
    shapes_.push_back(std::move(v));
  }

  TensorPoolStats stats() {
    std::lock_guard<std::mutex> lock(mutex_);
    TensorPoolStats snapshot = stats_;
    snapshot.cached_bytes = cached_bytes_;
    return snapshot;
  }

  void trim() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& shelf : data_shelves_) {
      shelf.clear();
      shelf.shrink_to_fit();
      shelf.reserve(kMaxCachedPerBucket);  // keep releases allocation-free
    }
    shapes_.clear();
    shapes_.shrink_to_fit();
    shapes_.reserve(kMaxCachedShapes);
    cached_bytes_ = 0;
  }

 private:
  static int floor_log2(std::size_t n) {
    int bits = 0;
    while (n > 1) {
      n >>= 1;
      ++bits;
    }
    return bits;
  }
  static int ceil_log2(std::size_t n) {
    const int floor = floor_log2(n);
    return (std::size_t{1} << floor) == n ? floor : floor + 1;
  }

  std::mutex mutex_;
  std::vector<std::vector<float>> data_shelves_[kBuckets];
  std::vector<std::vector<std::int64_t>> shapes_;
  std::uint64_t cached_bytes_ = 0;
  TensorPoolStats stats_;
};

// Leaked so tensors with static storage duration can release safely during
// program teardown regardless of destruction order.
StoragePool& pool() {
  static StoragePool* instance = new StoragePool();
  return *instance;
}

}  // namespace

TensorPoolStats tensor_pool_stats() { return pool().stats(); }

void tensor_pool_trim() { pool().trim(); }

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t count = 1;
  for (const std::int64_t extent : shape) {
    CSQ_CHECK(extent >= 0) << "negative shape extent " << extent;
    count *= extent;
  }
  return count;
}

Tensor::Tensor(const std::vector<std::int64_t>& shape) {
  pool().acquire_shape(shape_);
  shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(data_, static_cast<std::size_t>(shape_numel(shape_)));
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(std::vector<std::int64_t>&& shape) : shape_(std::move(shape)) {
  pool().acquire_data(data_, static_cast<std::size_t>(shape_numel(shape_)));
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape) {
  pool().acquire_shape(shape_);
  shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(data_, static_cast<std::size_t>(shape_numel(shape_)));
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(const Tensor& other) {
  pool().acquire_shape(shape_);
  shape_.assign(other.shape_.begin(), other.shape_.end());
  pool().acquire_data(data_, other.data_.size());
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

Tensor& Tensor::operator=(const Tensor& other) {
  // Plain vector copy-assignment reuses existing capacity, so repeated
  // same-shape assignments (per-step activation caches) never allocate.
  shape_ = other.shape_;
  data_ = other.data_;
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    pool().release_shape(std::move(shape_));
    pool().release_data(std::move(data_));
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
  }
  return *this;
}

Tensor::~Tensor() {
  pool().release_shape(std::move(shape_));
  pool().release_data(std::move(data_));
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor result(std::move(shape));
  result.fill(value);
  return result;
}

Tensor Tensor::from_data(std::vector<std::int64_t> shape,
                         std::vector<float> values) {
  CSQ_CHECK(shape_numel(shape) == static_cast<std::int64_t>(values.size()))
      << "data size " << values.size() << " does not match shape";
  Tensor result;
  result.shape_ = std::move(shape);
  result.data_ = std::move(values);
  return result;
}

Tensor Tensor::uninitialized(const std::vector<std::int64_t>& shape) {
  Tensor result;
  pool().acquire_shape(result.shape_);
  result.shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(result.data_,
                      static_cast<std::size_t>(shape_numel(result.shape_)));
  return result;
}

Tensor Tensor::uninitialized(std::initializer_list<std::int64_t> shape) {
  Tensor result;
  pool().acquire_shape(result.shape_);
  result.shape_.assign(shape.begin(), shape.end());
  pool().acquire_data(result.data_,
                      static_cast<std::size_t>(shape_numel(result.shape_)));
  return result;
}

std::int64_t Tensor::dim(int axis) const {
  CSQ_CHECK(axis >= 0 && axis < ndim())
      << "axis " << axis << " out of range for " << ndim() << "-d tensor";
  return shape_[static_cast<std::size_t>(axis)];
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) const& {
  CSQ_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_string() << " -> incompatible element count";
  Tensor result(*this);
  result.shape_.assign(new_shape.begin(), new_shape.end());
  return result;
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) && {
  CSQ_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_string() << " -> incompatible element count";
  shape_ = std::move(new_shape);
  return std::move(*this);
}

void Tensor::resize_unspecified(const std::vector<std::int64_t>& new_shape) {
  shape_.assign(new_shape.begin(), new_shape.end());
  resize_storage();
}

void Tensor::resize_unspecified(
    std::initializer_list<std::int64_t> new_shape) {
  shape_.assign(new_shape.begin(), new_shape.end());
  resize_storage();
}

void Tensor::resize_storage() {
  const auto count = static_cast<std::size_t>(shape_numel(shape_));
  if (data_.capacity() < count) {
    pool().release_data(std::move(data_));
    pool().acquire_data(data_, count);
  } else {
    data_.resize(count);
  }
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data_[flat_offset(index)];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data_[flat_offset(index)];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::size_t Tensor::check_flat(std::int64_t flat_index) const {
  CSQ_CHECK(flat_index >= 0 && flat_index < numel())
      << "flat index " << flat_index << " out of range " << numel();
  return static_cast<std::size_t>(flat_index);
}

std::size_t Tensor::flat_offset(
    std::initializer_list<std::int64_t> index) const {
  CSQ_CHECK(static_cast<int>(index.size()) == ndim())
      << "index rank " << index.size() << " != tensor rank " << ndim();
  std::size_t offset = 0;
  int axis = 0;
  for (const std::int64_t i : index) {
    const std::int64_t extent = shape_[static_cast<std::size_t>(axis)];
    CSQ_CHECK(i >= 0 && i < extent)
        << "index " << i << " out of range " << extent << " on axis " << axis;
    offset = offset * static_cast<std::size_t>(extent) +
             static_cast<std::size_t>(i);
    ++axis;
  }
  return offset;
}

}  // namespace csq
