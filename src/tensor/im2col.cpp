#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace csq {

void ConvGeometry::validate() const {
  CSQ_CHECK(channels > 0 && height > 0 && width > 0)
      << "conv geometry: bad input extents";
  CSQ_CHECK(kernel_h > 0 && kernel_w > 0) << "conv geometry: bad kernel";
  CSQ_CHECK(stride > 0) << "conv geometry: stride must be positive";
  CSQ_CHECK(pad >= 0) << "conv geometry: negative padding";
  CSQ_CHECK(height + 2 * pad >= kernel_h && width + 2 * pad >= kernel_w)
      << "conv geometry: kernel larger than padded input";
}

void im2col(const ConvGeometry& geom, const float* image, float* col) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  const std::int64_t col_cols = out_h * out_w;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.channels; ++c) {
    const float* channel = image + c * geom.height * geom.width;
    for (std::int64_t ki = 0; ki < geom.kernel_h; ++ki) {
      for (std::int64_t kj = 0; kj < geom.kernel_w; ++kj, ++row) {
        float* col_row = col + row * col_cols;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * geom.stride - geom.pad + ki;
          float* dst = col_row + oy * out_w;
          if (iy < 0 || iy >= geom.height) {
            std::fill(dst, dst + out_w, 0.0f);
            continue;
          }
          const float* src_row = channel + iy * geom.width;
          // ix = ox*stride - pad + kj; copy the in-bounds middle segment in
          // one pass, zero the out-of-bounds edges.
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * geom.stride - geom.pad + kj;
            dst[ox] = (ix >= 0 && ix < geom.width) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void im2col_u8(const ConvGeometry& geom, const std::uint8_t* image,
               std::uint8_t* col, std::uint8_t pad_code) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  const std::int64_t col_cols = out_h * out_w;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.channels; ++c) {
    const std::uint8_t* channel = image + c * geom.height * geom.width;
    for (std::int64_t ki = 0; ki < geom.kernel_h; ++ki) {
      for (std::int64_t kj = 0; kj < geom.kernel_w; ++kj, ++row) {
        std::uint8_t* col_row = col + row * col_cols;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * geom.stride - geom.pad + ki;
          std::uint8_t* dst = col_row + oy * out_w;
          if (iy < 0 || iy >= geom.height) {
            std::fill(dst, dst + out_w, pad_code);
            continue;
          }
          const std::uint8_t* src_row = channel + iy * geom.width;
          if (geom.stride == 1) {
            // Unit stride: ix = ox + kj - pad is contiguous — pad the two
            // border zones and memcpy the in-bounds middle (the inference
            // hot path; bytes make this a single wide copy). Both bounds
            // are clamped into [0, out_w]: a kernel wider than the output
            // grid can push the in-bounds window entirely off either edge.
            const std::int64_t ix0 = kj - geom.pad;
            const std::int64_t begin =
                std::clamp<std::int64_t>(-ix0, 0, out_w);
            const std::int64_t end =
                std::clamp<std::int64_t>(geom.width - ix0, begin, out_w);
            std::fill(dst, dst + begin, pad_code);
            if (end > begin) {
              std::memcpy(dst + begin, src_row + ix0 + begin,
                          static_cast<std::size_t>(end - begin));
            }
            std::fill(dst + end, dst + out_w, pad_code);
            continue;
          }
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * geom.stride - geom.pad + kj;
            dst[ox] =
                (ix >= 0 && ix < geom.width) ? src_row[ix] : pad_code;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& geom, const float* col, float* image) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  const std::int64_t col_cols = out_h * out_w;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.channels; ++c) {
    float* channel = image + c * geom.height * geom.width;
    for (std::int64_t ki = 0; ki < geom.kernel_h; ++ki) {
      for (std::int64_t kj = 0; kj < geom.kernel_w; ++kj, ++row) {
        const float* col_row = col + row * col_cols;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * geom.stride - geom.pad + ki;
          if (iy < 0 || iy >= geom.height) continue;
          float* dst_row = channel + iy * geom.width;
          const float* src = col_row + oy * out_w;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * geom.stride - geom.pad + kj;
            if (ix >= 0 && ix < geom.width) dst_row[ix] += src[ox];
          }
        }
      }
    }
  }
}

}  // namespace csq
