// Flat-array quantization kernels shared by every WeightSource family.
//
// All five weight parameterizations (CSQ, BSQ, STE-Uniform, DoReFa, LQ-Nets)
// reduce to a handful of elementwise sweeps and reductions over the flat
// weight span: gate evaluation, per-bit-plane weighted accumulation, the
// matching analytic backward, fake-quant/clip, and a few dot/max/Gram
// reductions. This header expresses those sweeps once, as kernels over raw
// float spans, so the sources in src/quant and src/core stop re-implementing
// the same loops.
//
// Execution model: every kernel runs over a FIXED chunk grid of kQuantChunk
// elements. Pooled execution dispatches whole chunks to the global
// ThreadPool; serial execution walks the same chunks in order. Because the
// grid — and therefore the per-element arithmetic and the reduction
// combination order — is independent of the thread count, pooled and serial
// runs produce bit-identical results. Reductions write one partial per chunk
// into caller-provided scratch and are combined serially in chunk order.
//
// Kernels never allocate: scratch buffers (`partials`) are sized by
// quant_chunk_count() and owned by the caller (usually a BitPlaneEngine or a
// weight source), so steady-state training steps stay allocation-free.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.h"

namespace csq {

// ------------------------------------------------------------- execution --

enum class KernelExec { serial, pooled };

// Process-wide default used by the weight sources; tests and benches flip it
// to compare/verify the two paths. Defaults to pooled.
void set_default_kernel_exec(KernelExec exec);
KernelExec default_kernel_exec();

// Fixed chunk size of the execution grid (elements).
constexpr std::int64_t kQuantChunk = 2048;

// Number of grid chunks covering `count` elements.
std::int64_t quant_chunk_count(std::int64_t count);

// Runs body(chunk_index, begin, end) over the fixed grid, pooled or serial.
// Templated so the serial path calls the body directly and the pooled path
// hands the pool a two-pointer closure (within std::function's small-buffer
// optimization) — the kernels themselves never heap-allocate.
template <typename Body>
void for_each_quant_chunk(std::int64_t count, KernelExec exec,
                          const Body& body) {
  const std::int64_t chunks = quant_chunk_count(count);
  if (chunks == 0) return;
  if (exec == KernelExec::serial || chunks == 1) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t begin = c * kQuantChunk;
      body(c, begin, std::min(begin + kQuantChunk, count));
    }
    return;
  }
  parallel_for(
      0, chunks,
      [&body, count](std::int64_t c) {
        const std::int64_t begin = c * kQuantChunk;
        body(c, begin, std::min(begin + kQuantChunk, count));
      },
      /*serial_threshold=*/1);
}

// ------------------------------------------------------ bit-plane kernels --

// How a latent plane value maps to a bit value in [0, 1]:
//   sigmoid    — f_beta(x) = sigmoid(beta * x), the continuous-sparsification
//                gate (CSQ soft modes); analytic derivative.
//   step       — I(x >= 0), the finalized/hard limit; derivative zero.
//   round_clip — round(clamp(x, 0, 1)), BSQ's latent rounding; clipped-STE
//                derivative I(x in [0, 1]).
enum class GateKind { sigmoid, step, round_clip };

// One gated bit plane of the materialization sum.
struct BitPlane {
  const float* pos = nullptr;  // positive-part latents / logits
  const float* neg = nullptr;  // negative-part latents / logits
  // Soft-path multiplier applied to (g(pos) - g(neg)); for CSQ this is
  // s/(2^N-1) * 2^b * mask_value, for BSQ s/(2^N-1) * 2^b.
  float coeff = 0.0f;
  // Integer plane weight (2^b) used by the integer-exact hard paths.
  std::int32_t code_weight = 0;
  // Optional gate caches filled by the soft forward (nullable). Cached gates
  // let the backward skip re-evaluating the sigmoid.
  float* gate_pos = nullptr;
  float* gate_neg = nullptr;
};

// Soft materialization (paper Eq. 5 inner sum):
//   out[i] = sum_b planes[b].coeff * (g(planes[b].pos[i]) - g(planes[b].neg[i]))
// Gate values are written to the per-plane caches when present.
void bitplane_materialize(GateKind kind, float beta, const BitPlane* planes,
                          int num_planes, float* out, std::int64_t count,
                          KernelExec exec);

// Integer-exact hard materialization: accumulates the per-element integer
// code sum_b code_weight_b * (step(pos) - step(neg)) and emits
// out[i] = unit * code (exactly a unit multiple — the finalized-model
// guarantee). Either of `out` / `codes` may be null.
void bitplane_materialize_hard(const BitPlane* planes, int num_planes,
                               float unit, float* out, std::int32_t* codes,
                               std::int64_t count, KernelExec exec);

// Gradient routing for one plane of the backward sweep.
struct BitPlaneGrad {
  const float* pos = nullptr;       // latents (STE window for round_clip)
  const float* neg = nullptr;
  const float* gate_pos = nullptr;  // cached forward gates (sigmoid path)
  const float* gate_neg = nullptr;
  float coeff = 0.0f;               // dW/d(gate difference), as in forward
  float* grad_pos = nullptr;        // += accumulation targets (nullable)
  float* grad_neg = nullptr;
  // When set, the kernel also reduces sum_i grad_out[i] * (g_pos - g_neg)
  // for this plane — the inner factor of the bit-mask gradient (Eq. 5
  // differentiated w.r.t. m_B). Requires cached gates.
  bool want_diff_sum = false;
};

// Analytic backward through the gated planes:
//   grad_pos[i] += grad_out[i] * coeff * g'(pos[i])
//   grad_neg[i] -= grad_out[i] * coeff * g'(neg[i])
// with g' per GateKind (sigmoid: beta*g*(1-g) from the cached value; step: 0;
// round_clip: I(latent in [0,1])). `partials` must hold
// quant_chunk_count(count) * num_planes doubles; `diff_sums` (size
// num_planes) receives the deterministic per-plane reductions (zero where
// want_diff_sum is false).
void bitplane_backward(GateKind kind, float beta, const BitPlaneGrad* planes,
                       int num_planes, const float* grad_out,
                       std::int64_t count, double* partials, double* diff_sums,
                       KernelExec exec);

// -------------------------------------------------------------- reductions --

// Upper bound on the source count of tree_reduce_spans (data-parallel
// training shards a batch into at most this many micro-batches).
constexpr int kMaxReduceSpans = 64;

// Deterministic combine of N equally sized spans:
//   dst[i] = pairwise-tree sum over sources[0..num_sources)[i]
// The tree pairs sources at stride 1, 2, 4, ... so the combination order
// depends only on num_sources — never on thread count or scheduling — and
// the sweep runs over the fixed chunk grid (parallelizable across chunks,
// bit-identical pooled vs serial). This is the gradient-combine step of
// data-parallel training: per-shard gradient buffers in, the full-batch
// gradient out.
void tree_reduce_spans(const float* const* sources, int num_sources,
                       float* dst, std::int64_t count, KernelExec exec);

// Deterministic chunked dot product sum_i a[i]*b[i]; `partials` must hold
// quant_chunk_count(count) doubles.
double chunked_dot(const float* a, const float* b, std::int64_t count,
                   double* partials, KernelExec exec);

// max_i |data[i]| (0 for empty spans); `partials` must hold
// quant_chunk_count(count) floats. Max is exactly order-independent, but the
// chunked form keeps the sweep pooled.
float reduce_max_abs(const float* data, std::int64_t count, float* partials,
                     KernelExec exec);

// --------------------------------------------------- fake-quant / clip ----

// Symmetric signed fake-quant onto the +/-(2^bits - 1) grid (the parallel
// form of quantize_symmetric_tensor):
//   out[i] = round(clamp(in[i]/scale, -1, 1) * L) * scale / L,  L = 2^bits-1.
void fake_quant_symmetric(const float* in, float* out, std::int64_t count,
                          float scale, int bits, KernelExec exec);

// y[i] += x[i] — the STE pass-through backward.
void accumulate(const float* x, float* y, std::int64_t count, KernelExec exec);

// DoReFa stage 1: t[i] = tanh(in[i]); returns max_i |t[i]| (exact reduction;
// `partials` sized quant_chunk_count(count) floats).
float tanh_forward_max(const float* in, float* tanh_out, std::int64_t count,
                       float* partials, KernelExec exec);

// DoReFa stage 2: out[i] = 2 * round(L * (t[i]*inv_two_max + 0.5)) / L - 1.
void dorefa_fake_quant(const float* tanh_in, float* out, std::int64_t count,
                       float inv_two_max, float levels, KernelExec exec);

// DoReFa backward: grad_latent[i] += grad_out[i] * (1 - t[i]^2) * inv_max
// (STE through the rounding, exact tanh-normalization derivative).
void tanh_ste_backward(const float* grad_out, const float* tanh_in,
                       float* grad_latent, std::int64_t count, float inv_max,
                       KernelExec exec);

// ------------------------------------------------------- LQ-Nets kernels --

// E-step: nearest-level encoding over `num_levels` candidates. Writes the
// chosen code and dequantized value per element; returns the total squared
// fit error (deterministic; `partials` sized quant_chunk_count(count)
// doubles).
double nearest_level_encode(const float* in, const float* levels,
                            int num_levels, std::int8_t* codes, float* out,
                            std::int64_t count, double* partials,
                            KernelExec exec);

// M-step normal equations: accumulates G = sum_i b_i b_i^T (n x n, row
// major) and r = sum_i b_i * in[i], where b_i in {-1,+1}^n is decoded from
// codes[i]. `partials` must hold quant_chunk_count(count) * (n*n + n)
// doubles; combination is serial in chunk order (deterministic).
void code_gram_accumulate(const float* in, const std::int8_t* codes, int n,
                          double* gram, double* rhs, std::int64_t count,
                          double* partials, KernelExec exec);

}  // namespace csq
