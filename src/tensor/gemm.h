// Single-precision general matrix multiply.
//
//   C = alpha * op(A) * op(B) + beta * C
//
// Row-major storage with explicit leading dimensions (BLAS-style). Three
// transpose combinations are implemented — NN, NT and TN — which cover every
// use in the library (forward, input-gradient and weight-gradient of both
// Linear and im2col convolution).
//
// `gemm` is strictly serial so it can run inside batch-parallel loops;
// `gemm_parallel` splits rows of C across the global thread pool and is used
// at top level (Linear layers, benchmark kernels).
#pragma once

#include <cstdint>

namespace csq {

enum class Trans { no, yes };

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc);

}  // namespace csq
