// Single-precision general matrix multiply.
//
//   C = alpha * op(A) * op(B) + beta * C
//
// Row-major storage with explicit leading dimensions (BLAS-style). Three
// transpose combinations are implemented — NN, NT and TN — which cover every
// use in the library (forward, input-gradient and weight-gradient of both
// Linear and im2col convolution).
//
// Blocking scheme (GotoBLAS/BLIS-style, single precision):
//
//   for jc in N step kNC:                column panel of C / B
//     for pc in K step kKC:              depth panel (beta applied at pc==0)
//       pack op(B)[pc:pc+kc, jc:jc+nc]   -> B~  (NR-wide micro-panels, L2/L3)
//       for ic in M step kMC:            row panel of C / A
//         pack op(A)[ic:ic+mc, pc:pc+kc] -> A~  (MR-tall micro-panels, L1/L2)
//         for jr, ir over the panel:     kMR x kNR register micro-kernel
//
// The micro-kernel keeps a kMR x kNR accumulator tile in registers and
// streams the packed panels, so every loaded cache line is used kMR (or kNR)
// times; edge tiles are zero-padded during packing and written back through
// bounds-checked tails. All three transpose variants route through the same
// packed kernel — only the pack routines differ. Packing scratch lives in
// thread-local grow-once buffers (or a caller-provided GemmScratch), so
// steady-state calls perform no heap allocations.
//
// Determinism contract: for fixed operands, `gemm` and `gemm_parallel`
// produce BIT-IDENTICAL results regardless of thread count OR split mode.
// The parallel path distributes whole tiles of C across the pool — MC row
// tiles (the classic split), NR-aligned column stripes (wide-N/small-M
// shapes), or a 2-D (row tile x column stripe) grid; each C element is
// owned by exactly one tile, and the per-element accumulation order
// (pc-panel order, then packed-k order inside the micro-kernel) is a
// function of the blocking constants only — never of the thread count or
// of which split carved the tile. Column stripes are NR-aligned, so every
// packed B micro-panel holds exactly the columns the serial sweep packs.
// The tier-1 GEMM parity tests assert this with exact equality.
//
// `gemm` is strictly serial so it can run inside batch-parallel loops;
// `gemm_parallel` fans out across the global thread pool and is used at top
// level (Linear layers, benchmark kernels).
#pragma once

#include <cstdint>
#include <vector>

namespace csq {

enum class Trans { no, yes };

// Register micro-tile (rows x cols of C held in accumulators) and the cache
// blocking constants. kMC/kKC size the packed A panel for L2 (64 KiB), kKC *
// kNC bounds the packed B panel (1 MiB); all are multiples of the micro-tile
// so packing never splits a micro-panel.
constexpr std::int64_t kGemmMR = 8;
constexpr std::int64_t kGemmNR = 8;
constexpr std::int64_t kGemmMC = 64;
constexpr std::int64_t kGemmKC = 256;
constexpr std::int64_t kGemmNC = 1024;

// How the pooled drivers carve C's tile grid across the thread pool. Every
// mode yields bit-identical results (see the determinism contract above);
// the choice only affects which shapes actually fan out.
//
//  * kRows: MC row tiles — the classic split. Best when m spans several MC
//    blocks; degenerates to serial for m <= kGemmMC (one tile).
//  * kCols: NR-aligned column stripes. Each task owns a stripe of C columns
//    and runs the full pc depth loop itself, packing op(B) for its stripe
//    into a per-slot region of the packed-B scratch (`pool_slot()` indexed,
//    one stripe region per pool slot — the pool runs one top-level task
//    graph at a time, so slots are never shared). The split wide-N/small-M
//    shapes (Linear heads, batch-1 conv GEMMs) need.
//  * kGrid: 2-D (row tile group x column stripe) grid for shapes big in
//    both dimensions when neither 1-D split alone fills the pool.
//  * kAuto: `gemm_choose_split` picks by shape — see its comment.
enum class GemmSplit { kAuto = -1, kRows = 0, kCols = 1, kGrid = 2 };

// Shape policy for GemmSplit::kAuto with `ways` workers (0 = pool width):
// row tiles >= ways -> kRows (classic split already fills the pool);
// otherwise a single row tile -> kCols; otherwise kGrid. Exposed so tests
// and the bench can pin the policy (an m<=kGemmMC wide-N GEMM must never
// fall back to the serial row branch).
GemmSplit gemm_choose_split(std::int64_t m, std::int64_t n, int ways);

// Number of independent tasks the pooled driver schedules for this shape
// under `split` (kAuto resolved first) with `ways` workers. 1 means the
// work runs on the calling thread — the regression tests pin that wide-N
// shapes with m as small as 1 still report > 1.
std::int64_t gemm_split_task_count(GemmSplit split, std::int64_t m,
                                   std::int64_t n, int ways);

// Reusable packing scratch. Grow-once: buffers expand to the largest panel
// seen and are then recycled, so a layer that owns a GemmScratch performs
// zero steady-state allocations. When no scratch is supplied the kernels use
// an internal thread-local instance (one per pool thread, also grow-once).
// Column-split/grid runs size `packed_b` as pool_slot_count() stripe
// regions (still grow-once, still kKC * kNC elements per slot at most).
struct GemmScratch {
  std::vector<float> packed_a;  // kMC x kKC panel, MR-tall micro-panels
  std::vector<float> packed_b;  // kKC x kNC panel, NR-wide micro-panels
};

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch = nullptr);

// `split` picks the tile decomposition (kAuto resolves by shape);
// `split_ways` forces the decomposition width (0 = pool thread count) so
// tests and benches can exercise 2/4/8-way grids on any machine — the
// result is bit-identical either way, only the task grid changes.
void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc,
                   GemmScratch* scratch = nullptr,
                   GemmSplit split = GemmSplit::kAuto, int split_ways = 0);

// ------------------------------------------------- integer (serving) GEMM --
//
//   C(m, n) int32  =  alpha * A(m, k) int8  *  op(B)(k, n) uint8   [+ C]
//
// The fixed-point inference kernel: A holds int8 weight codes, B holds
// unsigned 8-bit activation codes, accumulation is exact int32. Headroom is
// TIGHT, not ample: the runtime's split-plane chaining (alpha=2 on a hi
// plane reaching -128, plus the lo pass) costs up to 65535 per depth step,
// so exactness requires k <= 32767 — enforced by PackedIntWeights, and a
// bound any alpha/code-range extension must re-derive. The blocked loop
// nest, the packed-panel layouts and the
// MC-row-tile parallel split are shared with the float kernel above; panels
// are widened to int16 during packing so the micro-kernel runs
// convert-multiply-accumulate on full vectors. Integer arithmetic is
// associative, so serial and pooled execution are bit-identical by
// construction (and asserted by the runtime parity tests).
//
// `accumulate` == false overwrites C, true adds into it — the runtime's
// split-plane weights (codes beyond +/-127 decomposed as 2*hi + lo) chain
// two calls: alpha=2 overwrite, alpha=1 accumulate.
struct IntGemmScratch {
  std::vector<std::int16_t> packed_a;  // widened int8 micro-panels
  std::vector<std::int16_t> packed_b;  // widened uint8 micro-panels
  std::vector<std::uint8_t> packed_b_quad;  // raw uint8 K-quad micro-panels
};

void gemm_s8u8(Trans trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
               std::int32_t alpha, const std::int8_t* a, std::int64_t lda,
               const std::uint8_t* b, std::int64_t ldb, bool accumulate,
               std::int32_t* c, std::int64_t ldc,
               IntGemmScratch* scratch = nullptr);

void gemm_s8u8_parallel(Trans trans_b, std::int64_t m, std::int64_t n,
                        std::int64_t k, std::int32_t alpha,
                        const std::int8_t* a, std::int64_t lda,
                        const std::uint8_t* b, std::int64_t ldb,
                        bool accumulate, std::int32_t* c, std::int64_t ldc,
                        IntGemmScratch* scratch = nullptr,
                        GemmSplit split = GemmSplit::kAuto,
                        int split_ways = 0);

// Weight matrices are static at serving time: pack A into the kernel's
// micro-panel layout ONCE (all KC-depth blocks, MR-tall panels) and reuse it
// across every forward. `gemm_s8u8_packed_a_size` gives the required int16
// element count; the prepacked variants then skip the per-call A packing.
std::int64_t gemm_s8u8_packed_a_size(std::int64_t m, std::int64_t k);

void gemm_s8u8_pack_a(std::int64_t m, std::int64_t k, const std::int8_t* a,
                      std::int64_t lda, std::int16_t* packed);

void gemm_s8u8_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                         std::int64_t k, std::int32_t alpha,
                         const std::int16_t* packed_a, const std::uint8_t* b,
                         std::int64_t ldb, bool accumulate, std::int32_t* c,
                         std::int64_t ldc, IntGemmScratch* scratch = nullptr);

void gemm_s8u8_prepacked_parallel(Trans trans_b, std::int64_t m,
                                  std::int64_t n, std::int64_t k,
                                  std::int32_t alpha,
                                  const std::int16_t* packed_a,
                                  const std::uint8_t* b, std::int64_t ldb,
                                  bool accumulate, std::int32_t* c,
                                  std::int64_t ldc,
                                  IntGemmScratch* scratch = nullptr,
                                  GemmSplit split = GemmSplit::kAuto,
                                  int split_ways = 0);

// --------------------------------------------- sub-byte (low-bit) GEMM ----
//
// Precision-specialized variants of the s8u8 path for layers whose weight
// codes fit well under 8 bits. All of them keep raw 8-bit operands in the
// packed panels (half the panel bandwidth of the widened int16 layout above)
// laid out in K-QUADS: depth steps 4q..4q+3 sit adjacent per row/column, so
// the AVX2 micro-kernels fuse four depth steps with one vpmaddubsw +
// vpmaddwd. vpmaddubsw saturates its int16 pair sums, so exactness requires
// |a| <= 64 per weight code (255 * (|a0| + |a1|) <= 32767); the low-bit pack
// routine enforces that bound. Results are EXACTLY the int32 products the
// reference s8u8 kernel produces, and the serial/pooled bit-identity
// contract carries over unchanged (same NC/KC/MC split, same MC-row-tile
// parallel distribution).
//
// Three flavors:
//  * low-bit ("bit-serial collapsed"): A packed as raw int8 quads. Twice
//    the per-instruction MAC throughput of the widened baseline. Weight
//    codes |a| <= 64. The power-of-two bit-plane combination of the
//    runtime's bit-serial layers happens at pack time (exact shifts);
//    per-plane passes can still be chained through `alpha` (|alpha| <= 8,
//    covering 2^t plane weights for t <= 3) and `accumulate`. The combined
//    headroom bound is the caller's contract: |alpha| * k * 255 * max|a|
//    must stay below 2^31.
//  * low-bit WIDE (int16 accumulators): same packed layout; the micro-kernel
//    accumulates vpmaddubsw results in int16 lanes across a whole KC-depth
//    block and widens once at the end — three times the baseline MAC
//    throughput. Only exact when `gemm_s8u8_wide_eligible` holds for the
//    layer's depth and max |code| (binary +/-1 layers always qualify).
//  * nibble: A packed two codes per byte (signed range [-8, 7]), unpacked
//    inside the micro-kernel — one quarter of the baseline A-panel traffic
//    for 4-bit-and-below layers.
std::int64_t gemm_s8u8_lowbit_packed_a_size(std::int64_t m, std::int64_t k);

void gemm_s8u8_lowbit_pack_a(std::int64_t m, std::int64_t k,
                             const std::int8_t* a, std::int64_t lda,
                             std::int8_t* packed);

std::int64_t gemm_s8u8_nibble_packed_a_size(std::int64_t m, std::int64_t k);

void gemm_s8u8_nibble_pack_a(std::int64_t m, std::int64_t k,
                             const std::int8_t* a, std::int64_t lda,
                             std::uint8_t* packed);

// True when int16 accumulation over one KC-depth block cannot overflow for
// reduction depth k and weight codes bounded by max_abs_a: the per-lane sum
// is at most quad_kc(min(k, kKC)) / 2 * 255 * max_abs_a <= 32767.
bool gemm_s8u8_wide_eligible(std::int64_t k, std::int32_t max_abs_a);

void gemm_s8u8_lowbit_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                                std::int64_t k, std::int32_t alpha,
                                const std::int8_t* packed_a,
                                const std::uint8_t* b, std::int64_t ldb,
                                bool accumulate, std::int32_t* c,
                                std::int64_t ldc,
                                IntGemmScratch* scratch = nullptr);

void gemm_s8u8_lowbit_prepacked_parallel(Trans trans_b, std::int64_t m,
                                         std::int64_t n, std::int64_t k,
                                         std::int32_t alpha,
                                         const std::int8_t* packed_a,
                                         const std::uint8_t* b,
                                         std::int64_t ldb, bool accumulate,
                                         std::int32_t* c, std::int64_t ldc,
                                         IntGemmScratch* scratch = nullptr,
                                         GemmSplit split = GemmSplit::kAuto,
                                         int split_ways = 0);

void gemm_s8u8_lowbit_wide_prepacked(Trans trans_b, std::int64_t m,
                                     std::int64_t n, std::int64_t k,
                                     std::int32_t alpha,
                                     const std::int8_t* packed_a,
                                     const std::uint8_t* b, std::int64_t ldb,
                                     bool accumulate, std::int32_t* c,
                                     std::int64_t ldc,
                                     IntGemmScratch* scratch = nullptr);

void gemm_s8u8_lowbit_wide_prepacked_parallel(
    Trans trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
    std::int32_t alpha, const std::int8_t* packed_a, const std::uint8_t* b,
    std::int64_t ldb, bool accumulate, std::int32_t* c, std::int64_t ldc,
    IntGemmScratch* scratch = nullptr, GemmSplit split = GemmSplit::kAuto,
    int split_ways = 0);

void gemm_s8u8_nibble_prepacked(Trans trans_b, std::int64_t m, std::int64_t n,
                                std::int64_t k, std::int32_t alpha,
                                const std::uint8_t* packed_a,
                                const std::uint8_t* b, std::int64_t ldb,
                                bool accumulate, std::int32_t* c,
                                std::int64_t ldc,
                                IntGemmScratch* scratch = nullptr);

void gemm_s8u8_nibble_prepacked_parallel(Trans trans_b, std::int64_t m,
                                         std::int64_t n, std::int64_t k,
                                         std::int32_t alpha,
                                         const std::uint8_t* packed_a,
                                         const std::uint8_t* b,
                                         std::int64_t ldb, bool accumulate,
                                         std::int32_t* c, std::int64_t ldc,
                                         IntGemmScratch* scratch = nullptr,
                                         GemmSplit split = GemmSplit::kAuto,
                                         int split_ways = 0);

}  // namespace csq
