// Single-precision general matrix multiply.
//
//   C = alpha * op(A) * op(B) + beta * C
//
// Row-major storage with explicit leading dimensions (BLAS-style). Three
// transpose combinations are implemented — NN, NT and TN — which cover every
// use in the library (forward, input-gradient and weight-gradient of both
// Linear and im2col convolution).
//
// Blocking scheme (GotoBLAS/BLIS-style, single precision):
//
//   for jc in N step kNC:                column panel of C / B
//     for pc in K step kKC:              depth panel (beta applied at pc==0)
//       pack op(B)[pc:pc+kc, jc:jc+nc]   -> B~  (NR-wide micro-panels, L2/L3)
//       for ic in M step kMC:            row panel of C / A
//         pack op(A)[ic:ic+mc, pc:pc+kc] -> A~  (MR-tall micro-panels, L1/L2)
//         for jr, ir over the panel:     kMR x kNR register micro-kernel
//
// The micro-kernel keeps a kMR x kNR accumulator tile in registers and
// streams the packed panels, so every loaded cache line is used kMR (or kNR)
// times; edge tiles are zero-padded during packing and written back through
// bounds-checked tails. All three transpose variants route through the same
// packed kernel — only the pack routines differ. Packing scratch lives in
// thread-local grow-once buffers (or a caller-provided GemmScratch), so
// steady-state calls perform no heap allocations.
//
// Determinism contract: for fixed operands, `gemm` and `gemm_parallel`
// produce BIT-IDENTICAL results regardless of thread count. The parallel
// path distributes whole (ic, jr) tiles of C across the pool; each C element
// is owned by exactly one tile, and the per-element accumulation order
// (pc-panel order, then packed-k order inside the micro-kernel) is a
// function of the blocking constants only — never of the thread count. The
// tier-1 GEMM parity tests assert this with exact equality.
//
// `gemm` is strictly serial so it can run inside batch-parallel loops;
// `gemm_parallel` fans out across the global thread pool and is used at top
// level (Linear layers, benchmark kernels).
#pragma once

#include <cstdint>
#include <vector>

namespace csq {

enum class Trans { no, yes };

// Register micro-tile (rows x cols of C held in accumulators) and the cache
// blocking constants. kMC/kKC size the packed A panel for L2 (64 KiB), kKC *
// kNC bounds the packed B panel (1 MiB); all are multiples of the micro-tile
// so packing never splits a micro-panel.
constexpr std::int64_t kGemmMR = 8;
constexpr std::int64_t kGemmNR = 8;
constexpr std::int64_t kGemmMC = 64;
constexpr std::int64_t kGemmKC = 256;
constexpr std::int64_t kGemmNC = 1024;

// Reusable packing scratch. Grow-once: buffers expand to the largest panel
// seen and are then recycled, so a layer that owns a GemmScratch performs
// zero steady-state allocations. When no scratch is supplied the kernels use
// an internal thread-local instance (one per pool thread, also grow-once).
struct GemmScratch {
  std::vector<float> packed_a;  // kMC x kKC panel, MR-tall micro-panels
  std::vector<float> packed_b;  // kKC x kNC panel, NR-wide micro-panels
};

void gemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch = nullptr);

void gemm_parallel(Trans trans_a, Trans trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc,
                   GemmScratch* scratch = nullptr);

}  // namespace csq
