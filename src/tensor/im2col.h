// im2col / col2im transforms for convolution lowering.
//
// A single image (C, H, W) is unfolded into a matrix
//   col[(c*kh + ki)*kw + kj, oy*out_w + ox] = x[c, oy*stride - pad + ki,
//                                               ox*stride - pad + kj]
// (zero where the source index falls in padding), so that a convolution with
// weight (OC, C, kh, kw) becomes one GEMM: out = W_mat(OC, C*kh*kw) * col.
// col2im is the adjoint scatter-add used by the input-gradient pass.
#pragma once

#include <cstdint>

namespace csq {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const {
    return (height + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad - kernel_w) / stride + 1;
  }
  // Rows of the unfolded matrix.
  std::int64_t col_rows() const { return channels * kernel_h * kernel_w; }
  // Columns of the unfolded matrix.
  std::int64_t col_cols() const { return out_h() * out_w(); }

  // Validates that the geometry yields a positive output grid.
  void validate() const;
};

// image: C*H*W floats; col: col_rows()*col_cols() floats (fully overwritten).
void im2col(const ConvGeometry& geom, const float* image, float* col);

// Integer-runtime variant over unsigned 8-bit activation codes. Padding
// positions take `pad_code` — the code representing the real value zero of
// the producing edge (its zero point), so a zero-padded float convolution
// and the integer one see the same border.
void im2col_u8(const ConvGeometry& geom, const std::uint8_t* image,
               std::uint8_t* col, std::uint8_t pad_code);

// Adjoint: accumulates col back into image. `image` must be zeroed by the
// caller when a fresh gradient is wanted.
void col2im(const ConvGeometry& geom, const float* col, float* image);

}  // namespace csq
