#include "tensor/init.h"

#include <cmath>

#include "util/check.h"

namespace csq {

void fill_he_normal(Tensor& weights, std::int64_t fan_in, Rng& rng) {
  CSQ_CHECK(fan_in > 0) << "he init: fan_in must be positive";
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  fill_normal(weights, 0.0f, stddev, rng);
}

void fill_xavier_uniform(Tensor& weights, std::int64_t fan_in,
                         std::int64_t fan_out, Rng& rng) {
  CSQ_CHECK(fan_in > 0 && fan_out > 0) << "xavier init: bad fan";
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  fill_uniform(weights, -limit, limit, rng);
}

void fill_uniform(Tensor& tensor, float lo, float hi, Rng& rng) {
  float* data = tensor.data();
  const std::int64_t count = tensor.numel();
  for (std::int64_t i = 0; i < count; ++i) data[i] = rng.uniform(lo, hi);
}

void fill_normal(Tensor& tensor, float mean, float stddev, Rng& rng) {
  float* data = tensor.data();
  const std::int64_t count = tensor.numel();
  for (std::int64_t i = 0; i < count; ++i) data[i] = rng.normal(mean, stddev);
}

}  // namespace csq
