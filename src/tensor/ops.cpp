#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace csq {

void axpy(std::int64_t count, float alpha, const float* x, float* y) {
  for (std::int64_t i = 0; i < count; ++i) y[i] += alpha * x[i];
}

namespace {

template <typename BinaryOp>
Tensor elementwise(const Tensor& a, const Tensor& b, BinaryOp op,
                   const char* what) {
  CSQ_CHECK(a.same_shape(b)) << what << ": shape mismatch " << a.shape_string()
                             << " vs " << b.shape_string();
  Tensor result(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pr = result.data();
  const std::int64_t count = a.numel();
  for (std::int64_t i = 0; i < count; ++i) pr[i] = op(pa[i], pb[i]);
  return result;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, [](float x, float y) { return x * y; }, "mul");
}

void add_inplace(Tensor& a, const Tensor& b) {
  CSQ_CHECK(a.same_shape(b)) << "add_inplace: shape mismatch";
  axpy(a.numel(), 1.0f, b.data(), a.data());
}

void scale_inplace(Tensor& a, float alpha) {
  float* pa = a.data();
  const std::int64_t count = a.numel();
  for (std::int64_t i = 0; i < count; ++i) pa[i] *= alpha;
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor result = a;
  scale_inplace(result, alpha);
  return result;
}

float sum(const Tensor& a) {
  // Pairwise-ish accumulation in double to keep reductions stable for the
  // larger activation tensors.
  double acc = 0.0;
  const float* pa = a.data();
  const std::int64_t count = a.numel();
  for (std::int64_t i = 0; i < count; ++i) acc += pa[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  CSQ_CHECK(a.numel() > 0) << "mean of empty tensor";
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float best = 0.0f;
  const float* pa = a.data();
  const std::int64_t count = a.numel();
  for (std::int64_t i = 0; i < count; ++i) best = std::max(best, std::fabs(pa[i]));
  return best;
}

float min_value(const Tensor& a) {
  CSQ_CHECK(a.numel() > 0) << "min of empty tensor";
  return *std::min_element(a.data(), a.data() + a.numel());
}

float max_value(const Tensor& a) {
  CSQ_CHECK(a.numel() > 0) << "max of empty tensor";
  return *std::max_element(a.data(), a.data() + a.numel());
}

float squared_norm(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  const std::int64_t count = a.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    acc += static_cast<double>(pa[i]) * static_cast<double>(pa[i]);
  }
  return static_cast<float>(acc);
}

std::int64_t argmax(const float* values, std::int64_t count) {
  CSQ_CHECK(count > 0) << "argmax of empty span";
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < count; ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CSQ_CHECK(a.same_shape(b)) << "max_abs_diff: shape mismatch";
  float best = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t count = a.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    best = std::max(best, std::fabs(pa[i] - pb[i]));
  }
  return best;
}

}  // namespace csq
