// Workspace — a per-layer scratch arena for the training/eval hot path.
//
// Conv2d and Linear own one Workspace each and draw every recurring buffer
// from it: the cached im2col matrix, per-thread grad_col scratch, the
// dLoss/dWeight staging tensor, and the packed-panel storage the blocked
// GEMM uses. All slots have grow-once semantics — a buffer expands to the
// largest extent ever requested and is then recycled verbatim — so a
// steady-state forward+backward step performs ZERO heap allocations. The
// growth_count() counter makes that property testable: the allocation
// regression tests assert it stays flat across steps.
//
// Slots are indexed by small integers local to the owning layer (each layer
// declares its own slot enum). Per-thread float scratch is laid out as
// pool_slot_count() stripes indexed by pool_slot() (util/thread_pool.h), so
// bodies running inside parallel regions get private stripes without
// locking.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace csq {

class Workspace {
 public:
  // Default bound on slot indices (layers use a handful of slots each).
  // Slot storage is reserved up front so a tensor()/floats() call never
  // relocates other slots — references handed out earlier in the same step
  // stay valid. Owners with many buffers (the integer runtime's compiled
  // graph draws one slot per activation edge) construct with an explicit
  // capacity.
  static constexpr int kMaxSlots = 8;

  explicit Workspace(int max_slots = kMaxSlots);
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Flat float scratch of at least `count` elements. Contents unspecified.
  float* floats(int slot, std::int64_t count);

  // Flat integer scratch (uint8 activation codes / int32 accumulators) for
  // the fixed-point inference path. Same grow-once semantics and growth
  // accounting as the float slots; each element type has its own slot space.
  std::uint8_t* bytes(int slot, std::int64_t count);
  std::int32_t* ints(int slot, std::int64_t count);

  // Tensor slot reshaped in place to `shape`; contents unspecified. The
  // returned reference stays valid until the next call for the same slot.
  Tensor& tensor(int slot, const std::vector<std::int64_t>& shape);
  Tensor& tensor(int slot, std::initializer_list<std::int64_t> shape);

  // The slot's current tensor, untouched (shape and contents as last
  // written). The slot must have been populated by a prior tensor() call.
  const Tensor& peek(int slot) const;

  // Packed-panel storage for gemm/gemm_parallel calls issued by the owning
  // layer at top level (serial per-sample GEMMs inside parallel regions use
  // the kernels' thread-local scratch instead).
  GemmScratch& gemm_scratch() { return gemm_scratch_; }

  // Number of buffer growth events since construction. A steady-state
  // training step must leave this unchanged.
  std::uint64_t growth_count() const { return growth_count_; }

  // Bytes currently retained by all slots (float, byte, int and tensor
  // storage; GEMM packing scratch excluded) — the arena's resident
  // footprint. The integer runtime reports this per compiled graph as
  // CompiledGraph::workspace_bytes().
  std::int64_t total_bytes() const;

 private:
  // Returns the slot tensor, accounting a growth event only when `count`
  // exceeds the slot's allocation high-water mark.
  Tensor& tensor_slot_for(int slot, std::int64_t count);

  // Shared grow-once slot logic for the flat scratch spans.
  template <typename T>
  T* flat_slot(std::vector<std::vector<T>>& slots, int slot,
               std::int64_t count);

  int max_slots_;
  std::vector<std::vector<float>> float_slots_;
  std::vector<std::vector<std::uint8_t>> byte_slots_;
  std::vector<std::vector<std::int32_t>> int_slots_;
  std::vector<Tensor> tensor_slots_;
  std::vector<std::int64_t> tensor_high_water_;
  GemmScratch gemm_scratch_;
  std::uint64_t growth_count_ = 0;
};

}  // namespace csq
