// Dense float32 tensor with contiguous row-major storage.
//
// The library deliberately keeps a single dtype (float) and a single layout
// (contiguous, row-major): every operation the CSQ pipeline needs — GEMM,
// im2col convolution, batch-norm, elementwise gate evaluation — is expressible
// over flat spans, and keeping layout trivial keeps kernels fast and testable.
// Copies are deep; Tensor is a regular value type (Core Guidelines C.20).
//
// Storage recycling: tensor storage (the data span AND the shape vector) is
// drawn from a two-tier recycling pool and returned to it on destruction.
// Each thread fronts the shared pool with a lock-free thread-local cache:
// training loops create and destroy the same tensor shapes every step
// (layer outputs, gradients, scratch), so after a warmup step each thread
// serves its own requests from its own shelves without touching the heap OR
// the pool mutex — steady-state forward+backward performs zero allocations,
// deterministically even when N data-parallel workers cycle identical
// working sets concurrently (a single shared shelf would make that a race).
// Local misses and overflow fall back to the byte-capped shared tier, and a
// thread's cache flushes into it at thread exit. Observable through
// tensor_pool_stats() (the allocation regression tests assert on it).
//
// Borrowed tensors: Tensor::borrow() wraps an externally owned float span
// (a ParameterArena segment, a contiguous micro-batch slice) as a
// non-owning view. A borrowed tensor reads and writes the caller's memory
// directly; copying FROM it deep-copies into owned storage, while
// assigning INTO it copies elements in place (element count must match) so
// the view never migrates out of its arena. Reshaping storage
// (resize_unspecified) is forbidden on views.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace csq {

class Tensor {
 public:
  Tensor() = default;
  // Zero-filled tensor of the given shape. The const& overload recycles
  // pooled storage for both the shape and the data; the && overload adopts
  // the caller's shape vector.
  explicit Tensor(const std::vector<std::int64_t>& shape);
  explicit Tensor(std::vector<std::int64_t>&& shape);
  Tensor(std::initializer_list<std::int64_t> shape);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  // Factories ----------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  static Tensor from_data(std::vector<std::int64_t> shape,
                          std::vector<float> values);
  // Pool-backed tensor with UNSPECIFIED contents — for outputs that are
  // fully overwritten (GEMM with beta == 0, im2col); skips the zero-fill.
  static Tensor uninitialized(const std::vector<std::int64_t>& shape);
  static Tensor uninitialized(std::initializer_list<std::int64_t> shape);
  // Non-owning view over caller-owned contiguous storage (see the borrowed-
  // tensor notes above). `data` must cover shape_numel(shape) floats and
  // outlive the view.
  static Tensor borrow(float* data, const std::vector<std::int64_t>& shape);

  // Shape --------------------------------------------------------------
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(int axis) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  std::int64_t numel() const {
    return borrowed_ != nullptr ? borrowed_count_
                                : static_cast<std::int64_t>(data_.size());
  }
  bool empty() const { return numel() == 0; }
  bool is_borrowed() const { return borrowed_ != nullptr; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_string() const;

  // Returns a tensor with identical data and a new shape with the same
  // element count. O(numel) copy on lvalues, O(1) move on rvalues.
  Tensor reshaped(std::vector<std::int64_t> new_shape) const&;
  Tensor reshaped(std::vector<std::int64_t> new_shape) &&;

  // In-place reshape that reuses the existing storage when capacity allows
  // (grow-once semantics; zero steady-state allocations). Contents are
  // UNSPECIFIED afterwards — intended for Workspace-held scratch tensors.
  void resize_unspecified(const std::vector<std::int64_t>& new_shape);
  void resize_unspecified(std::initializer_list<std::int64_t> new_shape);

  // Data access ---------------------------------------------------------
  float* data() { return borrowed_ != nullptr ? borrowed_ : data_.data(); }
  const float* data() const {
    return borrowed_ != nullptr ? borrowed_ : data_.data();
  }
  float& operator[](std::int64_t flat_index) { return data()[check_flat(flat_index)]; }
  float operator[](std::int64_t flat_index) const { return data()[check_flat(flat_index)]; }

  // Multi-dimensional accessors (bounds-checked; intended for tests and
  // non-hot-path code — kernels index flat spans directly).
  float& at(std::initializer_list<std::int64_t> index);
  float at(std::initializer_list<std::int64_t> index) const;

  // Whole-tensor helpers --------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }

 private:
  std::size_t check_flat(std::int64_t flat_index) const;
  std::size_t flat_offset(std::initializer_list<std::int64_t> index) const;
  // Fits data_ to shape_ with unspecified contents, recycling via the pool.
  void resize_storage();

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
  // Borrow mode: when set, `borrowed_` is the data span and data_ stays
  // empty. The view neither frees nor pools the span.
  float* borrowed_ = nullptr;
  std::int64_t borrowed_count_ = 0;
};

// Computes the element count of a shape; throws on negative extents.
std::int64_t shape_numel(const std::vector<std::int64_t>& shape);

// ------------------------------------------------------- storage pool ----

struct TensorPoolStats {
  // Data-span requests served by recycling vs. fresh heap allocations.
  std::uint64_t data_requests = 0;
  std::uint64_t data_reuses = 0;
  std::uint64_t data_allocations = 0;
  // Bytes currently cached in the pool (bounded by an internal cap).
  std::uint64_t cached_bytes = 0;
};

TensorPoolStats tensor_pool_stats();

// Frees every cached buffer (tests and memory-pressure handling).
void tensor_pool_trim();

}  // namespace csq
