// Dense float32 tensor with contiguous row-major storage.
//
// The library deliberately keeps a single dtype (float) and a single layout
// (contiguous, row-major): every operation the CSQ pipeline needs — GEMM,
// im2col convolution, batch-norm, elementwise gate evaluation — is expressible
// over flat spans, and keeping layout trivial keeps kernels fast and testable.
// Copies are deep; Tensor is a regular value type (Core Guidelines C.20).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace csq {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape);

  // Factories ----------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  static Tensor from_data(std::vector<std::int64_t> shape,
                          std::vector<float> values);

  // Shape --------------------------------------------------------------
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(int axis) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_string() const;

  // Returns a tensor with identical data and a new shape with the same
  // element count. O(numel) copy on lvalues, O(1) move on rvalues.
  Tensor reshaped(std::vector<std::int64_t> new_shape) const&;
  Tensor reshaped(std::vector<std::int64_t> new_shape) &&;

  // Data access ---------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::int64_t flat_index) { return data_[check_flat(flat_index)]; }
  float operator[](std::int64_t flat_index) const { return data_[check_flat(flat_index)]; }

  // Multi-dimensional accessors (bounds-checked; intended for tests and
  // non-hot-path code — kernels index flat spans directly).
  float& at(std::initializer_list<std::int64_t> index);
  float at(std::initializer_list<std::int64_t> index) const;

  // Whole-tensor helpers --------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }

 private:
  std::size_t check_flat(std::int64_t flat_index) const;
  std::size_t flat_offset(std::initializer_list<std::int64_t> index) const;

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

// Computes the element count of a shape; throws on negative extents.
std::int64_t shape_numel(const std::vector<std::int64_t>& shape);

}  // namespace csq
