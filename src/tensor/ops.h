// Elementwise and reduction operations over Tensors and raw spans.
//
// Kernels operate on flat float spans; the Tensor overloads just validate
// shapes and forward. Keeping the span forms public lets layer code work on
// slices (e.g. one sample of a batch) without materializing sub-tensors.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace csq {

// y[i] += alpha * x[i]
void axpy(std::int64_t count, float alpha, const float* x, float* y);

// dst[i] = a[i] + b[i] / a[i] - b[i] / a[i] * b[i]
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// In-place variants.
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float alpha);

// Scalar ops returning new tensors.
Tensor scale(const Tensor& a, float alpha);

// Reductions.
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
float min_value(const Tensor& a);
float max_value(const Tensor& a);
// Squared L2 norm.
float squared_norm(const Tensor& a);

// Index of the maximum element in [begin, begin+count) of a flat span.
std::int64_t argmax(const float* values, std::int64_t count);

// Relative max-abs difference between two same-shaped tensors; used by tests
// and by the fixed-point equivalence checks.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace csq
