#include "tensor/workspace.h"

#include "util/check.h"

namespace csq {

Workspace::Workspace(int max_slots) : max_slots_(max_slots) {
  CSQ_CHECK(max_slots > 0) << "workspace: bad slot capacity";
  // Reserving up front keeps slot creation from relocating sibling slots
  // (Tensor& references returned earlier must survive later slot growth).
  float_slots_.reserve(static_cast<std::size_t>(max_slots_));
  tensor_slots_.reserve(static_cast<std::size_t>(max_slots_));
}

template <typename T>
T* Workspace::flat_slot(std::vector<std::vector<T>>& slots, int slot,
                        std::int64_t count) {
  CSQ_CHECK(slot >= 0 && slot < max_slots_ && count >= 0)
      << "workspace: bad flat slot request";
  if (static_cast<std::size_t>(slot) >= slots.size()) {
    slots.resize(static_cast<std::size_t>(slot) + 1);
    ++growth_count_;
  }
  std::vector<T>& buffer = slots[static_cast<std::size_t>(slot)];
  if (buffer.size() < static_cast<std::size_t>(count)) {
    buffer.resize(static_cast<std::size_t>(count));
    ++growth_count_;
  }
  return buffer.data();
}

float* Workspace::floats(int slot, std::int64_t count) {
  return flat_slot(float_slots_, slot, count);
}

std::uint8_t* Workspace::bytes(int slot, std::int64_t count) {
  return flat_slot(byte_slots_, slot, count);
}

std::int32_t* Workspace::ints(int slot, std::int64_t count) {
  return flat_slot(int_slots_, slot, count);
}

Tensor& Workspace::tensor(int slot, const std::vector<std::int64_t>& shape) {
  Tensor& t = tensor_slot_for(slot, shape_numel(shape));
  t.resize_unspecified(shape);
  return t;
}

Tensor& Workspace::tensor(int slot, std::initializer_list<std::int64_t> shape) {
  std::int64_t count = 1;
  for (const std::int64_t extent : shape) count *= extent;
  Tensor& t = tensor_slot_for(slot, count);
  t.resize_unspecified(shape);
  return t;
}

Tensor& Workspace::tensor_slot_for(int slot, std::int64_t count) {
  CSQ_CHECK(slot >= 0 && slot < max_slots_) << "workspace: bad tensor slot";
  if (static_cast<std::size_t>(slot) >= tensor_slots_.size()) {
    tensor_slots_.resize(static_cast<std::size_t>(slot) + 1);
    tensor_high_water_.resize(static_cast<std::size_t>(slot) + 1, 0);
    ++growth_count_;
  }
  // Count growth only when the request exceeds the slot's high-water mark —
  // that is when resize_unspecified actually has to allocate. Shrinking and
  // re-growing within reserved capacity (ragged last batches, alternating
  // train/eval batch sizes) stays allocation-free and is not counted.
  std::int64_t& high_water = tensor_high_water_[static_cast<std::size_t>(slot)];
  if (count > high_water) {
    ++growth_count_;
    high_water = count;
  }
  return tensor_slots_[static_cast<std::size_t>(slot)];
}

std::int64_t Workspace::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& slot : float_slots_) {
    total += static_cast<std::int64_t>(slot.size() * sizeof(float));
  }
  for (const auto& slot : byte_slots_) {
    total += static_cast<std::int64_t>(slot.size());
  }
  for (const auto& slot : int_slots_) {
    total += static_cast<std::int64_t>(slot.size() * sizeof(std::int32_t));
  }
  for (const std::int64_t high_water : tensor_high_water_) {
    total += high_water * static_cast<std::int64_t>(sizeof(float));
  }
  return total;
}

const Tensor& Workspace::peek(int slot) const {
  CSQ_CHECK(slot >= 0 && static_cast<std::size_t>(slot) < tensor_slots_.size())
      << "workspace: peek of unpopulated slot " << slot;
  return tensor_slots_[static_cast<std::size_t>(slot)];
}

}  // namespace csq
