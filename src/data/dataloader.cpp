#include "data/dataloader.h"

#include <numeric>

#include "util/check.h"

namespace csq {

DataLoader::DataLoader(const InMemoryDataset& dataset, std::int64_t batch_size,
                       bool shuffle, Rng rng)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(rng) {
  CSQ_CHECK(batch_size > 0) << "dataloader: batch size must be positive";
  CSQ_CHECK(dataset.size() > 0) << "dataloader: empty dataset";
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch();
}

std::int64_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  if (shuffle_) rng_.shuffle(order_);
  cursor_ = 0;
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= dataset_.size()) return false;
  const std::int64_t end =
      std::min(cursor_ + batch_size_, dataset_.size());
  std::vector<int> indices(order_.begin() + cursor_, order_.begin() + end);
  out = dataset_.gather(indices);
  cursor_ = end;
  return true;
}

}  // namespace csq
