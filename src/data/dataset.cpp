#include "data/dataset.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace csq {

InMemoryDataset::InMemoryDataset(Tensor images, std::vector<int> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
  CSQ_CHECK(images_.ndim() == 4) << "dataset images must be (N,C,H,W)";
  CSQ_CHECK(images_.dim(0) == static_cast<std::int64_t>(labels_.size()))
      << "dataset: " << labels_.size() << " labels for " << images_.dim(0)
      << " images";
  int max_label = -1;
  for (const int label : labels_) {
    CSQ_CHECK(label >= 0) << "dataset: negative label";
    max_label = std::max(max_label, label);
  }
  num_classes_ = max_label + 1;
}

Batch InMemoryDataset::gather(const std::vector<int>& indices) const {
  const std::int64_t batch = static_cast<std::int64_t>(indices.size());
  const std::int64_t sample_size =
      images_.dim(1) * images_.dim(2) * images_.dim(3);

  Batch result;
  result.images =
      Tensor({batch, images_.dim(1), images_.dim(2), images_.dim(3)});
  result.labels.resize(indices.size());

  const float* src = images_.data();
  float* dst = result.images.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const int index = indices[static_cast<std::size_t>(b)];
    CSQ_CHECK(index >= 0 && index < size())
        << "dataset gather: index " << index << " out of range " << size();
    std::memcpy(dst + b * sample_size, src + index * sample_size,
                static_cast<std::size_t>(sample_size) * sizeof(float));
    result.labels[static_cast<std::size_t>(b)] =
        labels_[static_cast<std::size_t>(index)];
  }
  return result;
}

}  // namespace csq
