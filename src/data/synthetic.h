// Synthetic class-template image generator — the stand-in for CIFAR-10 and
// ImageNet (see DESIGN.md, substitutions table).
//
// Each class is defined by a procedural template: a sum of oriented
// sinusoidal gratings (Gabor-like textures) and Gaussian blobs with random
// per-channel color weights. A sample is the class template under a random
// spatial shift, optional horizontal flip, contrast jitter and additive
// Gaussian pixel noise. The result is a dataset with
//   * class-conditional structure a small conv net can learn,
//   * intra-class variation producing a real generalization gap, and
//   * graded difficulty (noise / shift / class count), so quantization hurts
//     accuracy progressively — the property the paper's tables measure.
// Generation is deterministic in the seed.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace csq {

struct SyntheticConfig {
  int num_classes = 10;
  std::int64_t train_samples = 1000;
  std::int64_t test_samples = 400;
  std::int64_t channels = 3;
  std::int64_t height = 16;
  std::int64_t width = 16;
  // Per-class template complexity.
  int gratings_per_class = 3;
  int blobs_per_class = 2;
  // Augmentation / difficulty.
  float noise_stddev = 0.45f;
  int max_shift = 2;
  bool random_flip = true;
  float contrast_jitter = 0.3f;  // contrast in [1-j, 1+j]
  std::uint64_t seed = 17;

  // Paper-dataset presets (scaled to the bench substrate).
  static SyntheticConfig cifar_like();
  static SyntheticConfig imagenet_like();
};

struct SyntheticDataset {
  InMemoryDataset train;
  InMemoryDataset test;
};

// Generates train and test splits from disjoint sample draws of the same
// class templates.
SyntheticDataset make_synthetic(const SyntheticConfig& config);

}  // namespace csq
