// In-memory labeled image dataset.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace csq {

struct Batch {
  Tensor images;            // (B, C, H, W)
  std::vector<int> labels;  // size B
};

class InMemoryDataset {
 public:
  InMemoryDataset() = default;
  InMemoryDataset(Tensor images, std::vector<int> labels);

  std::int64_t size() const { return static_cast<std::int64_t>(labels_.size()); }
  std::int64_t channels() const { return images_.dim(1); }
  std::int64_t height() const { return images_.dim(2); }
  std::int64_t width() const { return images_.dim(3); }
  int num_classes() const { return num_classes_; }

  const Tensor& images() const { return images_; }
  const std::vector<int>& labels() const { return labels_; }

  // Gathers the given sample indices into a contiguous batch.
  Batch gather(const std::vector<int>& indices) const;

 private:
  Tensor images_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace csq
