// Shuffling mini-batch iterator over an InMemoryDataset.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace csq {

class DataLoader {
 public:
  // The loader keeps a reference to the dataset; the dataset must outlive it.
  DataLoader(const InMemoryDataset& dataset, std::int64_t batch_size,
             bool shuffle, Rng rng);

  // Batches per epoch (last partial batch included).
  std::int64_t batches_per_epoch() const;

  // Starts a new epoch: reshuffles when enabled and resets the cursor.
  void start_epoch();

  // Returns false when the epoch is exhausted.
  bool next(Batch& out);

 private:
  const InMemoryDataset& dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace csq
