#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace csq {

SyntheticConfig SyntheticConfig::cifar_like() {
  // Difficulty calibrated so a width-8 ResNet-20 lands at ~85-90% test
  // accuracy (a real generalization gap) and 1-bit STE quantization
  // collapses while CSQ survives — the regimes the paper's tables probe.
  SyntheticConfig config;
  config.num_classes = 10;
  config.train_samples = 800;
  config.test_samples = 400;
  config.height = 16;
  config.width = 16;
  config.noise_stddev = 1.5f;
  config.max_shift = 3;
  config.contrast_jitter = 0.4f;
  config.seed = 17;
  return config;
}

SyntheticConfig SyntheticConfig::imagenet_like() {
  SyntheticConfig config;
  // More classes, more intra-class variation: the "scalability" axis of the
  // paper's ImageNet experiments, at bench scale.
  config.num_classes = 25;
  config.train_samples = 2000;
  config.test_samples = 600;
  config.height = 16;
  config.width = 16;
  config.gratings_per_class = 4;
  config.blobs_per_class = 3;
  config.noise_stddev = 1.2f;
  config.max_shift = 3;
  config.contrast_jitter = 0.4f;
  config.seed = 23;
  return config;
}

namespace {

struct Grating {
  float freq_y = 0.0f;
  float freq_x = 0.0f;
  float phase = 0.0f;
  float color[3] = {0.0f, 0.0f, 0.0f};
};

struct Blob {
  float center_y = 0.0f;
  float center_x = 0.0f;
  float inv_sigma_sq = 1.0f;
  float color[3] = {0.0f, 0.0f, 0.0f};
};

struct ClassTemplate {
  std::vector<Grating> gratings;
  std::vector<Blob> blobs;
};

ClassTemplate make_template(const SyntheticConfig& config, Rng& rng) {
  ClassTemplate tpl;
  const int channels = static_cast<int>(config.channels);
  tpl.gratings.resize(static_cast<std::size_t>(config.gratings_per_class));
  for (Grating& grating : tpl.gratings) {
    // Frequencies in cycles across the image; mid-band so neither constant
    // nor aliased at 16x16.
    const float freq = rng.uniform(0.8f, 3.0f);
    const float angle = rng.uniform(0.0f, 3.14159265f);
    grating.freq_y = freq * std::sin(angle);
    grating.freq_x = freq * std::cos(angle);
    grating.phase = rng.uniform(0.0f, 6.2831853f);
    for (int c = 0; c < channels && c < 3; ++c) {
      grating.color[c] = rng.uniform(-1.0f, 1.0f);
    }
  }
  tpl.blobs.resize(static_cast<std::size_t>(config.blobs_per_class));
  for (Blob& blob : tpl.blobs) {
    blob.center_y = rng.uniform(0.2f, 0.8f);
    blob.center_x = rng.uniform(0.2f, 0.8f);
    const float sigma = rng.uniform(0.08f, 0.25f);
    blob.inv_sigma_sq = 1.0f / (2.0f * sigma * sigma);
    for (int c = 0; c < channels && c < 3; ++c) {
      blob.color[c] = rng.uniform(-1.5f, 1.5f);
    }
  }
  return tpl;
}

// Renders the template at unit contrast, no shift, into (C, H, W).
void render_template(const SyntheticConfig& config, const ClassTemplate& tpl,
                     float* out) {
  const std::int64_t height = config.height;
  const std::int64_t width = config.width;
  const std::int64_t plane = height * width;
  for (std::int64_t c = 0; c < config.channels; ++c) {
    for (std::int64_t y = 0; y < height; ++y) {
      const float fy = static_cast<float>(y) / static_cast<float>(height);
      for (std::int64_t x = 0; x < width; ++x) {
        const float fx = static_cast<float>(x) / static_cast<float>(width);
        float value = 0.0f;
        for (const Grating& grating : tpl.gratings) {
          value += grating.color[c % 3] *
                   std::sin(6.2831853f *
                                (grating.freq_y * fy + grating.freq_x * fx) +
                            grating.phase);
        }
        for (const Blob& blob : tpl.blobs) {
          const float dy = fy - blob.center_y;
          const float dx = fx - blob.center_x;
          value += blob.color[c % 3] *
                   std::exp(-(dy * dy + dx * dx) * blob.inv_sigma_sq);
        }
        out[c * plane + y * width + x] = value;
      }
    }
  }
}

// Samples one augmented view of a rendered template.
void sample_view(const SyntheticConfig& config, const float* tpl_image,
                 float* out, Rng& rng) {
  const std::int64_t height = config.height;
  const std::int64_t width = config.width;
  const std::int64_t plane = height * width;
  const int shift_range = 2 * config.max_shift + 1;
  const int dy = config.max_shift == 0
                     ? 0
                     : static_cast<int>(rng.uniform_int(
                           static_cast<std::uint32_t>(shift_range))) -
                           config.max_shift;
  const int dx = config.max_shift == 0
                     ? 0
                     : static_cast<int>(rng.uniform_int(
                           static_cast<std::uint32_t>(shift_range))) -
                           config.max_shift;
  const bool flip = config.random_flip && rng.bernoulli(0.5f);
  const float contrast =
      rng.uniform(1.0f - config.contrast_jitter, 1.0f + config.contrast_jitter);

  for (std::int64_t c = 0; c < config.channels; ++c) {
    const float* src = tpl_image + c * plane;
    float* dst = out + c * plane;
    for (std::int64_t y = 0; y < height; ++y) {
      // Shifted source row, clamped to the border (replicate padding).
      std::int64_t sy = y + dy;
      sy = sy < 0 ? 0 : (sy >= height ? height - 1 : sy);
      for (std::int64_t x = 0; x < width; ++x) {
        std::int64_t sx = (flip ? width - 1 - x : x) + dx;
        sx = sx < 0 ? 0 : (sx >= width ? width - 1 : sx);
        dst[y * width + x] = contrast * src[sy * width + sx] +
                             config.noise_stddev * rng.normal();
      }
    }
  }
}

InMemoryDataset make_split(const SyntheticConfig& config,
                           const std::vector<std::vector<float>>& templates,
                           std::int64_t total, Rng& rng) {
  const std::int64_t sample_size =
      config.channels * config.height * config.width;
  Tensor images({total, config.channels, config.height, config.width});
  std::vector<int> labels(static_cast<std::size_t>(total));

  float* data = images.data();
  for (std::int64_t i = 0; i < total; ++i) {
    // Round-robin class assignment keeps the splits exactly balanced.
    const int label = static_cast<int>(i % config.num_classes);
    labels[static_cast<std::size_t>(i)] = label;
    sample_view(config, templates[static_cast<std::size_t>(label)].data(),
                data + i * sample_size, rng);
  }
  return InMemoryDataset(std::move(images), std::move(labels));
}

}  // namespace

SyntheticDataset make_synthetic(const SyntheticConfig& config) {
  CSQ_CHECK(config.num_classes >= 2) << "synthetic: need at least 2 classes";
  CSQ_CHECK(config.train_samples > 0 && config.test_samples > 0)
      << "synthetic: empty split";
  CSQ_CHECK(config.channels >= 1 && config.height >= 4 && config.width >= 4)
      << "synthetic: image too small";

  Rng rng(config.seed);
  const std::int64_t sample_size =
      config.channels * config.height * config.width;

  std::vector<std::vector<float>> templates(
      static_cast<std::size_t>(config.num_classes));
  for (auto& tpl_image : templates) {
    const ClassTemplate tpl = make_template(config, rng);
    tpl_image.resize(static_cast<std::size_t>(sample_size));
    render_template(config, tpl, tpl_image.data());
  }

  SyntheticDataset dataset;
  Rng train_rng = rng.split();
  Rng test_rng = rng.split();
  dataset.train =
      make_split(config, templates, config.train_samples, train_rng);
  dataset.test = make_split(config, templates, config.test_samples, test_rng);
  return dataset;
}

}  // namespace csq
