#include "serve/autoscaler.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"

namespace csq {
namespace serve {

ReplicaAutoscaler::ReplicaAutoscaler(BatchingServer& server,
                                     std::string model_id,
                                     AutoscalerOptions options)
    : server_(server), model_id_(std::move(model_id)), options_(options) {
  CSQ_CHECK(options_.interval_us >= 1)
      << "autoscaler: interval_us must be positive";
  CSQ_CHECK(options_.min_replicas >= 1)
      << "autoscaler: min_replicas must be at least 1";
  CSQ_CHECK(options_.max_replicas >= options_.min_replicas)
      << "autoscaler: max_replicas below min_replicas";
  CSQ_CHECK(options_.up_queue_depth >= 1)
      << "autoscaler: up_queue_depth must be at least 1";
  CSQ_CHECK(options_.up_wait_p99_us >= 0)
      << "autoscaler: negative up_wait_p99_us";
  CSQ_CHECK(options_.up_ticks >= 1 && options_.down_idle_ticks >= 1)
      << "autoscaler: tick thresholds must be at least 1";
  CSQ_CHECK(options_.cooldown_ticks >= 0)
      << "autoscaler: negative cooldown_ticks";
}

ReplicaAutoscaler::~ReplicaAutoscaler() { stop(); }

void ReplicaAutoscaler::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CSQ_CHECK(!running_) << "autoscaler: start called twice";
    running_ = true;
    stopping_ = false;
    stats_ = Stats{};
    stats_.current_target = options_.min_replicas;
  }
  // Validates the model id (throws for unknown ids) and pins the floor
  // before the policy thread exists.
  server_.set_replicas(model_id_, options_.min_replicas);
  thread_ = std::thread([this] { policy_loop(); });
}

void ReplicaAutoscaler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

ReplicaAutoscaler::Stats ReplicaAutoscaler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ReplicaAutoscaler::policy_loop() {
  int target = options_.min_replicas;
  int pressure_ticks = 0;
  int idle_ticks = 0;
  int cooldown = 0;
  std::uint64_t last_requests = server_.stats(model_id_).requests;

  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stop_cv_.wait_for(lock,
                            std::chrono::microseconds(options_.interval_us),
                            [&] { return stopping_; })) {
        return;
      }
      ++stats_.ticks;
    }

    const BatchingServer::ShardStats shard = server_.stats(model_id_);
    const std::uint64_t arrivals = shard.requests - last_requests;
    last_requests = shard.requests;
    const int active = std::max(shard.replicas_active, 1);

    const bool pressured =
        shard.queue_depth >
            options_.up_queue_depth * static_cast<std::int64_t>(active) ||
        (options_.up_wait_p99_us > 0 &&
         shard.flush_wait_p99_us > options_.up_wait_p99_us);
    const bool idle = shard.queue_depth == 0 && arrivals == 0;

    pressure_ticks = pressured ? pressure_ticks + 1 : 0;
    idle_ticks = idle ? idle_ticks + 1 : 0;
    if (cooldown > 0) {
      --cooldown;
      continue;
    }

    int next_target = target;
    if (pressure_ticks >= options_.up_ticks &&
        target < options_.max_replicas) {
      next_target = target + 1;
    } else if (idle_ticks >= options_.down_idle_ticks &&
               target > options_.min_replicas) {
      next_target = target - 1;
    }
    if (next_target == target) continue;

    // Either stop order is safe: a tick that races BatchingServer::stop()
    // (or fires after it) hits set_replicas' lifecycle no-op instead of a
    // CHECK -- a throw here would escape the policy thread and terminate
    // the process. Callers therefore need no autoscaler-before-server
    // shutdown discipline.
    server_.set_replicas(model_id_, next_target);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_target > target) {
        ++stats_.scale_ups;
      } else {
        ++stats_.scale_downs;
      }
      stats_.current_target = next_target;
    }
    target = next_target;
    pressure_ticks = 0;
    idle_ticks = 0;
    cooldown = options_.cooldown_ticks;
  }
}

}  // namespace serve
}  // namespace csq
