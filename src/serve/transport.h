// serve::ServeTransport — cross-process serving over loopback TCP: the
// network front of the in-process BatchingServer.
//
// A client process connects to 127.0.0.1:<port> and speaks a tiny
// length-prefixed binary protocol (little-endian, fixed-width fields;
// loopback-only, so no byte-order negotiation):
//
//   request frame:
//     u32  body_len                    (bytes after this field)
//     u16  model_id_len                (<= 256)
//     u8   model_id[model_id_len]
//     i64  deadline_us                 -1 = no deadline; 0 = already
//                                      expired (admit, then kTimeout unless
//                                      completable without waiting); > 0 =
//                                      bound on queueing + service; < -1 =
//                                      kBadRequest. Matches the PINNED
//                                      BatchingServer::try_infer semantics.
//     u32  sample_count                must equal the model's C*H*W
//     f32  samples[sample_count]
//
//   response frame:
//     u32  body_len
//     u8   status                      WireStatus below
//     u32  logit_count                 model out_features on kOk, else 0
//     f32  logits[logit_count]
//
// Server architecture: ONE epoll event thread owns the listener and every
// connection's read side — it accepts, assembles frames from partial reads,
// and enqueues complete frames for N dispatcher threads that call
// BatchingServer::try_infer (the existing zero-alloc request ring; typed
// ServeStatus failures map 1:1 onto wire status codes) and write the
// response. Per-connection frames are served strictly in order (one in
// flight at a time), so responses never interleave.
//
// Graceful drain: stop() CLOSES THE LISTENER FIRST — new connections are
// refused while every already-dispatched request completes and its response
// is written — then tears down the event/dispatcher threads and the
// remaining connections. Call transport.stop() before server.stop() for a
// clean cross-process drain (late requests then see kShuttingDown rather
// than a dead socket).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/batching_server.h"
#include "util/net.h"

namespace csq {
namespace serve {

// On-the-wire status byte. The first five values are numerically identical
// to ServeStatus (static_assert'd in transport.cpp); the rest are
// transport-layer outcomes the in-process API cannot produce.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,
  kOverloaded = 2,
  kShardFailed = 3,
  kShuttingDown = 4,
  kBadRequest = 5,      // malformed frame, unknown model, wrong sample count
  kTransportError = 6,  // client-side only: dead socket / short frame
};

const char* wire_status_name(WireStatus status);

struct TransportOptions {
  // 0 = kernel-assigned ephemeral port; read the bound port via port().
  std::uint16_t port = 0;
  // Dispatcher threads calling try_infer. Each handles one request at a
  // time, so this bounds transport-initiated concurrency into the ring.
  int dispatch_threads = 2;
  // Frames larger than this are a protocol violation: the connection is
  // dropped (bounds a malicious or corrupt client's memory use).
  std::int64_t max_frame_bytes = 1 << 20;
  int listen_backlog = 16;
};

class ServeTransport {
 public:
  // The server must outlive the transport and should be start()ed before
  // requests arrive (requests to a stopped server complete with
  // kShuttingDown, which is also the orderly-shutdown signal clients see).
  explicit ServeTransport(BatchingServer& server,
                          TransportOptions options = {});
  ~ServeTransport();  // stops and joins

  ServeTransport(const ServeTransport&) = delete;
  ServeTransport& operator=(const ServeTransport&) = delete;

  // Binds the loopback listener and spawns the event + dispatcher threads.
  void start();
  // Graceful drain: closes the listener (refusing new connections), lets
  // every dispatched request finish and flush its response, then joins all
  // threads and closes remaining connections. Idempotent.
  void stop();

  // The bound loopback port (valid after start()).
  std::uint16_t port() const;

  struct Stats {
    std::uint64_t connections = 0;       // accepted
    std::uint64_t requests = 0;          // complete frames dispatched
    std::uint64_t responses = 0;         // response frames written
    std::uint64_t bad_requests = 0;      // kBadRequest responses
    std::uint64_t transport_errors = 0;  // accept/read/write failures,
                                         // oversized frames, dead peers
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Blocking client for the wire protocol above — one connection, one
// request in flight. Separate client PROCESSES each hold their own
// (examples/serve_quantized --client is the multi-process driver).
class TransportClient {
 public:
  // Connects to 127.0.0.1:port. connected() reports failure (no throw —
  // clients race server startup in process fleets).
  explicit TransportClient(std::uint16_t port);

  bool connected() const;

  // One round trip. On kOk, `logits` is resized to the returned logit
  // count. Any socket failure (including a server that vanished mid-call)
  // returns kTransportError and closes the connection.
  WireStatus infer(const std::string& model_id, const float* sample,
                   std::size_t sample_count, std::vector<float>& logits,
                   std::int64_t deadline_us = -1);

 private:
  net::UniqueFd fd_;
};

}  // namespace serve
}  // namespace csq
