#include "serve/batching_server.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "runtime/graph_artifact.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace csq {
namespace serve {

namespace detail {

using Clock = std::chrono::steady_clock;

// One in-flight request. Lives on the producer's stack for the duration of
// its try_infer() call — the queue stores only the pointer, so the request
// path never allocates. Every admitted node is completed exactly once
// before its producer returns: normally by the worker that served it,
// force-completed with a failure status (quarantine overflow, shard death,
// drain deadline), or cancelled by its own producer on deadline expiry (the
// only path that removes a node without setting done).
struct Request {
  const float* sample = nullptr;
  float* logits = nullptr;
  Clock::time_point enqueued;
  bool done = false;
  ServeStatus status = ServeStatus::kOk;
};

// How a worker left its serving loop.
enum class WorkerExit {
  kStopped,  // stopping and fully drained
  kRetired,  // claimed a pending scale-down request
};

// Outcome of the backoff-rebuild loop shared by quarantine recovery and
// scale-up bootstrap.
enum class RestoreOutcome {
  kRestored,   // fresh warmed replica installed in the slot
  kRetired,    // claimed a pending scale-down request instead
  kStopped,    // server stopping
  kExhausted,  // restore_max_attempts rebuilds all failed
};

// One model id: a request ring plus one worker thread (and graph replica)
// per live replica slot. All queue state is guarded by `mutex`;
// `queue_cv` wakes workers (work arrived / batch filled / stop / retire /
// backoff interrupt), `done_cv` wakes producers (results ready, ring space
// freed) and start()'s warmup wait.
struct Shard {
  std::string id;
  // Replica slots, max_workers wide: [0, registered) are filled by
  // add_model, the rest are scale-up headroom (ServerOptions::max_replicas)
  // that bootstrap from the restore template on demand. A slot is null
  // whenever no worker owns it (never spawned, retired, or dead).
  std::vector<std::unique_ptr<runtime::CompiledGraph>> replicas;
  runtime::CompiledGraph::IoShape shape;
  const ServerOptions* options = nullptr;

  // Restore template: every replica was built from this shared immutable
  // program; quarantine recovery rebuilds dead replicas from it (no deep
  // copy of the codes) and re-installs the same edge-scale snapshot, so a
  // restored replica is bit-identical to its siblings.
  std::shared_ptr<const runtime::GraphProgram> program;
  runtime::LowerOptions graph_options;
  std::vector<runtime::EdgeScaleRecord> edge_records;

  std::mutex mutex;
  std::condition_variable queue_cv;
  std::condition_variable done_cv;
  std::vector<Request*> ring;  // preallocated; head/count index it
  std::size_t head = 0;
  std::size_t count = 0;
  bool accepting = false;  // start() opens, stop()/total failure closes —
                           // the only lifecycle state try_infer consults,
                           // so producers never race an unguarded flag
  bool stopping = false;
  bool failed = false;  // no live replica left (or warmup failed)
  std::exception_ptr worker_error;
  int workers_ready = 0;
  int worker_target = 0;   // start() rendezvous width
  int max_workers = 0;     // slot count: max(registered, max_replicas)
  int quarantined_now = 0;
  int dead_now = 0;
  // Scaling state. live_workers counts every worker that will eventually
  // serve or die trying — serving, quarantine-restoring, and bootstrapping
  // scale-up workers alike; the shard fails only when it hits zero.
  // retire_requests is the pending scale-down count: ANY worker that
  // observes it positive claims one and exits between batches.
  int live_workers = 0;
  int retire_requests = 0;
  std::vector<std::uint8_t> slot_busy;  // a worker owns this replica slot
  // Autoscaler latency signal: per-batch flush wait (oldest popped
  // request's queueing time, µs) over the last kFlushWindow batches.
  // Concurrency audit: BOTH sides of this ring are under `mutex` — the
  // worker writes flush_waits/flush_wait_pos/flush_wait_count inside the
  // locked pop scope of run_worker, and stats() copies them under the same
  // lock — so there is no torn-read window (the TSan stats-hammer test
  // pins this against a producer flood).
  static constexpr std::size_t kFlushWindow = 256;
  std::vector<std::int64_t> flush_waits;
  std::size_t flush_wait_pos = 0;
  std::size_t flush_wait_count = 0;
  BatchingServer::ShardStats stats;
  // Workers currently between pop and scatter-completion (running a
  // forward). Atomic rather than mutex-guarded so the idle-sibling release
  // guard in run_worker stays exception-safe without re-taking the lock on
  // the quarantine unwind path.
  std::atomic<int> flushing_now{0};

  std::vector<std::thread> workers;

  std::size_t capacity() const { return ring.size(); }

  void worker_loop(int worker_index);
  void scale_worker_loop(int worker_index);
  void serve_until_exit(int worker_index, std::vector<Request*>& taken,
                        std::size_t& n, Tensor& staging);
  WorkerExit run_worker(int worker_index, std::vector<Request*>& taken,
                        std::size_t& n, Tensor& staging);
  std::vector<Tensor> warmup_replica(runtime::CompiledGraph& graph,
                                     Tensor& staging);
  bool quarantine_and_restore(int worker_index, std::vector<Request*>& taken,
                              std::size_t& n);
  RestoreOutcome restore_with_backoff(int worker_index);
  // Permanent worker exit: releases the slot (freeing the replica's
  // memory), drops live_workers and — when the last live worker dies
  // unexpectedly — fails the shard. Takes `mutex`.
  void worker_exit(int worker_index, bool dead);
  // Completes every queued request with `status`. Caller holds `mutex` and
  // notifies done_cv afterwards.
  void complete_queued_locked(ServeStatus status);
};

void Shard::complete_queued_locked(ServeStatus status) {
  while (count > 0) {
    Request* request = ring[head];
    head = (head + 1) % capacity();
    --count;
    request->status = status;
    request->done = true;
    ++stats.rejected;
  }
}

// Warmup: grow the graph's activation workspace, this thread's GEMM packing
// scratch and the staging tensor to their steady-state extents so the
// request path never touches the heap. The flush policy can produce ANY
// batch size in [1, max_batch], and every worker can have one output tensor
// in flight at once — the returned outputs are HELD by the caller (across
// the start() rendezvous) to seed the tensor pool with the worst-case
// number of spans per size bucket.
std::vector<Tensor> Shard::warmup_replica(runtime::CompiledGraph& graph,
                                          Tensor& staging) {
  CSQ_FAILPOINT("serve.warmup");
  const std::int64_t max_batch = options->max_batch;
  graph.prepare(max_batch);
  std::vector<Tensor> warm_outputs;
  warm_outputs.reserve(static_cast<std::size_t>(max_batch));
  for (std::int64_t b = max_batch; b >= 1; --b) {
    staging.resize_unspecified({b, shape.channels, shape.height,
                                shape.width});
    warm_outputs.push_back(graph.forward(staging));
  }
  return warm_outputs;
}

void Shard::worker_loop(int worker_index) {
  // `taken` and `n` live here so the failure paths can account for the
  // requests this worker had already popped: a check_error escaping a
  // std::thread body would std::terminate the whole serving process, and a
  // producer must never be left waiting on (or a worker writing into) a
  // stack node whose batch died mid-flight.
  std::vector<Request*> taken(
      static_cast<std::size_t>(options->max_batch), nullptr);
  std::size_t n = 0;
  Tensor staging = Tensor::zeros(
      {options->max_batch, shape.channels, shape.height, shape.width});

  // Initial warmup. A failure here fails the whole shard and start()
  // rethrows it synchronously: a replica that cannot even warm up is a
  // configuration error, not a runtime fault worth a quarantine loop.
  std::vector<Tensor> warm_outputs;
  try {
    warm_outputs = warmup_replica(
        *replicas[static_cast<std::size_t>(worker_index)], staging);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex);
    failed = true;
    stopping = true;
    accepting = false;
    if (!worker_error) worker_error = std::current_exception();
    workers_ready = worker_target;  // release start()'s warmup wait
    --live_workers;
    complete_queued_locked(ServeStatus::kShardFailed);
    queue_cv.notify_all();
    done_cv.notify_all();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    ++workers_ready;
    done_cv.notify_all();
    done_cv.wait(lock, [&] {
      return workers_ready >= worker_target || stopping;
    });
  }
  warm_outputs.clear();

  serve_until_exit(worker_index, taken, n, staging);
}

// Scale-up entry point (set_replicas): the slot is claimed and counted in
// live_workers, but holds no replica yet — bootstrap one from the restore
// template with the same backoff loop quarantine recovery uses, then join
// the serving rotation. Requests keep flowing on the existing workers the
// whole time.
void Shard::scale_worker_loop(int worker_index) {
  std::vector<Request*> taken(
      static_cast<std::size_t>(options->max_batch), nullptr);
  std::size_t n = 0;
  Tensor staging = Tensor::zeros(
      {options->max_batch, shape.channels, shape.height, shape.width});

  switch (restore_with_backoff(worker_index)) {
    case RestoreOutcome::kRestored:
      break;
    case RestoreOutcome::kRetired:
      worker_exit(worker_index, /*dead=*/false);
      return;
    case RestoreOutcome::kStopped: {
      std::lock_guard<std::mutex> lock(mutex);
      --live_workers;
      return;
    }
    case RestoreOutcome::kExhausted:
      worker_exit(worker_index, /*dead=*/true);
      return;
  }
  serve_until_exit(worker_index, taken, n, staging);
}

// Serving loop with quarantine recovery: any exception escaping a batch
// (replica forward, pool submission, injected fault) quarantines THIS
// replica only — the popped batch is requeued for siblings, and a
// backoff-restore loop rebuilds the replica before rejoining.
void Shard::serve_until_exit(int worker_index, std::vector<Request*>& taken,
                             std::size_t& n, Tensor& staging) {
  while (true) {
    try {
      switch (run_worker(worker_index, taken, n, staging)) {
        case WorkerExit::kStopped: {
          std::lock_guard<std::mutex> lock(mutex);
          --live_workers;
          return;
        }
        case WorkerExit::kRetired:
          worker_exit(worker_index, /*dead=*/false);
          // A retiring worker may have been the one a queued request was
          // waiting on: hand the queue to a sibling.
          queue_cv.notify_all();
          return;
      }
    } catch (...) {
      if (!quarantine_and_restore(worker_index, taken, n)) return;
    }
  }
}

WorkerExit Shard::run_worker(int worker_index, std::vector<Request*>& taken,
                             std::size_t& n, Tensor& staging) {
  runtime::CompiledGraph& graph =
      *replicas[static_cast<std::size_t>(worker_index)];
  const std::int64_t sample_numel =
      shape.channels * shape.height * shape.width;
  const std::int64_t max_batch = options->max_batch;
  // The replica's own execution mode (which a caller may have flipped with
  // set_pooled after lowering, so graph_options.pooled is not authoritative):
  // the level an idle-core grant is restored to when siblings are busy.
  const bool base_pooled = graph.pooled();

  while (true) {
    CSQ_FAILPOINT("serve.worker_batch");
    n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex);
      while (true) {
        queue_cv.wait(lock, [&] {
          return stopping || retire_requests > 0 || count > 0;
        });
        // Scale-down: claim one pending retirement between batches — any
        // worker will do, queued work goes to the siblings. stop() wins
        // over retirement (the drain needs every worker).
        if (retire_requests > 0 && !stopping) {
          --retire_requests;
          ++stats.scale_downs;
          return WorkerExit::kRetired;
        }
        if (count == 0) {
          if (stopping) return WorkerExit::kStopped;  // fully drained
          continue;
        }
        // Flush policy: wait for a full batch until the oldest queued
        // request's latency bound expires (requests carry their enqueue
        // stamp, so the deadline survives partial pops exactly).
        if (count < static_cast<std::size_t>(max_batch) && !stopping) {
          const Clock::time_point deadline =
              ring[head]->enqueued +
              std::chrono::microseconds(options->max_latency_us);
          queue_cv.wait_until(lock, deadline, [&] {
            return count >= static_cast<std::size_t>(max_batch) || stopping ||
                   retire_requests > 0;
          });
          if (retire_requests > 0 && !stopping) {
            --retire_requests;
            ++stats.scale_downs;
            return WorkerExit::kRetired;
          }
          // A sibling worker (or a timed-out producer cancelling its node)
          // may have drained the queue while this one slept on the timer:
          // go back to waiting instead of recording an empty batch.
          if (count == 0 && !stopping) continue;
          if (count == 0) return WorkerExit::kStopped;
        }
        break;
      }
      // Autoscaler latency signal: how long the oldest request of this
      // flush sat queued.
      flush_waits[flush_wait_pos] =
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - ring[head]->enqueued)
              .count();
      flush_wait_pos = (flush_wait_pos + 1) % kFlushWindow;
      flush_wait_count = std::min(flush_wait_count + 1, kFlushWindow);
      n = std::min(count, static_cast<std::size_t>(max_batch));
      for (std::size_t i = 0; i < n; ++i) {
        taken[i] = ring[(head + i) % capacity()];
      }
      head = (head + n) % capacity();
      count -= n;
      ++stats.batches;
      if (n == static_cast<std::size_t>(max_batch)) {
        ++stats.full_flushes;
      } else if (stopping) {
        ++stats.drain_flushes;  // stop() drain: no timer fired
      } else {
        ++stats.timer_flushes;
      }
      stats.max_batch_observed =
          std::max(stats.max_batch_observed, static_cast<std::int64_t>(n));
    }
    // Ring space freed: unblock producers waiting on backpressure.
    done_cv.notify_all();

    // Idle-sibling core budget: when no sibling is mid-flush, run this
    // batch with in-graph pooled execution so a lone (often batch-1)
    // request fans its column-split GEMMs out over the idle cores. The
    // counter is released on EVERY exit path — the quarantine unwind
    // included — by the guard, so a replica failure never wedges the
    // grant. Pooled and serial execution are bit-identical, so the grant
    // may differ batch to batch without affecting outputs.
    struct FlushingGuard {
      std::atomic<int>& counter;
      ~FlushingGuard() { counter.fetch_sub(1, std::memory_order_acq_rel); }
    };
    const int siblings_flushing =
        flushing_now.fetch_add(1, std::memory_order_acq_rel);
    FlushingGuard flushing_guard{flushing_now};
    bool borrowed = false;
    if (options->borrow_idle_cores) {
      borrowed = siblings_flushing == 0;
      graph.set_pooled(base_pooled || borrowed);
    }

    // Gather -> one batched integer forward -> scatter. The integer path is
    // batch-invariant, so each row is bit-identical to a single-sample
    // forward of the same graph.
    staging.resize_unspecified({static_cast<std::int64_t>(n), shape.channels,
                                shape.height, shape.width});
    float* dst = staging.data();
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(dst + static_cast<std::int64_t>(i) * sample_numel,
                  taken[i]->sample,
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
    }
    CSQ_FAILPOINT("serve.replica_forward");
    Tensor logits = graph.forward(staging);
    const float* out = logits.data();
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(taken[i]->logits,
                  out + static_cast<std::int64_t>(i) * shape.out_features,
                  static_cast<std::size_t>(shape.out_features) *
                      sizeof(float));
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < n; ++i) taken[i]->done = true;
      if (borrowed) ++stats.borrowed_flushes;
      n = 0;  // completed: the failure path must not touch these again
    }
    done_cv.notify_all();
  }
}

bool Shard::quarantine_and_restore(int worker_index,
                                   std::vector<Request*>& taken,
                                   std::size_t& n) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    ++stats.quarantines;
    ++quarantined_now;
    // Put the popped batch back at the FRONT of the ring — original
    // enqueue stamps intact, so flush deadlines and FIFO order survive —
    // for the sibling workers (or this one, once restored) to serve. If
    // producers already refilled the freed space, fail the overflow
    // cleanly instead of overwriting live nodes.
    const std::size_t requeue = std::min(n, capacity() - count);
    if (requeue > 0) {
      head = (head + capacity() - requeue) % capacity();
      for (std::size_t i = 0; i < requeue; ++i) {
        ring[(head + i) % capacity()] = taken[i];
      }
      count += requeue;
    }
    for (std::size_t i = requeue; i < n; ++i) {
      taken[i]->status = ServeStatus::kShardFailed;
      taken[i]->done = true;
      ++stats.rejected;
    }
    n = 0;
  }
  queue_cv.notify_all();  // requeued work for the siblings
  done_cv.notify_all();   // overflow completions

  const RestoreOutcome outcome = restore_with_backoff(worker_index);
  {
    std::lock_guard<std::mutex> lock(mutex);
    --quarantined_now;
    if (outcome == RestoreOutcome::kRestored) ++stats.restores;
  }
  switch (outcome) {
    case RestoreOutcome::kRestored:
      return true;  // rejoin the serving loop
    case RestoreOutcome::kRetired:
      worker_exit(worker_index, /*dead=*/false);
      queue_cv.notify_all();
      return false;
    case RestoreOutcome::kStopped: {
      // stop() completes anything left queued.
      std::lock_guard<std::mutex> lock(mutex);
      --live_workers;
      return false;
    }
    case RestoreOutcome::kExhausted:
      worker_exit(worker_index, /*dead=*/true);
      return false;
  }
  return false;  // unreachable
}

// Exponential-backoff rebuild from the shard's shared immutable program.
// Runs outside the shard mutex: siblings keep serving (graceful
// degradation) while this thread rebuilds. Shared by quarantine recovery
// and scale-up bootstrap — a scale-up replica is just a restore into an
// empty slot. A pending scale-down is claimed in preference to rebuilding
// (no point warming a replica the policy no longer wants).
RestoreOutcome Shard::restore_with_backoff(int worker_index) {
  constexpr std::int64_t kMaxBackoffUs = 1'000'000;
  std::int64_t backoff_us = std::max<std::int64_t>(
      options->restore_backoff_us, 1);
  for (int attempt = 0; attempt < options->restore_max_attempts; ++attempt) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      if (attempt > 0 || options->restore_backoff_us > 0) {
        queue_cv.wait_for(lock, std::chrono::microseconds(backoff_us),
                          [&] { return stopping || retire_requests > 0; });
      }
      if (stopping) return RestoreOutcome::kStopped;
      if (retire_requests > 0) {
        --retire_requests;
        ++stats.scale_downs;
        return RestoreOutcome::kRetired;
      }
    }
    try {
      CSQ_FAILPOINT("serve.restore");
      runtime::CompiledGraph rebuilt =
          runtime::rebuild_replica(program, graph_options, edge_records);
      Tensor staging = Tensor::zeros(
          {options->max_batch, shape.channels, shape.height, shape.width});
      std::vector<Tensor> warm = warmup_replica(rebuilt, staging);
      std::lock_guard<std::mutex> lock(mutex);
      replicas[static_cast<std::size_t>(worker_index)] =
          std::make_unique<runtime::CompiledGraph>(std::move(rebuilt));
      return RestoreOutcome::kRestored;
    } catch (...) {
      backoff_us = std::min(backoff_us * 2, kMaxBackoffUs);
    }
  }
  return RestoreOutcome::kExhausted;
}

// Restore attempts exhausted (dead) or retirement claimed: release the
// slot. The shard fails only when the LAST live worker dies — then queued
// and future requests get kShardFailed instead of waiting on capacity that
// will never return. Retirement can never trip that (set_replicas keeps
// the target >= 1 and a retire is only claimed by a live worker).
void Shard::worker_exit(int worker_index, bool dead) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    --live_workers;
    slot_busy[static_cast<std::size_t>(worker_index)] = 0;
    replicas[static_cast<std::size_t>(worker_index)].reset();
    if (dead) {
      ++dead_now;
      if (live_workers <= 0 && !stopping) {
        failed = true;
        accepting = false;
        complete_queued_locked(ServeStatus::kShardFailed);
      }
    }
  }
  queue_cv.notify_all();
  done_cv.notify_all();
}

}  // namespace detail

using detail::Clock;
using detail::Request;
using detail::Shard;

const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kTimeout:
      return "timeout";
    case ServeStatus::kOverloaded:
      return "overloaded";
    case ServeStatus::kShardFailed:
      return "shard_failed";
    case ServeStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

BatchingServer::BatchingServer(ServerOptions options)
    : options_(options) {
  CSQ_CHECK(options_.max_batch >= 1)
      << "batching server: max_batch must be at least 1";
  CSQ_CHECK(options_.max_latency_us >= 0)
      << "batching server: negative max_latency_us";
  CSQ_CHECK(options_.queue_capacity >= 1)
      << "batching server: queue_capacity must be at least 1";
  CSQ_CHECK(options_.drain_deadline_us >= 0)
      << "batching server: negative drain_deadline_us";
  CSQ_CHECK(options_.restore_backoff_us >= 0)
      << "batching server: negative restore_backoff_us";
  CSQ_CHECK(options_.restore_max_attempts >= 1)
      << "batching server: restore_max_attempts must be at least 1";
  CSQ_CHECK(options_.max_replicas >= 0)
      << "batching server: negative max_replicas";
  options_.queue_capacity =
      std::max(options_.queue_capacity, options_.max_batch);
}

BatchingServer::~BatchingServer() { stop(); }

void BatchingServer::add_model(const std::string& model_id,
                               std::vector<runtime::CompiledGraph> replicas) {
  CSQ_CHECK(!started_)
      << "batching server: add_model after start is not supported";
  CSQ_CHECK(!replicas.empty())
      << "batching server: model " << model_id << " has no replicas";
  for (const auto& shard : shards_) {
    CSQ_CHECK(shard->id != model_id)
        << "batching server: duplicate model id " << model_id;
  }
  auto shard = std::make_shared<Shard>();
  shard->id = model_id;
  shard->shape = replicas.front().io_shape();
  CSQ_CHECK(shard->shape.out_features > 0)
      << "batching server: model " << model_id << " has no output head";
  for (auto& replica : replicas) {
    const auto shape = replica.io_shape();
    CSQ_CHECK(shape.channels == shard->shape.channels &&
              shape.height == shard->shape.height &&
              shape.width == shard->shape.width &&
              shape.out_features == shard->shape.out_features)
        << "batching server: replica shape mismatch for model " << model_id;
    // Resolve the requant constants NOW: an uncalibrated replica must fail
    // this registration call, not a worker thread's warmup forward.
    replica.edge_scales();
  }
  // Restore template for quarantine recovery and scale-up bootstrap: the
  // first replica's shared program + options + edge-scale snapshot
  // (replicas are required to be bit-identical siblings, so any one of
  // them defines the shard).
  shard->program = replicas.front().shared_program();
  shard->graph_options = replicas.front().options();
  shard->edge_records = replicas.front().edge_scales();
  shard->max_workers = std::max(static_cast<int>(replicas.size()),
                                options_.max_replicas);
  shard->replicas.resize(static_cast<std::size_t>(shard->max_workers));
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    shard->replicas[r] =
        std::make_unique<runtime::CompiledGraph>(std::move(replicas[r]));
  }
  shard->slot_busy.assign(static_cast<std::size_t>(shard->max_workers), 0);
  shard->flush_waits.assign(Shard::kFlushWindow, 0);
  shard->options = &options_;
  shard->ring.assign(static_cast<std::size_t>(options_.queue_capacity),
                     nullptr);
  shards_.push_back(std::move(shard));
}

void BatchingServer::add_model_from_artifact(const std::string& model_id,
                                             const std::string& artifact_path,
                                             int replicas, bool pooled) {
  CSQ_CHECK(replicas >= 1)
      << "batching server: model " << model_id << " needs >= 1 replicas";
  std::vector<runtime::CompiledGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(replicas));
  // One disk read + parse; the remaining replicas are bit-identical
  // in-memory program replays.
  graphs.push_back(runtime::load_graph(artifact_path, pooled));
  for (int i = 1; i < replicas; ++i) {
    // replicate() rebuilds from the loaded graph's program and options, so
    // the pooled flag carries over.
    graphs.push_back(runtime::replicate(graphs.front()));
  }
  add_model(model_id, std::move(graphs));
}

void BatchingServer::start() {
  CSQ_CHECK(!started_) << "batching server: start called twice";
  CSQ_CHECK(!shards_.empty()) << "batching server: no models registered";
  started_ = true;
  for (auto& shard : shards_) {
    int workers = 0;
    for (const auto& replica : shard->replicas) {
      if (replica != nullptr) ++workers;  // registered slots; the rest are
    }                                     // scale-up headroom
    shard->worker_target = workers;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->accepting = true;
      shard->live_workers = workers;
      for (int w = 0; w < workers; ++w) {
        shard->slot_busy[static_cast<std::size_t>(w)] = 1;
      }
    }
    shard->workers.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      shard->workers.emplace_back(
          [shard = shard.get(), w] { shard->worker_loop(w); });
    }
  }
  // Block until every worker finished its warmup so callers can rely on
  // the zero-allocation steady state from the first request on. (>=, not
  // ==: a failing worker's catch block jumps workers_ready to the target,
  // and siblings still warming increment it past that afterwards.)
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mutex);
    shard->done_cv.wait(lock, [&] {
      return shard->workers_ready >= shard->worker_target;
    });
  }
  // Surface warmup failures synchronously instead of from a worker thread.
  std::exception_ptr error;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->failed && !error) error = shard->worker_error;
  }
  if (error) {
    stop();
    std::rethrow_exception(error);
  }
}

void BatchingServer::stop() {
  if (!started_) return;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->accepting = false;  // late try_infer calls get kShuttingDown
      shard->stopping = true;
    }
    shard->queue_cv.notify_all();
    shard->done_cv.notify_all();
  }
  // Deadline-bounded graceful drain: let the workers finish queued work,
  // then complete whatever is still queued with kShuttingDown so no
  // producer waits past the bound (in-flight batches always finish — they
  // hold stack nodes a worker is actively writing).
  if (options_.drain_deadline_us > 0) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::microseconds(options_.drain_deadline_us);
    for (auto& shard : shards_) {
      std::unique_lock<std::mutex> lock(shard->mutex);
      const bool drained = shard->done_cv.wait_until(
          lock, deadline, [&] { return shard->count == 0; });
      if (!drained) {
        shard->complete_queued_locked(ServeStatus::kShuttingDown);
        shard->queue_cv.notify_all();
        shard->done_cv.notify_all();
      }
    }
  }
  for (auto& shard : shards_) {
    for (std::thread& worker : shard->workers) worker.join();
    shard->workers.clear();
    // Reset under the mutex: a producer rejected above may still hold it.
    // Quarantined workers exit their restore loops on `stopping` without
    // serving, so anything they left queued completes here — no request
    // ever hangs across stop().
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->complete_queued_locked(ServeStatus::kShuttingDown);
    shard->done_cv.notify_all();
    shard->stopping = false;
    shard->failed = false;
    shard->worker_error = nullptr;
    shard->workers_ready = 0;
    shard->quarantined_now = 0;
    shard->dead_now = 0;
    shard->live_workers = 0;
    shard->retire_requests = 0;
  }
  started_ = false;
}

void BatchingServer::set_replicas(const std::string& model_id, int target) {
  // Argument validation still throws for genuinely bad calls (unknown model,
  // nonsensical target) regardless of lifecycle state -- those are caller
  // bugs, not races.
  Shard& shard = shard_for(model_id);
  CSQ_CHECK(target >= 1)
      << "batching server: replica target must be at least 1";
  CSQ_CHECK(target <= shard.max_workers)
      << "batching server: replica target " << target << " exceeds the "
      << shard.max_workers << " slots of model " << model_id
      << " (raise ServerOptions::max_replicas)";
  // Lifecycle, however, is a no-op, not a CHECK: the autoscaler's policy
  // thread calls this concurrently with stop(), and a CHECK throwing on a
  // thread that can't propagate it would std::terminate the process. A tick
  // that loses the race against stop() (or lands before start()) simply does
  // nothing; any worker it manages to spawn before `accepting` flips is
  // emplaced under shard.mutex ahead of stop()'s join loop, so it is joined.
  if (!started_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.stopping || shard.failed || !shard.accepting) return;
    // Workers already asked to retire don't count toward capacity.
    const int effective = shard.live_workers - shard.retire_requests;
    if (target > effective) {
      int need = target - effective;
      // Cancel pending retirements before spawning anything new.
      const int cancelled = std::min(need, shard.retire_requests);
      shard.retire_requests -= cancelled;
      need -= cancelled;
      for (int w = 0; w < shard.max_workers && need > 0; ++w) {
        if (shard.slot_busy[static_cast<std::size_t>(w)]) continue;
        shard.slot_busy[static_cast<std::size_t>(w)] = 1;
        ++shard.live_workers;
        ++shard.stats.scale_ups;
        --need;
        // Bootstrap off-thread: set_replicas returns immediately; the new
        // worker rebuilds + warms a replica, then joins the rotation.
        shard.workers.emplace_back(
            [s = &shard, w] { s->scale_worker_loop(w); });
      }
    } else if (target < effective) {
      shard.retire_requests += effective - target;
    }
  }
  shard.queue_cv.notify_all();
}

const std::shared_ptr<Shard>& BatchingServer::shard_ptr_for(
    const std::string& model_id) const {
  for (const auto& shard : shards_) {
    if (shard->id == model_id) return shard;
  }
  CSQ_CHECK(false) << "batching server: unknown model id " << model_id;
  // Unreachable; CSQ_CHECK throws.
  return shards_.front();
}

Shard& BatchingServer::shard_for(const std::string& model_id) const {
  return *shard_ptr_for(model_id);
}

ModelHandle BatchingServer::handle(const std::string& model_id) const {
  return ModelHandle(shard_ptr_for(model_id));
}

ServeStatus BatchingServer::try_infer(const ModelHandle& handle,
                                      const float* sample, float* logits,
                                      std::int64_t deadline_us) {
  // Stale handles (server destroyed, or a default-constructed handle)
  // resolve here instead of dereferencing freed memory.
  const std::shared_ptr<Shard> shard_ref = handle.shard_.lock();
  if (!shard_ref) return ServeStatus::kShuttingDown;
  Shard& shard = *shard_ref;

  const bool bounded = deadline_us >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(bounded ? deadline_us : 0);

  Request request;
  request.sample = sample;
  request.logits = logits;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (shard.failed) {
      ++shard.stats.rejected;
      return ServeStatus::kShardFailed;
    }
    if (!shard.accepting) {
      ++shard.stats.rejected;
      return ServeStatus::kShuttingDown;
    }
    if (shard.count >= shard.capacity()) {
      // Admission control at the full ring: shed immediately, or apply
      // backpressure bounded by the caller's deadline.
      if (shard.options->shed_overload) {
        ++shard.stats.shed;
        return ServeStatus::kOverloaded;
      }
      const auto has_space = [&] {
        return shard.count < shard.capacity() || !shard.accepting;
      };
      if (bounded) {
        if (!shard.done_cv.wait_until(lock, deadline, has_space)) {
          ++shard.stats.timed_out;
          return ServeStatus::kTimeout;
        }
      } else {
        shard.done_cv.wait(lock, has_space);
      }
      if (shard.failed) {
        ++shard.stats.rejected;
        return ServeStatus::kShardFailed;
      }
      if (!shard.accepting) {
        ++shard.stats.rejected;
        return ServeStatus::kShuttingDown;
      }
    }
    request.enqueued = Clock::now();
    shard.ring[(shard.head + shard.count) % shard.capacity()] = &request;
    ++shard.count;
    ++shard.stats.requests;
  }
  shard.queue_cv.notify_one();
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    const auto completed = [&] { return request.done; };
    if (bounded && !shard.done_cv.wait_until(lock, deadline, completed)) {
      // Deadline expired. If the node is still queued, cancel it in place
      // — compact the ring so workers never see the dead entry. If a
      // worker already popped it, the result is one bounded forward away:
      // wait it out (a stack node in a worker's batch cannot be
      // abandoned) and report the actual outcome.
      bool cancelled = false;
      for (std::size_t i = 0; i < shard.count; ++i) {
        const std::size_t pos = (shard.head + i) % shard.capacity();
        if (shard.ring[pos] != &request) continue;
        for (std::size_t j = i; j + 1 < shard.count; ++j) {
          shard.ring[(shard.head + j) % shard.capacity()] =
              shard.ring[(shard.head + j + 1) % shard.capacity()];
        }
        --shard.count;
        cancelled = true;
        break;
      }
      if (cancelled) {
        ++shard.stats.timed_out;
        shard.done_cv.notify_all();  // ring space freed
        return ServeStatus::kTimeout;
      }
      shard.done_cv.wait(lock, completed);
    } else if (!bounded) {
      shard.done_cv.wait(lock, completed);
    }
  }
  return request.status;
}

void BatchingServer::infer(const ModelHandle& handle, const float* sample,
                           float* logits) {
  CSQ_CHECK(handle.valid()) << "batching server: invalid model handle";
  const ServeStatus status = try_infer(handle, sample, logits);
  CSQ_CHECK(status == ServeStatus::kOk)
      << "batching server: infer failed with status "
      << serve_status_name(status);
}

void BatchingServer::infer(const std::string& model_id, const float* sample,
                           float* logits) {
  infer(handle(model_id), sample, logits);
}

runtime::CompiledGraph::IoShape BatchingServer::model_shape(
    const std::string& model_id) const {
  return shard_for(model_id).shape;
}

BatchingServer::ShardStats BatchingServer::stats(
    const std::string& model_id) const {
  Shard& shard = shard_for(model_id);
  // Concurrency audit (flush-wait window): both the worker-side writes and
  // this read of flush_waits/flush_wait_count happen under shard.mutex, so a
  // snapshot never sees a torn window. What used to live under the lock was
  // the p99 itself -- a heap allocation plus nth_element while producers and
  // flushers contend for the same mutex. Copy the fixed-size window out under
  // the lock, select outside it.
  ShardStats snapshot;
  std::array<std::int64_t, Shard::kFlushWindow> window;
  std::size_t wait_count = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    snapshot = shard.stats;
    snapshot.replicas_quarantined = shard.quarantined_now;
    snapshot.replicas_dead = shard.dead_now;
    snapshot.queue_depth = static_cast<std::int64_t>(shard.count);
    snapshot.replicas_active = shard.live_workers - shard.quarantined_now;
    wait_count = shard.flush_wait_count;
    std::copy(shard.flush_waits.begin(),
              shard.flush_waits.begin() +
                  static_cast<std::ptrdiff_t>(wait_count),
              window.begin());
  }
  if (wait_count > 0) {
    // p99 over the window: small (<= kFlushWindow entries) and read-only
    // callers, so an on-demand partial sort beats bookkeeping on the hot
    // path -- and it now runs lock-free on the caller's stack copy.
    const std::size_t rank = (wait_count - 1) * 99 / 100;
    std::nth_element(window.begin(),
                     window.begin() + static_cast<std::ptrdiff_t>(rank),
                     window.begin() + static_cast<std::ptrdiff_t>(wait_count));
    snapshot.flush_wait_p99_us = window[rank];
  }
  return snapshot;
}

std::vector<std::int64_t> BatchingServer::replica_workspace_bytes(
    const std::string& model_id) const {
  Shard& shard = shard_for(model_id);
  // The shard mutex orders this read against worker-side workspace growth
  // (start()'s warmup grows every replica's buffers off-thread).
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<std::int64_t> bytes;
  bytes.reserve(shard.replicas.size());
  for (const auto& replica : shard.replicas) {
    if (replica != nullptr) bytes.push_back(replica->workspace_bytes());
  }
  return bytes;
}

}  // namespace serve
}  // namespace csq
