#include "serve/batching_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "runtime/graph_artifact.h"
#include "util/check.h"

namespace csq {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

// One in-flight request. Lives on the producer's stack for the duration of
// its infer() call — the queue stores only the pointer, so the request path
// never allocates. Every node is completed exactly once before its producer
// returns: normally by the worker that served it, or force-completed with
// `failed` set if a worker died (so no worker can touch a dead stack frame).
struct Request {
  const float* sample = nullptr;
  float* logits = nullptr;
  Clock::time_point enqueued;
  bool done = false;
  bool failed = false;
};

}  // namespace

// One model id: a request ring plus one worker thread (and graph replica)
// per registered replica. All queue state is guarded by `mutex`;
// `queue_cv` wakes workers (work arrived / batch filled), `done_cv` wakes
// producers (results ready, ring space freed) and start()'s warmup wait.
struct BatchingServer::Shard {
  std::string id;
  std::vector<runtime::CompiledGraph> replicas;
  runtime::CompiledGraph::IoShape shape;
  const ServerOptions* options = nullptr;

  std::mutex mutex;
  std::condition_variable queue_cv;
  std::condition_variable done_cv;
  std::vector<Request*> ring;  // preallocated; head/count index it
  std::size_t head = 0;
  std::size_t count = 0;
  bool accepting = false;  // start() opens, stop()/failures close — the
                           // only lifecycle state infer() consults, so
                           // producers never race an unguarded flag
  bool stopping = false;
  bool failed = false;
  std::exception_ptr worker_error;
  int workers_ready = 0;
  int worker_target = 0;  // set before the threads spawn
  ShardStats stats;

  std::vector<std::thread> workers;

  std::size_t capacity() const { return ring.size(); }

  void worker_loop(int worker_index);
  void run_worker(int worker_index, std::vector<Request*>& taken,
                  std::size_t& n);
};

void BatchingServer::Shard::worker_loop(int worker_index) {
  // `taken` and `n` live here so the failure path can force-complete the
  // requests this worker had already popped: a check_error escaping a
  // std::thread body would std::terminate the whole serving process, and a
  // producer must never be left waiting on (or a worker writing into) a
  // stack node whose batch died mid-flight.
  std::vector<Request*> taken(
      static_cast<std::size_t>(options->max_batch), nullptr);
  std::size_t n = 0;
  try {
    run_worker(worker_index, taken, n);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex);
    failed = true;
    stopping = true;
    accepting = false;
    if (!worker_error) worker_error = std::current_exception();
    workers_ready = worker_target;  // release start()'s warmup wait
    for (std::size_t i = 0; i < n; ++i) {
      taken[i]->failed = true;
      taken[i]->done = true;
    }
    while (count > 0) {
      Request* request = ring[head];
      head = (head + 1) % capacity();
      --count;
      request->failed = true;
      request->done = true;
    }
    queue_cv.notify_all();
    done_cv.notify_all();
  }
}

void BatchingServer::Shard::run_worker(int worker_index,
                                       std::vector<Request*>& taken,
                                       std::size_t& n) {
  runtime::CompiledGraph& graph =
      replicas[static_cast<std::size_t>(worker_index)];
  const std::int64_t sample_numel =
      shape.channels * shape.height * shape.width;
  const std::int64_t max_batch = options->max_batch;

  // Warmup: grow the graph's activation workspace, this thread's GEMM
  // packing scratch and the staging tensor to their steady-state extents so
  // the request path never touches the heap. The flush policy can produce
  // ANY batch size in [1, max_batch], and every worker can have one output
  // tensor in flight at once — so each worker forwards every size and
  // HOLDS all outputs across a cross-worker rendezvous, seeding the tensor
  // pool with the worst-case number of spans per size bucket.
  Tensor staging = Tensor::zeros(
      {max_batch, shape.channels, shape.height, shape.width});
  graph.prepare(max_batch);
  std::vector<Tensor> warm_outputs;
  warm_outputs.reserve(static_cast<std::size_t>(max_batch));
  for (std::int64_t b = max_batch; b >= 1; --b) {
    staging.resize_unspecified({b, shape.channels, shape.height,
                                shape.width});
    warm_outputs.push_back(graph.forward(staging));
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    ++workers_ready;
    done_cv.notify_all();
    done_cv.wait(lock, [&] {
      return workers_ready >= worker_target || stopping;
    });
  }
  warm_outputs.clear();

  while (true) {
    n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex);
      while (true) {
        queue_cv.wait(lock, [&] { return stopping || count > 0; });
        if (count == 0) return;  // stopping and fully drained
        // Flush policy: wait for a full batch until the oldest queued
        // request's latency bound expires (requests carry their enqueue
        // stamp, so the deadline survives partial pops exactly).
        if (count < static_cast<std::size_t>(max_batch) && !stopping) {
          const Clock::time_point deadline =
              ring[head]->enqueued +
              std::chrono::microseconds(options->max_latency_us);
          queue_cv.wait_until(lock, deadline, [&] {
            return count >= static_cast<std::size_t>(max_batch) || stopping;
          });
          // A sibling worker may have drained the queue while this one
          // slept on the timer: go back to waiting instead of recording
          // an empty batch.
          if (count == 0 && !stopping) continue;
          if (count == 0) return;
        }
        break;
      }
      n = std::min(count, static_cast<std::size_t>(max_batch));
      for (std::size_t i = 0; i < n; ++i) {
        taken[i] = ring[(head + i) % capacity()];
      }
      head = (head + n) % capacity();
      count -= n;
      ++stats.batches;
      if (n == static_cast<std::size_t>(max_batch)) {
        ++stats.full_flushes;
      } else if (stopping) {
        ++stats.drain_flushes;  // stop() drain: no timer fired
      } else {
        ++stats.timer_flushes;
      }
      stats.max_batch_observed =
          std::max(stats.max_batch_observed, static_cast<std::int64_t>(n));
    }
    // Ring space freed: unblock producers waiting on backpressure.
    done_cv.notify_all();

    // Gather -> one batched integer forward -> scatter. The integer path is
    // batch-invariant, so each row is bit-identical to a single-sample
    // forward of the same graph.
    staging.resize_unspecified({static_cast<std::int64_t>(n), shape.channels,
                                shape.height, shape.width});
    float* dst = staging.data();
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(dst + static_cast<std::int64_t>(i) * sample_numel,
                  taken[i]->sample,
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
    }
    Tensor logits = graph.forward(staging);
    const float* out = logits.data();
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(taken[i]->logits,
                  out + static_cast<std::int64_t>(i) * shape.out_features,
                  static_cast<std::size_t>(shape.out_features) *
                      sizeof(float));
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < n; ++i) taken[i]->done = true;
      n = 0;  // completed: the failure path must not touch these again
    }
    done_cv.notify_all();
  }
}

BatchingServer::BatchingServer(ServerOptions options)
    : options_(options) {
  CSQ_CHECK(options_.max_batch >= 1)
      << "batching server: max_batch must be at least 1";
  CSQ_CHECK(options_.max_latency_us >= 0)
      << "batching server: negative max_latency_us";
  CSQ_CHECK(options_.queue_capacity >= 1)
      << "batching server: queue_capacity must be at least 1";
  options_.queue_capacity =
      std::max(options_.queue_capacity, options_.max_batch);
}

BatchingServer::~BatchingServer() { stop(); }

void BatchingServer::add_model(const std::string& model_id,
                               std::vector<runtime::CompiledGraph> replicas) {
  CSQ_CHECK(!started_)
      << "batching server: add_model after start is not supported";
  CSQ_CHECK(!replicas.empty())
      << "batching server: model " << model_id << " has no replicas";
  for (const auto& shard : shards_) {
    CSQ_CHECK(shard->id != model_id)
        << "batching server: duplicate model id " << model_id;
  }
  auto shard = std::make_unique<Shard>();
  shard->id = model_id;
  shard->shape = replicas.front().io_shape();
  CSQ_CHECK(shard->shape.out_features > 0)
      << "batching server: model " << model_id << " has no output head";
  for (auto& replica : replicas) {
    const auto shape = replica.io_shape();
    CSQ_CHECK(shape.channels == shard->shape.channels &&
              shape.height == shard->shape.height &&
              shape.width == shard->shape.width &&
              shape.out_features == shard->shape.out_features)
        << "batching server: replica shape mismatch for model " << model_id;
    // Resolve the requant constants NOW: an uncalibrated replica must fail
    // this registration call, not a worker thread's warmup forward.
    replica.edge_scales();
  }
  shard->replicas = std::move(replicas);
  shard->options = &options_;
  shard->ring.assign(static_cast<std::size_t>(options_.queue_capacity),
                     nullptr);
  shards_.push_back(std::move(shard));
}

void BatchingServer::add_model_from_artifact(const std::string& model_id,
                                             const std::string& artifact_path,
                                             int replicas, bool pooled) {
  CSQ_CHECK(replicas >= 1)
      << "batching server: model " << model_id << " needs >= 1 replicas";
  std::vector<runtime::CompiledGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(replicas));
  // One disk read + parse; the remaining replicas are bit-identical
  // in-memory program replays.
  graphs.push_back(runtime::load_graph(artifact_path, pooled));
  for (int i = 1; i < replicas; ++i) {
    // replicate() rebuilds from the loaded graph's program and options, so
    // the pooled flag carries over.
    graphs.push_back(runtime::replicate(graphs.front()));
  }
  add_model(model_id, std::move(graphs));
}

void BatchingServer::start() {
  CSQ_CHECK(!started_) << "batching server: start called twice";
  CSQ_CHECK(!shards_.empty()) << "batching server: no models registered";
  started_ = true;
  for (auto& shard : shards_) {
    const int workers = static_cast<int>(shard->replicas.size());
    shard->worker_target = workers;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->accepting = true;
    }
    shard->workers.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      shard->workers.emplace_back(
          [shard = shard.get(), w] { shard->worker_loop(w); });
    }
  }
  // Block until every worker finished its warmup so callers can rely on
  // the zero-allocation steady state from the first request on. (>=, not
  // ==: a failing worker's catch block jumps workers_ready to the target,
  // and siblings still warming increment it past that afterwards.)
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mutex);
    shard->done_cv.wait(lock, [&] {
      return shard->workers_ready >= shard->worker_target;
    });
  }
  // Surface warmup failures synchronously instead of from a worker thread.
  std::exception_ptr error;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->failed && !error) error = shard->worker_error;
  }
  if (error) {
    stop();
    std::rethrow_exception(error);
  }
}

void BatchingServer::stop() {
  if (!started_) return;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->accepting = false;  // late infer() calls now throw cleanly
      shard->stopping = true;
    }
    shard->queue_cv.notify_all();
    shard->done_cv.notify_all();
  }
  for (auto& shard : shards_) {
    for (std::thread& worker : shard->workers) worker.join();
    shard->workers.clear();
    // Reset under the mutex: a producer rejected above may still hold it.
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->stopping = false;
    shard->failed = false;
    shard->worker_error = nullptr;
    shard->workers_ready = 0;
  }
  started_ = false;
}

BatchingServer::Shard& BatchingServer::shard_for(
    const std::string& model_id) const {
  for (const auto& shard : shards_) {
    if (shard->id == model_id) return *shard;
  }
  CSQ_CHECK(false) << "batching server: unknown model id " << model_id;
  // Unreachable; CSQ_CHECK throws.
  return *shards_.front();
}

ModelHandle BatchingServer::handle(const std::string& model_id) const {
  return ModelHandle(&shard_for(model_id));
}

void BatchingServer::infer(ModelHandle handle, const float* sample,
                           float* logits) {
  CSQ_CHECK(handle.valid()) << "batching server: invalid model handle";
  Shard& shard = *static_cast<Shard*>(handle.shard_);
  Request request;
  request.sample = sample;
  request.logits = logits;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    CSQ_CHECK(shard.accepting)
        << "batching server: infer on a stopped server";
    // Backpressure: block while the ring is full. Re-check `accepting`
    // after the wait, not `stopping`: stop() clears stopping again once
    // the workers are joined, but accepting stays false until the next
    // start() — a producer waking late must not enqueue into a shard with
    // no workers.
    shard.done_cv.wait(lock, [&] {
      return shard.count < shard.capacity() || !shard.accepting;
    });
    CSQ_CHECK(shard.accepting)
        << "batching server: stopped while waiting for queue space";
    request.enqueued = Clock::now();
    shard.ring[(shard.head + shard.count) % shard.capacity()] = &request;
    ++shard.count;
    ++shard.stats.requests;
  }
  shard.queue_cv.notify_one();
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.done_cv.wait(lock, [&] { return request.done; });
  }
  CSQ_CHECK(!request.failed)
      << "batching server: a worker of model " << shard.id
      << " failed while this request was in flight";
}

void BatchingServer::infer(const std::string& model_id, const float* sample,
                           float* logits) {
  infer(handle(model_id), sample, logits);
}

runtime::CompiledGraph::IoShape BatchingServer::model_shape(
    const std::string& model_id) const {
  return shard_for(model_id).shape;
}

BatchingServer::ShardStats BatchingServer::stats(
    const std::string& model_id) const {
  Shard& shard = shard_for(model_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.stats;
}

std::vector<std::int64_t> BatchingServer::replica_workspace_bytes(
    const std::string& model_id) const {
  Shard& shard = shard_for(model_id);
  // The shard mutex orders this read against worker-side workspace growth
  // (start()'s warmup grows every replica's buffers off-thread).
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<std::int64_t> bytes;
  bytes.reserve(shard.replicas.size());
  for (const runtime::CompiledGraph& replica : shard.replicas) {
    bytes.push_back(replica.workspace_bytes());
  }
  return bytes;
}

}  // namespace serve
}  // namespace csq
