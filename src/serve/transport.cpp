#include "serve/transport.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/check.h"
#include "util/failpoint.h"

namespace csq {
namespace serve {

namespace {

// The first five wire codes are the ServeStatus values verbatim — the
// dispatcher maps try_infer's result with a cast, and this proves it stays
// valid if either enum is reordered.
static_assert(static_cast<int>(WireStatus::kOk) ==
                  static_cast<int>(ServeStatus::kOk) &&
              static_cast<int>(WireStatus::kTimeout) ==
                  static_cast<int>(ServeStatus::kTimeout) &&
              static_cast<int>(WireStatus::kOverloaded) ==
                  static_cast<int>(ServeStatus::kOverloaded) &&
              static_cast<int>(WireStatus::kShardFailed) ==
                  static_cast<int>(ServeStatus::kShardFailed) &&
              static_cast<int>(WireStatus::kShuttingDown) ==
                  static_cast<int>(ServeStatus::kShuttingDown),
              "wire status codes must mirror ServeStatus");

constexpr std::size_t kMaxModelIdBytes = 256;
// Fixed part of a request body: u16 id_len + i64 deadline + u32 count.
constexpr std::size_t kRequestFixedBytes = 2 + 8 + 4;

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read_pod_at(const std::uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

}  // namespace

const char* wire_status_name(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kTimeout:
      return "timeout";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kShardFailed:
      return "shard_failed";
    case WireStatus::kShuttingDown:
      return "shutting_down";
    case WireStatus::kBadRequest:
      return "bad_request";
    case WireStatus::kTransportError:
      return "transport_error";
  }
  return "unknown";
}

namespace {

// One client connection. The event thread owns the read side (buffer
// assembly); while `busy` a dispatcher owns the write side, so the event
// thread neither extracts further frames nor closes the fd until the
// response is out (`dead` defers the close instead).
struct Connection {
  net::UniqueFd fd;
  std::vector<std::uint8_t> buffer;  // accumulated unparsed request bytes
  bool busy = false;
  bool dead = false;
};

struct Job {
  std::shared_ptr<Connection> conn;
  std::vector<std::uint8_t> body;  // one complete request frame body
};

}  // namespace

struct ServeTransport::Impl {
  BatchingServer& server;
  TransportOptions options;
  std::uint16_t bound_port = 0;

  net::UniqueFd listener;
  // The listener's fd NUMBER, cached before the event thread spawns and
  // never mutated: the event loop compares epoll events against it without
  // touching `listener` itself, which stop() concurrently reset()s (the
  // close is what stops new admissions; a stale-number accept4 just fails).
  int listener_fd = -1;
  net::UniqueFd epoll;
  net::UniqueFd wake_fd;

  // Guards conns, per-connection flags/buffers, jobs, stats, stopping.
  std::mutex mutex;
  std::condition_variable dispatch_cv;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::deque<Job> jobs;
  bool started = false;
  bool stopping = false;
  Stats stats;

  // Model routing cache: one registry lookup per model id, then the
  // dispatchers route via the resolved handle.
  std::unordered_map<std::string, ModelHandle> handles;
  std::unordered_map<std::string, runtime::CompiledGraph::IoShape> shapes;

  std::thread event_thread;
  std::vector<std::thread> dispatchers;

  explicit Impl(BatchingServer& server_in, TransportOptions options_in)
      : server(server_in), options(options_in) {}

  void wake() {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd.get(), &one, sizeof(one));
  }

  void event_loop();
  void accept_ready();
  void read_ready(const std::shared_ptr<Connection>& conn);
  // Hands complete buffered frames to the dispatchers and performs
  // deferred closes. Caller holds `mutex`.
  void service_connection_locked(const std::shared_ptr<Connection>& conn);
  void dispatch_loop();
  void handle_job(Job& job, std::vector<float>& samples,
                  std::vector<float>& logits);
  bool resolve_model(const std::string& model_id, ModelHandle* handle,
                     runtime::CompiledGraph::IoShape* shape);
};

void ServeTransport::Impl::event_loop() {
  epoll_event events[64];
  while (true) {
    const int ready =
        ::epoll_wait(epoll.get(), events, 64, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself failed: tear down
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd.get()) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd.get(), &drained, sizeof(drained));
        continue;
      }
      if (fd == listener_fd) {
        accept_ready();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = conns.find(fd);
        if (it != conns.end()) conn = it->second;
      }
      if (conn != nullptr) read_ready(conn);
    }
    // Post-pass: deliver frames completed by reads above or unblocked by a
    // dispatcher finishing (its wake() lands here), and perform deferred
    // closes. Scanning all connections is fine at loopback fan-in scale.
    std::lock_guard<std::mutex> lock(mutex);
    if (stopping) return;
    for (auto it = conns.begin(); it != conns.end();) {
      service_connection_locked(it->second);
      if (it->second->dead && !it->second->busy) {
        it = conns.erase(it);  // UniqueFd closes; epoll auto-deregisters
      } else {
        ++it;
      }
    }
  }
}

void ServeTransport::Impl::accept_ready() {
  while (true) {
    const int fd = ::accept4(listener_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Listener closed by stop(), or a transient accept failure: either
      // way nothing to admit now.
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.transport_errors;
      return;
    }
    if (CSQ_FAILPOINT_FIRES("transport.accept")) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.transport_errors;
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd.reset(fd);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.transport_errors;
      continue;  // conn destructs, closing the fd
    }
    std::lock_guard<std::mutex> lock(mutex);
    ++stats.connections;
    conns.emplace(fd, std::move(conn));
  }
}

void ServeTransport::Impl::read_ready(const std::shared_ptr<Connection>& conn) {
  std::uint8_t chunk[16 * 1024];
  while (true) {
    const ssize_t got = ::read(conn->fd.get(), chunk, sizeof(chunk));
    if (got > 0) {
      if (CSQ_FAILPOINT_FIRES("transport.read")) {
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.transport_errors;
        conn->dead = true;
        return;
      }
      std::lock_guard<std::mutex> lock(mutex);
      conn->buffer.insert(conn->buffer.end(), chunk, chunk + got);
      if (static_cast<std::int64_t>(conn->buffer.size()) >
          options.max_frame_bytes + 4) {
        ++stats.transport_errors;  // runaway frame: protocol violation
        conn->dead = true;
        return;
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or hard error: drain what was buffered, then close.
    std::lock_guard<std::mutex> lock(mutex);
    if (got < 0) ++stats.transport_errors;
    conn->dead = true;
    return;
  }
}

void ServeTransport::Impl::service_connection_locked(
    const std::shared_ptr<Connection>& conn) {
  // One frame in flight per connection: responses go out in request order.
  if (conn->busy || conn->buffer.size() < 4) return;
  const auto body_len = read_pod_at<std::uint32_t>(conn->buffer.data());
  if (static_cast<std::int64_t>(body_len) > options.max_frame_bytes) {
    ++stats.transport_errors;
    conn->dead = true;
    return;
  }
  if (conn->buffer.size() < 4 + static_cast<std::size_t>(body_len)) return;
  Job job;
  job.conn = conn;
  job.body.assign(conn->buffer.begin() + 4,
                  conn->buffer.begin() + 4 + body_len);
  conn->buffer.erase(conn->buffer.begin(),
                     conn->buffer.begin() + 4 + body_len);
  conn->busy = true;
  ++stats.requests;
  jobs.push_back(std::move(job));
  dispatch_cv.notify_one();
}

bool ServeTransport::Impl::resolve_model(
    const std::string& model_id, ModelHandle* handle,
    runtime::CompiledGraph::IoShape* shape) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = handles.find(model_id);
    if (it != handles.end()) {
      *handle = it->second;
      *shape = shapes[model_id];
      return true;
    }
  }
  try {
    ModelHandle resolved = server.handle(model_id);
    const auto resolved_shape = server.model_shape(model_id);
    std::lock_guard<std::mutex> lock(mutex);
    handles.emplace(model_id, resolved);
    shapes.emplace(model_id, resolved_shape);
    *handle = resolved;
    *shape = resolved_shape;
    return true;
  } catch (const std::exception&) {
    return false;  // unknown model id -> kBadRequest
  }
}

void ServeTransport::Impl::handle_job(Job& job, std::vector<float>& samples,
                                      std::vector<float>& logits) {
  WireStatus status = WireStatus::kBadRequest;
  std::size_t logit_count = 0;

  // Parse the request body; any inconsistency is kBadRequest (the frame
  // boundary itself is intact, so the connection survives).
  const std::uint8_t* body = job.body.data();
  const std::size_t body_size = job.body.size();
  if (body_size >= kRequestFixedBytes) {
    const auto id_len = read_pod_at<std::uint16_t>(body);
    if (id_len <= kMaxModelIdBytes &&
        body_size >= kRequestFixedBytes + id_len) {
      const std::string model_id(reinterpret_cast<const char*>(body + 2),
                                 id_len);
      const auto deadline_us =
          read_pod_at<std::int64_t>(body + 2 + id_len);
      const auto sample_count =
          read_pod_at<std::uint32_t>(body + 2 + id_len + 8);
      const std::size_t expected = kRequestFixedBytes + id_len +
                                   static_cast<std::size_t>(sample_count) *
                                       sizeof(float);
      ModelHandle handle;
      runtime::CompiledGraph::IoShape shape;
      // deadline_us < -1 has no wire meaning (-1 is THE no-deadline
      // encoding); reject instead of aliasing it onto "no deadline".
      if (body_size == expected && deadline_us >= -1 &&
          resolve_model(model_id, &handle, &shape)) {
        const auto numel = static_cast<std::uint32_t>(
            shape.channels * shape.height * shape.width);
        if (sample_count == numel) {
          // Copy out of the frame: the float payload is not guaranteed
          // 4-byte aligned after a variable-length model id.
          samples.resize(sample_count);
          std::memcpy(samples.data(), body + kRequestFixedBytes + id_len,
                      static_cast<std::size_t>(sample_count) *
                          sizeof(float));
          logits.resize(static_cast<std::size_t>(shape.out_features));
          const ServeStatus serve_status = server.try_infer(
              handle, samples.data(), logits.data(), deadline_us);
          status = static_cast<WireStatus>(serve_status);
          if (serve_status == ServeStatus::kOk) {
            logit_count = logits.size();
          }
        }
      }
    }
  }

  std::vector<std::uint8_t> response;
  response.reserve(4 + 1 + 4 + logit_count * sizeof(float));
  append_pod(response,
             static_cast<std::uint32_t>(1 + 4 + logit_count * sizeof(float)));
  append_pod(response, static_cast<std::uint8_t>(status));
  append_pod(response, static_cast<std::uint32_t>(logit_count));
  for (std::size_t i = 0; i < logit_count; ++i) {
    append_pod(response, logits[i]);
  }

  const bool write_ok =
      !CSQ_FAILPOINT_FIRES("transport.write") &&
      net::write_full(job.conn->fd.get(), response.data(), response.size());
  {
    std::lock_guard<std::mutex> lock(mutex);
    job.conn->busy = false;
    if (write_ok) {
      ++stats.responses;
      if (status == WireStatus::kBadRequest) ++stats.bad_requests;
    } else {
      ++stats.transport_errors;
      job.conn->dead = true;
    }
  }
  // The event thread re-examines this connection: further buffered frames
  // become dispatchable (busy cleared), or a deferred close proceeds.
  wake();
}

void ServeTransport::Impl::dispatch_loop() {
  std::vector<float> samples;
  std::vector<float> logits;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex);
      dispatch_cv.wait(lock, [&] { return stopping || !jobs.empty(); });
      if (jobs.empty()) return;  // stopping and fully drained
      job = std::move(jobs.front());
      jobs.pop_front();
    }
    handle_job(job, samples, logits);
  }
}

ServeTransport::ServeTransport(BatchingServer& server,
                               TransportOptions options)
    : impl_(std::make_unique<Impl>(server, options)) {
  CSQ_CHECK(options.dispatch_threads >= 1)
      << "serve transport: dispatch_threads must be at least 1";
  CSQ_CHECK(options.max_frame_bytes >= 64)
      << "serve transport: max_frame_bytes too small for any request";
  CSQ_CHECK(options.listen_backlog >= 1)
      << "serve transport: listen_backlog must be at least 1";
}

ServeTransport::~ServeTransport() { stop(); }

void ServeTransport::start() {
  Impl& impl = *impl_;
  CSQ_CHECK(!impl.started) << "serve transport: start called twice";
  impl.listener = net::listen_loopback(impl.options.port,
                                       impl.options.listen_backlog,
                                       &impl.bound_port);
  CSQ_CHECK(net::set_nonblocking(impl.listener.get()))
      << "serve transport: cannot make listener non-blocking";
  impl.epoll.reset(::epoll_create1(EPOLL_CLOEXEC));
  CSQ_CHECK(impl.epoll.valid()) << "serve transport: epoll_create1 failed";
  impl.wake_fd.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  CSQ_CHECK(impl.wake_fd.valid()) << "serve transport: eventfd failed";

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = impl.listener.get();
  CSQ_CHECK(::epoll_ctl(impl.epoll.get(), EPOLL_CTL_ADD,
                        impl.listener.get(), &event) == 0)
      << "serve transport: cannot register listener";
  event.data.fd = impl.wake_fd.get();
  CSQ_CHECK(::epoll_ctl(impl.epoll.get(), EPOLL_CTL_ADD, impl.wake_fd.get(),
                        &event) == 0)
      << "serve transport: cannot register wake eventfd";

  impl.listener_fd = impl.listener.get();
  impl.started = true;
  impl.stopping = false;
  impl.event_thread = std::thread([&impl] { impl.event_loop(); });
  impl.dispatchers.reserve(
      static_cast<std::size_t>(impl.options.dispatch_threads));
  for (int i = 0; i < impl.options.dispatch_threads; ++i) {
    impl.dispatchers.emplace_back([&impl] { impl.dispatch_loop(); });
  }
}

void ServeTransport::stop() {
  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    if (!impl.started || impl.stopping) return;
    impl.stopping = true;
    // Close the listener FIRST: no connection is admitted past this point,
    // while everything already dispatched still completes and flushes its
    // response below.
    impl.listener.reset();
  }
  impl.wake();
  impl.event_thread.join();
  // Dispatchers drain the remaining job queue (their loop exits only when
  // it is empty), so every accepted frame gets a response.
  impl.dispatch_cv.notify_all();
  for (std::thread& dispatcher : impl.dispatchers) dispatcher.join();
  impl.dispatchers.clear();
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.conns.clear();  // closes remaining client sockets
    impl.jobs.clear();
  }
  impl.epoll.reset();
  impl.wake_fd.reset();
}

std::uint16_t ServeTransport::port() const { return impl_->bound_port; }

ServeTransport::Stats ServeTransport::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

TransportClient::TransportClient(std::uint16_t port)
    : fd_(net::connect_loopback(port)) {}

bool TransportClient::connected() const { return fd_.valid(); }

WireStatus TransportClient::infer(const std::string& model_id,
                                  const float* sample,
                                  std::size_t sample_count,
                                  std::vector<float>& logits,
                                  std::int64_t deadline_us) {
  if (!fd_.valid()) return WireStatus::kTransportError;

  std::vector<std::uint8_t> frame;
  const std::size_t body_len = kRequestFixedBytes + model_id.size() +
                               sample_count * sizeof(float);
  frame.reserve(4 + body_len);
  append_pod(frame, static_cast<std::uint32_t>(body_len));
  append_pod(frame, static_cast<std::uint16_t>(model_id.size()));
  frame.insert(frame.end(), model_id.begin(), model_id.end());
  append_pod(frame, deadline_us);
  append_pod(frame, static_cast<std::uint32_t>(sample_count));
  const auto* sample_bytes = reinterpret_cast<const std::uint8_t*>(sample);
  frame.insert(frame.end(), sample_bytes,
               sample_bytes + sample_count * sizeof(float));
  if (!net::write_full(fd_.get(), frame.data(), frame.size())) {
    fd_.reset();
    return WireStatus::kTransportError;
  }

  std::uint32_t response_len = 0;
  if (!net::read_full(fd_.get(), &response_len, sizeof(response_len)) ||
      response_len < 1 + 4 || response_len > (1u << 24)) {
    fd_.reset();
    return WireStatus::kTransportError;
  }
  std::vector<std::uint8_t> body(response_len);
  if (!net::read_full(fd_.get(), body.data(), body.size())) {
    fd_.reset();
    return WireStatus::kTransportError;
  }
  const auto status = static_cast<WireStatus>(body[0]);
  const auto logit_count = read_pod_at<std::uint32_t>(body.data() + 1);
  if (body.size() != 1 + 4 + static_cast<std::size_t>(logit_count) *
                                 sizeof(float)) {
    fd_.reset();
    return WireStatus::kTransportError;
  }
  logits.resize(logit_count);
  if (logit_count > 0) {
    std::memcpy(logits.data(), body.data() + 5,
                static_cast<std::size_t>(logit_count) * sizeof(float));
  }
  return status;
}

}  // namespace serve
}  // namespace csq
