// serve::BatchingServer — the request path on top of the integer runtime:
// a multi-model shard registry, per-worker CompiledGraph replicas and a
// latency-bounded request-batching queue.
//
// Request path: N producer threads call infer(handle, sample, logits). Each
// call links a stack-allocated request node into the target shard's
// preallocated ring and blocks. A shard worker coalesces queued requests
// into ONE batched forward — flushing when max_batch requests are waiting
// or when the oldest queued request has waited max_latency_us, whichever
// comes first — scatters the per-request logits back and wakes the
// producers. Models are registered by id; each shard owns its queue and
// one worker thread (plus graph replica) per registered replica.
//
// Guarantees:
//  * Outputs are bit-identical to serial single-sample forwards of the
//    source graph: the integer path is batch-invariant, and replicas are
//    deterministic program replays (runtime::replicate / load_graph).
//  * Zero steady-state heap allocations on the request path with serial
//    in-graph execution (the default): the ring, per-worker request arrays
//    and staging batch tensors are grown during start()'s warmup; request
//    nodes live on the callers' stacks; the graph forward is
//    allocation-free after warmup (hotpath tests). Pooled replicas are
//    SAFE — concurrent top-level parallel_for submissions queue on the
//    shared pool (util/thread_pool.h) — but outside the strict guarantee:
//    pool chunk assignment is dynamic, so a pool thread that slept through
//    warmup can still grow its thread-local GEMM scratch on an early
//    request.
//  * Worker failures never abort the process: a throwing replica fails its
//    shard, force-completes in-flight requests (their infer() calls throw)
//    and start() rethrows warmup errors synchronously.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/compiled_graph.h"

namespace csq {
namespace serve {

struct ServerOptions {
  // Flush a batch as soon as this many requests are queued.
  std::int64_t max_batch = 16;
  // ... or when the oldest queued request has waited this long.
  std::int64_t max_latency_us = 200;
  // Ring capacity per shard; producers beyond it block (backpressure).
  std::int64_t queue_capacity = 1024;
};

// Resolved routing target for one model id: lets the request hot path skip
// the registry lookup. Valid for the server's lifetime.
class ModelHandle {
 public:
  ModelHandle() = default;
  bool valid() const { return shard_ != nullptr; }

 private:
  friend class BatchingServer;
  explicit ModelHandle(void* shard) : shard_(shard) {}
  void* shard_ = nullptr;
};

class BatchingServer {
 public:
  explicit BatchingServer(ServerOptions options = {});
  ~BatchingServer();  // stops and joins all shard workers

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  // Registers a model id with one worker thread per replica. Replicas must
  // be calibrated graphs with identical IO shapes (runtime::replicate or
  // load_graph produce them); an uncalibrated replica fails HERE, not in a
  // worker thread. Must precede start().
  void add_model(const std::string& model_id,
                 std::vector<runtime::CompiledGraph> replicas);

  // Convenience: loads `replicas` copies of a persisted graph artifact —
  // the float-model-free deployment path. `pooled` selects in-graph
  // thread-pool execution (default off: workers are the parallelism).
  void add_model_from_artifact(const std::string& model_id,
                               const std::string& artifact_path,
                               int replicas, bool pooled = false);

  // Launches the shard workers and runs their warmup forwards; after this
  // the steady-state request path performs zero heap allocations.
  void start();
  // Drains queued requests, then joins the workers. Idempotent.
  void stop();

  // Resolves a model id once; infer(handle, ...) routes without a registry
  // lookup. Throws for unknown ids.
  ModelHandle handle(const std::string& model_id) const;

  // Blocking single-sample inference: `sample` holds channels*height*width
  // floats, `logits` receives out_features floats. Thread-safe; any number
  // of producers may call concurrently.
  void infer(ModelHandle handle, const float* sample, float* logits);
  void infer(const std::string& model_id, const float* sample,
             float* logits);

  // Input/output extents of a registered model (for sizing request
  // buffers).
  runtime::CompiledGraph::IoShape model_shape(
      const std::string& model_id) const;

  struct ShardStats {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::uint64_t full_flushes = 0;   // batch reached max_batch
    std::uint64_t timer_flushes = 0;  // latency bound fired first
    std::uint64_t drain_flushes = 0;  // partial batch popped by stop()
    std::int64_t max_batch_observed = 0;
  };
  ShardStats stats(const std::string& model_id) const;

  // Activation/scratch workspace bytes retained by each replica of a model
  // — the per-worker serving footprint (liveness-colored by default; see
  // runtime::LowerOptions::plan_buffers). Steady after start()'s warmup
  // grows every buffer to max_batch.
  std::vector<std::int64_t> replica_workspace_bytes(
      const std::string& model_id) const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Shard;

  Shard& shard_for(const std::string& model_id) const;

  ServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace csq
