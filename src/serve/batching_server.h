// serve::BatchingServer — the request path on top of the integer runtime:
// a multi-model shard registry, per-worker CompiledGraph replicas and a
// latency-bounded request-batching queue with production failure semantics.
//
// Request path: N producer threads call infer()/try_infer(handle, sample,
// logits). Each call links a stack-allocated request node into the target
// shard's preallocated ring and blocks. A shard worker coalesces queued
// requests into ONE batched forward — flushing when max_batch requests are
// waiting or when the oldest queued request has waited max_latency_us,
// whichever comes first — scatters the per-request logits back and wakes
// the producers. Models are registered by id; each shard owns its queue and
// one worker thread (plus graph replica) per registered replica.
//
// Guarantees:
//  * Outputs are bit-identical to serial single-sample forwards of the
//    source graph: the integer path is batch-invariant, and replicas are
//    deterministic program replays (runtime::replicate / load_graph) —
//    including replicas rebuilt by quarantine recovery.
//  * Zero steady-state heap allocations on the fault-free request path with
//    serial in-graph execution (the default): the ring, per-worker request
//    arrays and staging batch tensors are grown during start()'s warmup;
//    request nodes live on the callers' stacks; the graph forward is
//    allocation-free after warmup (hotpath tests). Pooled replicas are
//    SAFE — concurrent top-level parallel_for submissions queue on the
//    shared pool (util/thread_pool.h) — but outside the strict guarantee:
//    pool chunk assignment is dynamic, so a pool thread that slept through
//    warmup can still grow its thread-local GEMM scratch on an early
//    request.
//  * Graceful degradation: a replica that throws mid-batch is QUARANTINED —
//    its popped requests go back to the front of the queue for siblings to
//    serve, and a backoff-restore loop rebuilds the replica from the
//    shard's shared immutable GraphProgram (runtime::rebuild_replica; the
//    rebuilt replica stays per-request bit-identical). The shard fails only
//    when every replica has exhausted its restore attempts; start()-warmup
//    failures still fail the shard synchronously (misconfiguration, not a
//    runtime fault).
//  * No request ever hangs: every admitted request is completed exactly once
//    — served, failed with a ServeStatus, or (with a deadline) cancelled —
//    and worker failures never abort the process.
//  * Typed failures: try_infer never throws on the request path; it reports
//    timeouts, load shedding (ServerOptions::shed_overload), shard failure
//    and shutdown as ServeStatus codes, counted per shard in ShardStats.
//    The infer() convenience wrappers keep the throwing contract.
//  * Elastic capacity: set_replicas() grows or shrinks a shard's worker
//    count at runtime — scale-up replicas bootstrap from the same restore
//    template quarantine recovery uses (bit-identical siblings), scale-down
//    retires workers only between batches. serve/autoscaler.h drives this
//    from the shard's queue-depth and flush-latency stats.
//  * Deadline-bounded drain: stop() finishes in-flight work (bounded by
//    ServerOptions::drain_deadline_us when set), completes anything still
//    queued past the deadline with kShuttingDown, and late arrivals are
//    rejected with kShuttingDown. Stale ModelHandles — held across stop()
//    or even across server destruction — resolve to kShuttingDown instead
//    of touching freed memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/compiled_graph.h"

namespace csq {
namespace serve {

namespace detail {
struct Shard;
}  // namespace detail

// Typed request-path outcome. The hot path reports failures as values, not
// exceptions: overload and shutdown are expected states of a loaded server,
// not programming errors.
enum class ServeStatus {
  kOk = 0,
  kTimeout,       // the caller's deadline expired before completion
  kOverloaded,    // ring full and shed_overload is set: fast-rejected
  kShardFailed,   // every replica of the shard is dead
  kShuttingDown,  // server stopped/stopping/destroyed (or stale handle)
};

const char* serve_status_name(ServeStatus status);

struct ServerOptions {
  // Flush a batch as soon as this many requests are queued.
  std::int64_t max_batch = 16;
  // ... or when the oldest queued request has waited this long.
  std::int64_t max_latency_us = 200;
  // Ring capacity per shard; producers beyond it block (backpressure) or,
  // with shed_overload, are rejected immediately.
  std::int64_t queue_capacity = 1024;
  // Admission control: when the ring is full, reject new requests with
  // kOverloaded instead of blocking the producer — bounded-queue load
  // shedding for latency-sensitive deployments.
  bool shed_overload = false;
  // stop() lets queued work drain for at most this long before completing
  // the remainder with kShuttingDown. 0 = unbounded drain (in-flight
  // batches still always finish).
  std::int64_t drain_deadline_us = 0;
  // Quarantine recovery: backoff before a failed replica's first rebuild
  // attempt, doubling per failed attempt (capped at 1 s).
  std::int64_t restore_backoff_us = 1000;
  // Rebuild attempts before a quarantined replica is declared dead. The
  // shard fails only when EVERY replica is dead.
  int restore_max_attempts = 8;
  // Runtime-scaling headroom: set_replicas() may scale any shard up to this
  // many workers (slots beyond the registered replicas bootstrap from the
  // shard's restore template on demand). 0 = the registered replica count —
  // no scaling headroom.
  int max_replicas = 0;
  // Idle-sibling core budget: a worker that is the ONLY one flushing at pop
  // time runs its batch with in-graph pooled execution, so the column-split
  // GEMMs of a lone batch-1 request fan out over the idle cores instead of
  // using one. Workers flushing concurrently stay with the pooled flag
  // their replicas were built with (they never serialize on the shared
  // pool). Outputs are bit-identical either way — pooled and serial
  // execution share the determinism contract — so the grant may differ
  // batch to batch. Off by default: granted batches run pooled GEMMs,
  // which sit outside the strict zero-allocation guarantee (see above).
  bool borrow_idle_cores = false;
};

// Resolved routing target for one model id: lets the request hot path skip
// the registry lookup. Holds a weak reference, so a handle that outlives
// stop() or the server itself degrades to kShuttingDown instead of
// dereferencing freed memory.
class ModelHandle {
 public:
  ModelHandle() = default;
  // True while the owning server (and its shard) is still alive. A valid
  // handle can still be rejected (stopped shard); an invalid one is always
  // kShuttingDown.
  bool valid() const { return !shard_.expired(); }

 private:
  friend class BatchingServer;
  explicit ModelHandle(std::weak_ptr<detail::Shard> shard)
      : shard_(std::move(shard)) {}
  std::weak_ptr<detail::Shard> shard_;
};

class BatchingServer {
 public:
  explicit BatchingServer(ServerOptions options = {});
  ~BatchingServer();  // stops and joins all shard workers

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  // Registers a model id with one worker thread per replica. Replicas must
  // be calibrated graphs with identical IO shapes (runtime::replicate or
  // load_graph produce them); an uncalibrated replica fails HERE, not in a
  // worker thread. Must precede start(). The first replica's program,
  // options and edge-scale snapshot become the shard's restore template.
  void add_model(const std::string& model_id,
                 std::vector<runtime::CompiledGraph> replicas);

  // Convenience: loads `replicas` copies of a persisted graph artifact —
  // the float-model-free deployment path. `pooled` selects in-graph
  // thread-pool execution (default off: workers are the parallelism).
  void add_model_from_artifact(const std::string& model_id,
                               const std::string& artifact_path,
                               int replicas, bool pooled = false);

  // Launches the shard workers and runs their warmup forwards; after this
  // the steady-state request path performs zero heap allocations. Warmup
  // failures rethrow here, synchronously.
  void start();
  // Drains queued requests (bounded by drain_deadline_us), then joins the
  // workers; anything still queued past the deadline — or left behind by
  // quarantined workers — completes with kShuttingDown. Idempotent.
  void stop();

  // Runtime replica scaling (requires start()): adjusts the live worker
  // count of `model_id` toward `target` without pausing the request path.
  // Scale-up spawns workers that bootstrap fresh replicas from the shard's
  // restore template (rebuild_replica + warmup) off-thread, then join the
  // serving rotation — requests keep flowing on the existing workers
  // meanwhile. Scale-down retires workers cooperatively: each finishes (or
  // hands back) its current batch, frees its replica's memory and exits;
  // no admitted request is dropped. `target` must be in
  // [1, max(registered replicas, ServerOptions::max_replicas)]; calls on a
  // stopped or failed shard — or before start() / after stop() entirely —
  // are no-ops, never errors: the autoscaler's policy thread may tick
  // concurrently with stop(), and a decision landing after listener close
  // must not scale a draining shard (or terminate the process from a
  // thread it cannot throw out of). Thread-safe, including concurrent
  // calls (the autoscaler in serve/autoscaler.h drives this).
  void set_replicas(const std::string& model_id, int target);

  // Resolves a model id once; infer(handle, ...) routes without a registry
  // lookup. Throws for unknown ids.
  ModelHandle handle(const std::string& model_id) const;

  // Non-throwing single-sample inference. `sample` holds
  // channels*height*width floats; `logits` receives out_features floats
  // (written only on kOk). `deadline_us` bounds the WHOLE call — queueing
  // (including backpressure waits) and service. Deadline semantics are
  // PINNED (the wire protocol in serve/transport.h relies on them):
  //   * deadline_us < 0 (canonically -1): no deadline — wait indefinitely.
  //   * deadline_us == 0: the deadline is already expired on entry. The
  //     request is admitted, then cancelled with kTimeout unless it is
  //     completable without waiting (already done when first checked, or
  //     popped by a worker before the cancel — then the in-flight batch is
  //     waited out and its real outcome reported). It is NOT "no deadline".
  //   * deadline_us > 0: bounds the call; expiry while still queued cancels
  //     the request with kTimeout; once a worker has picked it up, the call
  //     waits out the in-flight batch (one bounded forward) and reports its
  //     outcome.
  // Thread-safe; any number of producers may call concurrently.
  ServeStatus try_infer(const ModelHandle& handle, const float* sample,
                        float* logits, std::int64_t deadline_us = -1);

  // Blocking convenience wrappers: throw check_error on any non-kOk status.
  void infer(const ModelHandle& handle, const float* sample, float* logits);
  void infer(const std::string& model_id, const float* sample,
             float* logits);

  // Input/output extents of a registered model (for sizing request
  // buffers).
  runtime::CompiledGraph::IoShape model_shape(
      const std::string& model_id) const;

  struct ShardStats {
    std::uint64_t requests = 0;  // admitted into the ring
    std::uint64_t batches = 0;
    std::uint64_t full_flushes = 0;   // batch reached max_batch
    std::uint64_t timer_flushes = 0;  // latency bound fired first
    std::uint64_t drain_flushes = 0;  // partial batch popped by stop()
    std::int64_t max_batch_observed = 0;
    // Failure semantics.
    std::uint64_t rejected = 0;   // kShuttingDown / kShardFailed outcomes
    std::uint64_t timed_out = 0;  // kTimeout outcomes (deadline expired)
    std::uint64_t shed = 0;       // kOverloaded fast-rejects
    std::uint64_t quarantines = 0;  // replica failures entering quarantine
    std::uint64_t restores = 0;     // successful backoff rebuilds
    int replicas_quarantined = 0;   // gauge: currently restoring
    int replicas_dead = 0;          // replicas whose restores were exhausted
    // Runtime scaling (set_replicas / the autoscaler policy inputs).
    std::uint64_t scale_ups = 0;    // workers spawned by set_replicas
    std::uint64_t scale_downs = 0;  // workers retired by set_replicas
    std::int64_t queue_depth = 0;   // gauge: requests queued right now
    int replicas_active = 0;        // gauge: serving-capable workers now
    // p99 of the per-batch flush wait (the oldest popped request's queueing
    // time, µs) over the last 256 batches — the latency signal the
    // autoscaler watches. 0 until the first batch.
    std::int64_t flush_wait_p99_us = 0;
    // Batches granted the idle-sibling core budget
    // (ServerOptions::borrow_idle_cores): ran with in-graph pooled
    // execution because no sibling was mid-flush.
    std::uint64_t borrowed_flushes = 0;
  };
  ShardStats stats(const std::string& model_id) const;

  // Activation/scratch workspace bytes retained by each replica of a model
  // — the per-worker serving footprint (liveness-colored by default; see
  // runtime::LowerOptions::plan_buffers). Steady after start()'s warmup
  // grows every buffer to max_batch.
  std::vector<std::int64_t> replica_workspace_bytes(
      const std::string& model_id) const;

  const ServerOptions& options() const { return options_; }

 private:
  detail::Shard& shard_for(const std::string& model_id) const;
  const std::shared_ptr<detail::Shard>& shard_ptr_for(
      const std::string& model_id) const;

  ServerOptions options_;
  std::vector<std::shared_ptr<detail::Shard>> shards_;
  // Atomic: set_replicas may be called from the autoscaler's policy thread
  // concurrently with stop() on the control thread; it reads this flag as
  // its first gate (and must see a torn-free value, not race UB).
  std::atomic<bool> started_{false};
};

}  // namespace serve
}  // namespace csq
