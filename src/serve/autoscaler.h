// serve::ReplicaAutoscaler — queue-driven replica scaling for one
// BatchingServer shard.
//
// A background policy thread samples the shard's stats every interval and
// drives BatchingServer::set_replicas():
//
//   scale UP (one replica at a time) after `up_ticks` consecutive samples
//   with pressure — queue depth above up_queue_depth per active replica,
//   or (when up_wait_p99_us is set) the rolling flush-wait p99 above it;
//
//   scale DOWN (one replica at a time) after `down_idle_ticks` consecutive
//   idle samples — empty queue and no new requests since the last sample;
//
//   after any action, hold for `cooldown_ticks` samples so the policy
//   observes the effect before acting again (no flapping on transients).
//
// Targets are clamped to [min_replicas, max_replicas]; max_replicas must
// fit within the shard's slot headroom (ServerOptions::max_replicas).
// Scale-ups bootstrap replicas off-thread, so the policy loop never blocks
// the request path. Purely reactive and deliberately simple — the point is
// that replica count follows offered load at runtime, not a predictive
// controller.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "serve/batching_server.h"

namespace csq {
namespace serve {

struct AutoscalerOptions {
  // Sampling period of the policy loop.
  std::int64_t interval_us = 20'000;
  int min_replicas = 1;
  int max_replicas = 4;
  // Pressure: queued requests per ACTIVE replica above which a sample
  // counts toward scaling up.
  std::int64_t up_queue_depth = 8;
  // Optional latency pressure: rolling flush-wait p99 (µs) above which a
  // sample counts toward scaling up. 0 = queue depth only.
  std::int64_t up_wait_p99_us = 0;
  // Consecutive pressured samples before a scale-up.
  int up_ticks = 2;
  // Consecutive idle samples (empty queue, no request arrivals) before a
  // scale-down.
  int down_idle_ticks = 10;
  // Samples to hold after any scaling action.
  int cooldown_ticks = 3;
};

class ReplicaAutoscaler {
 public:
  // `server` must be started and outlive the autoscaler; `model_id` must be
  // registered (validated at start()).
  ReplicaAutoscaler(BatchingServer& server, std::string model_id,
                    AutoscalerOptions options = {});
  ~ReplicaAutoscaler();  // stops and joins

  ReplicaAutoscaler(const ReplicaAutoscaler&) = delete;
  ReplicaAutoscaler& operator=(const ReplicaAutoscaler&) = delete;

  // Spawns the policy thread; immediately enforces min_replicas.
  void start();
  // Joins the policy thread. The replica count stays wherever the policy
  // left it. Idempotent.
  void stop();

  // Policy decision counters (reads are racy-snapshot, test/metrics only).
  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t scale_ups = 0;
    std::uint64_t scale_downs = 0;
    int current_target = 0;
  };
  Stats stats() const;

 private:
  void policy_loop();

  BatchingServer& server_;
  std::string model_id_;
  AutoscalerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool running_ = false;
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace serve
}  // namespace csq
