// Contract checking for the csq library.
//
// Follows the spirit of the C++ Core Guidelines (I.6/I.8 Expects/Ensures):
// preconditions and invariants are checked with a macro that throws a
// descriptive exception. Checks stay enabled in release builds; every failure
// carries the failing expression, file and line.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace csq {

// Error type thrown on any contract violation inside the library.
class check_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

// Stream-style message builder so call sites can write
//   CSQ_CHECK(a == b) << "a=" << a;
class check_message_builder {
 public:
  check_message_builder(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  check_message_builder(const check_message_builder&) = delete;
  check_message_builder& operator=(const check_message_builder&) = delete;

  template <typename T>
  check_message_builder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~check_message_builder() noexcept(false) {
    check_failed(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Sink that swallows the streamed message when the check passes.
struct check_void_sink {
  template <typename T>
  check_void_sink& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail
}  // namespace csq

// Precondition / invariant check. Always on (quantization-search bugs are
// silent numeric corruption otherwise); cost is one predictable branch.
#define CSQ_CHECK(cond)                                                   \
  if (cond)                                                               \
    ::csq::detail::check_void_sink{};                                     \
  else                                                                    \
    ::csq::detail::check_message_builder { #cond, __FILE__, __LINE__ }

// Marks unreachable code paths.
#define CSQ_UNREACHABLE(msg)                                              \
  ::csq::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
