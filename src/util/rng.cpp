#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace csq {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1) with full float precision.
  return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

std::uint32_t Rng::uniform_int(std::uint32_t n) {
  CSQ_CHECK(n > 0) << "uniform_int needs a positive range";
  // Lemire rejection-free-ish bounded generation with rejection of the
  // biased region.
  const std::uint64_t threshold = (0x100000000ULL - n) % n;
  while (true) {
    const std::uint64_t product =
        static_cast<std::uint64_t>(next_u32()) * static_cast<std::uint64_t>(n);
    if ((product & 0xffffffffULL) >= threshold) {
      return static_cast<std::uint32_t>(product >> 32);
    }
  }
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  float u1 = uniform();
  while (u1 <= 1e-12f) u1 = uniform();
  const float u2 = uniform();
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float angle = 6.28318530717958647692f * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(float p) { return uniform() < p; }

void Rng::shuffle(std::vector<int>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::uint32_t j = uniform_int(static_cast<std::uint32_t>(i));
    std::swap(values[i - 1], values[j]);
  }
}

Rng Rng::split() {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Rng(seed, stream);
}

}  // namespace csq
