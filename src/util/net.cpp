#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/check.h"

namespace csq {
namespace net {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool read_full(int fd, void* buffer, std::size_t size) {
  char* dst = static_cast<char*>(buffer);
  while (size > 0) {
    const ssize_t got = ::read(fd, dst, size);
    if (got > 0) {
      dst += got;
      size -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return false;  // EOF mid-message
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool write_full(int fd, const void* buffer, std::size_t size) {
  const char* src = static_cast<const char*>(buffer);
  while (size > 0) {
    const ssize_t put = ::write(fd, src, size);
    if (put > 0) {
      src += put;
      size -= static_cast<std::size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking socket with a full kernel buffer: wait for drain.
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      if (::poll(&pfd, 1, /*timeout_ms=*/-1) < 0 && errno != EINTR) {
        return false;
      }
      continue;
    }
    return false;
  }
  return true;
}

UniqueFd listen_loopback(std::uint16_t port, int backlog,
                         std::uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  CSQ_CHECK(fd.valid()) << "net: socket() failed: " << std::strerror(errno);
  const int enable = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  CSQ_CHECK(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0)
      << "net: bind(127.0.0.1:" << port
      << ") failed: " << std::strerror(errno);
  CSQ_CHECK(::listen(fd.get(), backlog) == 0)
      << "net: listen failed: " << std::strerror(errno);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  CSQ_CHECK(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                          &bound_len) == 0)
      << "net: getsockname failed: " << std::strerror(errno);
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

UniqueFd connect_loopback(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return UniqueFd();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return UniqueFd();
  }
  // Frames are small request/response pairs; latency beats coalescing.
  const int enable = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace net
}  // namespace csq
