#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace csq {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("CSQ_LOG_LEVEL");
  if (env == nullptr) return LogLevel::info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::error;
  if (std::strcmp(env, "off") == 0) return LogLevel::off;
  return LogLevel::info;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "DEBUG";
    case LogLevel::info:
      return "INFO ";
    case LogLevel::warn:
      return "WARN ";
    case LogLevel::error:
      return "ERROR";
    case LogLevel::off:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_storage().store(level); }

LogLevel log_level() { return level_storage().load(); }

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  static std::mutex io_mutex;
  std::lock_guard<std::mutex> lock(io_mutex);
  std::ostream& out = (level >= LogLevel::warn) ? std::cerr : std::cout;
  out << "[csq " << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace csq
