#include "util/check.h"

namespace csq::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream out;
  out << "CSQ_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) out << " — " << message;
  throw check_error(out.str());
}

}  // namespace csq::detail
