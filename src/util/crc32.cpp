#include "util/crc32.h"

#include <array>

namespace csq {

namespace {

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = build_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace csq
