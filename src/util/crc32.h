// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// checksum of persisted graph artifacts (runtime/graph_artifact.h). A v4
// graph section carries crc32 over every preceding container byte as a
// trailer, so a torn write or bit-flipped file is rejected at load instead
// of deserialized.
#pragma once

#include <cstddef>
#include <cstdint>

namespace csq {

// Checksum of `size` bytes at `data`. `seed` chains incremental updates:
// crc32(b, nb, crc32(a, na)) == crc32(concat(a, b), na + nb).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace csq
