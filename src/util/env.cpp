#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace csq {

BenchMode bench_mode() {
  const char* env = std::getenv("CSQ_BENCH_MODE");
  if (env == nullptr) return BenchMode::normal;
  if (std::strcmp(env, "smoke") == 0) return BenchMode::smoke;
  if (std::strcmp(env, "full") == 0) return BenchMode::full;
  return BenchMode::normal;
}

const char* bench_mode_name(BenchMode mode) {
  switch (mode) {
    case BenchMode::smoke:
      return "smoke";
    case BenchMode::normal:
      return "default";
    case BenchMode::full:
      return "full";
  }
  return "?";
}

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::atoi(env);
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::atof(env);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

}  // namespace csq
