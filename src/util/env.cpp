#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace csq {

BenchMode bench_mode() {
  const char* env = std::getenv("CSQ_BENCH_MODE");
  if (env == nullptr) return BenchMode::normal;
  if (std::strcmp(env, "smoke") == 0) return BenchMode::smoke;
  if (std::strcmp(env, "full") == 0) return BenchMode::full;
  return BenchMode::normal;
}

const char* bench_mode_name(BenchMode mode) {
  switch (mode) {
    case BenchMode::smoke:
      return "smoke";
    case BenchMode::normal:
      return "default";
    case BenchMode::full:
      return "full";
  }
  return "?";
}

namespace {

// Strict whole-string integer parse. Leading/trailing whitespace, trailing
// garbage, empty digits and out-of-int-range values all reject; the caller
// falls back to its documented default instead of acting on a silent 0.
bool parse_int_strict(const char* text, int* out) {
  if (std::isspace(static_cast<unsigned char>(*text))) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX) return false;
  *out = static_cast<int>(value);
  return true;
}

bool parse_double_strict(const char* text, double* out) {
  if (std::isspace(static_cast<unsigned char>(*text))) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  if (errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  int value = 0;
  if (!parse_int_strict(env, &value)) {
    log_warn() << name << "=\"" << env
               << "\" is not a valid integer; using default " << fallback;
    return fallback;
  }
  return value;
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  double value = 0.0;
  if (!parse_double_strict(env, &value)) {
    log_warn() << name << "=\"" << env
               << "\" is not a valid number; using default " << fallback;
    return fallback;
  }
  return value;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

}  // namespace csq
