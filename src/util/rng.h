// Deterministic random number generation.
//
// A small PCG32 engine (O'Neill 2014) wrapped with the distributions the
// library needs. Every dataset, initializer and search algorithm takes an
// explicit `Rng&` or seed so that experiments are reproducible bit-for-bit
// across runs, independent of the global C++ random machinery.
#pragma once

#include <cstdint>
#include <vector>

namespace csq {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  // Core generator: 32 uniform random bits.
  std::uint32_t next_u32();

  // Uniform in [0, 1).
  float uniform();
  // Uniform in [lo, hi).
  float uniform(float lo, float hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint32_t uniform_int(std::uint32_t n);
  // Standard normal via Box-Muller (cached pair).
  float normal();
  // Normal with given mean and stddev.
  float normal(float mean, float stddev);
  // Bernoulli with probability p of true.
  bool bernoulli(float p);

  // Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& values);

  // Derive an independent child generator (for per-worker streams).
  Rng split();

  // Minimal UniformRandomBitGenerator interface so the engine can be used
  // with standard algorithms when needed.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace csq
