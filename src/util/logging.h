// Minimal leveled logger. Experiments log progress at info level; benches can
// silence training chatter via set_log_level(LogLevel::warn) or the
// CSQ_LOG_LEVEL environment variable (debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace csq {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void emit_log(LogLevel level, const std::string& message);

class log_line {
 public:
  explicit log_line(LogLevel level) : level_(level) {}
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;

  template <typename T>
  log_line& operator<<(const T& value) {
    if (enabled()) stream_ << value;
    return *this;
  }

  ~log_line() {
    if (enabled()) emit_log(level_, stream_.str());
  }

 private:
  bool enabled() const { return level_ >= log_level(); }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::log_line log_debug() {
  return detail::log_line(LogLevel::debug);
}
inline detail::log_line log_info() { return detail::log_line(LogLevel::info); }
inline detail::log_line log_warn() { return detail::log_line(LogLevel::warn); }
inline detail::log_line log_error() {
  return detail::log_line(LogLevel::error);
}

}  // namespace csq
