#include "util/failpoint.h"

#include <mutex>
#include <unordered_map>

namespace csq {
namespace fail {

namespace detail {
std::atomic<int> armed_count{0};
}  // namespace detail

namespace {

struct PointState {
  Policy policy = Policy::kOff;
  std::uint64_t n = 1;
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
};

// All registry state behind one mutex: failpoints are a test-only facility,
// and the hot-path gate (detail::armed_count) keeps unarmed production code
// away from this lock entirely.
struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, PointState> points;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace

void arm(const std::string& point, Policy policy, std::uint64_t n) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto [it, inserted] = reg.points.insert_or_assign(point, PointState{});
  it->second.policy = policy;
  it->second.n = n == 0 ? 1 : n;
  if (inserted) {
    detail::armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void disarm(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.points.erase(point) > 0) {
    detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  detail::armed_count.fetch_sub(static_cast<int>(reg.points.size()),
                                std::memory_order_relaxed);
  reg.points.clear();
}

std::uint64_t evaluations(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.evaluations;
}

std::uint64_t triggers(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.triggers;
}

namespace detail {

bool should_trigger(const char* point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.points.find(point);
  if (it == reg.points.end()) return false;
  PointState& state = it->second;
  ++state.evaluations;
  bool fire = false;
  switch (state.policy) {
    case Policy::kOff:
      break;
    case Policy::kOnce:
      fire = state.triggers == 0;
      break;
    case Policy::kEveryN:
      fire = state.evaluations % state.n == 0;
      break;
    case Policy::kAfterN:
      fire = state.evaluations > state.n;
      break;
  }
  if (fire) ++state.triggers;
  return fire;
}

}  // namespace detail
}  // namespace fail
}  // namespace csq
