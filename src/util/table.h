// Plain-text table printer used by the bench harnesses to emit paper-style
// result tables, plus a CSV writer for figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csq {

// Accumulates rows of string cells and prints an aligned ASCII table with a
// title and header rule, e.g.
//
//   == Table I: ResNet-20 on synthetic CIFAR-10 ==
//   A-Bits | Method      | W-Bits | Comp(x) | Acc(%) | paper Acc(%)
//   -------+-------------+--------+---------+--------+-------------
//   32     | FP          | 32     | 1.00    | 91.80  | 92.62
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  // Inserts a horizontal rule before the next row (visual grouping, like the
  // A-Bits blocks in the paper's tables).
  void add_rule();

  void print(std::ostream& out) const;
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool next_rule_ = false;
};

// Formats a double with fixed precision (helper for table cells).
std::string format_float(double value, int precision = 2);

// Writes a CSV with a header row and one row per record. Used by the figure
// harnesses to dump epoch series that can be re-plotted.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells);
  void write(std::ostream& out) const;
  bool save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csq
