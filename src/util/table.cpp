#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace csq {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  CSQ_CHECK(header_.empty() || cells.size() == header_.size())
      << "row width " << cells.size() << " != header width " << header_.size();
  Row row;
  row.cells = std::move(cells);
  row.rule_before = next_rule_;
  next_rule_ = false;
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { next_rule_ = true; }

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& row : rows_) {
    widths.resize(std::max(widths.size(), row.cells.size()), 0);
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << " | ";
      out << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    out << '\n';
  };
  const auto print_rule = [&] {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i > 0) out << "-+-";
      out << std::string(widths[i], '-');
    }
    out << '\n';
  };

  out << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const Row& row : rows_) {
    if (row.rule_before) print_rule();
    print_cells(row.cells);
  }
  out.flush();
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string format_float(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  CSQ_CHECK(cells.size() == header_.size())
      << "csv row width " << cells.size() << " != header " << header_.size();
  rows_.push_back(std::move(cells));
}

void CsvWriter::write(std::ostream& out) const {
  const auto write_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  write(file);
  return static_cast<bool>(file);
}

}  // namespace csq
