// Small POSIX socket helpers for the loopback serving transport
// (serve/transport.h): an fd RAII wrapper and EINTR-safe full-buffer
// read/write loops. Loopback-only scope — no name resolution, no TLS, no
// portability shims beyond what the tests and the transport need.
#pragma once

#include <cstddef>
#include <cstdint>

namespace csq {
namespace net {

// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  // Closes the held descriptor (if any) and forgets it.
  void reset(int fd = -1);
  // Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

// Reads exactly `size` bytes (looping over short reads and EINTR). False on
// EOF or error — the caller treats both as a dead peer.
bool read_full(int fd, void* buffer, std::size_t size);

// Writes exactly `size` bytes (looping over short writes, EINTR, and —
// for non-blocking sockets — EAGAIN via poll). False on error.
bool write_full(int fd, const void* buffer, std::size_t size);

// Binds a loopback (127.0.0.1) TCP listener on `port` (0 = kernel-assigned
// ephemeral) and starts listening. Returns the fd and stores the bound port
// in *bound_port. Throws check_error on failure.
UniqueFd listen_loopback(std::uint16_t port, int backlog,
                         std::uint16_t* bound_port);

// Blocking connect to 127.0.0.1:`port`. Invalid UniqueFd on failure.
UniqueFd connect_loopback(std::uint16_t port);

// Sets O_NONBLOCK. False on fcntl failure.
bool set_nonblocking(int fd);

}  // namespace net
}  // namespace csq
