// Environment-variable driven configuration for benches and examples.
//
// The bench harnesses scale their workloads through CSQ_BENCH_MODE:
//   smoke   — seconds per harness; sanity only, numbers are noisy.
//   default — minutes for the full suite; shapes of the paper hold.
//   full    — larger datasets / more epochs; closest to the paper's trends.
#pragma once

#include <string>

namespace csq {

enum class BenchMode { smoke, normal, full };

// Reads CSQ_BENCH_MODE (smoke|default|full); unset or unknown -> default.
BenchMode bench_mode();

const char* bench_mode_name(BenchMode mode);

// Generic typed getters with defaults. Numeric getters parse strictly: the
// whole value must be a valid in-range number, otherwise a warning is logged
// and the fallback is returned (CSQ_THREADS=abc no longer silently means 0).
int env_int(const char* name, int fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

}  // namespace csq
