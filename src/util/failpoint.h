// Deterministic fault injection for robustness tests.
//
// A failpoint is a named site in library code (CSQ_FAILPOINT("serve.warmup"))
// that normally costs one relaxed atomic load. Tests arm a site with a
// trigger policy — fail-once, fail-every-N, fail-after-N — and the next
// matching evaluation throws fail::injected_fault (or, for the stream
// variant, sets failbit, simulating a disk-full write). This is how the
// serving layer's quarantine/recovery paths and the artifact crash-safety
// guarantees are exercised without real hardware faults: the same site fires
// on the same evaluation every run.
//
// Planted sites (grep CSQ_FAILPOINT for the authoritative list):
//   serve.warmup          replica warmup forward (start() and restore)
//   serve.worker_batch    top of a shard worker's batch loop
//   serve.replica_forward the batched graph forward of a shard worker
//   serve.restore         a quarantined replica's rebuild attempt
//   threadpool.submit     top-level parallel_for submission
//   artifact.read         load_graph, after opening the file
//   artifact.write        save_graph, mid-payload (stream variant)
//   artifact.fsync        save_graph, temp-file fsync before rename (bool)
//   artifact.dirsync      save_graph, directory fsync after rename (bool)
//   artifact.mmap         load_graph_mmap, after opening the file
//   transport.accept      ServeTransport, accepting a client connection
//   transport.read        ServeTransport, reading request bytes
//   transport.write       ServeTransport, writing response bytes
//
// Compiled out entirely with -DCSQ_FAILPOINTS=OFF (CSQ_FAILPOINTS_ENABLED=0):
// every macro expands to a no-op and release binaries carry no hooks.
#pragma once

#include <atomic>
#include <cstdint>
#include <ios>
#include <stdexcept>
#include <string>

#ifndef CSQ_FAILPOINTS_ENABLED
#define CSQ_FAILPOINTS_ENABLED 1
#endif

namespace csq {
namespace fail {

// Thrown by a triggered failpoint. Deliberately NOT a csq::check_error:
// tests (and recovery paths) can tell an injected fault from a genuine
// contract violation.
class injected_fault : public std::runtime_error {
 public:
  explicit injected_fault(const std::string& point)
      : std::runtime_error("injected fault at failpoint '" + point + "'"),
        point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

enum class Policy {
  kOff,      // armed entry exists but never triggers (counting only)
  kOnce,     // trigger on the first evaluation, then self-disarm
  kEveryN,   // trigger on every Nth evaluation (n, 2n, 3n, ...)
  kAfterN,   // trigger on every evaluation after the first n
};

// Arms `point` with `policy`. `n` is the N of kEveryN / kAfterN (ignored
// otherwise; must be >= 1 for kEveryN). Re-arming replaces the previous
// policy and resets the site's evaluation/trigger counters.
void arm(const std::string& point, Policy policy, std::uint64_t n = 1);

// Removes the armed entry (unarmed sites are free). No-op if not armed.
void disarm(const std::string& point);

// Disarms every failpoint — test teardown.
void disarm_all();

// Evaluations of `point` since it was armed (0 if never armed).
std::uint64_t evaluations(const std::string& point);

// Times `point` actually fired since it was armed.
std::uint64_t triggers(const std::string& point);

namespace detail {

// Count of currently armed points: the fast-path gate every site loads.
extern std::atomic<int> armed_count;

// Slow path: records the evaluation and decides whether the site fires.
bool should_trigger(const char* point);

}  // namespace detail
}  // namespace fail
}  // namespace csq

#if CSQ_FAILPOINTS_ENABLED

// Throws fail::injected_fault when `point` is armed and its policy elects
// this evaluation. One relaxed atomic load when nothing is armed.
#define CSQ_FAILPOINT(point)                                               \
  do {                                                                     \
    if (::csq::fail::detail::armed_count.load(std::memory_order_relaxed) > \
            0 &&                                                           \
        ::csq::fail::detail::should_trigger(point)) {                      \
      throw ::csq::fail::injected_fault(point);                            \
    }                                                                      \
  } while (0)

// Stream variant: instead of throwing, poisons `stream` with failbit — the
// exact observable of a mid-write I/O failure (disk full, yanked volume).
#define CSQ_FAILPOINT_STREAM(point, stream)                                \
  do {                                                                     \
    if (::csq::fail::detail::armed_count.load(std::memory_order_relaxed) > \
            0 &&                                                           \
        ::csq::fail::detail::should_trigger(point)) {                      \
      (stream).setstate(std::ios::failbit);                                \
    }                                                                      \
  } while (0)

// Expression variant: evaluates to true when `point` fires — for sites that
// report failure through a return value (fsync, accept) rather than an
// exception or stream state.
#define CSQ_FAILPOINT_FIRES(point)                                         \
  (::csq::fail::detail::armed_count.load(std::memory_order_relaxed) > 0 && \
   ::csq::fail::detail::should_trigger(point))

#else

#define CSQ_FAILPOINT(point) ((void)0)
#define CSQ_FAILPOINT_STREAM(point, stream) ((void)0)
#define CSQ_FAILPOINT_FIRES(point) (false)

#endif  // CSQ_FAILPOINTS_ENABLED
