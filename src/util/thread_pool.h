// Work-sharing thread pool used to parallelize GEMM / convolution over the
// batch dimension and other embarrassingly parallel loops.
//
// Design notes:
//  * Static partitioning via `parallel_for` — the loops we run are regular
//    (same cost per index), so dynamic stealing would only add overhead.
//  * Exceptions thrown by workers are captured and rethrown on the caller
//    thread (first one wins), so CSQ_CHECK failures inside kernels surface.
//  * Top-level parallel_for calls from DIFFERENT threads are safe: they
//    queue on the pool and run one at a time (the serving layer's worker
//    threads each drive their own graph replica against the shared pool).
//    Nested calls from inside a region still run serially on the caller.
//  * A process-wide pool is exposed through `global_pool()`; thread count is
//    taken from the CSQ_THREADS environment variable, defaulting to the
//    hardware concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csq {

class ThreadPool {
 public:
  // `assign_scratch_slots` gives each worker a stable pool_slot() stripe
  // index (used only by the global pool; private pools leave slots at 0).
  explicit ThreadPool(int num_threads, bool assign_scratch_slots = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(begin..end) partitioned across the pool plus the calling thread.
  // Blocks until every index is processed. fn receives a single index.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

  // Chunked variant: fn receives [chunk_begin, chunk_end) so the body can
  // amortize per-call overhead across contiguous indices.
  void parallel_for_chunked(
      std::int64_t begin, std::int64_t end,
      const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  struct Task {
    std::function<void(std::int64_t, std::int64_t)> body;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t chunk = 1;
  };

  void worker_loop();
  void run_task_share(const Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const Task* active_task_ = nullptr;
  std::int64_t next_index_ = 0;
  int workers_running_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

// Process-wide pool (created on first use).
ThreadPool& global_pool();

// True when called from inside a parallel region (worker or caller share);
// used to serialize nested parallel loops.
bool inside_parallel_region();

// Scoped opt-out of the global pool: while alive on a thread, every
// parallel_for wrapper on that thread runs serially (exactly the nested-
// region fallback). Data-parallel training workers hold one so the inner
// kernels of N concurrent forward/backward passes never contend for — or
// serialize on — the shared pool; parallelism comes from the shards alone,
// and the fixed-chunk-grid kernels make serial execution bit-identical to
// pooled anyway.
class SerialExecutionGuard {
 public:
  SerialExecutionGuard();
  ~SerialExecutionGuard();
  SerialExecutionGuard(const SerialExecutionGuard&) = delete;
  SerialExecutionGuard& operator=(const SerialExecutionGuard&) = delete;

 private:
  bool previous_;
};

// Stable scratch-stripe index of the calling thread: global-pool worker i
// answers i + 1, every other thread (including the caller participating in a
// parallel region) answers 0. Always < pool_slot_count(). Lets parallel
// bodies index pre-sized per-thread scratch stripes without locking.
int pool_slot();

// Number of distinct pool_slot() values: global_pool().num_threads().
int pool_slot_count();

// Default serial-fallback threshold for `parallel_for`: ranges of <= 2
// indices run on the caller. Audit note (kept current with the GEMM column
// split): this threshold gates BATCH-level loops only — a 1- or 2-sample
// batch deliberately stays on the caller because each sample's GEMM can fan
// out on its own (the pooled drivers' kCols/kGrid splits parallelize even
// m=1 wide-N problems, and their tile distribution goes through
// `parallel_for_chunked`, whose threshold is 1, so a profitable 2-task
// column split is never silently serialized by this constant). Call sites
// that want a different tradeoff pass an explicit threshold.
inline constexpr std::int64_t kParallelForSerialThreshold = 2;

// Convenience wrappers over the global pool. Falls back to a serial loop for
// tiny ranges where threading would cost more than it saves.
//
// Templates rather than std::function parameters so the serial paths (tiny
// range, nested region, SerialExecutionGuard) invoke the functor directly
// with no type erasure — a hot training step makes thousands of these calls
// and must not allocate. The pooled path wraps a reference to the caller's
// functor (parallel_for blocks until the region retires, so the reference
// cannot dangle); a reference_wrapper fits std::function's small-object
// buffer, keeping the submission heap-free as well.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, const Fn& fn,
                  std::int64_t serial_threshold = kParallelForSerialThreshold) {
  if (end - begin <= serial_threshold || inside_parallel_region()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  global_pool().parallel_for(
      begin, end, std::function<void(std::int64_t)>(std::cref(fn)));
}

template <typename Fn>
void parallel_for_chunked(std::int64_t begin, std::int64_t end, const Fn& fn) {
  if (end - begin <= 1 || inside_parallel_region()) {
    if (begin < end) fn(begin, end);
    return;
  }
  global_pool().parallel_for_chunked(
      begin, end, std::function<void(std::int64_t, std::int64_t)>(std::cref(fn)));
}

}  // namespace csq
