#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/check.h"
#include "util/failpoint.h"

namespace csq {

namespace {
// Scratch-stripe index: worker i of the global pool holds i + 1, everything
// else 0 (see pool_slot() below).
thread_local int t_pool_slot = 0;
}  // namespace

ThreadPool::ThreadPool(int num_threads, bool assign_scratch_slots) {
  CSQ_CHECK(num_threads >= 1) << "thread pool needs at least one thread";
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this, i, assign_scratch_slots] {
      if (assign_scratch_slots) t_pool_slot = i + 1;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    const Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (active_task_ != nullptr &&
                             generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = active_task_;
      ++workers_running_;
    }
    run_task_share(*task);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_running_;
    }
    done_.notify_all();
  }
}

namespace {
// Set while a thread is executing a parallel region; nested parallel_for
// calls fall back to serial execution instead of deadlocking the pool.
thread_local bool t_inside_parallel_region = false;

class ParallelRegionGuard {
 public:
  ParallelRegionGuard() { t_inside_parallel_region = true; }
  ~ParallelRegionGuard() { t_inside_parallel_region = false; }
};
}  // namespace

bool inside_parallel_region() { return t_inside_parallel_region; }

SerialExecutionGuard::SerialExecutionGuard()
    : previous_(t_inside_parallel_region) {
  t_inside_parallel_region = true;
}

SerialExecutionGuard::~SerialExecutionGuard() {
  t_inside_parallel_region = previous_;
}

void ThreadPool::run_task_share(const Task& task) {
  ParallelRegionGuard guard;
  while (true) {
    std::int64_t chunk_begin;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_index_ >= task.end) return;
      chunk_begin = next_index_;
      next_index_ += task.chunk;
    }
    const std::int64_t chunk_end = std::min(chunk_begin + task.chunk, task.end);
    try {
      task.body(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Drain the remaining range so other threads finish quickly.
      next_index_ = task.end;
      return;
    }
  }
}

void ThreadPool::parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  // Fault-injection site: a failed submission surfaces on the calling
  // thread exactly like a kernel exception (the serving layer quarantines
  // the replica whose forward it interrupted).
  CSQ_FAILPOINT("threadpool.submit");
  const std::int64_t count = end - begin;
  const int threads = num_threads();
  // Aim for ~4 chunks per thread so a straggler does not serialize the tail.
  const std::int64_t chunk =
      std::max<std::int64_t>(1, count / (static_cast<std::int64_t>(threads) * 4));

  Task task;
  task.body = fn;
  task.begin = begin;
  task.end = end;
  task.chunk = chunk;

  // A direct nested submission would deadlock the queueing wait below (the
  // caller is counted in workers_running_ of the task it is inside, so that
  // task could never retire) — keep the misuse loud. The free-function
  // wrappers never get here: they fall back to serial inside a region.
  CSQ_CHECK(!inside_parallel_region())
      << "nested parallel_for on the same pool is not supported";
  {
    // Top-level submissions from distinct threads (serving workers each
    // driving their own graph replica) queue here until the pool is free.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return active_task_ == nullptr; });
    active_task_ = &task;
    next_index_ = begin;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  run_task_share(task);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return workers_running_ == 0; });
    active_task_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  // Wake submitters queued on active_task_ == nullptr.
  done_.notify_all();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunked(begin, end,
                       [&fn](std::int64_t chunk_begin, std::int64_t chunk_end) {
                         for (std::int64_t i = chunk_begin; i < chunk_end; ++i) {
                           fn(i);
                         }
                       });
}

namespace {

int configured_thread_count() {
  if (const char* env = std::getenv("CSQ_THREADS")) {
    const int requested = std::atoi(env);
    if (requested >= 1) return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool(configured_thread_count(),
                         /*assign_scratch_slots=*/true);
  return pool;
}

int pool_slot() { return t_pool_slot; }

int pool_slot_count() { return global_pool().num_threads(); }

}  // namespace csq
