// Perturbation-based layer sensitivity profiling — the HAWQ-family stand-in
// (see DESIGN.md substitutions). For a *pretrained* full-precision model,
// the sensitivity of layer l at precision b is the calibration-loss increase
// when only that layer's weights are quantized to b bits. This reproduces
// the defining property of the sensitivity-statistics baselines the paper
// argues against: the statistics are frozen at pretrain time and do not
// track sensitivity drift during quantization-aware training.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace csq {

struct SensitivityProfile {
  // sensitivity[l][b-1]: loss increase of layer l quantized to b bits.
  std::vector<std::vector<double>> sensitivity;
  std::vector<std::string> layer_names;
  std::vector<std::int64_t> layer_sizes;
  double base_loss = 0.0;
};

// Profiles every DenseWeightSource layer at precisions 1..max_bits using a
// calibration subset of at most `calibration_samples` samples.
SensitivityProfile profile_sensitivity(Model& model,
                                       const InMemoryDataset& calibration,
                                       int max_bits = 8,
                                       std::int64_t calibration_samples = 200);

// Snapshots / restores dense weights (used by candidate evaluation).
std::vector<Tensor> backup_dense_weights(Model& model);
void restore_dense_weights(Model& model, const std::vector<Tensor>& backup);

}  // namespace csq
