// Evolutionary mixed-precision search (HAQ-lite, see DESIGN.md).
//
// HAQ searches the per-layer bit assignment with reinforcement learning;
// this module covers the same black-box-search baseline family with a
// budget-constrained evolutionary loop: candidates are per-layer bit
// vectors, fitness is the validation accuracy of the pretrained model after
// mixed-precision PTQ at the candidate's scheme, infeasible candidates are
// repaired by shrinking the least-sensitive layers.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "search/sensitivity.h"
#include "util/rng.h"

namespace csq {

struct EvoSearchConfig {
  int population = 12;
  int generations = 8;
  int tournament = 3;
  float mutation_rate = 0.3f;  // per-layer probability of a +/-1 step
  double target_bits = 3.0;
  int min_bits = 1;
  int max_bits = 8;
  std::int64_t fitness_samples = 300;  // validation subset size
  std::uint64_t seed = 11;
};

struct EvoSearchResult {
  std::vector<int> best_bits;
  double best_fitness = 0.0;  // accuracy (%) under PTQ at the found scheme
  double average_bits = 0.0;
  // Best fitness after each generation (monotone non-decreasing).
  std::vector<double> history;
};

// Model must be a pretrained dense model; its weights are restored to the
// original values before returning.
EvoSearchResult evolutionary_search(Model& model,
                                    const InMemoryDataset& validation,
                                    const SensitivityProfile& profile,
                                    const EvoSearchConfig& config);

}  // namespace csq
