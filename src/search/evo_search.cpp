#include "search/evo_search.h"

#include <algorithm>
#include <limits>

#include "opt/trainer.h"
#include "search/assignment.h"
#include "util/check.h"

namespace csq {

namespace {

InMemoryDataset fitness_subset(const InMemoryDataset& dataset,
                               std::int64_t samples) {
  const std::int64_t count = std::min(samples, dataset.size());
  std::vector<int> indices(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    indices[static_cast<std::size_t>(i)] = static_cast<int>(i);
  }
  Batch batch = dataset.gather(indices);
  return InMemoryDataset(std::move(batch.images), std::move(batch.labels));
}

// Shrinks the least-sensitive layers until the candidate meets the budget.
void repair_to_budget(std::vector<int>& bits,
                      const SensitivityProfile& profile, double target_bits,
                      int min_bits) {
  while (assignment_average_bits(bits, profile.layer_sizes) > target_bits) {
    std::size_t best_layer = bits.size();
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < bits.size(); ++l) {
      if (bits[l] <= min_bits) continue;
      const double cost =
          profile.sensitivity[l][static_cast<std::size_t>(bits[l] - 2)] -
          profile.sensitivity[l][static_cast<std::size_t>(bits[l] - 1)];
      if (cost < best_cost) {
        best_cost = cost;
        best_layer = l;
      }
    }
    if (best_layer == bits.size()) break;
    --bits[best_layer];
  }
}

}  // namespace

EvoSearchResult evolutionary_search(Model& model,
                                    const InMemoryDataset& validation,
                                    const SensitivityProfile& profile,
                                    const EvoSearchConfig& config) {
  const std::size_t layer_count = profile.sensitivity.size();
  CSQ_CHECK(layer_count > 0) << "evo search: empty profile";
  CSQ_CHECK(config.population >= 2) << "evo search: population too small";

  Rng rng(config.seed);
  const InMemoryDataset subset =
      fitness_subset(validation, config.fitness_samples);
  const std::vector<Tensor> backup = backup_dense_weights(model);

  const auto fitness = [&](const std::vector<int>& bits) {
    apply_assignment_ptq(model, bits);
    const float accuracy = evaluate_accuracy(model, subset);
    restore_dense_weights(model, backup);
    return static_cast<double>(accuracy);
  };

  // ---- initialize population around the budget ------------------------
  std::vector<std::vector<int>> population;
  std::vector<double> scores;
  population.reserve(static_cast<std::size_t>(config.population));
  for (int p = 0; p < config.population; ++p) {
    std::vector<int> bits(layer_count);
    for (std::size_t l = 0; l < layer_count; ++l) {
      const int span = config.max_bits - config.min_bits + 1;
      bits[l] = config.min_bits +
                static_cast<int>(rng.uniform_int(
                    static_cast<std::uint32_t>(span)));
    }
    repair_to_budget(bits, profile, config.target_bits, config.min_bits);
    population.push_back(std::move(bits));
  }
  scores.reserve(population.size());
  for (const auto& candidate : population) scores.push_back(fitness(candidate));

  EvoSearchResult result;
  const auto record_best = [&] {
    const auto best_it = std::max_element(scores.begin(), scores.end());
    const std::size_t best_index =
        static_cast<std::size_t>(best_it - scores.begin());
    if (*best_it > result.best_fitness || result.best_bits.empty()) {
      result.best_fitness = *best_it;
      result.best_bits = population[best_index];
    }
    result.history.push_back(result.best_fitness);
  };
  record_best();

  // ---- evolution loop ---------------------------------------------------
  for (int gen = 0; gen < config.generations; ++gen) {
    const auto tournament_pick = [&]() -> const std::vector<int>& {
      std::size_t best = rng.uniform_int(
          static_cast<std::uint32_t>(population.size()));
      for (int t = 1; t < config.tournament; ++t) {
        const std::size_t other = rng.uniform_int(
            static_cast<std::uint32_t>(population.size()));
        if (scores[other] > scores[best]) best = other;
      }
      return population[best];
    };

    std::vector<std::vector<int>> next_population;
    next_population.reserve(population.size());
    next_population.push_back(result.best_bits);  // elitism
    while (next_population.size() < population.size()) {
      // Uniform crossover of two tournament winners, then mutation.
      const std::vector<int>& parent_a = tournament_pick();
      const std::vector<int>& parent_b = tournament_pick();
      std::vector<int> child(layer_count);
      for (std::size_t l = 0; l < layer_count; ++l) {
        child[l] = rng.bernoulli(0.5f) ? parent_a[l] : parent_b[l];
        if (rng.bernoulli(config.mutation_rate)) {
          child[l] += rng.bernoulli(0.5f) ? 1 : -1;
          child[l] = std::clamp(child[l], config.min_bits, config.max_bits);
        }
      }
      repair_to_budget(child, profile, config.target_bits, config.min_bits);
      next_population.push_back(std::move(child));
    }
    population = std::move(next_population);
    scores.clear();
    for (const auto& candidate : population) {
      scores.push_back(fitness(candidate));
    }
    record_best();
  }

  result.average_bits =
      assignment_average_bits(result.best_bits, profile.layer_sizes);
  return result;
}

}  // namespace csq
