// Budgeted bit assignment from a sensitivity profile (HAWQ-lite).
//
// Minimize sum_l sensitivity[l][b_l] subject to the element-weighted average
// precision sum_l b_l * |W_l| / sum_l |W_l| <= target. Solved greedily:
// start at max_bits everywhere and repeatedly take the cheapest marginal
// reduction (smallest sensitivity increase per storage bit saved) until the
// budget holds, followed by a local-improvement pass that re-grows a layer
// whenever another can shrink more cheaply.
#pragma once

#include <vector>

#include "search/sensitivity.h"

namespace csq {

struct BitAssignment {
  std::vector<int> bits;        // per layer, aligned with profile order
  double average_bits = 0.0;    // element-weighted
  double predicted_loss_increase = 0.0;
};

BitAssignment assign_bits_greedy(const SensitivityProfile& profile,
                                 double target_bits, int min_bits = 1,
                                 int max_bits = 8);

// Element-weighted average precision of an assignment.
double assignment_average_bits(const std::vector<int>& bits,
                               const std::vector<std::int64_t>& sizes);

// Applies the assignment as mixed-precision PTQ on a dense model (layer
// order must match model.quant_layers()).
void apply_assignment_ptq(Model& model, const std::vector<int>& bits);

}  // namespace csq
