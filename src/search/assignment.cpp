#include "search/assignment.h"

#include <limits>

#include "quant/quantizer.h"
#include "util/check.h"

namespace csq {

double assignment_average_bits(const std::vector<int>& bits,
                               const std::vector<std::int64_t>& sizes) {
  CSQ_CHECK(bits.size() == sizes.size()) << "assignment: size mismatch";
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t l = 0; l < bits.size(); ++l) {
    weighted += static_cast<double>(bits[l]) * static_cast<double>(sizes[l]);
    total += static_cast<double>(sizes[l]);
  }
  return weighted / total;
}

BitAssignment assign_bits_greedy(const SensitivityProfile& profile,
                                 double target_bits, int min_bits,
                                 int max_bits) {
  const std::size_t layer_count = profile.sensitivity.size();
  CSQ_CHECK(layer_count > 0) << "assignment: empty profile";
  CSQ_CHECK(min_bits >= 1 && max_bits <= 8 && min_bits <= max_bits)
      << "assignment: bad bit range";

  const auto sens = [&](std::size_t l, int bits) {
    return profile.sensitivity[l][static_cast<std::size_t>(bits - 1)];
  };

  BitAssignment result;
  result.bits.assign(layer_count, max_bits);

  // Greedy descent: cheapest marginal loss increase per storage bit saved.
  while (assignment_average_bits(result.bits, profile.layer_sizes) >
         target_bits) {
    std::size_t best_layer = layer_count;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < layer_count; ++l) {
      const int bits = result.bits[l];
      if (bits <= min_bits) continue;
      const double loss_increase = sens(l, bits - 1) - sens(l, bits);
      const auto saved =
          static_cast<double>(profile.layer_sizes[l]);  // one bit per element
      const double ratio = loss_increase / saved;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_layer = l;
      }
    }
    if (best_layer == layer_count) break;  // every layer at the floor
    --result.bits[best_layer];
  }

  // Local improvement: re-grow a sensitive layer if a cheaper layer can
  // shrink instead without breaking the budget.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t grow = 0; grow < layer_count && !improved; ++grow) {
      if (result.bits[grow] >= max_bits) continue;
      const double gain =
          sens(grow, result.bits[grow]) - sens(grow, result.bits[grow] + 1);
      for (std::size_t shrink = 0; shrink < layer_count; ++shrink) {
        if (shrink == grow || result.bits[shrink] <= min_bits) continue;
        const double cost = sens(shrink, result.bits[shrink] - 1) -
                            sens(shrink, result.bits[shrink]);
        if (cost >= gain) continue;
        std::vector<int> candidate = result.bits;
        ++candidate[grow];
        --candidate[shrink];
        if (assignment_average_bits(candidate, profile.layer_sizes) <=
            target_bits) {
          result.bits = std::move(candidate);
          improved = true;
          break;
        }
      }
    }
  }

  result.average_bits =
      assignment_average_bits(result.bits, profile.layer_sizes);
  for (std::size_t l = 0; l < layer_count; ++l) {
    result.predicted_loss_increase += sens(l, result.bits[l]);
  }
  return result;
}

void apply_assignment_ptq(Model& model, const std::vector<int>& bits) {
  const auto& layers = model.quant_layers();
  CSQ_CHECK(bits.size() == layers.size())
      << "apply_assignment: " << bits.size() << " bits for " << layers.size()
      << " layers";
  for (std::size_t l = 0; l < layers.size(); ++l) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layers[l].source);
    CSQ_CHECK(dense != nullptr) << "apply_assignment: non-dense layer";
    Tensor& weights = dense->parameter().value;
    const float scale = max_abs_scale(weights);
    Tensor original = weights;
    quantize_symmetric_tensor(original, weights, scale, bits[l]);
  }
}

}  // namespace csq
