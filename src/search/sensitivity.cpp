#include "search/sensitivity.h"

#include <algorithm>

#include "opt/trainer.h"
#include "quant/quantizer.h"
#include "util/check.h"

namespace csq {

namespace {

InMemoryDataset calibration_subset(const InMemoryDataset& dataset,
                                   std::int64_t samples) {
  const std::int64_t count = std::min(samples, dataset.size());
  std::vector<int> indices(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    indices[static_cast<std::size_t>(i)] = static_cast<int>(i);
  }
  Batch batch = dataset.gather(indices);
  return InMemoryDataset(std::move(batch.images), std::move(batch.labels));
}

}  // namespace

std::vector<Tensor> backup_dense_weights(Model& model) {
  std::vector<Tensor> backup;
  for (const QuantLayer& layer : model.quant_layers()) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layer.source);
    CSQ_CHECK(dense != nullptr)
        << "sensitivity profiling requires dense layers, got "
        << layer.source->kind() << " at " << layer.name;
    backup.push_back(dense->parameter().value);
  }
  return backup;
}

void restore_dense_weights(Model& model, const std::vector<Tensor>& backup) {
  const auto& layers = model.quant_layers();
  CSQ_CHECK(backup.size() == layers.size())
      << "restore_dense_weights: backup size mismatch";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layers[i].source);
    CSQ_CHECK(dense != nullptr) << "restore: non-dense layer";
    dense->parameter().value = backup[i];
    dense->parameter().mark_updated();
  }
}

SensitivityProfile profile_sensitivity(Model& model,
                                       const InMemoryDataset& calibration,
                                       int max_bits,
                                       std::int64_t calibration_samples) {
  CSQ_CHECK(max_bits >= 1 && max_bits <= 8) << "sensitivity: bad max_bits";
  const InMemoryDataset subset =
      calibration_subset(calibration, calibration_samples);

  SensitivityProfile profile;
  profile.base_loss = evaluate_loss(model, subset);

  const std::vector<Tensor> backup = backup_dense_weights(model);
  const auto& layers = model.quant_layers();

  for (std::size_t l = 0; l < layers.size(); ++l) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layers[l].source);
    profile.layer_names.push_back(layers[l].name);
    profile.layer_sizes.push_back(dense->parameter().value.numel());

    std::vector<double> per_bits(static_cast<std::size_t>(max_bits), 0.0);
    for (int bits = 1; bits <= max_bits; ++bits) {
      Tensor& weights = dense->parameter().value;
      const float scale = max_abs_scale(backup[l]);
      quantize_symmetric_tensor(backup[l], weights, scale, bits);
      dense->parameter().mark_updated();
      const double loss = evaluate_loss(model, subset);
      per_bits[static_cast<std::size_t>(bits - 1)] =
          std::max(0.0, loss - profile.base_loss);
      weights = backup[l];  // restore before the next probe
      dense->parameter().mark_updated();
    }
    profile.sensitivity.push_back(std::move(per_bits));
  }
  return profile;
}

}  // namespace csq
