#include "quant/bsq_weight.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

namespace {
constexpr float kDenominator = 255.0f;  // 2^8 - 1 for the 8-bit ceiling
}

BsqWeightSource::BsqWeightSource(const std::string& name,
                                 std::vector<std::int64_t> shape,
                                 std::int64_t fan_in, Rng& rng)
    : shape_(shape) {
  element_count_ = shape_numel(shape_);
  active_.fill(true);

  // He-initialize a dense weight, then decompose it into bit planes.
  Tensor dense(shape_);
  fill_he_normal(dense, fan_in, rng);
  const float scale_value = max_abs_scale(dense);
  scale_ = Parameter(name + ".scale", Tensor::from_data({1}, {scale_value}),
                     /*apply_weight_decay=*/false);
  for (int b = 0; b < kMaxBits; ++b) {
    pos_[static_cast<std::size_t>(b)] =
        Parameter(name + ".p" + std::to_string(b), Tensor(shape_),
                  /*apply_weight_decay=*/false);
    neg_[static_cast<std::size_t>(b)] =
        Parameter(name + ".n" + std::to_string(b), Tensor(shape_),
                  /*apply_weight_decay=*/false);
  }
  quantized_ = Tensor(shape_);
  engine_ = BitPlaneEngine(element_count_, kMaxBits, /*cache_gates=*/false);
  requantize_from(dense);
}

void BsqWeightSource::reconstruct(Tensor& out) const {
  const float s = scale_.value[0];
  engine_.clear_planes();
  staged_planes_ = 0;
  for (int b = 0; b < kMaxBits; ++b) {
    if (!active_[static_cast<std::size_t>(b)]) continue;
    plane_bits_[static_cast<std::size_t>(staged_planes_)] = b;
    engine_.add_plane(pos_[static_cast<std::size_t>(b)].value.data(),
                      neg_[static_cast<std::size_t>(b)].value.data(),
                      s * static_cast<float>(1 << b) / kDenominator, 1 << b);
    ++staged_planes_;
  }
  // round_clip gates: W = s/(2^N-1) * sum_b 2^b (round(p_b) - round(n_b)).
  engine_.materialize(GateKind::round_clip, /*beta=*/0.0f, out.data(),
                      /*cache=*/false);
}

std::uint64_t BsqWeightSource::state_stamp() const {
  std::uint64_t stamp = internal_rev_ + scale_.version;
  for (int b = 0; b < kMaxBits; ++b) {
    stamp += pos_[static_cast<std::size_t>(b)].version +
             neg_[static_cast<std::size_t>(b)].version;
  }
  return stamp;
}

const Tensor& BsqWeightSource::weight(bool training) {
  // Dirty-flag: the rounded reconstruction is a pure function of the
  // latents, scale and active set. Training-mode reuse additionally needs
  // live plane staging (the backward routes gradients through it); staging
  // from the materialization that set the stamp is still in place.
  const std::uint64_t stamp = state_stamp();
  if (eval_cache_fresh(stamp) && (!training || staged_planes_ > 0)) {
    return quantized_;
  }
  reconstruct(quantized_);
  note_materialized(stamp);
  return quantized_;
}

void BsqWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(quantized_)) << "bsq: grad shape mismatch";
  CSQ_CHECK(staged_planes_ > 0) << "bsq: backward before materialization";
  const float s = scale_.value[0];
  const float* g = grad_weight.data();

  // ds: dW/ds = W / s elementwise.
  if (s != 0.0f) {
    scale_.grad[0] +=
        static_cast<float>(engine_.dot(g, quantized_.data()) / s);
  }

  // Clipped STE into the bit planes: the round() passes gradient through
  // where the latent lies in [0, 1].
  for (int p = 0; p < staged_planes_; ++p) {
    const int b = plane_bits_[static_cast<std::size_t>(p)];
    engine_.set_plane_grads(p, pos_[static_cast<std::size_t>(b)].grad.data(),
                            neg_[static_cast<std::size_t>(b)].grad.data(),
                            /*want_diff_sum=*/false);
  }
  engine_.backward(GateKind::round_clip, /*beta=*/0.0f, g);
}

void BsqWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&scale_);
  for (int b = 0; b < kMaxBits; ++b) {
    out.push_back(&pos_[static_cast<std::size_t>(b)]);
    out.push_back(&neg_[static_cast<std::size_t>(b)]);
  }
}

WeightCodes BsqWeightSource::finalized_codes() const {
  WeightCodes result;
  // Integer-first accumulation of the rounded planes,
  //   code_i = sum_{b active} 2^b * (round(clamp(p_b, 0, 1)) -
  //                                  round(clamp(n_b, 0, 1))),
  // mirroring the round_clip gates of reconstruct(). Deliberately does not
  // touch the engine: its plane staging may belong to an in-flight training
  // step whose backward still routes through it.
  result.codes.assign(static_cast<std::size_t>(element_count_), 0);
  for (int b = 0; b < kMaxBits; ++b) {
    if (!active_[static_cast<std::size_t>(b)]) continue;
    const float* p = pos_[static_cast<std::size_t>(b)].value.data();
    const float* n = neg_[static_cast<std::size_t>(b)].value.data();
    const std::int32_t weight = std::int32_t{1} << b;
    for (std::int64_t i = 0; i < element_count_; ++i) {
      const int bit_pos = std::lround(std::clamp(p[i], 0.0f, 1.0f));
      const int bit_neg = std::lround(std::clamp(n[i], 0.0f, 1.0f));
      result.codes[static_cast<std::size_t>(i)] +=
          weight * (bit_pos - bit_neg);
    }
  }
  result.scale = scale_.value[0];
  result.denominator = kDenominator;
  result.bits = active_bits();
  return result;
}

int BsqWeightSource::active_bits() const {
  int count = 0;
  for (const bool active : active_) count += active ? 1 : 0;
  return count;
}

void BsqWeightSource::add_sparsity_regularizer(float strength) {
  for (int b = 0; b < kMaxBits; ++b) {
    if (!active_[static_cast<std::size_t>(b)]) continue;
    for (Parameter* plane : {&pos_[static_cast<std::size_t>(b)],
                             &neg_[static_cast<std::size_t>(b)]}) {
      const float* v = plane->value.data();
      float* grad = plane->grad.data();
      for (std::int64_t i = 0; i < element_count_; ++i) {
        if (v[i] > 0.0f) grad[i] += strength;
        // Latents <= 0 already round to zero; no push needed.
      }
    }
  }
}

int BsqWeightSource::prune_bits(float usage_threshold) {
  Tensor current(shape_);
  reconstruct(current);

  const std::array<bool, kMaxBits> before = active_;
  int removed = 0;
  for (int b = 0; b < kMaxBits; ++b) {
    if (!active_[static_cast<std::size_t>(b)]) continue;
    const float* p = pos_[static_cast<std::size_t>(b)].value.data();
    const float* n = neg_[static_cast<std::size_t>(b)].value.data();
    double usage = 0.0;
    for (std::int64_t i = 0; i < element_count_; ++i) {
      usage += std::round(std::clamp(p[i], 0.0f, 1.0f)) +
               std::round(std::clamp(n[i], 0.0f, 1.0f));
    }
    usage /= static_cast<double>(2 * element_count_);
    if (usage < usage_threshold) {
      active_[static_cast<std::size_t>(b)] = false;
      ++removed;
    }
  }
  // Keep at least one bit: an all-pruned layer would zero its weights.
  if (active_bits() == 0) {
    active_[kMaxBits - 1] = true;
    --removed;
  }
  // Requantize on any change to the active set — not just a net removal:
  // the keep-one-bit fallback can swap which bit is active while leaving
  // `removed` at zero, and the weights (and the eval dirty-flag stamp,
  // bumped inside requantize_from) must follow.
  if (active_ != before) requantize_from(current);
  return removed;
}

void BsqWeightSource::requantize_from(const Tensor& target) {
  ++internal_rev_;  // latents, scale and active set all change
  const float s = max_abs_scale(target);
  scale_.value[0] = s;
  const float* w = target.data();

  for (std::int64_t i = 0; i < element_count_; ++i) {
    // Greedy MSB-first decomposition of |w| onto the active bit grid.
    std::int64_t code = static_cast<std::int64_t>(
        std::lround(std::fabs(w[i]) / s * kDenominator));
    code = std::min<std::int64_t>(code, 255);
    const bool positive = w[i] >= 0.0f;
    std::int64_t remaining = code;
    for (int b = kMaxBits - 1; b >= 0; --b) {
      const std::int64_t bit_value = std::int64_t{1} << b;
      float bit = 0.0f;
      if (active_[static_cast<std::size_t>(b)] && remaining >= bit_value) {
        remaining -= bit_value;
        bit = 1.0f;
      }
      // Latents sit at 0.25 / 0.75 so rounding is unambiguous but training
      // can still flip a bit without a long march.
      pos_[static_cast<std::size_t>(b)].value[i] =
          positive ? (bit > 0.0f ? 0.75f : 0.25f) : 0.25f;
      neg_[static_cast<std::size_t>(b)].value[i] =
          positive ? 0.25f : (bit > 0.0f ? 0.75f : 0.25f);
    }
  }
}

WeightSourceFactory bsq_weight_factory(
    std::vector<BsqWeightSource*>* registry) {
  CSQ_CHECK(registry != nullptr) << "bsq factory: null registry";
  return [registry](const std::string& name, std::vector<std::int64_t> shape,
                    std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    auto source =
        std::make_unique<BsqWeightSource>(name, std::move(shape), fan_in, rng);
    registry->push_back(source.get());
    return source;
  };
}

}  // namespace csq
