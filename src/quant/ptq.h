// Post-training quantization — the stand-in for the data-free PTQ rows
// (ZeroQ / ZAQ) in the paper's Table II (see DESIGN.md substitutions).
//
// Operates on a trained model whose layers use DenseWeightSource: each dense
// weight tensor is snapped in place onto the symmetric n-bit grid. Two
// calibrators: plain max-abs and percentile clipping (clipping the top
// outliers trades clipping error for resolution, usually winning at 4 bits).
#pragma once

#include "nn/model.h"

namespace csq {

enum class PtqCalibration { max_abs, percentile };

struct PtqReport {
  int layers_quantized = 0;
  // Mean (over layers) of the RMS weight perturbation relative to the
  // layer's RMS weight — a size-agnostic distortion measure.
  double mean_relative_error = 0.0;
};

// Quantizes every DenseWeightSource in the model to `bits` in place.
// Non-dense sources are left untouched (and counted out of the report).
PtqReport quantize_dense_weights(Model& model, int bits,
                                 PtqCalibration calibration,
                                 float percentile_fraction = 0.999f);

}  // namespace csq
