// DoReFa-Net weight quantization (Zhou et al. 2016).
//
// Forward:  w_norm = tanh(w) / (2 * max|tanh(w)|) + 0.5      in [0, 1]
//           w_hat  = 2 * round((2^k - 1) * w_norm)/(2^k - 1) - 1
// Backward: STE through the rounding; the tanh normalization is
// differentiated exactly (treating max|tanh| as a constant, the standard
// implementation choice).
#pragma once

#include <vector>

#include "nn/weight_source.h"

namespace csq {

class DorefaWeightSource final : public WeightSource {
 public:
  DorefaWeightSource(const std::string& name, std::vector<std::int64_t> shape,
                     std::int64_t fan_in, int bits, Rng& rng);

  const Tensor& weight(bool training) override;
  void backward(const Tensor& grad_weight) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "dorefa"; }
  std::int64_t weight_count() const override { return latent_.value.numel(); }
  std::vector<std::int64_t> weight_shape() const override {
    return latent_.value.shape();
  }
  double bits_per_weight() const override { return bits_; }

 private:
  Parameter latent_;
  Tensor quantized_;
  Tensor cached_tanh_;
  // Per-chunk scratch for the parallel max|tanh| reduction.
  std::vector<float> max_partials_;
  float cached_max_tanh_ = 1.0f;
  int bits_;
};

WeightSourceFactory dorefa_weight_factory(int bits);

}  // namespace csq
