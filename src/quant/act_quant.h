// Activation quantizers — the "A-Bits" column of the paper's tables.
//
// CSQ "does not control activation quantization, we quantize the activation
// uniformly throughout the training process" (Section IV-A). Two modules:
//
//  * FixedActQuant — unsigned uniform quantizer whose clip range tracks an
//    EMA of the observed batch maximum (observe-then-quantize); STE backward
//    masked outside the clip range.
//  * PactActQuant — PACT (Choi et al. 2018): the clip alpha is a trainable
//    parameter; gradient w.r.t. alpha flows from the clipped region.
//
// Both are Modules inserted after every ReLU by the model builders.
#pragma once

#include "nn/blocks.h"
#include "nn/module.h"

namespace csq {

class FixedActQuant final : public Module {
 public:
  FixedActQuant(const std::string& name, int bits, float ema_momentum = 0.05f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "fixed_act_quant"; }
  void lower(GraphLowering& lowering) override;

  int bits() const { return bits_; }
  float range() const { return range_; }
  // When false the module passes activations through while still updating
  // the range statistics — used for post-training calibration.
  void set_quantize_enabled(bool enabled) { quantize_enabled_ = enabled; }

 private:
  int bits_;
  float ema_momentum_;
  float range_ = 1.0f;
  bool range_initialized_ = false;
  bool quantize_enabled_ = true;
  Tensor cached_pass_mask_;  // 1 where input was inside [0, range]
};

class PactActQuant final : public Module {
 public:
  PactActQuant(const std::string& name, int bits, float alpha_init = 6.0f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "pact_act_quant"; }
  void lower(GraphLowering& lowering) override;

  float alpha() const { return alpha_.value[0]; }

 private:
  int bits_;
  Parameter alpha_;
  Tensor cached_input_;
};

// Factories for the model builders. When `registry` is non-null every
// created FixedActQuant is recorded (used by the PTQ calibration flow).
ActQuantFactory fixed_act_quant_factory(
    int bits, std::vector<FixedActQuant*>* registry = nullptr);
ActQuantFactory pact_act_quant_factory(int bits);

}  // namespace csq
