#include "quant/dorefa_weight.h"

#include <cmath>

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

DorefaWeightSource::DorefaWeightSource(const std::string& name,
                                       std::vector<std::int64_t> shape,
                                       std::int64_t fan_in, int bits, Rng& rng)
    : bits_(bits) {
  CSQ_CHECK(bits >= 1 && bits <= 8) << "dorefa: bits out of range";
  Tensor value(std::move(shape));
  fill_he_normal(value, fan_in, rng);
  latent_ = Parameter(name + ".latent", std::move(value),
                      /*apply_weight_decay=*/true);
  quantized_ = Tensor(latent_.value.shape());
  cached_tanh_ = Tensor(latent_.value.shape());
}

const Tensor& DorefaWeightSource::weight(bool training) {
  (void)training;
  const float* w = latent_.value.data();
  float* t = cached_tanh_.data();
  const std::int64_t count = latent_.value.numel();

  float max_tanh = 0.0f;
  for (std::int64_t i = 0; i < count; ++i) {
    t[i] = std::tanh(w[i]);
    max_tanh = std::max(max_tanh, std::fabs(t[i]));
  }
  cached_max_tanh_ = max_tanh > 0.0f ? max_tanh : 1.0f;

  const auto levels = static_cast<float>(levels_per_side(bits_));
  float* q = quantized_.data();
  const float inv_two_max = 0.5f / cached_max_tanh_;
  for (std::int64_t i = 0; i < count; ++i) {
    const float normalized = t[i] * inv_two_max + 0.5f;  // [0, 1]
    q[i] = 2.0f * std::round(levels * normalized) / levels - 1.0f;
  }
  return quantized_;
}

void DorefaWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(latent_.grad))
      << "dorefa: grad shape mismatch";
  // d w_hat / d w = 2 * d w_norm/d w (STE through round)
  //              = 2 * (1 - tanh^2 w) / (2 max|tanh|) = (1 - tanh^2) / max.
  const float* go = grad_weight.data();
  const float* t = cached_tanh_.data();
  float* gl = latent_.grad.data();
  const float inv_max = 1.0f / cached_max_tanh_;
  const std::int64_t count = latent_.grad.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    gl[i] += go[i] * (1.0f - t[i] * t[i]) * inv_max;
  }
}

void DorefaWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&latent_);
}

WeightSourceFactory dorefa_weight_factory(int bits) {
  return [bits](const std::string& name, std::vector<std::int64_t> shape,
                std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    return std::make_unique<DorefaWeightSource>(name, std::move(shape), fan_in,
                                                bits, rng);
  };
}

}  // namespace csq
