#include "quant/dorefa_weight.h"

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/quant_kernels.h"
#include "util/check.h"

namespace csq {

DorefaWeightSource::DorefaWeightSource(const std::string& name,
                                       std::vector<std::int64_t> shape,
                                       std::int64_t fan_in, int bits, Rng& rng)
    : bits_(bits) {
  CSQ_CHECK(bits >= 1 && bits <= 8) << "dorefa: bits out of range";
  Tensor value(std::move(shape));
  fill_he_normal(value, fan_in, rng);
  latent_ = Parameter(name + ".latent", std::move(value),
                      /*apply_weight_decay=*/true);
  quantized_ = Tensor(latent_.value.shape());
  cached_tanh_ = Tensor(latent_.value.shape());
  max_partials_.resize(
      static_cast<std::size_t>(quant_chunk_count(latent_.value.numel())));
}

const Tensor& DorefaWeightSource::weight(bool training) {
  // Dirty-flag: the tanh fake-quant is a pure function of the latents.
  // cached_tanh_/cached_max_tanh_ (what the backward consumes) come from
  // the same materialization that set the stamp, so training calls reuse
  // the cache as well.
  (void)training;
  const std::uint64_t stamp = latent_.version;
  if (eval_cache_fresh(stamp)) return quantized_;
  const std::int64_t count = latent_.value.numel();
  const KernelExec exec = default_kernel_exec();
  const float max_tanh =
      tanh_forward_max(latent_.value.data(), cached_tanh_.data(), count,
                       max_partials_.data(), exec);
  cached_max_tanh_ = max_tanh > 0.0f ? max_tanh : 1.0f;

  const auto levels = static_cast<float>(levels_per_side(bits_));
  dorefa_fake_quant(cached_tanh_.data(), quantized_.data(), count,
                    0.5f / cached_max_tanh_, levels, exec);
  note_materialized(stamp);
  return quantized_;
}

void DorefaWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(latent_.grad))
      << "dorefa: grad shape mismatch";
  // d w_hat / d w = 2 * d w_norm/d w (STE through round)
  //              = 2 * (1 - tanh^2 w) / (2 max|tanh|) = (1 - tanh^2) / max.
  tanh_ste_backward(grad_weight.data(), cached_tanh_.data(),
                    latent_.grad.data(), latent_.grad.numel(),
                    1.0f / cached_max_tanh_, default_kernel_exec());
}

void DorefaWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&latent_);
}

WeightSourceFactory dorefa_weight_factory(int bits) {
  return [bits](const std::string& name, std::vector<std::int64_t> shape,
                std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    return std::make_unique<DorefaWeightSource>(name, std::move(shape), fan_in,
                                                bits, rng);
  };
}

}  // namespace csq
