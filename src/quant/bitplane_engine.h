// BitPlaneEngine — the shared materialization pipeline behind the bit-plane
// weight parameterizations (CSQ, BSQ) and the cached-reduction workspace the
// other WeightSource families borrow for their scale/dot sweeps.
//
// Layering (see ROADMAP.md "Open items"):
//
//   WeightSource (nn)  —  the seam the layers talk to
//        │ owns
//   BitPlaneEngine (quant)  —  per-source workspace: gate caches, reduction
//        │ calls                partials, staged plane descriptors
//   quant_kernels (tensor)  —  flat-array chunked kernels on the ThreadPool
//
// The engine owns every buffer the hot path needs — gate caches, chunk
// partials, plane descriptor arrays — all sized once at construction, so a
// steady-state training step (materialize + backward) performs ZERO heap
// allocations. Parallel/serial execution is decided per call from
// default_kernel_exec(); both produce bit-identical weights because the
// kernels run on a fixed chunk grid.
//
// Call protocol per step:
//   engine.clear_planes();
//   engine.add_plane(pos, neg, coeff, code_weight);   // per active bit
//   engine.materialize(kind, beta, out, cache);       // forward
//   ...
//   engine.set_plane_grads(p, grad_pos, grad_neg, want_diff_sum);
//   engine.backward(kind, beta, grad_out);            // backward
//   engine.diff_sum(p);                               // mask-grad reductions
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/quant_kernels.h"

namespace csq {

class BitPlaneEngine {
 public:
  static constexpr int kMaxPlanes = 8;

  BitPlaneEngine() = default;
  // `cache_gates` permits the per-plane gate cache used by the sigmoid
  // backward; sources that never need cached gates (BSQ's clipped STE reads
  // the latents directly) opt out. The cache itself (2 * max_planes *
  // element_count floats — 16x the weight memory for CSQ) is allocated
  // lazily on the first caching materialize, so inference-only sources
  // never pay for it, and can be dropped with release_gate_cache() once a
  // source finalizes.
  BitPlaneEngine(std::int64_t element_count, int max_planes, bool cache_gates);

  // Frees the gate cache (e.g. after finalize(), when no backward can ever
  // run again). A later caching materialize re-allocates it.
  void release_gate_cache();

  std::int64_t element_count() const { return element_count_; }
  int num_planes() const { return num_planes_; }

  // --- forward staging ---------------------------------------------------
  void clear_planes() { num_planes_ = 0; }
  // Appends one gated plane; `coeff` multiplies (g(pos) - g(neg)) on the
  // soft path, `code_weight` (2^b) weighs the integer hard path.
  void add_plane(const float* pos, const float* neg, float coeff,
                 std::int32_t code_weight);

  // Soft materialization into `out` (size element_count). When `cache` is
  // true the per-plane gate values are kept for backward (requires
  // cache_gates at construction).
  void materialize(GateKind kind, float beta, float* out, bool cache);

  // Integer-exact hard materialization: out[i] = unit * code_i with
  // code_i = sum_b code_weight_b * (step(pos)-step(neg)). Either output may
  // be null.
  void materialize_hard(float unit, float* out, std::int32_t* codes);

  // Cached gate views of plane `p` from the last cached materialize.
  const float* gate_pos(int p) const;
  const float* gate_neg(int p) const;

  // --- backward ----------------------------------------------------------
  // Routes gradient accumulation targets for plane `p` (either may be null
  // to drop that side). `want_diff_sum` additionally reduces
  // sum_i grad_out[i] * (g_pos - g_neg), read back via diff_sum(p).
  void set_plane_grads(int p, float* grad_pos, float* grad_neg,
                       bool want_diff_sum);

  // Analytic backward through the staged planes. For the sigmoid path the
  // last materialize must have cached gates.
  void backward(GateKind kind, float beta, const float* grad_out);

  double diff_sum(int p) const;

  // Deterministic chunked dot product over the engine's partials workspace
  // (used for the dL/ds = <grad, W>/s reductions).
  double dot(const float* a, const float* b);

 private:
  std::int64_t element_count_ = 0;
  std::int64_t chunk_count_ = 0;
  int max_planes_ = 0;
  int num_planes_ = 0;
  bool cache_allowed_ = false;
  bool gates_cached_ = false;

  std::array<BitPlane, kMaxPlanes> planes_{};
  std::array<BitPlaneGrad, kMaxPlanes> grad_planes_{};
  std::array<double, kMaxPlanes> diff_sums_{};

  // Gate cache: [plane][pos|neg][element], one flat allocation.
  std::vector<float> gate_cache_;
  // Reduction scratch: chunk_count * max(1, max_planes) doubles.
  std::vector<double> partials_;
};

}  // namespace csq
