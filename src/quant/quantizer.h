// Shared uniform-quantization helpers.
//
// The library follows the paper's bit-level convention (Eq. 1): an n-bit
// weight takes integer codes in [-(2^n - 1), +(2^n - 1)] scaled by
// s / (2^n - 1), i.e. w_hat = s * q / (2^n - 1) with |q| <= 2^n - 1. This is
// the sign-magnitude grid spanned by n positive and n negative bit planes,
// and it is what CSQ's finalized models land on exactly.
//
// Activations use the standard unsigned grid: codes in [0, 2^n - 1] over
// [0, clip].
#pragma once

#include "tensor/tensor.h"

namespace csq {

// Number of quantization steps per side for n bits: 2^n - 1.
std::int64_t levels_per_side(int bits);

// Symmetric signed quantization (paper convention). `scale` is the clip
// magnitude (w is clamped to [-scale, scale]). Returns the dequantized value.
float quantize_symmetric(float value, float scale, int bits);

// Integer code of the symmetric quantizer, in [-(2^n-1), 2^n-1].
std::int64_t symmetric_code(float value, float scale, int bits);

// Dequantizes an integer code.
float dequantize_code(std::int64_t code, float scale, int bits);

// Elementwise tensor quantization; out may alias in.
void quantize_symmetric_tensor(const Tensor& in, Tensor& out, float scale,
                               int bits);

// Unsigned quantization for activations over [0, clip].
float quantize_unsigned(float value, float clip, int bits);

// Scale calibrators.
float max_abs_scale(const Tensor& weights);
// Magnitude below which the given fraction (e.g. 0.999) of |w| falls;
// clipping the top 0.1% outliers usually improves low-bit PTQ.
float percentile_scale(const Tensor& weights, float fraction);

}  // namespace csq
