#include "quant/act_quant.h"

#include <algorithm>
#include <cmath>

#include "nn/lowering.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

FixedActQuant::FixedActQuant(const std::string& name, int bits,
                             float ema_momentum)
    : bits_(bits), ema_momentum_(ema_momentum) {
  CSQ_CHECK(bits >= 1 && bits <= 16) << "act quant: bits out of range";
  set_name(name);
}

Tensor FixedActQuant::forward(const Tensor& input, bool training) {
  if (training) {
    const float batch_max = max_value(input);
    if (!range_initialized_) {
      range_ = std::max(batch_max, 1e-3f);
      range_initialized_ = true;
    } else {
      range_ = (1.0f - ema_momentum_) * range_ +
               ema_momentum_ * std::max(batch_max, 1e-3f);
    }
  }
  if (!quantize_enabled_) {
    if (training) cached_pass_mask_ = Tensor::full(input.shape(), 1.0f);
    return input;
  }

  Tensor output(input.shape());
  Tensor mask(input.shape());
  const float* in = input.data();
  float* out = output.data();
  float* m = mask.data();
  const std::int64_t count = input.numel();
  const float clip = range_;
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = quantize_unsigned(in[i], clip, bits_);
    m[i] = (in[i] >= 0.0f && in[i] <= clip) ? 1.0f : 0.0f;
  }
  if (training) {
    cached_pass_mask_ = std::move(mask);
  } else {
    cached_pass_mask_ = Tensor();
  }
  return output;
}

Tensor FixedActQuant::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_pass_mask_.empty())
      << "act quant " << name() << ": backward without training forward";
  Tensor grad = mul(grad_output, cached_pass_mask_);
  cached_pass_mask_ = Tensor();
  return grad;
}

void FixedActQuant::lower(GraphLowering& lowering) {
  // A never-calibrated quantizer (range still at its construction default)
  // would pin a meaningless clip; runtime calibration handles that edge
  // instead.
  if (quantize_enabled_ && range_initialized_) {
    lowering.lower_act_quant(bits_, range_);
  }
}

PactActQuant::PactActQuant(const std::string& name, int bits, float alpha_init)
    : bits_(bits),
      alpha_(name + ".alpha", Tensor::from_data({1}, {alpha_init}),
             /*apply_weight_decay=*/true) {
  CSQ_CHECK(bits >= 1 && bits <= 16) << "pact: bits out of range";
  CSQ_CHECK(alpha_init > 0.0f) << "pact: alpha must start positive";
  set_name(name);
}

Tensor PactActQuant::forward(const Tensor& input, bool training) {
  const float alpha = std::max(alpha_.value[0], 1e-3f);
  Tensor output(input.shape());
  const float* in = input.data();
  float* out = output.data();
  const std::int64_t count = input.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = quantize_unsigned(in[i], alpha, bits_);
  }
  if (training) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();
  }
  return output;
}

Tensor PactActQuant::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_input_.empty())
      << "pact " << name() << ": backward without training forward";
  const float alpha = std::max(alpha_.value[0], 1e-3f);
  Tensor grad(grad_output.shape());
  const float* go = grad_output.data();
  const float* in = cached_input_.data();
  float* g = grad.data();
  double dalpha = 0.0;
  const std::int64_t count = grad_output.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    if (in[i] >= alpha) {
      // Clipped region: output == alpha, so d out/d alpha = 1, d out/d x = 0.
      g[i] = 0.0f;
      dalpha += go[i];
    } else if (in[i] < 0.0f) {
      g[i] = 0.0f;
    } else {
      g[i] = go[i];  // STE inside the active range
    }
  }
  alpha_.grad[0] += static_cast<float>(dalpha);
  cached_input_ = Tensor();
  return grad;
}

void PactActQuant::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&alpha_);
}

void PactActQuant::lower(GraphLowering& lowering) {
  lowering.lower_act_quant(bits_, std::max(alpha_.value[0], 1e-3f));
}

ActQuantFactory fixed_act_quant_factory(
    int bits, std::vector<FixedActQuant*>* registry) {
  return [bits, registry](const std::string& name) -> ModulePtr {
    auto quant = std::make_unique<FixedActQuant>(name, bits);
    if (registry != nullptr) registry->push_back(quant.get());
    return quant;
  };
}

ActQuantFactory pact_act_quant_factory(int bits) {
  return [bits](const std::string& name) -> ModulePtr {
    return std::make_unique<PactActQuant>(name, bits);
  };
}

}  // namespace csq
