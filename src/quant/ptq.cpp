#include "quant/ptq.h"

#include <cmath>

#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

PtqReport quantize_dense_weights(Model& model, int bits,
                                 PtqCalibration calibration,
                                 float percentile_fraction) {
  PtqReport report;
  double error_sum = 0.0;
  for (const QuantLayer& layer : model.quant_layers()) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layer.source);
    if (dense == nullptr) continue;

    Tensor& weights = dense->parameter().value;
    const float scale = calibration == PtqCalibration::max_abs
                            ? max_abs_scale(weights)
                            : percentile_scale(weights, percentile_fraction);

    const float before_norm = std::sqrt(squared_norm(weights));
    Tensor original = weights;
    quantize_symmetric_tensor(original, weights, scale, bits);
    dense->parameter().mark_updated();
    const Tensor diff = sub(weights, original);
    const float error_norm = std::sqrt(squared_norm(diff));

    error_sum += before_norm > 0.0f ? error_norm / before_norm : 0.0;
    ++report.layers_quantized;
  }
  if (report.layers_quantized > 0) {
    report.mean_relative_error = error_sum / report.layers_quantized;
  }
  return report;
}

}  // namespace csq
