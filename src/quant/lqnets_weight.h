// LQ-Nets weight quantizer (Zhang et al., ECCV 2018).
//
// The quantizer learns a basis v in R^n per layer; a weight is encoded as
// b in {-1,+1}^n and dequantized as v.b (2^n learned, non-uniform levels).
// Training alternates, per materialization (i.e. per minibatch, as in the
// paper's QEM algorithm):
//   E-step: each weight picks the nearest of the 2^n levels;
//   M-step: v is refit by least squares v = (B^T B)^{-1} B^T w.
// Gradients flow to the latent weights by STE.
#pragma once

#include "nn/weight_source.h"

namespace csq {

class LqNetsWeightSource final : public WeightSource {
 public:
  LqNetsWeightSource(const std::string& name, std::vector<std::int64_t> shape,
                     std::int64_t fan_in, int bits, Rng& rng);

  const Tensor& weight(bool training) override;
  void backward(const Tensor& grad_weight) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "lqnets"; }
  std::int64_t weight_count() const override { return latent_.value.numel(); }
  std::vector<std::int64_t> weight_shape() const override {
    return latent_.value.shape();
  }
  double bits_per_weight() const override { return bits_; }

  // Current learned basis (size n), exposed for tests.
  const std::vector<float>& basis() const { return basis_; }
  // Mean squared quantization error of the last materialization.
  float last_fit_error() const { return last_fit_error_; }

 private:
  void refresh_levels();

  Parameter latent_;
  Tensor quantized_;
  std::vector<float> basis_;          // v, size n
  std::vector<float> levels_;         // all 2^n values v.b, sorted
  std::vector<std::int8_t> codes_;    // packed encodings, n per weight
  // Per-chunk reduction scratch for the parallel E/M steps (fit error and
  // Gram/rhs partials), sized once at construction.
  std::vector<double> fit_partials_;
  std::vector<double> gram_partials_;
  float last_fit_error_ = 0.0f;
  int bits_;
  // Bumped when the M-step rewrites the basis (the eval dirty-flag stamp
  // must change: the cached encoding used the pre-update levels).
  std::uint64_t internal_rev_ = 0;
  // Training-side dirty flag: a training weight() whose inputs are
  // unchanged since the last QEM iteration reuses the materialized tensor
  // instead of running another E/M step. One optimizer step therefore
  // performs exactly ONE QEM iteration no matter how many forward passes it
  // contains — the property that keeps data-parallel replicas' bases in
  // lockstep at any micro-batch shard count (each shard re-forwards the
  // same step). Invalidated by any parameter/basis revision and by
  // eval-mode materializations (which re-encode against the post-update
  // levels, overwriting quantized_).
  std::uint64_t train_cache_stamp_ = 0;
  bool train_cache_valid_ = false;
};

WeightSourceFactory lqnets_weight_factory(int bits);

}  // namespace csq
