// STE-Uniform baseline (the paper's Table IV comparator, implementation
// following Polino et al. [27]): a full-precision latent weight is linearly
// quantized in the forward pass and the gradient flows to the latent weight
// unchanged through the rounding (straight-through estimation).
//
// The dynamic per-layer scale is the max-abs of the latent weight at each
// materialization, so nothing clips and the STE is exact pass-through.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/weight_source.h"

namespace csq {

class SteUniformWeightSource final : public WeightSource {
 public:
  SteUniformWeightSource(const std::string& name,
                         std::vector<std::int64_t> shape, std::int64_t fan_in,
                         int bits, Rng& rng);

  const Tensor& weight(bool training) override;
  void backward(const Tensor& grad_weight) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "ste_uniform"; }
  std::int64_t weight_count() const override { return latent_.value.numel(); }
  std::vector<std::int64_t> weight_shape() const override {
    return latent_.value.shape();
  }
  double bits_per_weight() const override { return bits_; }
  // The fake-quant forward IS a uniform grid: codes exist at every step
  // (scale = dynamic max-abs of the latent, denominator = 2^bits - 1).
  bool has_finalized_codes() const override { return true; }
  WeightCodes finalized_codes() const override;

  int bits() const { return bits_; }

 private:
  Parameter latent_;
  Tensor quantized_;
  // Per-chunk scratch for the parallel max-abs scale reduction (sized once;
  // the hot path allocates nothing).
  std::vector<float> max_partials_;
  int bits_;
};

// Factory for the STE-Uniform baseline at fixed precision.
WeightSourceFactory ste_uniform_weight_factory(int bits);

// Per-layer mixed-precision STE factory: looks the layer name up in the
// given map and falls back to `default_bits` when absent. Used to retrain a
// model at the scheme found by the search baselines (HAWQ-lite / HAQ-lite).
WeightSourceFactory ste_mixed_weight_factory(
    std::unordered_map<std::string, int> bits_by_layer, int default_bits);

}  // namespace csq
