// BSQ baseline (Yang et al., ICLR 2021): bit-level weight training with
// straight-through gradient estimation and *hard* periodic precision
// adjustment — the two properties whose instability CSQ is designed to fix
// (paper Sections I-II).
//
// Representation (paper Eq. 1): latent bit planes p_b, n_b in [0,1] per
// weight element;
//   W = s / (2^N - 1) * sum_{b active} (round(p_b) - round(n_b)) * 2^b.
// Gradients pass through the rounding by clipped STE. An L1 bit-sparsity
// regularizer pushes planes toward zero, and every `prune_every` epochs the
// training harness calls prune_bits(): bit planes whose usage falls below a
// threshold are removed permanently and the weights are re-quantized onto
// the remaining grid — the abrupt scheme change that perturbs convergence.
#pragma once

#include <array>

#include "nn/weight_source.h"
#include "quant/bitplane_engine.h"

namespace csq {

class BsqWeightSource final : public WeightSource {
 public:
  static constexpr int kMaxBits = 8;

  BsqWeightSource(const std::string& name, std::vector<std::int64_t> shape,
                  std::int64_t fan_in, Rng& rng);

  const Tensor& weight(bool training) override;
  void backward(const Tensor& grad_weight) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "bsq"; }
  std::int64_t weight_count() const override { return element_count_; }
  std::vector<std::int64_t> weight_shape() const override { return shape_; }
  double bits_per_weight() const override { return active_bits(); }
  // BSQ's rounded bit planes sit on the s/255 grid at every step, so the
  // integer form exists in any mode (reconstruction exact up to the float
  // plane-sum order of the soft materializer — at worst 1 ulp per element).
  bool has_finalized_codes() const override { return true; }
  WeightCodes finalized_codes() const override;

  int active_bits() const;
  bool bit_active(int bit) const { return active_[static_cast<std::size_t>(bit)]; }

  // Adds the L1 bit-sparsity regularizer gradient (strength * sign(plane))
  // to the plane gradients. Called by the harness before each optimizer step.
  void add_sparsity_regularizer(float strength);

  // Hard precision adjustment: deactivates every active bit plane whose
  // mean rounded usage is below `usage_threshold`, then re-quantizes the
  // current weights onto the surviving grid. Returns #bits removed.
  int prune_bits(float usage_threshold);

 private:
  void reconstruct(Tensor& out) const;  // current rounded weight, any mode
  void requantize_from(const Tensor& target);
  // Eval dirty-flag stamp: parameter versions + prune/requantize revision.
  std::uint64_t state_stamp() const;

  Parameter scale_;                       // s, scalar
  std::array<Parameter, kMaxBits> pos_;   // p_b planes
  std::array<Parameter, kMaxBits> neg_;   // n_b planes
  std::array<bool, kMaxBits> active_;
  Tensor quantized_;
  // Shared materialization pipeline (round_clip gates + clipped STE).
  // Mutable because reconstruct() is const but stages planes through it.
  mutable BitPlaneEngine engine_;
  // Bit index per staged plane (engine plane order), from the last
  // reconstruct; backward routes gradients through the same staging.
  mutable std::array<int, kMaxBits> plane_bits_{};
  mutable int staged_planes_ = 0;
  std::vector<std::int64_t> shape_;
  std::int64_t element_count_ = 0;
  // Bumped whenever the scheme mutates outside the parameter tensors
  // (prune_bits / requantize_from rewrite latents and the active set).
  std::uint64_t internal_rev_ = 0;
};

// Registry-recording factory: every created source is appended to *registry
// so the training harness can drive pruning and regularization.
WeightSourceFactory bsq_weight_factory(
    std::vector<BsqWeightSource*>* registry);

}  // namespace csq
