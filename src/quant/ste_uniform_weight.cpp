#include "quant/ste_uniform_weight.h"

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

SteUniformWeightSource::SteUniformWeightSource(
    const std::string& name, std::vector<std::int64_t> shape,
    std::int64_t fan_in, int bits, Rng& rng)
    : bits_(bits) {
  CSQ_CHECK(bits >= 1 && bits <= 8) << "ste_uniform: bits out of range";
  Tensor value(std::move(shape));
  fill_he_normal(value, fan_in, rng);
  latent_ = Parameter(name + ".latent", std::move(value),
                      /*apply_weight_decay=*/true);
  quantized_ = Tensor(latent_.value.shape());
}

const Tensor& SteUniformWeightSource::weight(bool training) {
  (void)training;
  const float scale = max_abs_scale(latent_.value);
  quantize_symmetric_tensor(latent_.value, quantized_, scale, bits_);
  return quantized_;
}

void SteUniformWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(latent_.grad))
      << "ste_uniform: grad shape mismatch";
  // Straight-through: d w_hat / d w_latent ~= 1 (no clipping occurs since
  // the scale is the max-abs of the latent weight).
  add_inplace(latent_.grad, grad_weight);
}

void SteUniformWeightSource::collect_parameters(
    std::vector<Parameter*>& out) {
  out.push_back(&latent_);
}

WeightSourceFactory ste_uniform_weight_factory(int bits) {
  return [bits](const std::string& name, std::vector<std::int64_t> shape,
                std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    return std::make_unique<SteUniformWeightSource>(name, std::move(shape),
                                                    fan_in, bits, rng);
  };
}

WeightSourceFactory ste_mixed_weight_factory(
    std::unordered_map<std::string, int> bits_by_layer, int default_bits) {
  return [bits_by_layer = std::move(bits_by_layer), default_bits](
             const std::string& name, std::vector<std::int64_t> shape,
             std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    const auto it = bits_by_layer.find(name);
    const int bits = it != bits_by_layer.end() ? it->second : default_bits;
    return std::make_unique<SteUniformWeightSource>(name, std::move(shape),
                                                    fan_in, bits, rng);
  };
}

}  // namespace csq
