#include "quant/ste_uniform_weight.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/quant_kernels.h"
#include "util/check.h"

namespace csq {

SteUniformWeightSource::SteUniformWeightSource(
    const std::string& name, std::vector<std::int64_t> shape,
    std::int64_t fan_in, int bits, Rng& rng)
    : bits_(bits) {
  CSQ_CHECK(bits >= 1 && bits <= 8) << "ste_uniform: bits out of range";
  Tensor value(std::move(shape));
  fill_he_normal(value, fan_in, rng);
  latent_ = Parameter(name + ".latent", std::move(value),
                      /*apply_weight_decay=*/true);
  quantized_ = Tensor(latent_.value.shape());
  max_partials_.resize(
      static_cast<std::size_t>(quant_chunk_count(latent_.value.numel())));
}

const Tensor& SteUniformWeightSource::weight(bool training) {
  // Dirty-flag: the fake-quant is a pure function of the latents, and the
  // STE backward needs no forward-cached state, so training calls (e.g.
  // the backward pass re-fetching weights) reuse the cache too.
  (void)training;
  const std::uint64_t stamp = latent_.version;
  if (eval_cache_fresh(stamp)) return quantized_;
  const std::int64_t count = latent_.value.numel();
  const KernelExec exec = default_kernel_exec();
  const float max_abs = reduce_max_abs(latent_.value.data(), count,
                                       max_partials_.data(), exec);
  // Degenerate all-zero tensors still need a usable scale.
  const float scale = max_abs > 0.0f ? max_abs : 1.0f;
  fake_quant_symmetric(latent_.value.data(), quantized_.data(), count, scale,
                       bits_, exec);
  note_materialized(stamp);
  return quantized_;
}

void SteUniformWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(latent_.grad))
      << "ste_uniform: grad shape mismatch";
  // Straight-through: d w_hat / d w_latent ~= 1 (no clipping occurs since
  // the scale is the max-abs of the latent weight).
  accumulate(grad_weight.data(), latent_.grad.data(), latent_.grad.numel(),
             default_kernel_exec());
}

void SteUniformWeightSource::collect_parameters(
    std::vector<Parameter*>& out) {
  out.push_back(&latent_);
}

WeightCodes SteUniformWeightSource::finalized_codes() const {
  const std::int64_t count = latent_.value.numel();
  const float* latent = latent_.value.data();
  // Same dynamic scale as weight(): the serial max is exactly the chunked
  // reduction's result (float max is order-independent).
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < count; ++i) {
    max_abs = std::max(max_abs, std::fabs(latent[i]));
  }
  WeightCodes result;
  result.scale = max_abs > 0.0f ? max_abs : 1.0f;
  result.denominator = static_cast<float>(levels_per_side(bits_));
  result.bits = bits_;
  result.codes.resize(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    result.codes[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
        symmetric_code(latent[i], result.scale, bits_));
  }
  return result;
}

WeightSourceFactory ste_uniform_weight_factory(int bits) {
  return [bits](const std::string& name, std::vector<std::int64_t> shape,
                std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    return std::make_unique<SteUniformWeightSource>(name, std::move(shape),
                                                    fan_in, bits, rng);
  };
}

WeightSourceFactory ste_mixed_weight_factory(
    std::unordered_map<std::string, int> bits_by_layer, int default_bits) {
  return [bits_by_layer = std::move(bits_by_layer), default_bits](
             const std::string& name, std::vector<std::int64_t> shape,
             std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    const auto it = bits_by_layer.find(name);
    const int bits = it != bits_by_layer.end() ? it->second : default_bits;
    return std::make_unique<SteUniformWeightSource>(name, std::move(shape),
                                                    fan_in, bits, rng);
  };
}

}  // namespace csq
