#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/quant_kernels.h"
#include "util/check.h"

namespace csq {

std::int64_t levels_per_side(int bits) {
  CSQ_CHECK(bits >= 1 && bits <= 16) << "bits out of range: " << bits;
  return (std::int64_t{1} << bits) - 1;
}

std::int64_t symmetric_code(float value, float scale, int bits) {
  CSQ_CHECK(scale > 0.0f) << "quantizer scale must be positive";
  const auto levels = static_cast<float>(levels_per_side(bits));
  const float normalized = std::clamp(value / scale, -1.0f, 1.0f);
  return static_cast<std::int64_t>(std::lround(normalized * levels));
}

float dequantize_code(std::int64_t code, float scale, int bits) {
  const auto levels = static_cast<float>(levels_per_side(bits));
  return static_cast<float>(code) * scale / levels;
}

float quantize_symmetric(float value, float scale, int bits) {
  return dequantize_code(symmetric_code(value, scale, bits), scale, bits);
}

void quantize_symmetric_tensor(const Tensor& in, Tensor& out, float scale,
                               int bits) {
  CSQ_CHECK(in.same_shape(out)) << "quantize tensor: shape mismatch";
  // Same per-element arithmetic as quantize_symmetric, via the shared
  // chunk-parallel kernel.
  fake_quant_symmetric(in.data(), out.data(), in.numel(), scale, bits,
                       default_kernel_exec());
}

float quantize_unsigned(float value, float clip, int bits) {
  CSQ_CHECK(clip > 0.0f) << "activation clip must be positive";
  const auto levels = static_cast<float>(levels_per_side(bits));
  const float normalized = std::clamp(value / clip, 0.0f, 1.0f);
  return std::round(normalized * levels) * clip / levels;
}

float max_abs_scale(const Tensor& weights) {
  float best = 0.0f;
  const float* data = weights.data();
  const std::int64_t count = weights.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    best = std::max(best, std::fabs(data[i]));
  }
  // Degenerate all-zero tensors still need a usable scale.
  return best > 0.0f ? best : 1.0f;
}

float percentile_scale(const Tensor& weights, float fraction) {
  CSQ_CHECK(fraction > 0.0f && fraction <= 1.0f)
      << "percentile fraction out of (0,1]";
  const std::int64_t count = weights.numel();
  CSQ_CHECK(count > 0) << "percentile of empty tensor";
  std::vector<float> magnitudes(static_cast<std::size_t>(count));
  const float* data = weights.data();
  for (std::int64_t i = 0; i < count; ++i) {
    magnitudes[static_cast<std::size_t>(i)] = std::fabs(data[i]);
  }
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(count) - 1,
                       std::floor(fraction * static_cast<double>(count - 1))));
  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + static_cast<std::ptrdiff_t>(rank),
                   magnitudes.end());
  const float value = magnitudes[rank];
  return value > 0.0f ? value : max_abs_scale(weights);
}

}  // namespace csq
