#include "quant/lqnets_weight.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/quant_kernels.h"
#include "util/check.h"

namespace csq {

LqNetsWeightSource::LqNetsWeightSource(const std::string& name,
                                       std::vector<std::int64_t> shape,
                                       std::int64_t fan_in, int bits, Rng& rng)
    : bits_(bits) {
  CSQ_CHECK(bits >= 1 && bits <= 4)
      << "lqnets: enumerated encoding supports 1..4 bits, got " << bits;
  Tensor value(std::move(shape));
  fill_he_normal(value, fan_in, rng);
  latent_ = Parameter(name + ".latent", std::move(value),
                      /*apply_weight_decay=*/true);
  quantized_ = Tensor(latent_.value.shape());
  codes_.resize(static_cast<std::size_t>(latent_.value.numel()));
  const std::int64_t chunks = quant_chunk_count(latent_.value.numel());
  fit_partials_.resize(static_cast<std::size_t>(chunks));
  gram_partials_.resize(
      static_cast<std::size_t>(chunks * (bits * bits + bits)));

  // Initialize the basis so v.b spans a roughly uniform grid over the
  // initial weight range; QEM adapts it from there.
  const float max_w = max_abs_scale(latent_.value);
  basis_.resize(static_cast<std::size_t>(bits));
  const auto denom = static_cast<float>((1 << bits) - 1);
  for (int k = 0; k < bits; ++k) {
    basis_[static_cast<std::size_t>(k)] =
        max_w * static_cast<float>(1 << k) / denom;
  }
  refresh_levels();
}

void LqNetsWeightSource::refresh_levels() {
  const int combos = 1 << bits_;
  levels_.resize(static_cast<std::size_t>(combos));
  for (int c = 0; c < combos; ++c) {
    float level = 0.0f;
    for (int k = 0; k < bits_; ++k) {
      const float sign = (c >> k) & 1 ? 1.0f : -1.0f;
      level += sign * basis_[static_cast<std::size_t>(k)];
    }
    levels_[static_cast<std::size_t>(c)] = level;
  }
}

const Tensor& LqNetsWeightSource::weight(bool training) {
  // Eval dirty-flag: the E-step encoding is a pure function of the latents
  // and the current basis. A training call IS a QEM iteration (the M-step
  // refits the basis), so it is only ever skipped when its inputs are
  // UNCHANGED since the previous training call — repeated forwards within
  // one optimizer step (micro-batch shards of the data-parallel trainer)
  // reuse the iteration's result instead of compounding extra M-steps.
  const std::uint64_t stamp = latent_.version + internal_rev_;
  if (!training && eval_cache_fresh(stamp)) return quantized_;
  if (training && train_cache_valid_ && train_cache_stamp_ == stamp) {
    return quantized_;
  }
  const float* w = latent_.value.data();
  float* q = quantized_.data();
  const std::int64_t count = latent_.value.numel();
  const int combos = 1 << bits_;
  const KernelExec exec = default_kernel_exec();

  // E-step: nearest-level encoding (2^n <= 16 candidates: linear scan).
  const double fit_error =
      nearest_level_encode(w, levels_.data(), combos, codes_.data(), q, count,
                           fit_partials_.data(), exec);
  last_fit_error_ = static_cast<float>(fit_error / static_cast<double>(count));

  if (training) {
    // M-step: v = (B^T B + eps I)^{-1} B^T w, an n x n solve with
    // G = sum_i b_i b_i^T and r = sum_i b_i w_i.
    const int n = bits_;
    double gram[16];  // n <= 4 -> at most 4x4
    double rhs[4];
    code_gram_accumulate(w, codes_.data(), n, gram, rhs, count,
                         gram_partials_.data(), exec);
    for (int a = 0; a < n; ++a) gram[a * n + a] += 1e-6 * count;

    // Gaussian elimination with partial pivoting.
    double solution[4];
    for (int a = 0; a < n; ++a) solution[a] = rhs[a];
    for (int col = 0; col < n; ++col) {
      int pivot = col;
      for (int row = col + 1; row < n; ++row) {
        if (std::fabs(gram[row * n + col]) > std::fabs(gram[pivot * n + col])) {
          pivot = row;
        }
      }
      if (pivot != col) {
        for (int j = 0; j < n; ++j) std::swap(gram[col * n + j], gram[pivot * n + j]);
        std::swap(solution[col], solution[pivot]);
      }
      const double diag = gram[col * n + col];
      if (std::fabs(diag) < 1e-12) continue;  // degenerate: keep old basis row
      for (int row = col + 1; row < n; ++row) {
        const double factor = gram[row * n + col] / diag;
        for (int j = col; j < n; ++j) gram[row * n + j] -= factor * gram[col * n + j];
        solution[row] -= factor * solution[col];
      }
    }
    bool valid = true;
    for (int col = n - 1; col >= 0; --col) {
      double acc = solution[col];
      for (int j = col + 1; j < n; ++j) acc -= gram[col * n + j] * solution[j];
      const double diag = gram[col * n + col];
      if (std::fabs(diag) < 1e-12) {
        valid = false;
        break;
      }
      solution[col] = acc / diag;
    }
    if (valid) {
      for (int a = 0; a < n; ++a) {
        // Keep basis magnitudes positive; signs are carried by the codes.
        basis_[static_cast<std::size_t>(a)] =
            std::fabs(static_cast<float>(solution[a]));
      }
      refresh_levels();
      // quantized_ was encoded against the pre-update levels: record the
      // rebuild but leave the eval cache invalid. The training cache is
      // stamped POST-update so same-step re-forwards reuse this iteration.
      ++internal_rev_;
      note_materialized_volatile();
      train_cache_valid_ = true;
      train_cache_stamp_ = latent_.version + internal_rev_;
      return quantized_;
    }
  }
  note_materialized(stamp);
  if (training) {
    train_cache_valid_ = true;
    train_cache_stamp_ = stamp;
  } else {
    // Eval re-encoded quantized_ against the current levels; a training
    // reuse of that buffer would skip the step's QEM iteration.
    train_cache_valid_ = false;
  }
  return quantized_;
}

void LqNetsWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(latent_.grad))
      << "lqnets: grad shape mismatch";
  // STE to the latent weights.
  accumulate(grad_weight.data(), latent_.grad.data(), latent_.grad.numel(),
             default_kernel_exec());
}

void LqNetsWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&latent_);
}

WeightSourceFactory lqnets_weight_factory(int bits) {
  return [bits](const std::string& name, std::vector<std::int64_t> shape,
                std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    return std::make_unique<LqNetsWeightSource>(name, std::move(shape), fan_in,
                                                bits, rng);
  };
}

}  // namespace csq
