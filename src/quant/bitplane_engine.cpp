#include "quant/bitplane_engine.h"

#include <algorithm>

#include "util/check.h"

namespace csq {

BitPlaneEngine::BitPlaneEngine(std::int64_t element_count, int max_planes,
                               bool cache_gates)
    : element_count_(element_count),
      chunk_count_(quant_chunk_count(element_count)),
      max_planes_(max_planes),
      cache_allowed_(cache_gates) {
  CSQ_CHECK(element_count > 0) << "bitplane engine: empty weight";
  CSQ_CHECK(max_planes >= 1 && max_planes <= kMaxPlanes)
      << "bitplane engine: plane count out of range";
  partials_.resize(static_cast<std::size_t>(
      chunk_count_ * std::max(1, max_planes)));
}

void BitPlaneEngine::release_gate_cache() {
  gate_cache_.clear();
  gate_cache_.shrink_to_fit();
  gates_cached_ = false;
}

void BitPlaneEngine::add_plane(const float* pos, const float* neg, float coeff,
                               std::int32_t code_weight) {
  CSQ_CHECK(num_planes_ < max_planes_) << "bitplane engine: too many planes";
  BitPlane& plane = planes_[static_cast<std::size_t>(num_planes_)];
  plane.pos = pos;
  plane.neg = neg;
  plane.coeff = coeff;
  plane.code_weight = code_weight;
  plane.gate_pos = nullptr;
  plane.gate_neg = nullptr;
  ++num_planes_;
}

void BitPlaneEngine::materialize(GateKind kind, float beta, float* out,
                                 bool cache) {
  if (cache) {
    CSQ_CHECK(cache_allowed_)
        << "bitplane engine: gate caching was not enabled at construction";
    if (gate_cache_.empty()) {
      // Lazy: only sources that actually train pay the 2*planes*count cache.
      gate_cache_.resize(
          static_cast<std::size_t>(2 * max_planes_ * element_count_));
    }
    for (int p = 0; p < num_planes_; ++p) {
      planes_[static_cast<std::size_t>(p)].gate_pos =
          gate_cache_.data() + (2 * p) * element_count_;
      planes_[static_cast<std::size_t>(p)].gate_neg =
          gate_cache_.data() + (2 * p + 1) * element_count_;
    }
  } else {
    for (int p = 0; p < num_planes_; ++p) {
      planes_[static_cast<std::size_t>(p)].gate_pos = nullptr;
      planes_[static_cast<std::size_t>(p)].gate_neg = nullptr;
    }
  }
  gates_cached_ = cache;
  bitplane_materialize(kind, beta, planes_.data(), num_planes_, out,
                       element_count_, default_kernel_exec());
}

void BitPlaneEngine::materialize_hard(float unit, float* out,
                                      std::int32_t* codes) {
  gates_cached_ = false;
  bitplane_materialize_hard(planes_.data(), num_planes_, unit, out, codes,
                            element_count_, default_kernel_exec());
}

const float* BitPlaneEngine::gate_pos(int p) const {
  CSQ_CHECK(gates_cached_ && p >= 0 && p < num_planes_)
      << "bitplane engine: no cached gates for plane " << p;
  return planes_[static_cast<std::size_t>(p)].gate_pos;
}

const float* BitPlaneEngine::gate_neg(int p) const {
  CSQ_CHECK(gates_cached_ && p >= 0 && p < num_planes_)
      << "bitplane engine: no cached gates for plane " << p;
  return planes_[static_cast<std::size_t>(p)].gate_neg;
}

void BitPlaneEngine::set_plane_grads(int p, float* grad_pos, float* grad_neg,
                                     bool want_diff_sum) {
  CSQ_CHECK(p >= 0 && p < num_planes_)
      << "bitplane engine: grad plane out of range";
  BitPlaneGrad& grad = grad_planes_[static_cast<std::size_t>(p)];
  const BitPlane& plane = planes_[static_cast<std::size_t>(p)];
  grad.pos = plane.pos;
  grad.neg = plane.neg;
  grad.gate_pos = plane.gate_pos;
  grad.gate_neg = plane.gate_neg;
  grad.coeff = plane.coeff;
  grad.grad_pos = grad_pos;
  grad.grad_neg = grad_neg;
  grad.want_diff_sum = want_diff_sum;
}

void BitPlaneEngine::backward(GateKind kind, float beta,
                              const float* grad_out) {
  if (kind == GateKind::sigmoid) {
    CSQ_CHECK(gates_cached_)
        << "bitplane engine: sigmoid backward without cached gates";
  }
  CSQ_CHECK(static_cast<std::int64_t>(partials_.size()) >=
            chunk_count_ * num_planes_)
      << "bitplane engine: partials workspace too small";
  bitplane_backward(kind, beta, grad_planes_.data(), num_planes_, grad_out,
                    element_count_, partials_.data(), diff_sums_.data(),
                    default_kernel_exec());
}

double BitPlaneEngine::diff_sum(int p) const {
  CSQ_CHECK(p >= 0 && p < num_planes_)
      << "bitplane engine: diff sum plane out of range";
  return diff_sums_[static_cast<std::size_t>(p)];
}

double BitPlaneEngine::dot(const float* a, const float* b) {
  return chunked_dot(a, b, element_count_, partials_.data(),
                     default_kernel_exec());
}

}  // namespace csq
