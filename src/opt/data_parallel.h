// Deterministic data-parallel training over model replicas.
//
// One optimizer step processes a batch as a FIXED grid of micro-batch
// shards; each shard runs a full forward/backward on one replica, the
// per-shard gradients are combined by a chunk-ordered pairwise tree
// reduction (tensor/quant_kernels.h tree_reduce_spans) into the primary
// model's gradient arena, and the optimizer steps the primary once. The
// updated values are broadcast back to every replica through the flat
// parameter arenas (nn/parameter_arena.h).
//
// Determinism contract — the point of the design: the numerical result of a
// step depends only on the batch and the shard grid, NOT on the worker
// count. Three mechanisms enforce it:
//   1. The shard grid is fixed by the micro-batch size alone (worker count
//      never enters the partition), so every worker count sees the same
//      per-shard forward/backward problems.
//   2. Each shard's kernels run serially on its worker thread
//      (util/thread_pool.h SerialExecutionGuard) and every reduction kernel
//      walks the same fixed chunk grid, so per-shard gradients are
//      bit-identical regardless of which thread computed them.
//   3. Gradients combine by a pairwise tree whose shape depends only on the
//      shard count, BatchNorm running statistics are captured per shard and
//      replayed in shard order (nn/batchnorm.h), and the per-shard losses
//      combine in shard order on the calling thread.
// Hence workers=1 and workers=8 produce byte-identical models, and the
// degenerate single-shard grid (micro_batch >= batch size) is bit-identical
// to the classic serial train_one_epoch step.
//
// Replica state: parameters are re-synchronized every step via the arena
// broadcast. Non-parameter quantizer state (e.g. the LQ-Nets basis) stays
// in lockstep because every replica performs exactly one materialization
// per step — replicas left without a shard by a small final batch run a
// state-advance pass — and each training materialization is a deterministic
// function of the (synchronized) parameters plus the previous state. For
// that induction to hold from step one, the replica factory must rebuild
// the model identically (same builder, same seed) and the trainer must be
// constructed while primary and factory-built models agree on that
// non-parameter state (in practice: before training starts, or right after
// a checkpoint load on both sides).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "nn/batchnorm.h"
#include "nn/model.h"
#include "nn/softmax_ce.h"
#include "opt/sgd.h"
#include "opt/trainer.h"

namespace csq {

struct DataParallelConfig {
  // Worker threads (including the calling thread). workers - 1 replicas are
  // built from the factory; worker w drives replica w, shard s runs on
  // replica s % workers.
  int workers = 1;
  // Micro-batch rows per shard. 0 selects ceil(B / kDefaultTrainShards) per
  // batch, giving at most kDefaultTrainShards shards. The resulting shard
  // count must not exceed kMaxReduceSpans (tensor/quant_kernels.h).
  std::int64_t micro_batch = 0;
};

// Default shard-grid size when micro_batch is left at 0: enough shards to
// feed 8 workers, few enough that tiny CIFAR batches keep useful shard
// sizes.
inline constexpr int kDefaultTrainShards = 8;

class DataParallelTrainer {
 public:
  using ModelFactory = std::function<Model()>;

  // `primary` is replica 0 and the model the optimizer steps; it must
  // outlive the trainer. `replica_factory` is invoked workers - 1 times and
  // must produce models with an identical parameter layout (checked via
  // ParameterArena::layout_matches). Binds the primary's arena.
  DataParallelTrainer(Model& primary, const ModelFactory& replica_factory,
                      const DataParallelConfig& config);
  ~DataParallelTrainer();

  DataParallelTrainer(const DataParallelTrainer&) = delete;
  DataParallelTrainer& operator=(const DataParallelTrainer&) = delete;

  struct StepStats {
    float loss = 0.0f;  // batch mean loss (shard-weighted)
    int correct = 0;    // top-1 matches in the batch
  };

  // One optimizer step over `batch`: shard, forward/backward per shard,
  // tree-reduce gradients into the primary arena, run `before_step` (budget
  // regularizers), step the optimizer, broadcast values to the replicas.
  // `optimizer` must be the arena-backed Sgd over primary().arena().
  StepStats train_step(const Batch& batch, Sgd& optimizer,
                       const std::function<void()>& before_step = {});

  Model& primary() { return *primary_; }
  int workers() const { return workers_; }

  // Visits the worker replicas (NOT the primary) — used to mirror
  // scheme-level state the arena broadcast cannot carry (temperature,
  // frozen masks).
  void for_each_replica(const std::function<void(Model&)>& fn);

 private:
  struct Replica {
    Model* model = nullptr;  // replicas_[0] aliases the primary
    SoftmaxCrossEntropy loss;
    std::vector<int> labels;                  // shard label scratch
    std::vector<std::int64_t> shard_shape;    // {b, C, H, W} scratch
    std::vector<BatchNorm2d*> batchnorms;     // depth-first module order
  };

  void worker_loop(int w);
  // Runs every shard assigned to worker w under a SerialExecutionGuard;
  // runs the state-advance pass when w has no shard this step.
  void run_worker(int w);
  void run_shard(Replica& replica, int shard);
  // Grow-once sizing of the per-shard buffers for the current step.
  void prepare_step(const Batch& batch);
  void combine_and_step(Sgd& optimizer,
                        const std::function<void()>& before_step,
                        StepStats& stats);
  void broadcast_values();

  Model* primary_ = nullptr;
  int workers_ = 1;
  std::int64_t micro_batch_config_ = 0;

  std::vector<Model> owned_replicas_;  // workers_ - 1 factory-built models
  std::vector<Replica> replicas_;      // size workers_; [0] is the primary

  // BatchNorm bookkeeping shared by all replicas (layouts are identical):
  // channel offset of each batchnorm in a per-shard stat span.
  std::vector<std::int64_t> bn_offsets_;
  std::int64_t bn_channels_ = 0;

  // Per-step shard state (grow-once; steady state allocates nothing).
  const Batch* step_batch_ = nullptr;
  std::int64_t batch_rows_ = 0;
  std::int64_t sample_numel_ = 0;  // C*H*W of the current batch
  std::int64_t micro_batch_ = 0;
  int num_shards_ = 0;
  std::vector<std::vector<float>> shard_grads_;
  std::vector<float> bn_stats_;  // [shard][mean span | var span]
  std::vector<float> shard_loss_;
  std::vector<int> shard_correct_;
  std::vector<std::int64_t> shard_rows_;

  // Worker rendezvous: generation counter + countdown, one exception slot
  // per worker (first error wins at the barrier).
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;
};

// Data-parallel counterparts of the serial loops in opt/trainer.h. The
// optimizer must be arena-backed over trainer.primary().arena(); evaluation
// runs on the primary.
EpochStats train_one_epoch(DataParallelTrainer& trainer, Sgd& optimizer,
                           DataLoader& loader, const FitHooks& hooks);

FitResult fit(DataParallelTrainer& trainer, const InMemoryDataset& train,
              const InMemoryDataset& test, const TrainConfig& config,
              const FitHooks& hooks = {});

}  // namespace csq
