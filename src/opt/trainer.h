// Generic training/evaluation loops shared by all QAT methods and the FP
// baseline. Scheme-specific behaviour (temperature schedules, budget
// regularization, periodic bit pruning) is injected through FitHooks.
#pragma once

#include <functional>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "opt/lr_schedule.h"
#include "opt/sgd.h"

namespace csq {

struct TrainConfig {
  int epochs = 30;
  std::int64_t batch_size = 50;
  float learning_rate = 0.1f;
  float lr_min = 0.0f;
  int warmup_epochs = 0;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  std::uint64_t seed = 3;
  bool verbose = false;  // per-epoch log lines
};

struct FitHooks {
  // Called at the start of every epoch (set gate temperatures, ...).
  std::function<void(int epoch)> on_epoch_begin;
  // Called after backward and before the optimizer step of every batch
  // (inject regularizer gradients, ...).
  std::function<void()> before_step;
  // Called at the end of every epoch with train statistics (periodic
  // precision adjustment, trajectory recording, ...).
  std::function<void(int epoch, float train_loss, float train_accuracy)>
      on_epoch_end;
};

struct FitResult {
  float final_train_loss = 0.0f;
  float final_train_accuracy = 0.0f;  // percent
  float test_accuracy = 0.0f;         // percent, evaluated after training
};

// Top-1 accuracy (percent) of the model on a dataset, eval mode.
float evaluate_accuracy(Model& model, const InMemoryDataset& dataset,
                        std::int64_t batch_size = 100);

// Mean loss of the model on a dataset, eval mode.
float evaluate_loss(Model& model, const InMemoryDataset& dataset,
                    std::int64_t batch_size = 100);

// Runs one training epoch; returns {mean loss, accuracy%}.
struct EpochStats {
  float loss = 0.0f;
  float accuracy = 0.0f;
};
EpochStats train_one_epoch(Model& model, Sgd& optimizer, DataLoader& loader,
                           const FitHooks& hooks);

// Full training run: cosine schedule, per-epoch hooks, final test accuracy.
FitResult fit(Model& model, const InMemoryDataset& train,
              const InMemoryDataset& test, const TrainConfig& config,
              const FitHooks& hooks = {});

}  // namespace csq
