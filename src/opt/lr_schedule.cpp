#include "opt/lr_schedule.h"

#include <cmath>

#include "util/check.h"

namespace csq {

CosineSchedule::CosineSchedule(float lr_max, int total_epochs,
                               int warmup_epochs, float lr_min)
    : lr_max_(lr_max),
      lr_min_(lr_min),
      total_epochs_(total_epochs),
      warmup_epochs_(warmup_epochs) {
  CSQ_CHECK(total_epochs >= 1) << "cosine schedule: bad epoch count";
  CSQ_CHECK(warmup_epochs >= 0 && warmup_epochs < total_epochs)
      << "cosine schedule: warmup " << warmup_epochs << " vs total "
      << total_epochs;
  CSQ_CHECK(lr_max > 0.0f && lr_min >= 0.0f && lr_min <= lr_max)
      << "cosine schedule: bad lr range";
}

float CosineSchedule::at_epoch(int epoch) const {
  CSQ_CHECK(epoch >= 0) << "cosine schedule: negative epoch";
  if (epoch >= total_epochs_) return lr_min_;
  if (warmup_epochs_ > 0 && epoch < warmup_epochs_) {
    // Linear ramp ending at lr_max on the first post-warmup epoch.
    return lr_max_ * static_cast<float>(epoch + 1) /
           static_cast<float>(warmup_epochs_);
  }
  const float progress =
      static_cast<float>(epoch - warmup_epochs_) /
      static_cast<float>(total_epochs_ - warmup_epochs_);
  return lr_min_ + 0.5f * (lr_max_ - lr_min_) *
                       (1.0f + std::cos(3.14159265358979f * progress));
}

}  // namespace csq
