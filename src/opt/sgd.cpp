#include "opt/sgd.h"

#include <algorithm>

#include "util/check.h"

namespace csq {

Sgd::Sgd(std::vector<Parameter*> parameters, const SgdConfig& config)
    : parameters_(std::move(parameters)), config_(config) {
  CSQ_CHECK(!parameters_.empty()) << "sgd: no parameters";
  velocities_.reserve(parameters_.size());
  for (const Parameter* param : parameters_) {
    CSQ_CHECK(param != nullptr) << "sgd: null parameter";
    velocities_.emplace_back(param->value.shape());
  }
}

Sgd::Sgd(ParameterArena& arena, const SgdConfig& config)
    : arena_(&arena), config_(config) {
  CSQ_CHECK(arena.size() > 0) << "sgd: empty arena";
  arena_velocity_.assign(static_cast<std::size_t>(arena.size()), 0.0f);
}

void Sgd::step() {
  const float lr = config_.learning_rate;
  const float momentum = config_.momentum;

  if (arena_ != nullptr) {
    // One sweep over the flat spans. The view loop only switches the decay
    // coefficient; values/grads/velocity advance contiguously.
    float* value = arena_->values();
    const float* grad = arena_->grads();
    float* velocity = arena_velocity_.data();
    for (const ParameterArena::View& view : arena_->views()) {
      const float decay = view.weight_decay ? config_.weight_decay : 0.0f;
      const std::int64_t begin = view.offset;
      const std::int64_t end = view.offset + view.count;
      for (std::int64_t i = begin; i < end; ++i) {
        const float g = grad[i] + decay * value[i];
        velocity[i] = momentum * velocity[i] + g;
        value[i] -= lr * velocity[i];
      }
      view.param->mark_updated();
    }
    return;
  }

  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    Parameter& param = *parameters_[p];
    const float decay = param.weight_decay ? config_.weight_decay : 0.0f;
    float* value = param.value.data();
    const float* grad = param.grad.data();
    float* velocity = velocities_[p].data();
    const std::int64_t count = param.value.numel();
    for (std::int64_t i = 0; i < count; ++i) {
      const float g = grad[i] + decay * value[i];
      velocity[i] = momentum * velocity[i] + g;
      value[i] -= lr * velocity[i];
    }
    param.mark_updated();
  }
}

void Sgd::reset_momentum() {
  std::fill(arena_velocity_.begin(), arena_velocity_.end(), 0.0f);
  for (Tensor& velocity : velocities_) velocity.zero();
}

}  // namespace csq
