#include "opt/sgd.h"

#include "util/check.h"

namespace csq {

Sgd::Sgd(std::vector<Parameter*> parameters, const SgdConfig& config)
    : parameters_(std::move(parameters)), config_(config) {
  CSQ_CHECK(!parameters_.empty()) << "sgd: no parameters";
  velocities_.reserve(parameters_.size());
  for (const Parameter* param : parameters_) {
    CSQ_CHECK(param != nullptr) << "sgd: null parameter";
    velocities_.emplace_back(param->value.shape());
  }
}

void Sgd::step() {
  const float lr = config_.learning_rate;
  const float momentum = config_.momentum;
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    Parameter& param = *parameters_[p];
    const float decay = param.weight_decay ? config_.weight_decay : 0.0f;
    float* value = param.value.data();
    const float* grad = param.grad.data();
    float* velocity = velocities_[p].data();
    const std::int64_t count = param.value.numel();
    for (std::int64_t i = 0; i < count; ++i) {
      const float g = grad[i] + decay * value[i];
      velocity[i] = momentum * velocity[i] + g;
      value[i] -= lr * velocity[i];
    }
    param.mark_updated();
  }
}

void Sgd::reset_momentum() {
  for (Tensor& velocity : velocities_) velocity.zero();
}

}  // namespace csq
