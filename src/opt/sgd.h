// Stochastic gradient descent with momentum and decoupled per-parameter
// weight decay — the optimizer used by every experiment in the paper
// (momentum 0.9, weight decay 5e-4 CIFAR / 1e-4 ImageNet).
#pragma once

#include <vector>

#include "nn/parameter.h"
#include "nn/parameter_arena.h"

namespace csq {

struct SgdConfig {
  float learning_rate = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> parameters, const SgdConfig& config);
  // Arena-backed optimizer: one flat velocity buffer, and step() is a
  // single sweep over the contiguous value/grad spans in view order —
  // bit-identical to the per-parameter path (same per-element arithmetic
  // in the same order), but without the tensor pointer chase.
  Sgd(ParameterArena& arena, const SgdConfig& config);

  // One update: v = momentum*v + (grad + wd*w); w -= lr * v.
  // Weight decay is skipped for parameters flagged weight_decay == false.
  void step();

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }
  const SgdConfig& config() const { return config_; }

  // Clears momentum buffers (used when the CSQ finetune phase restarts
  // optimization under a rewound temperature).
  void reset_momentum();

 private:
  // Legacy scattered-tensor path (null arena_).
  std::vector<Parameter*> parameters_;
  std::vector<Tensor> velocities_;
  // Arena path: velocity shares the arena's flat layout.
  ParameterArena* arena_ = nullptr;
  std::vector<float> arena_velocity_;
  SgdConfig config_;
};

}  // namespace csq
