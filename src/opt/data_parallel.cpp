#include "opt/data_parallel.h"

#include <algorithm>
#include <cstring>

#include "tensor/quant_kernels.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace csq {

DataParallelTrainer::DataParallelTrainer(Model& primary,
                                         const ModelFactory& replica_factory,
                                         const DataParallelConfig& config)
    : primary_(&primary),
      workers_(config.workers),
      micro_batch_config_(config.micro_batch) {
  CSQ_CHECK(workers_ >= 1 && workers_ <= kMaxReduceSpans)
      << "data-parallel: worker count " << workers_ << " outside [1, "
      << kMaxReduceSpans << "]";
  CSQ_CHECK(micro_batch_config_ >= 0) << "data-parallel: bad micro_batch";

  ParameterArena& primary_arena = primary_->arena();

  owned_replicas_.reserve(static_cast<std::size_t>(workers_ - 1));
  replicas_.resize(static_cast<std::size_t>(workers_));
  replicas_[0].model = primary_;
  for (int w = 1; w < workers_; ++w) {
    CSQ_CHECK(static_cast<bool>(replica_factory))
        << "data-parallel: workers > 1 requires a replica factory";
    owned_replicas_.push_back(replica_factory());
    Model& replica = owned_replicas_.back();
    CSQ_CHECK(replica.arena().layout_matches(primary_arena))
        << "data-parallel: replica " << w
        << " parameter layout differs from the primary (factory must use "
           "the same builder)";
    replicas_[static_cast<std::size_t>(w)].model = &replica;
  }

  // Collect each replica's batchnorms in depth-first module order; the
  // shared offsets let any worker capture into a shard's stat span and any
  // replica replay from it.
  for (int w = 0; w < workers_; ++w) {
    Replica& rep = replicas_[static_cast<std::size_t>(w)];
    rep.model->for_each_module([&rep](Module& module) {
      if (auto* bn = dynamic_cast<BatchNorm2d*>(&module)) {
        rep.batchnorms.push_back(bn);
      }
    });
    rep.shard_shape.assign(4, 0);
    if (w == 0) {
      for (BatchNorm2d* bn : rep.batchnorms) {
        bn_offsets_.push_back(bn_channels_);
        bn_channels_ += bn->channels();
      }
    } else {
      CSQ_CHECK(rep.batchnorms.size() == replicas_[0].batchnorms.size())
          << "data-parallel: replica " << w << " batchnorm count differs";
      for (std::size_t j = 0; j < rep.batchnorms.size(); ++j) {
        CSQ_CHECK(rep.batchnorms[j]->channels() ==
                  replicas_[0].batchnorms[j]->channels())
            << "data-parallel: replica " << w << " batchnorm " << j
            << " channel count differs";
      }
    }
  }

  broadcast_values();

  errors_.resize(static_cast<std::size_t>(workers_));
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

DataParallelTrainer::~DataParallelTrainer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void DataParallelTrainer::for_each_replica(
    const std::function<void(Model&)>& fn) {
  for (Model& replica : owned_replicas_) fn(replica);
}

void DataParallelTrainer::broadcast_values() {
  const ParameterArena& primary_arena = primary_->arena();
  for (Model& replica : owned_replicas_) {
    replica.arena().load_values(primary_arena.values());
  }
}

void DataParallelTrainer::prepare_step(const Batch& batch) {
  CSQ_CHECK(batch.images.ndim() == 4)
      << "data-parallel: expected (B,C,H,W) images, got "
      << batch.images.shape_string();
  batch_rows_ = batch.images.dim(0);
  CSQ_CHECK(batch_rows_ >= 1 &&
            batch_rows_ == static_cast<std::int64_t>(batch.labels.size()))
      << "data-parallel: batch size / label count mismatch";
  sample_numel_ =
      batch.images.dim(1) * batch.images.dim(2) * batch.images.dim(3);

  if (micro_batch_config_ > 0) {
    micro_batch_ = std::min(micro_batch_config_, batch_rows_);
  } else {
    const std::int64_t shards =
        std::min<std::int64_t>(kDefaultTrainShards, batch_rows_);
    micro_batch_ = (batch_rows_ + shards - 1) / shards;
  }
  const std::int64_t shard_count =
      (batch_rows_ + micro_batch_ - 1) / micro_batch_;
  CSQ_CHECK(shard_count <= kMaxReduceSpans)
      << "data-parallel: batch of " << batch_rows_ << " rows at micro_batch "
      << micro_batch_ << " needs " << shard_count << " shards (max "
      << kMaxReduceSpans << "); raise micro_batch";
  num_shards_ = static_cast<int>(shard_count);
  step_batch_ = &batch;

  // Grow-once scratch: these resizes only allocate until the largest batch
  // geometry has been seen, after which every step reuses the buffers.
  const auto shards = static_cast<std::size_t>(num_shards_);
  const auto arena_size =
      static_cast<std::size_t>(primary_->arena().size());
  if (shard_grads_.size() < shards) shard_grads_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    if (shard_grads_[s].size() < arena_size) shard_grads_[s].resize(arena_size);
  }
  const auto stat_floats = shards * 2 * static_cast<std::size_t>(bn_channels_);
  if (bn_stats_.size() < stat_floats) bn_stats_.resize(stat_floats);
  if (shard_loss_.size() < shards) shard_loss_.resize(shards);
  if (shard_correct_.size() < shards) shard_correct_.resize(shards);
  if (shard_rows_.size() < shards) shard_rows_.resize(shards);
}

DataParallelTrainer::StepStats DataParallelTrainer::train_step(
    const Batch& batch, Sgd& optimizer,
    const std::function<void()>& before_step) {
  prepare_step(batch);
  for (Replica& replica : replicas_) replica.model->arena().zero_grads();
  std::fill(errors_.begin(), errors_.end(), std::exception_ptr());

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = workers_ - 1;
  }
  wake_.notify_all();

  try {
    run_worker(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
  }
  step_batch_ = nullptr;
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }

  StepStats stats;
  combine_and_step(optimizer, before_step, stats);
  return stats;
}

void DataParallelTrainer::worker_loop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    try {
      run_worker(w);
    } catch (...) {
      errors_[static_cast<std::size_t>(w)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_.notify_all();
    }
  }
}

void DataParallelTrainer::run_worker(int w) {
  // Shard parallelism is the only parallelism: inner kernels run serially
  // on this thread so N workers never contend for the shared pool, and the
  // fixed-chunk-grid kernels make serial execution bit-identical to pooled.
  SerialExecutionGuard guard;
  Replica& replica = replicas_[static_cast<std::size_t>(w)];
  bool ran_shard = false;
  for (int s = w; s < num_shards_; s += workers_) {
    run_shard(replica, s);
    ran_shard = true;
  }
  if (!ran_shard) {
    // State-advance pass: a replica skipped by a small final batch still
    // performs its one training materialization per step, keeping stateful
    // quantizers (LQ-Nets QEM basis) in lockstep with the primary.
    for (const QuantLayer& layer : replica.model->quant_layers()) {
      layer.source->weight(/*training=*/true);
    }
  }
}

void DataParallelTrainer::run_shard(Replica& replica, int shard) {
  const Batch& batch = *step_batch_;
  const std::int64_t begin = static_cast<std::int64_t>(shard) * micro_batch_;
  const std::int64_t end = std::min(begin + micro_batch_, batch_rows_);
  const std::int64_t rows = end - begin;

  replica.shard_shape[0] = rows;
  replica.shard_shape[1] = batch.images.dim(1);
  replica.shard_shape[2] = batch.images.dim(2);
  replica.shard_shape[3] = batch.images.dim(3);
  // The batch is contiguous (B,C,H,W), so a row range is a contiguous span:
  // the shard input is a borrow view, not a copy.
  const Tensor images =
      Tensor::borrow(const_cast<float*>(batch.images.data()) +
                         begin * sample_numel_,
                     replica.shard_shape);
  replica.labels.assign(batch.labels.begin() + begin,
                        batch.labels.begin() + end);

  float* stats = bn_stats_.data() +
                 static_cast<std::size_t>(shard) * 2 *
                     static_cast<std::size_t>(bn_channels_);
  for (std::size_t j = 0; j < replica.batchnorms.size(); ++j) {
    replica.batchnorms[j]->set_stat_capture(
        stats + bn_offsets_[j], stats + bn_channels_ + bn_offsets_[j]);
  }

  Tensor logits = replica.model->forward(images, /*training=*/true);
  const auto s = static_cast<std::size_t>(shard);
  shard_loss_[s] = replica.loss.forward(logits, replica.labels);
  shard_correct_[s] = count_correct(replica.loss.predictions(),
                                    replica.labels);
  shard_rows_[s] = rows;

  // The loss gradient is the mean over the SHARD; rescale to the shard's
  // share of the full-batch mean so summing shard gradients reproduces the
  // serial full-batch gradient. scale == 1.0f exactly for a one-shard grid,
  // where the multiply is skipped to keep bits identical to the serial
  // path.
  Tensor grad = replica.loss.backward();
  const float scale =
      static_cast<float>(rows) / static_cast<float>(batch_rows_);
  if (scale != 1.0f) {
    float* g = grad.data();
    const std::int64_t count = grad.numel();
    for (std::int64_t i = 0; i < count; ++i) g[i] *= scale;
  }
  replica.model->backward(grad);

  for (BatchNorm2d* bn : replica.batchnorms) {
    bn->set_stat_capture(nullptr, nullptr);
  }

  // Move this shard's gradients out of the replica arena and reset it so
  // the worker's next shard accumulates from zero.
  ParameterArena& arena = replica.model->arena();
  std::memcpy(shard_grads_[s].data(), arena.grads(),
              static_cast<std::size_t>(arena.size()) * sizeof(float));
  arena.zero_grads();
}

void DataParallelTrainer::combine_and_step(
    Sgd& optimizer, const std::function<void()>& before_step,
    StepStats& stats) {
  ParameterArena& arena = primary_->arena();

  // Pairwise tree over the shard gradient spans; the tree shape depends
  // only on the shard count, and the pool is idle here, so the pooled
  // fixed-chunk-grid kernel is both fast and deterministic.
  const float* sources[kMaxReduceSpans];
  for (int s = 0; s < num_shards_; ++s) {
    sources[s] = shard_grads_[static_cast<std::size_t>(s)].data();
  }
  tree_reduce_spans(sources, num_shards_, arena.grads(), arena.size(),
                    default_kernel_exec());

  // Replay captured batchnorm statistics in shard order on EVERY replica:
  // the primary's running stats see exactly the serial update sequence, and
  // the worker replicas stay byte-identical to it.
  for (int s = 0; s < num_shards_; ++s) {
    const float* stat_base = bn_stats_.data() +
                             static_cast<std::size_t>(s) * 2 *
                                 static_cast<std::size_t>(bn_channels_);
    for (Replica& replica : replicas_) {
      for (std::size_t j = 0; j < replica.batchnorms.size(); ++j) {
        replica.batchnorms[j]->replay_batch_stats(
            stat_base + bn_offsets_[j],
            stat_base + bn_channels_ + bn_offsets_[j]);
      }
    }
  }

  // Shard-ordered loss/accuracy combine (double accumulator, caller
  // thread): bit-identical at any worker count, and exact for one shard.
  double loss_sum = 0.0;
  int correct = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const auto idx = static_cast<std::size_t>(s);
    loss_sum += static_cast<double>(shard_loss_[idx]) *
                static_cast<double>(shard_rows_[idx]);
    correct += shard_correct_[idx];
  }
  stats.loss = static_cast<float>(loss_sum / static_cast<double>(batch_rows_));
  stats.correct = correct;

  if (before_step) before_step();
  optimizer.step();
  broadcast_values();
}

EpochStats train_one_epoch(DataParallelTrainer& trainer, Sgd& optimizer,
                           DataLoader& loader, const FitHooks& hooks) {
  Batch batch;
  double total_loss = 0.0;
  std::int64_t correct = 0;
  std::int64_t samples = 0;

  loader.start_epoch();
  while (loader.next(batch)) {
    const DataParallelTrainer::StepStats step =
        trainer.train_step(batch, optimizer, hooks.before_step);
    const auto batch_count = static_cast<std::int64_t>(batch.labels.size());
    total_loss += static_cast<double>(step.loss) * batch_count;
    correct += step.correct;
    samples += batch_count;
  }

  EpochStats stats;
  stats.loss = static_cast<float>(total_loss / static_cast<double>(samples));
  stats.accuracy =
      100.0f * static_cast<float>(correct) / static_cast<float>(samples);
  return stats;
}

FitResult fit(DataParallelTrainer& trainer, const InMemoryDataset& train,
              const InMemoryDataset& test, const TrainConfig& config,
              const FitHooks& hooks) {
  SgdConfig sgd_config;
  sgd_config.learning_rate = config.learning_rate;
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  Sgd optimizer(trainer.primary().arena(), sgd_config);

  CosineSchedule schedule(config.learning_rate, config.epochs,
                          config.warmup_epochs, config.lr_min);
  DataLoader loader(train, config.batch_size, /*shuffle=*/true,
                    Rng(config.seed));

  FitResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_learning_rate(schedule.at_epoch(epoch));
    if (hooks.on_epoch_begin) hooks.on_epoch_begin(epoch);

    const EpochStats stats = train_one_epoch(trainer, optimizer, loader, hooks);
    result.final_train_loss = stats.loss;
    result.final_train_accuracy = stats.accuracy;

    if (hooks.on_epoch_end) {
      hooks.on_epoch_end(epoch, stats.loss, stats.accuracy);
    }
    if (config.verbose) {
      log_info() << "epoch " << epoch + 1 << "/" << config.epochs
                 << " lr=" << optimizer.learning_rate()
                 << " loss=" << stats.loss << " acc=" << stats.accuracy
                 << "% (dp x" << trainer.workers() << ")";
    }
  }
  result.test_accuracy =
      evaluate_accuracy(trainer.primary(), test, config.batch_size);
  return result;
}

}  // namespace csq
