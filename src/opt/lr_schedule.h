// Learning-rate schedules: cosine annealing with optional linear warmup —
// the schedule used by all experiments in the paper (Section IV-A).
#pragma once

namespace csq {

class CosineSchedule {
 public:
  // lr(e) = lr_min + 0.5*(lr_max - lr_min)*(1 + cos(pi * t)) where t ramps
  // over the post-warmup epochs; during warmup lr rises linearly from
  // lr_max/warmup_epochs to lr_max.
  CosineSchedule(float lr_max, int total_epochs, int warmup_epochs = 0,
                 float lr_min = 0.0f);

  float at_epoch(int epoch) const;

  int total_epochs() const { return total_epochs_; }

 private:
  float lr_max_;
  float lr_min_;
  int total_epochs_;
  int warmup_epochs_;
};

}  // namespace csq
