#include "opt/trainer.h"

#include "nn/softmax_ce.h"
#include "util/logging.h"

namespace csq {

float evaluate_accuracy(Model& model, const InMemoryDataset& dataset,
                        std::int64_t batch_size) {
  DataLoader loader(dataset, batch_size, /*shuffle=*/false, Rng(1));
  SoftmaxCrossEntropy loss;
  Batch batch;
  int correct = 0;
  loader.start_epoch();
  while (loader.next(batch)) {
    Tensor logits = model.forward(batch.images, /*training=*/false);
    loss.forward(logits, batch.labels);
    correct += count_correct(loss.predictions(), batch.labels);
  }
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(dataset.size());
}

float evaluate_loss(Model& model, const InMemoryDataset& dataset,
                    std::int64_t batch_size) {
  DataLoader loader(dataset, batch_size, /*shuffle=*/false, Rng(1));
  SoftmaxCrossEntropy loss;
  Batch batch;
  double total = 0.0;
  std::int64_t samples = 0;
  loader.start_epoch();
  while (loader.next(batch)) {
    Tensor logits = model.forward(batch.images, /*training=*/false);
    const float batch_loss = loss.forward(logits, batch.labels);
    const auto batch_count = static_cast<std::int64_t>(batch.labels.size());
    total += static_cast<double>(batch_loss) * batch_count;
    samples += batch_count;
  }
  return static_cast<float>(total / static_cast<double>(samples));
}

EpochStats train_one_epoch(Model& model, Sgd& optimizer, DataLoader& loader,
                           const FitHooks& hooks) {
  SoftmaxCrossEntropy loss;
  Batch batch;
  double total_loss = 0.0;
  std::int64_t correct = 0;
  std::int64_t samples = 0;

  loader.start_epoch();
  while (loader.next(batch)) {
    model.zero_grad();
    Tensor logits = model.forward(batch.images, /*training=*/true);
    const float batch_loss = loss.forward(logits, batch.labels);
    model.backward(loss.backward());
    if (hooks.before_step) hooks.before_step();
    optimizer.step();

    const auto batch_count = static_cast<std::int64_t>(batch.labels.size());
    total_loss += static_cast<double>(batch_loss) * batch_count;
    correct += count_correct(loss.predictions(), batch.labels);
    samples += batch_count;
  }

  EpochStats stats;
  stats.loss = static_cast<float>(total_loss / static_cast<double>(samples));
  stats.accuracy =
      100.0f * static_cast<float>(correct) / static_cast<float>(samples);
  return stats;
}

FitResult fit(Model& model, const InMemoryDataset& train,
              const InMemoryDataset& test, const TrainConfig& config,
              const FitHooks& hooks) {
  SgdConfig sgd_config;
  sgd_config.learning_rate = config.learning_rate;
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  // Arena-backed step: one flat sweep over the contiguous value/grad spans,
  // bit-identical to the per-parameter path (opt/sgd.h).
  Sgd optimizer(model.arena(), sgd_config);

  CosineSchedule schedule(config.learning_rate, config.epochs,
                          config.warmup_epochs, config.lr_min);
  DataLoader loader(train, config.batch_size, /*shuffle=*/true,
                    Rng(config.seed));

  FitResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_learning_rate(schedule.at_epoch(epoch));
    if (hooks.on_epoch_begin) hooks.on_epoch_begin(epoch);

    const EpochStats stats = train_one_epoch(model, optimizer, loader, hooks);
    result.final_train_loss = stats.loss;
    result.final_train_accuracy = stats.accuracy;

    if (hooks.on_epoch_end) hooks.on_epoch_end(epoch, stats.loss, stats.accuracy);
    if (config.verbose) {
      log_info() << "epoch " << epoch + 1 << "/" << config.epochs
                 << " lr=" << optimizer.learning_rate()
                 << " loss=" << stats.loss << " acc=" << stats.accuracy << "%";
    }
  }
  result.test_accuracy = evaluate_accuracy(model, test, config.batch_size);
  return result;
}

}  // namespace csq
