#include "nn/sequential.h"

namespace csq {

void Sequential::lower(GraphLowering& lowering) {
  for (auto& module : modules_) module->lower(lowering);
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor current = input;
  for (auto& module : modules_) {
    current = module->forward(current, training);
  }
  return current;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor current = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& module : modules_) module->collect_parameters(out);
}

void Sequential::for_each_module(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& module : modules_) module->for_each_module(fn);
}

}  // namespace csq
