#include "nn/module.h"

#include "nn/lowering.h"
#include "util/check.h"

namespace csq {

void Module::lower(GraphLowering& lowering) {
  (void)lowering;
  CSQ_CHECK(false) << "module " << name() << " (" << kind()
                   << ") has no integer lowering";
}

}  // namespace csq
