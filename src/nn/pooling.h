// Pooling and shape modules: max/average pooling with independent kernel,
// stride and padding (non-square kernels, non-tiling maps), global average
// pooling (ResNet/VGG heads) and flatten.
#pragma once

#include <vector>

#include "nn/module.h"

namespace csq {

// Window geometry shared by the spatial pooling modules. Output extents use
// floor division — windows may overlap (stride < kernel) or drop trailing
// rows/columns (non-tiling maps). Padding is implicit: max pooling treats
// padded taps as -inf (they are never selected), average pooling counts them
// as zeros with a FIXED kernel_h*kernel_w divisor by default
// (count_include_pad) — the form whose 1/(kh*kw) folds exactly into the
// integer runtime's requantization — or divides by the per-window valid-tap
// count when AvgPool2d's count_include_pad flag is off.
struct Pool2dConfig {
  std::int64_t kernel_h = 2;
  std::int64_t kernel_w = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;

  std::int64_t out_h(std::int64_t height) const {
    return (height + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w(std::int64_t width) const {
    return (width + 2 * pad - kernel_w) / stride + 1;
  }

  // In-bounds taps [lo, hi) of the window at `out_pos` along one axis
  // (`kernel` is kernel_h or kernel_w, `extent` the matching input size);
  // positions outside [lo, hi) are the implicit padding. The ONE copy of
  // the boundary arithmetic both the float modules and the integer
  // runtime's pool ops use.
  void window(std::int64_t out_pos, std::int64_t kernel, std::int64_t extent,
              std::int64_t& lo, std::int64_t& hi) const {
    lo = out_pos * stride - pad;
    if (lo < 0) lo = 0;
    hi = out_pos * stride - pad + kernel;
    if (hi > extent) hi = extent;
  }

  // kernel/stride >= 1, 0 <= pad < min(kernel_h, kernel_w) — every window
  // covers at least one real tap. Throws check_error otherwise.
  void validate(const char* name) const;

  // Square non-overlapping pooling (the VGG shape): stride == kernel.
  static Pool2dConfig square(std::int64_t kernel) {
    return Pool2dConfig{kernel, kernel, kernel, 0};
  }
};

// Max pooling over Pool2dConfig windows.
class MaxPool2d final : public Module {
 public:
  MaxPool2d(const std::string& name, std::int64_t kernel);
  MaxPool2d(const std::string& name, const Pool2dConfig& config);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "maxpool2d"; }
  void lower(GraphLowering& lowering) override;
  const Pool2dConfig& config() const { return config_; }

 private:
  Pool2dConfig config_;
  std::vector<std::int64_t> cached_argmax_;  // flat input index per output
  std::vector<std::int64_t> cached_input_shape_;
};

// Average pooling over Pool2dConfig windows. With count_include_pad (the
// default) padding contributes zeros over a fixed kh*kw divisor; with it
// off, each window divides by its valid-tap count — border windows average
// only the real inputs (the integer runtime carries the matching
// per-position divisors through requantization).
class AvgPool2d final : public Module {
 public:
  AvgPool2d(const std::string& name, const Pool2dConfig& config,
            bool count_include_pad = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "avgpool2d"; }
  void lower(GraphLowering& lowering) override;
  const Pool2dConfig& config() const { return config_; }
  bool count_include_pad() const { return count_include_pad_; }

 private:
  Pool2dConfig config_;
  bool count_include_pad_ = true;
  std::vector<std::int64_t> cached_input_shape_;
};

// (B, C, H, W) -> (B, C): mean over the spatial grid.
class GlobalAvgPool final : public Module {
 public:
  explicit GlobalAvgPool(const std::string& name) { set_name(name); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "global_avg_pool"; }
  void lower(GraphLowering& lowering) override;

 private:
  std::vector<std::int64_t> cached_input_shape_;
};

// (B, C, H, W) -> (B, C*H*W).
class Flatten final : public Module {
 public:
  explicit Flatten(const std::string& name) { set_name(name); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "flatten"; }
  void lower(GraphLowering& lowering) override;

 private:
  std::vector<std::int64_t> cached_input_shape_;
};

}  // namespace csq
