// Pooling and shape modules: 2x2 max pooling (VGG), global average pooling
// (ResNet/VGG heads) and flatten.
#pragma once

#include <vector>

#include "nn/module.h"

namespace csq {

// Max pooling with square kernel == stride (non-overlapping), as used by VGG.
class MaxPool2d final : public Module {
 public:
  MaxPool2d(const std::string& name, std::int64_t kernel);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "maxpool2d"; }
  void lower(GraphLowering& lowering) override;

 private:
  std::int64_t kernel_;
  std::vector<std::int64_t> cached_argmax_;  // flat input index per output
  std::vector<std::int64_t> cached_input_shape_;
};

// (B, C, H, W) -> (B, C): mean over the spatial grid.
class GlobalAvgPool final : public Module {
 public:
  explicit GlobalAvgPool(const std::string& name) { set_name(name); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "global_avg_pool"; }
  void lower(GraphLowering& lowering) override;

 private:
  std::vector<std::int64_t> cached_input_shape_;
};

// (B, C, H, W) -> (B, C*H*W).
class Flatten final : public Module {
 public:
  explicit Flatten(const std::string& name) { set_name(name); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "flatten"; }
  void lower(GraphLowering& lowering) override;

 private:
  std::vector<std::int64_t> cached_input_shape_;
};

}  // namespace csq
