#include "nn/weight_source.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

WeightCodes WeightSource::finalized_codes() const {
  CSQ_CHECK(false) << "weight source kind '" << kind()
                   << "' has no exact integer fixed-point form";
  return {};
}

DenseWeightSource::DenseWeightSource(const std::string& name,
                                     std::vector<std::int64_t> shape,
                                     std::int64_t fan_in, Rng& rng) {
  Tensor value(std::move(shape));
  fill_he_normal(value, fan_in, rng);
  weight_ = Parameter(name + ".weight", std::move(value),
                      /*apply_weight_decay=*/true);
}

const Tensor& DenseWeightSource::weight(bool training) {
  (void)training;
  return weight_.value;
}

void DenseWeightSource::backward(const Tensor& grad_weight) {
  CSQ_CHECK(grad_weight.same_shape(weight_.grad))
      << "dense weight grad shape mismatch";
  add_inplace(weight_.grad, grad_weight);
}

void DenseWeightSource::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
}

WeightSourceFactory dense_weight_factory() {
  return [](const std::string& name, std::vector<std::int64_t> shape,
            std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    return std::make_unique<DenseWeightSource>(name, std::move(shape), fan_in,
                                               rng);
  };
}

}  // namespace csq
