// Trainable parameter: a value tensor plus its gradient accumulator.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace csq {

struct Parameter {
  Parameter() = default;
  Parameter(std::string param_name, Tensor initial_value,
            bool apply_weight_decay = true)
      : name(std::move(param_name)),
        value(std::move(initial_value)),
        grad(value.shape()),
        weight_decay(apply_weight_decay) {}

  void zero_grad() { grad.zero(); }

  std::string name;
  Tensor value;
  Tensor grad;
  // Whether the optimizer applies L2 weight decay to this parameter.
  // Disabled for batch-norm affine parameters, quantization scales and
  // gate logits — decaying logits toward zero would fight the gates.
  bool weight_decay = true;
};

}  // namespace csq
