// Trainable parameter: a value tensor plus its gradient accumulator.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace csq {

struct Parameter {
  Parameter() = default;
  Parameter(std::string param_name, Tensor initial_value,
            bool apply_weight_decay = true)
      : name(std::move(param_name)),
        value(std::move(initial_value)),
        grad(value.shape()),
        weight_decay(apply_weight_decay) {}

  void zero_grad() { grad.zero(); }

  // Mutation contract: any code that writes `value` must call
  // mark_updated() afterwards. The optimizer does this on every step; the
  // weight sources use the version counters to skip re-materializing
  // unchanged weights on eval-mode forwards (the ROADMAP dirty-flag).
  void mark_updated() { ++version; }

  std::string name;
  Tensor value;
  Tensor grad;
  // Monotonic revision of `value` (see mark_updated above).
  std::uint64_t version = 0;
  // Whether the optimizer applies L2 weight decay to this parameter.
  // Disabled for batch-norm affine parameters, quantization scales and
  // gate logits — decaying logits toward zero would fight the gates.
  bool weight_decay = true;
};

}  // namespace csq
