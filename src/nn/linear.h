// Fully-connected layer: Y = X W^T + b, weights (OUT, IN).
//
// GEMMs run through the pooled blocked kernel with packed-panel scratch from
// the layer's Workspace; the dW staging tensor and the cached forward input
// are recycled across steps, so steady-state forward+backward performs zero
// heap allocations.
#pragma once

#include "nn/module.h"
#include "nn/weight_source.h"
#include "tensor/workspace.h"

namespace csq {

class Linear final : public Module {
 public:
  Linear(const std::string& name, std::int64_t in_features,
         std::int64_t out_features, const WeightSourceFactory& weight_factory,
         Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "linear"; }
  void lower(GraphLowering& lowering) override;

  WeightSource& source() { return *weight_source_; }
  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  // Optional bias as a flat span (nullptr when the layer is bias-free).
  const float* bias_data() const {
    return has_bias_ ? bias_.value.data() : nullptr;
  }
  Workspace& workspace() { return ws_; }

 private:
  enum TensorSlot : int { kGradWeightSlot = 0 };

  std::int64_t in_features_;
  std::int64_t out_features_;
  WeightSourcePtr weight_source_;
  Parameter bias_;
  bool has_bias_;

  Workspace ws_;
  // (B, IN) from the last training forward. The tensor keeps its storage
  // across steps (same-shape copy-assignment never allocates); the flag
  // gates backward-without-forward misuse.
  Tensor cached_input_;
  bool has_cached_input_ = false;
};

}  // namespace csq
