// Fully-connected layer: Y = X W^T + b, weights (OUT, IN).
#pragma once

#include "nn/module.h"
#include "nn/weight_source.h"

namespace csq {

class Linear final : public Module {
 public:
  Linear(const std::string& name, std::int64_t in_features,
         std::int64_t out_features, const WeightSourceFactory& weight_factory,
         Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "linear"; }

  WeightSource& source() { return *weight_source_; }
  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  WeightSourcePtr weight_source_;
  Parameter bias_;
  bool has_bias_;

  Tensor cached_input_;  // (B, IN) from the last training forward
};

}  // namespace csq
