// Flat parameter arena: one contiguous span for every parameter value in a
// model and one for every gradient, with each Parameter rebound to an
// offset+shape view (Tensor::borrow) into the spans.
//
// Why: the optimizer step becomes one cache-friendly sweep over two flat
// arrays instead of a pointer chase over dozens of scattered tensors;
// checkpoint save/load becomes a single contiguous write/read; and
// data-parallel training can snapshot, reduce and broadcast whole-model
// state with memcpy-shaped loops (opt/data_parallel.h). The layout is the
// uchen idea from SNIPPETS.md: registration order defines the offsets, so
// two models built by the same builder share one layout and their arenas
// are directly comparable span-for-span.
//
// Binding preserves every existing Parameter contract: `value`/`grad` stay
// real Tensors (modules and weight sources keep their references), element
// writes land in the arena, whole-tensor assignment into a bound value
// copies in place, and `version`/`mark_updated()` dirty-flag semantics are
// untouched — bind() itself bumps each version because it rewrites storage.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/parameter.h"

namespace csq {

class ParameterArena {
 public:
  struct View {
    Parameter* param = nullptr;
    std::int64_t offset = 0;  // element offset into the flat spans
    std::int64_t count = 0;
    bool weight_decay = true;
  };

  // Binds `params` (registration order; the model's parameters() list).
  // Existing values are copied into the arena before each Parameter's
  // value/grad is rebound to a view, so binding is transparent.
  explicit ParameterArena(const std::vector<Parameter*>& params);

  ParameterArena(const ParameterArena&) = delete;
  ParameterArena& operator=(const ParameterArena&) = delete;

  std::int64_t size() const { return static_cast<std::int64_t>(values_.size()); }
  float* values() { return values_.data(); }
  const float* values() const { return values_.data(); }
  float* grads() { return grads_.data(); }
  const float* grads() const { return grads_.data(); }
  const std::vector<View>& views() const { return views_; }

  // One flat sweep; replaces the per-parameter zero_grad loop.
  void zero_grads();

  // Overwrites this arena's values with `src` (size() floats) and bumps
  // every bound Parameter's version — the broadcast half of a data-parallel
  // step and the checkpoint-load path.
  void load_values(const float* src);

  // True when `other` was bound from an identically shaped parameter list
  // (same count, offsets and element counts) — the precondition for
  // cross-arena copies between model replicas.
  bool layout_matches(const ParameterArena& other) const;

 private:
  std::vector<float> values_;
  std::vector<float> grads_;
  std::vector<View> views_;
};

}  // namespace csq
