// Model zoo: the four architectures of the paper's evaluation.
//
//  * resnet_cifar(depth)  — ResNet-20/32 for CIFAR-style inputs
//                           (3 stages of (depth-2)/6 BasicBlocks,
//                           widths w/2w/4w; the paper's Figure 4 layer list).
//  * vgg19bn              — VGG-19 with batch norm.
//  * resnet18 / resnet50  — ImageNet-family residual nets; built with a
//                           3x3 stem (no initial downsampling) because the
//                           synthetic substrate uses 32x32 inputs.
//
// Every Conv2d/Linear weight is created through the given
// WeightSourceFactory, so the same builder produces the FP baseline, the
// STE/DoReFa/LQ-Nets/BSQ baselines and the CSQ model depending on the
// factory. `base_width` scales channel counts uniformly (paper-faithful
// values: 16 for ResNet-20, 64 for ResNet-18/50 and VGG); the bench
// harnesses use smaller widths so the full suite runs in minutes.
#pragma once

#include "nn/blocks.h"
#include "nn/model.h"

namespace csq {

struct ModelConfig {
  int num_classes = 10;
  std::int64_t base_width = 16;
  std::int64_t in_channels = 3;
};

Model make_resnet_cifar(int depth, const ModelConfig& config,
                        const WeightSourceFactory& weight_factory,
                        const ActQuantFactory& act_factory, Rng& rng);

inline Model make_resnet20(const ModelConfig& config,
                           const WeightSourceFactory& weight_factory,
                           const ActQuantFactory& act_factory, Rng& rng) {
  return make_resnet_cifar(20, config, weight_factory, act_factory, rng);
}

Model make_vgg19bn(const ModelConfig& config,
                   const WeightSourceFactory& weight_factory,
                   const ActQuantFactory& act_factory, Rng& rng);

Model make_resnet18(const ModelConfig& config,
                    const WeightSourceFactory& weight_factory,
                    const ActQuantFactory& act_factory, Rng& rng);

Model make_resnet50(const ModelConfig& config,
                    const WeightSourceFactory& weight_factory,
                    const ActQuantFactory& act_factory, Rng& rng);

}  // namespace csq
