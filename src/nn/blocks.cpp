#include "nn/blocks.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/lowering.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

namespace {

// Shared fork/join lowering: the main branch, then the (possibly identity)
// skip branch, then the joined ReLU / activation quantizer.
void block_lower(GraphLowering& lowering, Sequential& main,
                 Sequential* downsample, Module& out_relu,
                 Module* out_act_quant) {
  lowering.begin_residual();
  main.lower(lowering);
  lowering.begin_skip();
  if (downsample != nullptr) downsample->lower(lowering);
  lowering.end_residual();
  out_relu.lower(lowering);
  if (out_act_quant != nullptr) out_act_quant->lower(lowering);
}

// Shared fork/join logic for both block types.
Tensor block_forward(Sequential& main, Sequential* downsample,
                     Module& out_relu, Module* out_act_quant,
                     const Tensor& input, bool training) {
  Tensor main_out = main.forward(input, training);
  Tensor skip = downsample != nullptr ? downsample->forward(input, training)
                                      : input;
  CSQ_CHECK(main_out.same_shape(skip))
      << "residual join shape mismatch: " << main_out.shape_string() << " vs "
      << skip.shape_string();
  add_inplace(main_out, skip);
  Tensor activated = out_relu.forward(main_out, training);
  if (out_act_quant != nullptr) {
    activated = out_act_quant->forward(activated, training);
  }
  return activated;
}

Tensor block_backward(Sequential& main, Sequential* downsample,
                      Module& out_relu, Module* out_act_quant,
                      const Tensor& grad_output) {
  Tensor grad = grad_output;
  if (out_act_quant != nullptr) grad = out_act_quant->backward(grad);
  grad = out_relu.backward(grad);
  // The sum node broadcasts the gradient to both branches.
  Tensor grad_input = main.backward(grad);
  if (downsample != nullptr) {
    add_inplace(grad_input, downsample->backward(grad));
  } else {
    add_inplace(grad_input, grad);
  }
  return grad_input;
}

void append_act_quant(Sequential& seq, const ActQuantFactory& act_factory,
                      const std::string& name) {
  if (act_factory) {
    if (ModulePtr quant = act_factory(name)) seq.add(std::move(quant));
  }
}

std::unique_ptr<Sequential> make_downsample(
    const std::string& name, std::int64_t in_channels,
    std::int64_t out_channels, std::int64_t stride,
    const WeightSourceFactory& weight_factory, Rng& rng) {
  if (stride == 1 && in_channels == out_channels) return nullptr;
  auto seq = std::make_unique<Sequential>(name);
  Conv2dConfig conv;
  conv.in_channels = in_channels;
  conv.out_channels = out_channels;
  conv.kernel = 1;
  conv.stride = stride;
  conv.pad = 0;
  seq->add(std::make_unique<Conv2d>(name + ".conv", conv, weight_factory, rng));
  seq->add(std::make_unique<BatchNorm2d>(name + ".bn", out_channels));
  return seq;
}

}  // namespace

BasicBlock::BasicBlock(const std::string& name, const BlockConfig& config,
                       const WeightSourceFactory& weight_factory,
                       const ActQuantFactory& act_factory, Rng& rng)
    : main_(name + ".main") {
  set_name(name);
  const std::int64_t out_c = config.out_channels;

  Conv2dConfig conv1;
  conv1.in_channels = config.in_channels;
  conv1.out_channels = out_c;
  conv1.kernel = 3;
  conv1.stride = config.stride;
  conv1.pad = 1;
  main_.add(std::make_unique<Conv2d>(name + ".conv1", conv1, weight_factory,
                                     rng));
  main_.add(std::make_unique<BatchNorm2d>(name + ".bn1", out_c));
  main_.add(std::make_unique<ReLU>(name + ".relu1"));
  append_act_quant(main_, act_factory, name + ".aq1");

  Conv2dConfig conv2;
  conv2.in_channels = out_c;
  conv2.out_channels = out_c;
  conv2.kernel = 3;
  conv2.stride = 1;
  conv2.pad = 1;
  main_.add(std::make_unique<Conv2d>(name + ".conv2", conv2, weight_factory,
                                     rng));
  main_.add(std::make_unique<BatchNorm2d>(name + ".bn2", out_c));

  downsample_ = make_downsample(name + ".downsample", config.in_channels,
                                out_c, config.stride, weight_factory, rng);
  out_relu_ = std::make_unique<ReLU>(name + ".relu2");
  if (act_factory) out_act_quant_ = act_factory(name + ".aq2");
}

Tensor BasicBlock::forward(const Tensor& input, bool training) {
  return block_forward(main_, downsample_.get(), *out_relu_,
                       out_act_quant_.get(), input, training);
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  return block_backward(main_, downsample_.get(), *out_relu_,
                        out_act_quant_.get(), grad_output);
}

void BasicBlock::collect_parameters(std::vector<Parameter*>& out) {
  main_.collect_parameters(out);
  if (downsample_) downsample_->collect_parameters(out);
  if (out_act_quant_) out_act_quant_->collect_parameters(out);
}

void BasicBlock::for_each_module(const std::function<void(Module&)>& fn) {
  fn(*this);
  main_.for_each_module(fn);
  if (downsample_) downsample_->for_each_module(fn);
  out_relu_->for_each_module(fn);
  if (out_act_quant_) out_act_quant_->for_each_module(fn);
}

void BasicBlock::lower(GraphLowering& lowering) {
  block_lower(lowering, main_, downsample_.get(), *out_relu_,
              out_act_quant_.get());
}

Bottleneck::Bottleneck(const std::string& name, const BlockConfig& config,
                       const WeightSourceFactory& weight_factory,
                       const ActQuantFactory& act_factory, Rng& rng)
    : main_(name + ".main") {
  set_name(name);
  const std::int64_t mid_c = config.out_channels;
  const std::int64_t out_c = config.out_channels * expansion;

  Conv2dConfig conv1;
  conv1.in_channels = config.in_channels;
  conv1.out_channels = mid_c;
  conv1.kernel = 1;
  conv1.stride = 1;
  conv1.pad = 0;
  main_.add(std::make_unique<Conv2d>(name + ".conv1", conv1, weight_factory,
                                     rng));
  main_.add(std::make_unique<BatchNorm2d>(name + ".bn1", mid_c));
  main_.add(std::make_unique<ReLU>(name + ".relu1"));
  append_act_quant(main_, act_factory, name + ".aq1");

  Conv2dConfig conv2;
  conv2.in_channels = mid_c;
  conv2.out_channels = mid_c;
  conv2.kernel = 3;
  conv2.stride = config.stride;
  conv2.pad = 1;
  main_.add(std::make_unique<Conv2d>(name + ".conv2", conv2, weight_factory,
                                     rng));
  main_.add(std::make_unique<BatchNorm2d>(name + ".bn2", mid_c));
  main_.add(std::make_unique<ReLU>(name + ".relu2"));
  append_act_quant(main_, act_factory, name + ".aq2");

  Conv2dConfig conv3;
  conv3.in_channels = mid_c;
  conv3.out_channels = out_c;
  conv3.kernel = 1;
  conv3.stride = 1;
  conv3.pad = 0;
  main_.add(std::make_unique<Conv2d>(name + ".conv3", conv3, weight_factory,
                                     rng));
  main_.add(std::make_unique<BatchNorm2d>(name + ".bn3", out_c));

  downsample_ = make_downsample(name + ".downsample", config.in_channels,
                                out_c, config.stride, weight_factory, rng);
  out_relu_ = std::make_unique<ReLU>(name + ".relu3");
  if (act_factory) out_act_quant_ = act_factory(name + ".aq3");
}

Tensor Bottleneck::forward(const Tensor& input, bool training) {
  return block_forward(main_, downsample_.get(), *out_relu_,
                       out_act_quant_.get(), input, training);
}

Tensor Bottleneck::backward(const Tensor& grad_output) {
  return block_backward(main_, downsample_.get(), *out_relu_,
                        out_act_quant_.get(), grad_output);
}

void Bottleneck::collect_parameters(std::vector<Parameter*>& out) {
  main_.collect_parameters(out);
  if (downsample_) downsample_->collect_parameters(out);
  if (out_act_quant_) out_act_quant_->collect_parameters(out);
}

void Bottleneck::for_each_module(const std::function<void(Module&)>& fn) {
  fn(*this);
  main_.for_each_module(fn);
  if (downsample_) downsample_->for_each_module(fn);
  out_relu_->for_each_module(fn);
  if (out_act_quant_) out_act_quant_->for_each_module(fn);
}

void Bottleneck::lower(GraphLowering& lowering) {
  block_lower(lowering, main_, downsample_.get(), *out_relu_,
              out_act_quant_.get());
}

}  // namespace csq
