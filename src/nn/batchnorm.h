// Batch normalization over (B, H, W) per channel, with running statistics
// for evaluation mode.
#pragma once

#include "nn/module.h"

namespace csq {

class BatchNorm2d final : public Module {
 public:
  BatchNorm2d(const std::string& name, std::int64_t channels,
              float momentum = 0.1f, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "batchnorm2d"; }
  void lower(GraphLowering& lowering) override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }
  float epsilon() const { return epsilon_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;

  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Training caches.
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // (C)
  std::int64_t cached_batch_ = 0;
  std::int64_t cached_h_ = 0;
  std::int64_t cached_w_ = 0;
};

}  // namespace csq
