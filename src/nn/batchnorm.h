// Batch normalization over (B, H, W) per channel, with running statistics
// for evaluation mode.
#pragma once

#include "nn/module.h"

namespace csq {

class BatchNorm2d final : public Module {
 public:
  BatchNorm2d(const std::string& name, std::int64_t channels,
              float momentum = 0.1f, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "batchnorm2d"; }
  void lower(GraphLowering& lowering) override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }
  float epsilon() const { return epsilon_; }
  std::int64_t channels() const { return channels_; }

  // Stat-capture mode for data-parallel micro-batch training: while set,
  // a training forward writes the batch mean and UNBIASED variance (the
  // values the running-stat update would consume) into the given spans
  // (`channels` floats each) and leaves running_mean_/running_var_
  // untouched. The trainer later replays the captured stats in shard order
  // through replay_batch_stats(), reproducing the serial update sequence
  // bit-for-bit at any worker count. Cleared with null pointers.
  void set_stat_capture(float* mean_out, float* var_out);
  // One running-stat update from captured stats:
  //   running = (1 - momentum) * running + momentum * stat
  // — identical arithmetic to the in-forward update.
  void replay_batch_stats(const float* mean, const float* unbiased_var);

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;

  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Stat-capture spans (null -> normal in-forward running-stat update).
  float* capture_mean_ = nullptr;
  float* capture_var_ = nullptr;

  // Training caches.
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // (C)
  std::int64_t cached_batch_ = 0;
  std::int64_t cached_h_ = 0;
  std::int64_t cached_w_ = 0;
};

}  // namespace csq
