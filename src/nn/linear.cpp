#include "nn/linear.h"

#include "nn/lowering.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

Linear::Linear(const std::string& name, std::int64_t in_features,
               std::int64_t out_features,
               const WeightSourceFactory& weight_factory, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias) {
  CSQ_CHECK(in_features > 0 && out_features > 0) << "linear: bad extents";
  set_name(name);
  weight_source_ =
      weight_factory(name, {out_features, in_features}, in_features, rng);
  if (has_bias_) {
    bias_ = Parameter(name + ".bias", Tensor({out_features}),
                      /*apply_weight_decay=*/false);
  }
}

Tensor Linear::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() == 2 && input.dim(1) == in_features_)
      << "linear " << name() << ": expected (B," << in_features_ << "), got "
      << input.shape_string();
  const std::int64_t batch = input.dim(0);
  const Tensor& weights = weight_source_->weight(training);

  // Fully overwritten by the beta=0 GEMM.
  Tensor output = Tensor::uninitialized({batch, out_features_});
  // Y(B, OUT) = X(B, IN) * W^T, W stored (OUT, IN).
  gemm_parallel(Trans::no, Trans::yes, batch, out_features_, in_features_,
                1.0f, input.data(), in_features_, weights.data(), in_features_,
                0.0f, output.data(), out_features_, &ws_.gemm_scratch());
  if (has_bias_) {
    float* out = output.data();
    const float* bias = bias_.value.data();
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t j = 0; j < out_features_; ++j) {
        out[b * out_features_ + j] += bias[j];
      }
    }
  }
  if (training) {
    cached_input_ = input;  // same-shape assignment recycles the storage
    has_cached_input_ = true;
  } else {
    has_cached_input_ = false;
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  CSQ_CHECK(has_cached_input_)
      << "linear " << name() << ": backward without training forward";
  const std::int64_t batch = cached_input_.dim(0);
  CSQ_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == out_features_)
      << "linear " << name() << ": grad_output shape mismatch";

  const Tensor& weights = weight_source_->weight(/*training=*/true);

  // dX(B, IN) = dY(B, OUT) * W(OUT, IN)
  Tensor grad_input = Tensor::uninitialized({batch, in_features_});
  gemm_parallel(Trans::no, Trans::no, batch, in_features_, out_features_, 1.0f,
                grad_output.data(), out_features_, weights.data(),
                in_features_, 0.0f, grad_input.data(), in_features_,
                &ws_.gemm_scratch());

  // dW(OUT, IN) = dY^T(OUT, B) * X(B, IN)
  Tensor& grad_weight = ws_.tensor(kGradWeightSlot, weights.shape());
  gemm_parallel(Trans::yes, Trans::no, out_features_, in_features_, batch,
                1.0f, grad_output.data(), out_features_, cached_input_.data(),
                in_features_, 0.0f, grad_weight.data(), in_features_,
                &ws_.gemm_scratch());
  weight_source_->backward(grad_weight);

  if (has_bias_) {
    float* gb = bias_.grad.data();
    const float* go = grad_output.data();
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t j = 0; j < out_features_; ++j) {
        gb[j] += go[b * out_features_ + j];
      }
    }
  }

  has_cached_input_ = false;
  return grad_input;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  weight_source_->collect_parameters(out);
  if (has_bias_) out.push_back(&bias_);
}

void Linear::lower(GraphLowering& lowering) { lowering.lower_linear(*this); }

}  // namespace csq
