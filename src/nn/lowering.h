// Lowering seam between the float module tree and the integer inference
// runtime (src/runtime).
//
// A finalized model is lowered by walking the module tree in execution
// order: every Module describes itself to a GraphLowering sink via
// Module::lower. The sink (runtime::record_program's recorder) captures
// the walk as a serializable GraphProgram — Conv2d/Linear contribute their
// integer weight codes, BatchNorm2d its folded eval-mode affine, ReLU and
// activation quantizers their fusion/pin markers, and residual blocks
// drive the fork/join callbacks so the skip connection becomes an integer
// re-scaled add. runtime::build_graph then replays the program into a
// CompiledGraph; because the replay consumes only data, a persisted
// artifact (runtime/graph_artifact.h) rebuilds the same graph with the
// float model absent from memory. This walk is the ONLY point where the
// runtime touches modules.
//
// The interface lives in nn (not runtime) so that module classes can
// override lower() without depending on the runtime's graph types; the
// dependency points runtime -> nn only.
#pragma once

#include <cstdint>

namespace csq {

class Conv2d;
class Linear;
class BatchNorm2d;
struct Pool2dConfig;

// Sink for the module-tree walk. Calls arrive in execution order; the
// residual callbacks bracket the two branches of a skip connection:
//
//   begin_residual();   // fork: remember the incoming edge
//   ... main branch ...
//   begin_skip();       // main branch done; skip branch (possibly empty)
//   ... skip branch ...
//   end_residual();     // join: main + skip
class GraphLowering {
 public:
  virtual ~GraphLowering() = default;

  virtual void lower_conv2d(Conv2d& conv) = 0;
  virtual void lower_linear(Linear& linear) = 0;
  virtual void lower_batchnorm(const BatchNorm2d& bn) = 0;
  virtual void lower_relu() = 0;
  // An activation quantizer with the given bit width and clip range: the
  // produced edge carries values in [0, clip] on a 2^bits - 1 step grid.
  virtual void lower_act_quant(int bits, float clip) = 0;
  // Spatial pooling over Pool2dConfig windows (nn/pooling.h): independent
  // kernel_h/kernel_w, stride and padding. Max pooling treats padded taps
  // as -inf; average pooling counts them as zeros over a fixed
  // kernel_h*kernel_w divisor when count_include_pad, and divides each
  // window by its valid-tap count otherwise.
  virtual void lower_maxpool(const Pool2dConfig& config) = 0;
  virtual void lower_avgpool(const Pool2dConfig& config,
                             bool count_include_pad) = 0;
  virtual void lower_global_avg_pool() = 0;
  virtual void lower_flatten() = 0;

  virtual void begin_residual() = 0;
  virtual void begin_skip() = 0;
  virtual void end_residual() = 0;
};

}  // namespace csq
